//! `flowctl` — boot and supervise a whole Flowtree fleet from one
//! declarative spec file.
//!
//! Where `relayd` runs *one* aggregation node, `flowctl` reads a
//! [`flowrelay::spec::FleetSpec`] (sites, relays, ports, retention,
//! export modes — see that module for the format) and stands up the
//! entire site→relay→root tree:
//!
//! * **`flowctl check fleet.spec`** — parse and validate, print the
//!   tiers, touch nothing.
//! * **`flowctl run fleet.spec`** — boot every node in this process
//!   (threads). Relays start root-first so a child can resolve its
//!   parent's `:0` ingest bind to a concrete port; sites boot last.
//!   Commands arrive on stdin (`status`, `reload <relay|all> k=v …`,
//!   `drain`); EOF drains too, so killing the terminal tears the
//!   fleet down gracefully.
//! * **`flowctl run fleet.spec --spawn`** — relays run as `relayd`
//!   child *processes* (`--stdin-control`), supervised: a crashed
//!   child is restarted on its pinned ports and recovers through its
//!   journal and export spill; downstream peers just reconnect. Sites
//!   stay in-process.
//! * **`flowctl smoke fleet.spec`** — CI's end-to-end probe: boot the
//!   fleet, push deterministic records at every site over UDP, wait
//!   for aggregates to reach the root, query it, exercise every stats
//!   endpoint and a live reload, then drain. Prints
//!   `flowctl smoke: ok …` on success and exits nonzero otherwise.
//!
//! A drain is ordered leaves-first: sites flush their open windows to
//! the leaf relays, each tier flushes its pending exports to its
//! parent through the acknowledged shipper, and the root simply
//! stops. Nothing acknowledged is ever dropped; anything a dead
//! upstream refused stays in that node's spill for the next boot.

use flowdist::ops::ops_request;
use flowdist::runtime::{SiteNodeConfig, SiteRuntime};
use flowrelay::spec::FleetSpec;
use flowrelay::{ExportMode, NodeRuntime};
use std::collections::HashMap;
use std::io::{BufRead, Write as _};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const HELP: &str = "\
flowctl — declarative Flowtree fleet launcher

USAGE:
    flowctl check <spec>             validate a fleet spec, print the tiers
    flowctl run <spec> [--spawn]     boot the fleet; stdin commands:
                                     status | top | reload <relay|all> k=v …
                                     | drain (EOF drains)
    flowctl smoke <spec>             boot, ingest, query, scrape, reload, drain
    flowctl top <spec>               scrape /metrics on a *running* fleet's
                                     pinned stats ports, print the per-tier view
    flowctl scrape <spec>            scrape and conformance-check /metrics on
                                     every node, one line per node

FLAGS:
    --spawn               run relays as supervised relayd child processes
                          (crash-restart on pinned ports); sites stay in-process
    --relayd PATH         relayd binary for --spawn  [default: next to flowctl]
    --drain-deadline-ms N per-node drain flush bound  [default: 10000]
    --records N           records per site for smoke  [default: 400]
    --help                print this help
";

fn fail(msg: impl core::fmt::Display) -> ! {
    eprintln!("flowctl: {msg}");
    std::process::exit(1);
}

/// Closed-stderr-safe logging (same contract as relayd's).
fn log(msg: core::fmt::Arguments<'_>) {
    let _ = writeln!(std::io::stderr(), "{msg}");
}

/// Tiny `--key value` scanner (no clap offline). A repeated flag's
/// last value wins.
struct Args(Vec<String>);

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.0
            .iter()
            .rposition(|a| *a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| *a == format!("--{name}"))
    }

    /// Positional (non-flag) arguments, in order.
    fn positional(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut skip = false;
        for a in &self.0 {
            if skip {
                skip = false;
                continue;
            }
            if let Some(flag) = a.strip_prefix("--") {
                // Flags that take a value consume the next arg.
                skip = matches!(flag, "relayd" | "drain-deadline-ms" | "records");
                continue;
            }
            out.push(a.as_str());
        }
        out
    }
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.has("help") {
        print!("{HELP}");
        return;
    }
    let pos = args.positional();
    let (cmd, spec_path) = match pos.as_slice() {
        [cmd, path, ..] => (*cmd, *path),
        _ => fail(format_args!("usage error\n{HELP}")),
    };
    let text = std::fs::read_to_string(spec_path)
        .unwrap_or_else(|e| fail(format_args!("cannot read {spec_path}: {e}")));
    let spec = FleetSpec::parse(&text).unwrap_or_else(|e| fail(format_args!("{spec_path}: {e}")));
    let deadline = Duration::from_millis(args.num("drain-deadline-ms", 10_000));
    match cmd {
        "check" => check(&spec),
        "run" => run(&spec, &args, deadline),
        "smoke" => smoke(&spec, args.num("records", 400usize), deadline),
        "top" => fleet_top(&spec),
        "scrape" => fleet_scrape(&spec),
        other => fail(format_args!("unknown command {other}\n{HELP}")),
    }
}

fn check(spec: &FleetSpec) {
    // parse() already validated; describe the tree.
    let topo = spec.topology();
    for (i, r) in topo.relays.iter().enumerate() {
        println!(
            "relay {} depth={} agg-site={} direct-sites={:?} coverage={}",
            r.name,
            topo.depth_of(i),
            r.agg_site,
            r.sites,
            topo.coverage(i).len()
        );
    }
    for s in &spec.sites {
        println!("site {} -> relay {}", s.site, s.upstream);
    }
    println!(
        "spec ok: {} relays, {} sites, boot order {:?}",
        spec.relays.len(),
        spec.sites.len(),
        spec.boot_order()
    );
}

// ---------------------------------------------------------------------------
// Fleet-wide metrics: top / scrape
// ---------------------------------------------------------------------------

/// Stats addresses the spec pins, labelled for error messages. `:0`
/// binds are skipped with a note — those ports only resolve inside a
/// running `flowctl run` process (use its `top` stdin command there).
fn spec_stats_addrs(spec: &FleetSpec) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut take = |label: String, addr: Option<&String>| match addr {
        Some(a) => {
            let unresolved = a
                .parse::<SocketAddr>()
                .map(|sa| sa.port() == 0)
                .unwrap_or_else(|_| a.ends_with(":0"));
            if unresolved {
                log(format_args!(
                    "flowctl: skipping {label}: stats bind {a} resolves only at runtime"
                ));
            } else {
                out.push((label, a.clone()));
            }
        }
        None => log(format_args!("flowctl: skipping {label}: no stats endpoint")),
    };
    for r in &spec.relays {
        take(format!("relay {}", r.node.name), r.node.stats.as_ref());
    }
    for s in &spec.sites {
        take(format!("site {}", s.site), s.stats.as_ref());
    }
    out
}

/// Scrapes every pinned stats endpoint of a running fleet; any
/// unreachable or non-conformant node is fatal (both commands exist
/// to catch exactly that).
fn scrape_fleet_spec(spec: &FleetSpec) -> Vec<flowrelay::fleetview::NodeMetrics> {
    let addrs = spec_stats_addrs(spec);
    if addrs.is_empty() {
        fail(
            "no scrapeable stats endpoints in the spec — pin stats ports, \
             or use the `top` stdin command under `flowctl run`",
        );
    }
    let mut nodes = Vec::new();
    for (label, addr) in addrs {
        match flowrelay::fleetview::scrape(&addr) {
            Ok(n) => nodes.push(n),
            Err(e) => fail(format_args!("{label}: {e}")),
        }
    }
    nodes
}

fn fleet_top(spec: &FleetSpec) {
    let nodes = scrape_fleet_spec(spec);
    let rows = flowrelay::fleetview::aggregate(&nodes);
    print!("{}", flowrelay::fleetview::render_table(&rows));
}

fn fleet_scrape(spec: &FleetSpec) {
    let nodes = scrape_fleet_spec(spec);
    for n in &nodes {
        println!(
            "ok {} {} addr={} version={} series={}",
            n.role,
            n.node,
            n.addr,
            n.version,
            n.series.len()
        );
    }
    println!("scraped {} nodes, exposition valid on all", nodes.len());
}

// ---------------------------------------------------------------------------
// In-process fleet (threads)
// ---------------------------------------------------------------------------

/// The whole fleet running in this process: relays in boot order
/// (root first), sites after.
struct ThreadFleet {
    relays: Vec<NodeRuntime>,
    sites: Vec<SiteRuntime>,
}

impl ThreadFleet {
    fn boot(spec: &FleetSpec) -> Result<ThreadFleet, String> {
        // `boot_relays` owns the wiring rules (subtree coverage,
        // resolved parent addresses); this shell only narrates.
        let relays = spec.boot_relays().map_err(|e| e.to_string())?;
        let mut ingest_addrs: HashMap<String, SocketAddr> = HashMap::new();
        for rt in &relays {
            ingest_addrs.insert(rt.name().to_string(), rt.ingest_addr());
            println!(
                "flowctl: relay {} ingest={} query={} stats={}",
                rt.name(),
                rt.ingest_addr(),
                rt.query_addr(),
                rt.stats_addr().map(|a| a.to_string()).unwrap_or_default()
            );
        }
        let mut sites = Vec::new();
        for s in &spec.sites {
            let mut cfg = SiteNodeConfig::new(s.site, ingest_addrs[&s.upstream].to_string());
            cfg.listen = s.listen.clone();
            cfg.stats = s.stats.clone();
            cfg.window_ms = s.window_ms;
            cfg.budget = s.budget;
            cfg.batch = s.batch;
            cfg.receive_buffer_bytes = s.receive_buffer_bytes;
            cfg.admission = s.admission;
            cfg.max_open_windows = s.max_open_windows;
            cfg.lanes = s.lanes;
            cfg.recv_batch = s.recv_batch;
            cfg.reuseport = s.reuseport;
            cfg.pin_cores = s.pin_cores;
            let rt = SiteRuntime::start(cfg).map_err(|e| format!("site {}: {e}", s.site))?;
            println!(
                "flowctl: site {} listen={} stats={}",
                s.site,
                rt.ingest_addr(),
                rt.stats_addr().map(|a| a.to_string()).unwrap_or_default()
            );
            sites.push(rt);
        }
        Ok(ThreadFleet { relays, sites })
    }

    fn relay(&self, name: &str) -> Option<&NodeRuntime> {
        self.relays.iter().find(|r| r.name() == name)
    }

    /// Scrapes `/metrics` on every live node over its *resolved* stats
    /// address (works with `:0` binds, unlike the spec-driven `flowctl
    /// top`). First unreachable or non-conformant node is the error.
    fn scrape(&self) -> Result<Vec<flowrelay::fleetview::NodeMetrics>, String> {
        let mut nodes = Vec::new();
        for rt in &self.relays {
            if let Some(addr) = rt.stats_addr() {
                nodes.push(
                    flowrelay::fleetview::scrape(&addr.to_string())
                        .map_err(|e| format!("relay {}: {e}", rt.name()))?,
                );
            }
        }
        for site in &self.sites {
            if let Some(addr) = site.stats_addr() {
                nodes.push(
                    flowrelay::fleetview::scrape(&addr.to_string())
                        .map_err(|e| format!("site {}: {e}", site.site()))?,
                );
            }
        }
        Ok(nodes)
    }

    /// Leaves-first drain: sites flush to leaf relays, every relay
    /// tier flushes its pending exports to its (still-running) parent,
    /// the root exits last.
    fn drain(self, deadline: Duration) {
        for site in self.sites {
            let id = site.site();
            let report = site.drain();
            log(format_args!(
                "flowctl: site {id} drained — {} forwarded, {} abandoned",
                report.forwarded, report.abandoned
            ));
        }
        for rt in self.relays.into_iter().rev() {
            let name = rt.name().to_string();
            let report = rt.drain(deadline);
            log(format_args!(
                "flowctl: relay {name} drained — {} flushed, {} pending at exit",
                report.flushed, report.pending_at_exit
            ));
        }
    }
}

fn run(spec: &FleetSpec, args: &Args, deadline: Duration) {
    if args.has("spawn") {
        return run_spawned(spec, args, deadline);
    }
    let fleet = ThreadFleet::boot(spec).unwrap_or_else(|e| fail(e));
    println!(
        "flowctl: fleet up ({} relays, {} sites)",
        fleet.relays.len(),
        fleet.sites.len()
    );
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let mut words = line.split_whitespace();
        match words.next() {
            None => {}
            Some("status") => {
                for rt in &fleet.relays {
                    let l = rt.ledger();
                    println!(
                        "status relay {} frames={} rejected={} exported={} pending={} spill_sheds={}",
                        rt.name(),
                        l.frames,
                        l.rejected,
                        l.exported,
                        rt.pending_len(),
                        l.spill_sheds
                    );
                }
                for site in &fleet.sites {
                    let s = site.ingest_snapshot();
                    println!(
                        "status site {} packets={} records={} summaries={}",
                        site.site(),
                        s.packets,
                        s.records,
                        s.summaries
                    );
                }
            }
            Some("top") => match fleet.scrape() {
                Ok(nodes) => {
                    let rows = flowrelay::fleetview::aggregate(&nodes);
                    print!("{}", flowrelay::fleetview::render_table(&rows));
                }
                Err(e) => println!("error {e}"),
            },
            Some("reload") => {
                let Some(target) = words.next() else {
                    println!("error reload needs a relay name or all");
                    continue;
                };
                let kvs: Vec<&str> = words.collect();
                let targets: Vec<&NodeRuntime> = if target == "all" {
                    fleet.relays.iter().collect()
                } else {
                    match fleet.relay(target) {
                        Some(rt) => vec![rt],
                        None => {
                            println!("error no relay named {target}");
                            continue;
                        }
                    }
                };
                match apply_reload(&targets, &kvs) {
                    Ok(n) => println!("reloaded {n} relays"),
                    Err(e) => println!("error {e}"),
                }
            }
            Some("drain") => break,
            Some(other) => println!("error unknown command: {other}"),
        }
    }
    fleet.drain(deadline);
    println!("flowctl: fleet down");
}

/// Parses `k=v` words into a [`flowrelay::NodeReload`] against each
/// target's current knobs and applies it. All-or-nothing per call.
fn apply_reload(targets: &[&NodeRuntime], kvs: &[&str]) -> Result<usize, String> {
    for rt in targets {
        let mut r = rt.reloadable();
        for kv in kvs {
            let Some((k, v)) = kv.split_once('=') else {
                return Err(format!("malformed reload arg: {kv}"));
            };
            match (k, v.parse::<u64>()) {
                ("mode", _) if v == "full" => r.mode = ExportMode::Full,
                ("mode", _) if v == "delta" => r.mode = ExportMode::Delta,
                ("linger-ms", Ok(n)) => r.linger_ms = n,
                ("retention-ms", Ok(n)) => r.retention_ms = n,
                ("drain-every-ms", Ok(n)) => r.drain_every_ms = n,
                ("max-bases", Ok(n)) => r.max_bases = n as usize,
                _ => return Err(format!("bad reload arg: {kv}")),
            }
        }
        rt.reload(r);
    }
    Ok(targets.len())
}

// ---------------------------------------------------------------------------
// Spawned fleet (relayd child processes, supervised)
// ---------------------------------------------------------------------------

/// One supervised relayd child.
struct ChildNode {
    name: String,
    /// Args pinned to the first boot's resolved ports, so a restarted
    /// child comes back where its peers expect it.
    args: Vec<String>,
    child: Child,
    restarts: u32,
}

/// The spawn-mode fleet state shared between the stdin loop and the
/// supervisor thread.
struct SpawnedFleet {
    relayd: String,
    children: Vec<ChildNode>,
}

fn relayd_path(args: &Args) -> String {
    if let Some(p) = args.get("relayd") {
        return p.to_string();
    }
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("relayd")))
        .filter(|p| p.exists())
        .map(|p| p.display().to_string())
        .unwrap_or_else(|| "relayd".into())
}

/// relayd args for one relay node with every bind/link made concrete.
fn relayd_args(spec: &FleetSpec, name: &str, upstream: Option<&SocketAddr>) -> Vec<String> {
    let r = spec.relay(name).expect("caller resolved the name");
    let n = &r.node;
    let mut args = vec![
        "--name".into(),
        n.name.clone(),
        "--agg-site".into(),
        n.agg_site.to_string(),
        "--ingest".into(),
        n.ingest.clone(),
        "--query".into(),
        n.query.clone(),
        "--mode".into(),
        match n.mode {
            ExportMode::Full => "full".into(),
            ExportMode::Delta => "delta".into(),
        },
        "--linger-ms".into(),
        n.linger_ms.to_string(),
        "--drain-every-ms".into(),
        n.drain_every_ms.to_string(),
        "--max-bases".into(),
        n.max_bases.to_string(),
        "--budget".into(),
        n.budget.to_string(),
        "--retention-ms".into(),
        n.retention_ms.to_string(),
        "--spill-max-bytes".into(),
        n.spill_max_bytes.to_string(),
        "--reconnect-base-ms".into(),
        n.reconnect_base_ms.to_string(),
        "--reconnect-max-ms".into(),
        n.reconnect_max_ms.to_string(),
        "--ack-stall-ms".into(),
        n.ack_stall_ms.to_string(),
        "--stdin-control".into(),
    ];
    // Whole-subtree coverage, not just directly-owned sites (the
    // root usually owns none directly).
    let coverage = spec.coverage(name);
    if !coverage.is_empty() {
        args.push("--sites".into());
        args.push(
            coverage
                .iter()
                .map(u16::to_string)
                .collect::<Vec<_>>()
                .join(","),
        );
    }
    if let Some(s) = &n.stats {
        args.push("--stats".into());
        args.push(s.clone());
    }
    if let Some(d) = &n.state_dir {
        args.push("--state-dir".into());
        args.push(d.display().to_string());
    }
    if let Some(u) = upstream {
        args.push("--upstream".into());
        args.push(u.to_string());
    }
    match n.fsync {
        flowdist::FsyncPolicy::Always => {
            args.push("--fsync".into());
            args.push("always".into());
        }
        flowdist::FsyncPolicy::Never => {}
    }
    args
}

/// Spawns one relayd, waits for its startup line, and returns the
/// child plus its resolved (ingest, query) addresses. The rest of the
/// child's stderr/stdout is forwarded to ours by detached threads.
fn spawn_relayd(
    relayd: &str,
    name: &str,
    args: &[String],
) -> Result<(Child, SocketAddr, SocketAddr), String> {
    let mut child = Command::new(relayd)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn {relayd} for {name}: {e}"))?;
    let stderr = child.stderr.take().expect("piped");
    let mut reader = std::io::BufReader::new(stderr);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut startup = None;
    let mut line = String::new();
    while startup.is_none() && Instant::now() < deadline {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                log(format_args!("{}", line.trim_end()));
                // `relayd[name]: ingest on A, queries on B, mode M`
                if let Some(rest) = line.split("ingest on ").nth(1) {
                    let (a, rest) = rest.split_once(", queries on ").unwrap_or(("", ""));
                    let b = rest.split(',').next().unwrap_or("").trim();
                    if let (Ok(a), Ok(b)) = (a.trim().parse(), b.parse()) {
                        startup = Some((a, b));
                    }
                }
            }
            Err(_) => break,
        }
    }
    let Some((ingest, query)) = startup else {
        let _ = child.kill();
        return Err(format!("relay {name}: no startup line within 10s"));
    };
    // Forward the rest of its stderr (and stdout) to ours.
    std::thread::spawn(move || {
        let mut line = String::new();
        while let Ok(n) = reader.read_line(&mut line) {
            if n == 0 {
                break;
            }
            log(format_args!("{}", line.trim_end()));
            line.clear();
        }
    });
    if let Some(out) = child.stdout.take() {
        std::thread::spawn(move || {
            let mut reader = std::io::BufReader::new(out);
            let mut line = String::new();
            while let Ok(n) = reader.read_line(&mut line) {
                if n == 0 {
                    break;
                }
                println!("{}", line.trim_end());
                line.clear();
            }
        });
    }
    Ok((child, ingest, query))
}

/// Replaces the value following `--flag` in an arg vector.
fn pin_arg(args: &mut [String], flag: &str, value: String) {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 < args.len() {
            args[i + 1] = value;
        }
    }
}

fn run_spawned(spec: &FleetSpec, args: &Args, deadline: Duration) {
    let relayd = relayd_path(args);
    let mut ingest_addrs: HashMap<String, SocketAddr> = HashMap::new();
    let mut children = Vec::new();
    for name in spec.boot_order() {
        let r = spec.relay(&name).expect("boot_order names spec relays");
        let upstream = r.parent.as_ref().map(|p| ingest_addrs[p]);
        let mut cargs = relayd_args(spec, &name, upstream.as_ref());
        let (child, ingest, query) =
            spawn_relayd(&relayd, &name, &cargs).unwrap_or_else(|e| fail(e));
        // Pin the resolved ports so a restart comes back in place.
        pin_arg(&mut cargs, "--ingest", ingest.to_string());
        pin_arg(&mut cargs, "--query", query.to_string());
        ingest_addrs.insert(name.clone(), ingest);
        println!(
            "flowctl: relay {name} ingest={ingest} query={query} pid={}",
            child.id()
        );
        children.push(ChildNode {
            name,
            args: cargs,
            child,
            restarts: 0,
        });
    }
    let mut sites = Vec::new();
    for s in &spec.sites {
        let mut cfg = SiteNodeConfig::new(s.site, ingest_addrs[&s.upstream].to_string());
        cfg.listen = s.listen.clone();
        cfg.stats = s.stats.clone();
        cfg.window_ms = s.window_ms;
        cfg.budget = s.budget;
        cfg.batch = s.batch;
        cfg.receive_buffer_bytes = s.receive_buffer_bytes;
        cfg.admission = s.admission;
        cfg.max_open_windows = s.max_open_windows;
        cfg.lanes = s.lanes;
        cfg.recv_batch = s.recv_batch;
        cfg.reuseport = s.reuseport;
        cfg.pin_cores = s.pin_cores;
        let rt =
            SiteRuntime::start(cfg).unwrap_or_else(|e| fail(format_args!("site {}: {e}", s.site)));
        println!("flowctl: site {} listen={}", s.site, rt.ingest_addr());
        sites.push(rt);
    }
    println!(
        "flowctl: fleet up ({} spawned relays, {} sites)",
        children.len(),
        sites.len()
    );

    let draining = Arc::new(AtomicBool::new(false));
    let fleet = Arc::new(Mutex::new(SpawnedFleet { relayd, children }));
    // Supervisor: restart any child that exits while we are not
    // draining. The restarted process recovers its journal and spill
    // under the same state dir and rebinds its pinned ports (retrying
    // until the OS releases them).
    let sup = {
        let fleet = Arc::clone(&fleet);
        let draining = Arc::clone(&draining);
        std::thread::spawn(move || loop {
            if draining.load(Ordering::Relaxed) {
                return;
            }
            {
                let mut guard = fleet.lock().expect("fleet lock");
                let relayd = guard.relayd.clone();
                for c in guard.children.iter_mut() {
                    if let Ok(Some(status)) = c.child.try_wait() {
                        if draining.load(Ordering::Relaxed) {
                            return;
                        }
                        log(format_args!(
                            "flowctl: relay {} exited ({status}); restarting",
                            c.name
                        ));
                        match spawn_relayd(&relayd, &c.name, &c.args) {
                            Ok((child, _, _)) => {
                                c.child = child;
                                c.restarts += 1;
                                log(format_args!(
                                    "flowctl: relay {} restarted (pid {}, restart #{})",
                                    c.name,
                                    c.child.id(),
                                    c.restarts
                                ));
                            }
                            Err(e) => {
                                // Ports may still be in TIME_WAIT; the
                                // next supervisor pass retries.
                                log(format_args!("flowctl: restart of {} failed: {e}", c.name));
                            }
                        }
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(250));
        })
    };

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let mut words = line.split_whitespace();
        match words.next() {
            None => {}
            Some("drain") => break,
            Some("status") => {
                let mut guard = fleet.lock().expect("fleet lock");
                for c in guard.children.iter_mut() {
                    // Children answer on their own stdout (forwarded).
                    send_line(c, "status");
                }
                drop(guard);
                for site in &sites {
                    let s = site.ingest_snapshot();
                    println!(
                        "status site {} packets={} records={} summaries={}",
                        site.site(),
                        s.packets,
                        s.records,
                        s.summaries
                    );
                }
            }
            Some("top") => {
                // Children bind their own stats ports, so the spec's
                // pinned addresses are the only handle we have here.
                let mut nodes = Vec::new();
                for (label, addr) in spec_stats_addrs(spec) {
                    match flowrelay::fleetview::scrape(&addr) {
                        Ok(n) => nodes.push(n),
                        Err(e) => println!("error {label}: {e}"),
                    }
                }
                let rows = flowrelay::fleetview::aggregate(&nodes);
                print!("{}", flowrelay::fleetview::render_table(&rows));
            }
            Some("reload") => {
                let Some(target) = words.next() else {
                    println!("error reload needs a relay name or all");
                    continue;
                };
                let rest: Vec<&str> = words.collect();
                let cmd = format!("reload {}", rest.join(" "));
                let mut guard = fleet.lock().expect("fleet lock");
                let mut hit = 0;
                for c in guard.children.iter_mut() {
                    if target == "all" || c.name == target {
                        send_line(c, &cmd);
                        hit += 1;
                    }
                }
                drop(guard);
                if hit == 0 {
                    println!("error no relay named {target}");
                }
            }
            Some(other) => println!("error unknown command: {other}"),
        }
    }

    draining.store(true, Ordering::Relaxed);
    let _ = sup.join();
    for site in sites {
        let id = site.site();
        let report = site.drain();
        log(format_args!(
            "flowctl: site {id} drained — {} forwarded, {} abandoned",
            report.forwarded, report.abandoned
        ));
    }
    // Leaves-first: closing a child's stdin (or sending `drain`) makes
    // relayd flush pending exports to its still-running parent.
    let mut guard = fleet.lock().expect("fleet lock");
    let _ = deadline; // children bound their own drain via --drain-deadline-ms
    for c in guard.children.iter_mut().rev() {
        send_line(c, "drain");
        drop(c.child.stdin.take());
        match c.child.wait() {
            Ok(status) => log(format_args!(
                "flowctl: relay {} drained and exited ({status})",
                c.name
            )),
            Err(e) => log(format_args!("flowctl: wait on {} failed: {e}", c.name)),
        }
    }
    println!("flowctl: fleet down");
}

fn send_line(c: &mut ChildNode, line: &str) {
    if let Some(stdin) = c.child.stdin.as_mut() {
        let _ = writeln!(stdin, "{line}");
        let _ = stdin.flush();
    }
}

// ---------------------------------------------------------------------------
// Smoke: boot → ingest → query → stats → reload → drain (for CI)
// ---------------------------------------------------------------------------

fn smoke(spec: &FleetSpec, records_per_site: usize, deadline: Duration) {
    use flownet::FlowRecord;

    let t0 = Instant::now();
    let fleet = ThreadFleet::boot(spec).unwrap_or_else(|e| fail(e));
    let root_name = spec.boot_order().remove(0);
    let root = fleet.relay(&root_name).expect("root booted");
    let root_query = root.query_addr();
    let root_stats = root.stats_addr().unwrap_or_else(|| {
        fail("smoke needs a stats endpoint on the root (set stats = 127.0.0.1:0)")
    });

    // Deterministic traffic spanning three windows per site: the site
    // daemon keeps `open_windows` (2) windows open to absorb event-time
    // disorder, so the first window only closes — and ships to the
    // relays without waiting for a drain — once event time reaches the
    // third. Event times anchor just behind the wall clock: relays
    // evict windows older than their retention horizon, which is
    // measured against real time.
    let sender = std::net::UdpSocket::bind("127.0.0.1:0")
        .unwrap_or_else(|e| fail(format_args!("udp bind: {e}")));
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut sent = 0usize;
    for site in &fleet.sites {
        let w = spec
            .sites
            .iter()
            .find(|s| s.site == site.site())
            .map(|s| s.window_ms)
            .unwrap_or(300_000);
        let w0 = (now_ms / w).saturating_sub(3) * w;
        let recs: Vec<FlowRecord> = (0..records_per_site)
            .map(|i| {
                let widx = (i * 3 / records_per_site.max(1)) as u64;
                let ts = w0 + w * widx + 10 + (i as u64 % 7);
                let mut r = FlowRecord::v4(
                    [10, (site.site() % 250) as u8, (i % 200) as u8, 1],
                    [192, 0, 2, (i % 100) as u8],
                    1024 + (i % 500) as u16,
                    443,
                    6,
                    1 + (i % 5) as u64,
                    64 * (1 + (i % 5) as u64),
                );
                r.first_ms = ts;
                r.last_ms = ts;
                r
            })
            .collect();
        // base_ms (the exporter's clock at export time) must sit at or
        // after every record timestamp: v5 carries times as sysuptime
        // offsets *behind* it.
        flowdist::net::export_netflow(&sender, site.ingest_addr(), &recs, now_ms)
            .unwrap_or_else(|e| fail(format_args!("udp send to site {}: {e}", site.site())));
        sent += recs.len();
    }

    // Wait for the first window's aggregates to climb every tier.
    let root_stats_addr = root_stats.to_string();
    let wait_until = Instant::now() + Duration::from_secs(60);
    let root_frames = loop {
        let (status, body) = ops_request(&root_stats_addr, "GET", "/stats", "")
            .unwrap_or_else(|e| fail(format_args!("root stats: {e}")));
        if status != 200 {
            fail(format_args!("root stats returned {status}"));
        }
        let frames = stat_field(&body, "frames").unwrap_or(0);
        if frames > 0 {
            break frames;
        }
        if Instant::now() > wait_until {
            fail(format_args!(
                "no aggregates reached the root within 60s; its stats:\n{body}"
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    };

    // The root must answer a query over the aggregated data.
    let mut conn = std::net::TcpStream::connect(root_query)
        .unwrap_or_else(|e| fail(format_args!("root query connect: {e}")));
    let answer = flowrelay::server::query_remote(&mut conn, "pop")
        .unwrap_or_else(|e| fail(format_args!("root query: {e}")))
        .unwrap_or_else(|e| fail(format_args!("root query error: {e}")));
    let route = answer.lines().next().unwrap_or_default().trim().to_string();
    if !route.starts_with("route:") {
        fail(format_args!("root answer missing route header: {answer}"));
    }
    if !answer.contains("popularity: ") || answer.contains("popularity: 0 packets") {
        fail(format_args!(
            "the root answered but holds no aggregated data: {answer}"
        ));
    }

    // Every stats endpoint must be healthy.
    let mut endpoints = 0usize;
    for rt in &fleet.relays {
        if let Some(addr) = rt.stats_addr() {
            let (status, body) = ops_request(&addr.to_string(), "GET", "/health", "")
                .unwrap_or_else(|e| fail(format_args!("health of {}: {e}", rt.name())));
            if status != 200 || !body.contains("ok true") {
                fail(format_args!(
                    "relay {} unhealthy: {status} {body}",
                    rt.name()
                ));
            }
            endpoints += 1;
        }
    }
    for site in &fleet.sites {
        if let Some(addr) = site.stats_addr() {
            let (status, body) = ops_request(&addr.to_string(), "GET", "/health", "")
                .unwrap_or_else(|e| fail(format_args!("health of site {}: {e}", site.site())));
            if status != 200 || !body.contains("ok true") {
                fail(format_args!(
                    "site {} unhealthy: {status} {body}",
                    site.site()
                ));
            }
            endpoints += 1;
        }
    }

    // Live reload: tighten the root's linger and verify it stuck.
    let (status, body) = ops_request(&root_stats_addr, "POST", "/reload", "linger-ms=50\n")
        .unwrap_or_else(|e| fail(format_args!("reload: {e}")));
    if status != 200 {
        fail(format_args!("reload returned {status}: {body}"));
    }
    let (_, body) = ops_request(&root_stats_addr, "GET", "/stats", "")
        .unwrap_or_else(|e| fail(format_args!("stats after reload: {e}")));
    if stat_field(&body, "linger_ms") != Some(50) {
        fail(format_args!("reload did not apply: {body}"));
    }

    // Hostile phase: garbage and template-less data at the first site
    // must be counted and dropped — never crash a node or skew the
    // datagram accounting identity — and the site's admission knobs
    // must reload live.
    let hostile_site = &fleet.sites[0];
    let site_stats_addr = hostile_site
        .stats_addr()
        .unwrap_or_else(|| fail("smoke needs a stats endpoint on site 0"))
        .to_string();
    let before = ops_request(&site_stats_addr, "GET", "/stats", "")
        .unwrap_or_else(|e| fail(format_args!("site stats: {e}")))
        .1;
    let decode_errors_before = stat_field(&before, "decode_errors").unwrap_or(0);
    let no_template_before = stat_field(&before, "records_no_template").unwrap_or(0);
    // (a) Pure garbage — a decode error.
    sender
        .send_to(
            b"not netflow at all, not even close",
            hostile_site.ingest_addr(),
        )
        .unwrap_or_else(|e| fail(format_args!("hostile send: {e}")));
    // (b) A well-formed v9 packet whose data flowset names a template
    // that was never announced — records counted as template-less and
    // dropped, never buffered.
    let mut v9 = Vec::new();
    v9.extend_from_slice(&9u16.to_be_bytes()); // version
    v9.extend_from_slice(&1u16.to_be_bytes()); // count
    v9.extend_from_slice(&0u32.to_be_bytes()); // sysuptime
    v9.extend_from_slice(&((now_ms / 1_000) as u32).to_be_bytes());
    v9.extend_from_slice(&1u32.to_be_bytes()); // sequence
    v9.extend_from_slice(&0u32.to_be_bytes()); // source id
    v9.extend_from_slice(&999u16.to_be_bytes()); // unknown template id
    v9.extend_from_slice(&12u16.to_be_bytes()); // flowset length
    v9.extend_from_slice(&[0xAB; 8]); // 8 opaque payload bytes
    sender
        .send_to(&v9, hostile_site.ingest_addr())
        .unwrap_or_else(|e| fail(format_args!("hostile send: {e}")));
    let wait_until = Instant::now() + Duration::from_secs(30);
    let site_body = loop {
        let (_, body) = ops_request(&site_stats_addr, "GET", "/stats", "")
            .unwrap_or_else(|e| fail(format_args!("site stats: {e}")));
        if stat_field(&body, "decode_errors").unwrap_or(0) > decode_errors_before
            && stat_field(&body, "records_no_template").unwrap_or(0) > no_template_before
        {
            break body;
        }
        if Instant::now() > wait_until {
            fail(format_args!(
                "hostile drops never surfaced in site stats:\n{body}"
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    // The site must still be healthy, and every datagram it received
    // must sit in exactly one counter.
    let (status, body) = ops_request(&site_stats_addr, "GET", "/health", "")
        .unwrap_or_else(|e| fail(format_args!("site health after hostility: {e}")));
    if status != 200 || !body.contains("ok true") {
        fail(format_args!("site unhealthy after hostile traffic: {body}"));
    }
    let datagrams = stat_field(&site_body, "datagrams").unwrap_or(0);
    let accounted = stat_field(&site_body, "packets").unwrap_or(0)
        + stat_field(&site_body, "decode_errors").unwrap_or(0)
        + stat_field(&site_body, "quota_packet_drops").unwrap_or(0);
    if datagrams != accounted {
        fail(format_args!(
            "datagram accounting identity broken: {datagrams} received, {accounted} accounted:\n{site_body}"
        ));
    }
    // Site knobs reload live (all-or-nothing grammar, like relays).
    let (status, body) = ops_request(&site_stats_addr, "POST", "/reload", "packet-rate=5000\n")
        .unwrap_or_else(|e| fail(format_args!("site reload: {e}")));
    if status != 200 {
        fail(format_args!("site reload returned {status}: {body}"));
    }
    let (_, body) = ops_request(&site_stats_addr, "GET", "/stats", "")
        .unwrap_or_else(|e| fail(format_args!("site stats after reload: {e}")));
    if stat_field(&body, "knob_packet_rate") != Some(5_000) {
        fail(format_args!("site reload did not apply: {body}"));
    }
    let (status, body) = ops_request(&site_stats_addr, "POST", "/reload", "bogus-knob=1\n")
        .unwrap_or_else(|e| fail(format_args!("site reload: {e}")));
    if status == 200 {
        fail(format_args!("unknown reload key was accepted: {body}"));
    }

    // Metrics phase: every node must serve a conformant Prometheus
    // exposition (fleetview::scrape validates as it parses), the
    // hot-path histograms must have observed the real work above —
    // export ship→ack RTT on a shipping relay, query latency on the
    // root — and the JSON view must agree with the plaintext one.
    let wait_until = Instant::now() + Duration::from_secs(30);
    let (nodes, rtt_count, query_count) = loop {
        let nodes = fleet.scrape().unwrap_or_else(|e| fail(e));
        let rtt: f64 = nodes
            .iter()
            .filter(|n| n.role == "relay")
            .map(|n| n.get("flowtree_export_rtt_seconds_count"))
            .sum();
        let query: f64 = nodes
            .iter()
            .filter(|n| n.role == "root")
            .map(|n| n.get("flowtree_query_seconds_count"))
            .sum();
        if rtt > 0.0 && query > 0.0 {
            break (nodes, rtt as u64, query as u64);
        }
        if Instant::now() > wait_until {
            fail(format_args!(
                "hot-path histograms never filled: export_rtt_count={rtt} query_count={query}"
            ));
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    let metrics_nodes = nodes.len();
    let check_roundtrip = |addr: &str, keys: &[&str]| {
        let (s1, text) = ops_request(addr, "GET", "/stats", "")
            .unwrap_or_else(|e| fail(format_args!("stats of {addr}: {e}")));
        let (s2, json) = ops_request(addr, "GET", "/stats.json", "")
            .unwrap_or_else(|e| fail(format_args!("stats.json of {addr}: {e}")));
        if s1 != 200 || s2 != 200 {
            fail(format_args!("stats endpoints of {addr} returned {s1}/{s2}"));
        }
        for key in keys {
            let plain = stat_field(&text, key);
            let js = json_field(&json, key);
            if plain.is_none() || plain != js {
                fail(format_args!(
                    "JSON and plaintext stats disagree on {key} at {addr}: \
                     {plain:?} vs {js:?}"
                ));
            }
        }
    };
    check_roundtrip(
        &root_stats_addr,
        &["rejected", "replayed", "stored_windows"],
    );
    check_roundtrip(
        &site_stats_addr,
        &[
            "datagrams",
            "summaries",
            "decode_errors",
            "lanes",
            "lane0_datagrams",
        ],
    );
    // Per-lane observability: every site must break its aggregate
    // datagram count down by ingest lane, and the lane family must
    // re-sum to the aggregate — in /stats (checked above via the
    // lane0_* keys) and in the Prometheus exposition.
    for n in nodes.iter().filter(|n| n.role == "site") {
        if n.get("flowtree_lanes") < 1.0 {
            fail(format_args!("site {} reports no ingest lanes", n.node));
        }
        let per_lane = n.get("flowtree_lane_datagrams_total");
        let total = n.get("flowtree_ingest_datagrams_total");
        if per_lane != total {
            fail(format_args!(
                "site {} lane datagrams do not re-sum: lanes={per_lane} total={total}",
                n.node
            ));
        }
    }
    let rows = flowrelay::fleetview::aggregate(&nodes);
    print!("{}", flowrelay::fleetview::render_table(&rows));

    let hostile_decode_errors = stat_field(&site_body, "decode_errors").unwrap_or(0);
    let hostile_no_template = stat_field(&site_body, "records_no_template").unwrap_or(0);
    let relays = fleet.relays.len();
    let sites = fleet.sites.len();
    fleet.drain(deadline);
    println!(
        "flowctl smoke: ok — relays={relays} sites={sites} records={sent} \
         root_frames={root_frames} stats_endpoints={endpoints} reload=applied \
         hostile=accounted decode_errors={hostile_decode_errors} \
         records_no_template={hostile_no_template} metrics_nodes={metrics_nodes} \
         export_rtt_count={rtt_count} query_count={query_count} {route} elapsed_ms={}",
        t0.elapsed().as_millis()
    );
}

/// Reads `key value` out of a plaintext stats body.
fn stat_field(body: &str, key: &str) -> Option<u64> {
    body.lines()
        .find_map(|l| l.strip_prefix(key).map(str::trim))
        .and_then(|v| v.parse().ok())
}

/// Reads an integer field out of the flat `/stats.json` object.
fn json_field(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
