//! TCP plumbing for relays: downstream frame ingest and a
//! line-oriented query protocol, both over [`flowdist::net`]'s
//! length-prefixed framing.
//!
//! ## Query protocol
//!
//! One request frame = one UTF-8 `flowquery` text query (`hhh 0.01 by
//! packets`, `pop src=… sites=1,2`, …). One response frame = a status
//! byte (`0` ok, `1` error) followed by UTF-8 text: on success a
//! `route: …` header line naming the tier that answered (and any
//! uncovered sites), then the rendered table; on error, the message.
//! The connection serves queries until the client closes it.

use crate::plan::{QueryRouter, Route};
use crate::relay::{FrameOutcome, Relay};
use crate::RelayError;
use flowdist::control::{is_control, ControlFrame, FEATURE_ACKS};
use flowdist::framing::FramedConn;
use flowdist::DistError;
use flowquery::ast::Query;
use flowtree_core::Metric;
use std::net::TcpStream;
use std::sync::Mutex;

fn io_err(e: std::io::Error) -> RelayError {
    RelayError::Dist(DistError::Io(e))
}

/// Reads length-prefixed summary frames from one downstream TCP
/// connection until EOF, applying each to the relay. Returns
/// `(applied, rejected)`; a malformed or violating frame is counted
/// and skipped, not fatal — one bad downstream cannot take the relay
/// down.
pub fn receive_frames(
    stream: &mut TcpStream,
    relay: &mut Relay,
) -> Result<(usize, usize), RelayError> {
    let (mut applied, mut rejected) = (0usize, 0usize);
    let owned = stream.try_clone().map_err(io_err)?;
    flowdist::framing::serve_framed(owned, |frame| {
        match relay.ingest_frame(&frame) {
            Ok(()) => applied += 1,
            Err(_) => rejected += 1,
        }
        None
    })
    .map_err(io_err)?;
    Ok((applied, rejected))
}

/// Serves one downstream connection with the acknowledged-ingest
/// protocol ([`flowdist::control`]): summary frames are classified by
/// [`Relay::ingest_classified`] and answered per frame — an ack for
/// applied or replayed content, a rebase-request for a delta whose
/// base this relay no longer holds. Control replies are only emitted
/// after the peer negotiates them with a hello (a legacy v1–v3 sender
/// never sees an unexpected frame on what it believes is a one-way
/// stream). Locks the relay per frame, never per connection.
///
/// Returns `(applied, rejected)` like [`receive_frames`]; replayed
/// frames count as applied (the peer converged, nothing was lost).
pub fn serve_acked_ingest(
    stream: &mut TcpStream,
    relay: &Mutex<Relay>,
) -> Result<(usize, usize), RelayError> {
    serve_acked_ingest_timed(stream, relay, None)
}

/// [`serve_acked_ingest`] with an optional tree-update latency
/// histogram: each summary frame's lock-classify-apply is timed (the
/// merge of one downstream frame into the windowed trees — the relay's
/// hot path). Control frames are not timed.
pub fn serve_acked_ingest_timed(
    stream: &mut TcpStream,
    relay: &Mutex<Relay>,
    update_hist: Option<&flowmetrics::Histogram>,
) -> Result<(usize, usize), RelayError> {
    let (mut applied, mut rejected) = (0usize, 0usize);
    let mut acks_negotiated = false;
    let owned = stream.try_clone().map_err(io_err)?;
    flowdist::framing::serve_framed(owned, |frame| {
        if is_control(&frame) {
            return match ControlFrame::decode(&frame) {
                Ok(ControlFrame::Hello { features }) => {
                    acks_negotiated = features & FEATURE_ACKS != 0;
                    Some(
                        ControlFrame::Hello {
                            features: FEATURE_ACKS,
                        }
                        .encode(),
                    )
                }
                // Acks and rebase-requests flow upstream→downstream;
                // a downstream sending them (or garbage control) is
                // counted and ignored, never fatal.
                Ok(_) | Err(_) => {
                    rejected += 1;
                    None
                }
            };
        }
        let sw = update_hist.map(|_| flowmetrics::Stopwatch::start());
        let outcome = relay.lock().expect("relay lock").ingest_classified(&frame);
        if let (Some(sw), Some(h)) = (sw, update_hist) {
            sw.observe(h);
        }
        match outcome {
            FrameOutcome::Applied(pos) | FrameOutcome::Replayed(pos) => {
                applied += 1;
                acks_negotiated.then(|| ControlFrame::Ack(pos).encode())
            }
            FrameOutcome::NeedsRebase(pos) => {
                rejected += 1;
                acks_negotiated.then(|| ControlFrame::RebaseRequest(pos).encode())
            }
            FrameOutcome::Rejected => {
                rejected += 1;
                None
            }
        }
    })
    .map_err(io_err)?;
    Ok((applied, rejected))
}

/// Ships summaries upstream as length-prefixed frames.
pub fn ship_summaries(
    stream: &mut TcpStream,
    summaries: &[flowdist::Summary],
) -> Result<(), RelayError> {
    for s in summaries {
        flowdist::net::send_summary(stream, &s.encode()).map_err(RelayError::Dist)?;
    }
    Ok(())
}

/// Serves text queries on one connection until the client closes it;
/// returns how many were answered (including errors).
pub fn serve_queries(
    stream: &mut TcpStream,
    router: &QueryRouter<'_>,
) -> Result<usize, RelayError> {
    let owned = stream.try_clone().map_err(io_err)?;
    flowdist::framing::serve_framed(owned, |frame| Some(answer(router, &frame))).map_err(io_err)
}

/// One request frame → one response frame (status byte + text). The
/// one-shot building block of [`serve_queries`], public so a daemon
/// can scope its relay lock to a single request instead of holding it
/// for a connection's lifetime (an idle client must not stall ingest
/// or the export scheduler).
pub fn answer_query(router: &QueryRouter<'_>, frame: &[u8]) -> Vec<u8> {
    answer(router, frame)
}

fn answer(router: &QueryRouter<'_>, frame: &[u8]) -> Vec<u8> {
    let fail = |msg: String| {
        let mut out = vec![1u8];
        out.extend_from_slice(msg.as_bytes());
        out
    };
    let Ok(text) = std::str::from_utf8(frame) else {
        return fail("query is not utf-8".into());
    };
    // Relative ranges (`last=1h`) anchor to the newest representable
    // instant: a relay has no wall clock of its own in tests.
    let query = match flowquery::parse(text, u64::MAX - 1) {
        Ok(q) => q,
        Err(e) => return fail(e.to_string()),
    };
    let routed = router.run(&query);
    let mut body = format!("route: {}\n", describe_route(router, &routed.route));
    if !routed.missing.is_empty() {
        body.push_str(&format!("missing: {:?}\n", routed.missing));
    }
    for gap in &routed.missing_windows {
        body.push_str(&format!(
            "missing in window {}ms: {:?}\n",
            gap.window_start_ms, gap.missing
        ));
    }
    body.push_str(&routed.output.render(query_metric(&query)));
    let mut out = vec![0u8];
    out.extend_from_slice(body.as_bytes());
    out
}

/// Sends one text query over an established connection and returns the
/// decoded response: `Ok(body)` on status 0, `Err(message)` on status 1.
pub fn query_remote(
    stream: &mut TcpStream,
    text: &str,
) -> Result<Result<String, String>, RelayError> {
    let mut conn = FramedConn::new(stream.try_clone().map_err(io_err)?).map_err(io_err)?;
    conn.send(text.as_bytes()).map_err(io_err)?;
    let frame = conn
        .recv()
        .map_err(io_err)?
        .ok_or(RelayError::Dist(DistError::BadFrame("connection closed")))?;
    if frame.is_empty() {
        return Err(RelayError::Dist(DistError::BadFrame("empty response")));
    }
    let body = String::from_utf8_lossy(&frame[1..]).into_owned();
    Ok(match frame[0] {
        0 => Ok(body),
        _ => Err(body),
    })
}

fn describe_route(router: &QueryRouter<'_>, route: &Route) -> String {
    let name = |i: &usize| router.relay_name(*i).to_string();
    match route {
        Route::Relay {
            relay,
            via_aggregates,
        } => format!(
            "{}[{}]",
            name(relay),
            if *via_aggregates {
                "aggregated"
            } else {
                "per-site"
            }
        ),
        Route::FanOut { relays } => format!(
            "fan-out({})",
            relays.iter().map(name).collect::<Vec<_>>().join(",")
        ),
        Route::BySite { relays } => format!(
            "bysite({})",
            relays.iter().map(name).collect::<Vec<_>>().join(",")
        ),
    }
}

/// The metric a query ranks by (packets when it does not say).
fn query_metric(q: &Query) -> Metric {
    match q {
        Query::TopK { metric, .. } | Query::Hhh { metric, .. } => *metric,
        _ => Metric::Packets,
    }
}
