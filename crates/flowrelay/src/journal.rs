//! Crash-safe relay persistence: snapshot + write-ahead log.
//!
//! A journaled relay ([`Relay::open_journaled`]) appends every
//! state-mutating operation to a WAL **after** it applied (and, on the
//! acked ingest path, before the ack goes out — so a crash between
//! apply and append means the sender never saw an ack, resends, and
//! the replay deduplicates). A restart replays the log through the
//! same entry points, deterministically reconstructing the epoch
//! chains, export positions, and working set instead of re-merging
//! from scratch — the other half of the durability story next to the
//! spill queue ([`flowdist::spill`]).
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/CURRENT            the live generation number (tmp+rename)
//! <dir>/snap-<gen>/        SummaryStore of reconstructed slot frames
//! <dir>/snap-<gen>.state   relay-side state (CRC-framed record)
//! <dir>/wal-<gen>.log      CRC-framed operation records
//! ```
//!
//! Records share the spill queue's `[u32 LE len][u32 LE crc][payload]`
//! framing; a torn tail (crash mid-append) stops replay at the last
//! intact record and is truncated. Compaction writes the **next**
//! generation completely, flips `CURRENT`, then deletes the old one —
//! a crash at any point leaves exactly one consistent generation
//! reachable (the stale one's files are swept on the next compact).
//!
//! Pinned delta bases are deliberately **not** persisted: after a
//! restart the first change of an affected window re-exports one full
//! rebasing frame and the chain continues — paying a frame of wire
//! bytes instead of snapshotting a tree per window.

use crate::relay::{Relay, RelayLedger, RelayState};
use crate::RelayError;
use flowdist::spill::crc32;
use flowdist::{DistError, EpochHeader, FsyncPolicy, Summary, SummaryKind, SummaryStore, WindowId};
use flowkey::pack::{read_varint, write_varint};
use std::fs::{self, File, OpenOptions};
use std::io::{ErrorKind, Read, Write};
use std::path::{Path, PathBuf};

/// Journal tuning.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// Compact (snapshot + fresh WAL) once the WAL exceeds this many
    /// bytes. 0 = never auto-compact.
    pub compact_wal_bytes: u64,
    /// Fsync policy for WAL appends and snapshot writes. The default
    /// ([`FsyncPolicy::Never`]) survives `kill -9`; `Always` also
    /// survives power loss.
    pub fsync: FsyncPolicy,
}

impl Default for JournalConfig {
    fn default() -> JournalConfig {
        JournalConfig {
            compact_wal_bytes: 64 << 20,
            fsync: FsyncPolicy::Never,
        }
    }
}

/// What recovery found on disk.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// The generation recovered from (`CURRENT`).
    pub generation: u64,
    /// Slot frames restored from the snapshot store.
    pub snapshot_slots: usize,
    /// WAL records replayed.
    pub wal_records: u64,
    /// Torn/corrupt trailing WAL bytes truncated.
    pub torn_bytes: u64,
}

/// One WAL operation record (borrowing the caller's data — records
/// are encoded and written in place, never stored).
pub(crate) enum Record<'a> {
    /// A downstream frame that applied, verbatim.
    Frame(&'a [u8]),
    /// One drain's exported window starts, in export order.
    ExportBatch(&'a [u64]),
    /// [`Relay::mark_unshipped`].
    MarkUnshipped(u64),
    /// [`Relay::evict_windows_before`].
    Evict(u64),
    /// [`Relay::note_shipped`].
    Shipped {
        /// Window start (ms).
        start: u64,
        /// Acknowledged epoch.
        epoch: u64,
    },
    /// [`Relay::drop_export_bases`].
    DropBases,
}

const REC_FRAME: u8 = 1;
const REC_EXPORT_BATCH: u8 = 3;
const REC_MARK_UNSHIPPED: u8 = 4;
const REC_EVICT: u8 = 5;
const REC_SHIPPED: u8 = 6;
const REC_DROP_BASES: u8 = 7;

const FRAME_HEADER: usize = 8;

/// The append half of an attached journal (owned by the relay).
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    generation: u64,
    file: File,
    wal_bytes: u64,
    cfg: JournalConfig,
    error: Option<String>,
}

impl JournalWriter {
    pub(crate) fn append(&mut self, rec: Record<'_>) {
        if self.error.is_some() {
            return;
        }
        let mut payload = Vec::new();
        match rec {
            Record::Frame(bytes) => {
                payload.push(REC_FRAME);
                payload.extend_from_slice(bytes);
            }
            Record::ExportBatch(starts) => {
                payload.push(REC_EXPORT_BATCH);
                write_varint(&mut payload, starts.len() as u64);
                for &s in starts {
                    write_varint(&mut payload, s);
                }
            }
            Record::MarkUnshipped(start) => {
                payload.push(REC_MARK_UNSHIPPED);
                write_varint(&mut payload, start);
            }
            Record::Evict(cutoff) => {
                payload.push(REC_EVICT);
                write_varint(&mut payload, cutoff);
            }
            Record::Shipped { start, epoch } => {
                payload.push(REC_SHIPPED);
                write_varint(&mut payload, start);
                write_varint(&mut payload, epoch);
            }
            Record::DropBases => payload.push(REC_DROP_BASES),
        }
        if let Err(e) = write_record(&mut self.file, &payload, self.cfg.fsync) {
            self.error = Some(format!("wal append: {e}"));
            return;
        }
        self.wal_bytes += (FRAME_HEADER + payload.len()) as u64;
    }

    pub(crate) fn wants_compact(&self) -> bool {
        self.error.is_none()
            && self.cfg.compact_wal_bytes > 0
            && self.wal_bytes > self.cfg.compact_wal_bytes
    }

    pub(crate) fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }
}

fn write_record(file: &mut File, payload: &[u8], fsync: FsyncPolicy) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    file.write_all(&buf)?;
    if fsync == FsyncPolicy::Always {
        file.sync_all()?;
    }
    Ok(())
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation}.log"))
}

fn snap_dir(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation}"))
}

fn state_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snap-{generation}.state"))
}

fn read_current(dir: &Path) -> Result<u64, DistError> {
    match fs::read_to_string(dir.join("CURRENT")) {
        Ok(text) => Ok(text.trim().parse::<u64>().unwrap_or(0)),
        Err(e) if e.kind() == ErrorKind::NotFound => Ok(0),
        Err(e) => Err(DistError::Io(e)),
    }
}

fn write_current(dir: &Path, generation: u64, fsync: FsyncPolicy) -> std::io::Result<()> {
    let tmp = dir.join("CURRENT.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(format!("{generation}\n").as_bytes())?;
    if fsync == FsyncPolicy::Always {
        f.sync_all()?;
    }
    drop(f);
    fs::rename(tmp, dir.join("CURRENT"))
}

impl Relay {
    /// Opens (or resumes) a journaled relay rooted at `dir`: restores
    /// the latest snapshot, replays the WAL through the normal entry
    /// points, and attaches the writer so every further mutation is
    /// logged. The returned relay holds exactly the epoch chains,
    /// export positions, and stored windows it held when the previous
    /// process died.
    pub fn open_journaled(
        cfg: crate::RelayConfig,
        dir: &Path,
        jcfg: JournalConfig,
    ) -> Result<(Relay, RecoveryReport), RelayError> {
        fs::create_dir_all(dir).map_err(|e| RelayError::Dist(DistError::Io(e)))?;
        let generation = read_current(dir)?;
        let tree_cfg = cfg.tree;
        let mut relay = Relay::new(cfg);
        let mut report = RecoveryReport {
            generation,
            ..RecoveryReport::default()
        };

        // Snapshot: slot frames into the collector, relay state on top.
        let spath = state_path(dir, generation);
        if spath.exists() {
            let state = read_state_file(&spath)?;
            let store = SummaryStore::open(snap_dir(dir, generation))?;
            for (site, start) in store.list()? {
                let summary = store.get(site, start, tree_cfg)?;
                relay
                    .collector_mut()
                    .apply_bytes(&summary.encode())
                    .map_err(RelayError::Dist)?;
                report.snapshot_slots += 1;
            }
            relay.restore_state(state);
        }

        // WAL: replay the intact prefix, truncate anything torn.
        let wpath = wal_path(dir, generation);
        if wpath.exists() {
            let mut data = Vec::new();
            File::open(&wpath)
                .and_then(|mut f| f.read_to_end(&mut data))
                .map_err(|e| RelayError::Dist(DistError::Io(e)))?;
            let good = replay_wal(&mut relay, &data, &mut report);
            if good < data.len() {
                report.torn_bytes = (data.len() - good) as u64;
                let f = OpenOptions::new()
                    .write(true)
                    .open(&wpath)
                    .map_err(|e| RelayError::Dist(DistError::Io(e)))?;
                f.set_len(good as u64)
                    .map_err(|e| RelayError::Dist(DistError::Io(e)))?;
            }
        }

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wpath)
            .map_err(|e| RelayError::Dist(DistError::Io(e)))?;
        let wal_bytes = file
            .metadata()
            .map_err(|e| RelayError::Dist(DistError::Io(e)))?
            .len();
        *relay.journal_mut() = Some(JournalWriter {
            dir: dir.to_path_buf(),
            generation,
            file,
            wal_bytes,
            cfg: jcfg,
            error: None,
        });
        Ok((relay, report))
    }
}

/// Replays every intact WAL record; returns the byte length of the
/// intact prefix.
fn replay_wal(relay: &mut Relay, data: &[u8], report: &mut RecoveryReport) -> usize {
    let mut pos = 0usize;
    while data.len() - pos >= FRAME_HEADER {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        let Some(end) = pos.checked_add(FRAME_HEADER + len) else {
            break;
        };
        if end > data.len() {
            break;
        }
        let payload = &data[pos + FRAME_HEADER..end];
        if crc32(payload) != crc || payload.is_empty() {
            break;
        }
        if !replay_record(relay, payload) {
            break;
        }
        report.wal_records += 1;
        pos = end;
    }
    pos
}

/// Applies one decoded WAL record through the relay's normal entry
/// points (the journal is not yet attached, so nothing re-logs).
/// Returns false on a structurally invalid record — treated like a
/// torn tail.
fn replay_record(relay: &mut Relay, payload: &[u8]) -> bool {
    let body = &payload[1..];
    let mut pos = 0usize;
    let mut next = |body: &[u8]| -> Option<u64> {
        let (v, n) = read_varint(&body[pos..]).ok()?;
        pos += n;
        Some(v)
    };
    match payload[0] {
        REC_FRAME => {
            // Applied once before the crash; outcome is deterministic.
            let _ = relay.ingest_frame(body);
            true
        }
        REC_EXPORT_BATCH => {
            let Some(count) = next(body) else {
                return false;
            };
            let mut starts = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let Some(s) = next(body) else {
                    return false;
                };
                starts.push(s);
            }
            relay.replay_export_batch(&starts);
            true
        }
        REC_MARK_UNSHIPPED => match next(body) {
            Some(start) => {
                relay.mark_unshipped(start);
                true
            }
            None => false,
        },
        REC_EVICT => match next(body) {
            Some(cutoff) => {
                relay.evict_windows_before(cutoff);
                true
            }
            None => false,
        },
        REC_SHIPPED => match (next(body), next(body)) {
            (Some(start), Some(epoch)) => {
                relay.note_shipped(start, epoch);
                true
            }
            _ => false,
        },
        REC_DROP_BASES => {
            relay.drop_export_bases();
            true
        }
        _ => false,
    }
}

/// Compacts the attached journal: writes the next generation's
/// snapshot (slot frames + relay state), flips `CURRENT`, starts a
/// fresh WAL, and sweeps the previous generation. On error the
/// journal is marked broken (the relay keeps serving; crash-safety is
/// void until an operator intervenes).
pub(crate) fn compact(relay: &mut Relay) {
    let Some(writer) = relay.journal_mut().take() else {
        return;
    };
    let dir = writer.dir.clone();
    let cfg = writer.cfg;
    let old_gen = writer.generation;
    let next_gen = old_gen + 1;
    drop(writer);

    match write_snapshot(relay, &dir, next_gen, &cfg) {
        Ok(file) => {
            // Sweep the previous generation — `CURRENT` already points
            // past it, so a crash mid-sweep just leaves garbage the
            // next compact removes.
            let _ = fs::remove_file(wal_path(&dir, old_gen));
            let _ = fs::remove_file(state_path(&dir, old_gen));
            let _ = fs::remove_dir_all(snap_dir(&dir, old_gen));
            *relay.journal_mut() = Some(JournalWriter {
                dir,
                generation: next_gen,
                file,
                wal_bytes: 0,
                cfg,
                error: None,
            });
        }
        Err(e) => {
            // Reattach a broken writer so journal_error() surfaces it.
            if let Ok(file) = OpenOptions::new()
                .create(true)
                .append(true)
                .open(wal_path(&dir, old_gen))
            {
                *relay.journal_mut() = Some(JournalWriter {
                    dir,
                    generation: old_gen,
                    file,
                    wal_bytes: 0,
                    cfg,
                    error: Some(format!("compaction: {e}")),
                });
            }
        }
    }
}

/// Writes generation `gen`'s complete snapshot and fresh WAL, then
/// flips `CURRENT`. Returns the new WAL's append handle.
fn write_snapshot(
    relay: &Relay,
    dir: &Path,
    generation: u64,
    cfg: &JournalConfig,
) -> Result<File, DistError> {
    // A leftover half-written snapshot of this generation (crashed
    // compact) is overwritten from scratch.
    let sdir = snap_dir(dir, generation);
    let _ = fs::remove_dir_all(&sdir);
    let store = SummaryStore::open(&sdir)?;
    let span = relay.span_ms();
    for (start, site) in relay.collector().window_keys() {
        let Some(span) = span else { break };
        store.put(&reconstruct_slot(relay, start, site, span))?;
    }
    let state = relay.snapshot_state();
    write_state_file(&state_path(dir, generation), &state, cfg.fsync).map_err(DistError::Io)?;
    // Fresh WAL before the flip: once CURRENT points here, every file
    // of the generation exists.
    let wpath = wal_path(dir, generation);
    let _ = fs::remove_file(&wpath);
    let file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&wpath)
        .map_err(DistError::Io)?;
    write_current(dir, generation, cfg.fsync).map_err(DistError::Io)?;
    Ok(file)
}

/// Rebuilds the frame that restores one stored slot exactly: its
/// current tree, epoch, seq, and provenance, as a `Full` frame of the
/// version matching how it was stored (v3 when epoch-advanced, v2
/// when provenance-carrying, v1 otherwise).
fn reconstruct_slot(relay: &Relay, start: u64, site: u16, span: u64) -> Summary {
    let c = relay.collector();
    let epoch = c.window_epoch(start, site);
    Summary {
        site,
        window: WindowId {
            start_ms: start,
            span_ms: span,
        },
        seq: c.window_seq(start, site),
        kind: SummaryKind::Full,
        provenance: c.window_provenance(start, site).map(|p| p.to_vec()),
        epoch: (epoch > 0).then_some(EpochHeader { epoch, base: None }),
        tree: c.window_tree(start, site).expect("listed slot").clone(),
    }
}

const STATE_VERSION: u8 = 1;

fn write_state_file(path: &Path, state: &RelayState, fsync: FsyncPolicy) -> std::io::Result<()> {
    let mut payload = vec![STATE_VERSION];
    match state.span_ms {
        Some(span) => {
            payload.push(1);
            write_varint(&mut payload, span);
        }
        None => payload.push(0),
    }
    write_varint(&mut payload, state.seq);
    write_varint(&mut payload, state.provenance.len() as u64);
    for (key, sites) in &state.provenance {
        payload.extend_from_slice(&key.to_be_bytes());
        write_varint(&mut payload, sites.len() as u64);
        for s in sites {
            payload.extend_from_slice(&s.to_be_bytes());
        }
    }
    write_varint(&mut payload, state.windows.len() as u64);
    for &(start, content, exported, shipped) in &state.windows {
        write_varint(&mut payload, start);
        write_varint(&mut payload, content);
        write_varint(&mut payload, exported);
        write_varint(&mut payload, shipped);
    }
    write_varint(&mut payload, state.evicted.len() as u64);
    for &(start, epoch) in &state.evicted {
        write_varint(&mut payload, start);
        write_varint(&mut payload, epoch);
    }
    write_varint(&mut payload, state.positions.len() as u64);
    for &(site, start, seq) in &state.positions {
        payload.extend_from_slice(&site.to_be_bytes());
        write_varint(&mut payload, start);
        write_varint(&mut payload, seq);
    }
    let counters = ledger_counters(&state.ledger);
    write_varint(&mut payload, counters.len() as u64);
    for c in counters {
        write_varint(&mut payload, c);
    }

    let tmp = path.with_extension("state.tmp");
    let mut f = File::create(&tmp)?;
    write_record(&mut f, &payload, fsync)?;
    drop(f);
    fs::rename(tmp, path)
}

fn read_state_file(path: &Path) -> Result<RelayState, RelayError> {
    let mut data = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut data))
        .map_err(|e| RelayError::Dist(DistError::Io(e)))?;
    let bad = || RelayError::Dist(DistError::BadFrame("corrupt journal state file"));
    if data.len() < FRAME_HEADER {
        return Err(bad());
    }
    let len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if FRAME_HEADER + len != data.len() || crc32(&data[FRAME_HEADER..]) != crc {
        return Err(bad());
    }
    let payload = &data[FRAME_HEADER..];
    if payload.first() != Some(&STATE_VERSION) {
        return Err(bad());
    }
    let mut pos = 1usize;
    let next = |payload: &[u8], pos: &mut usize| -> Result<u64, RelayError> {
        let (v, n) = read_varint(&payload[*pos..]).map_err(|_| bad())?;
        *pos += n;
        Ok(v)
    };
    let next_u16 = |payload: &[u8], pos: &mut usize| -> Result<u16, RelayError> {
        if *pos + 2 > payload.len() {
            return Err(bad());
        }
        let v = u16::from_be_bytes([payload[*pos], payload[*pos + 1]]);
        *pos += 2;
        Ok(v)
    };
    let span_ms = match payload.get(pos) {
        Some(0) => {
            pos += 1;
            None
        }
        Some(1) => {
            pos += 1;
            Some(next(payload, &mut pos)?)
        }
        _ => return Err(bad()),
    };
    let seq = next(payload, &mut pos)?;
    let mut provenance = Vec::new();
    for _ in 0..next(payload, &mut pos)? {
        let key = next_u16(payload, &mut pos)?;
        let n = next(payload, &mut pos)?;
        let mut sites = Vec::with_capacity(n as usize);
        for _ in 0..n {
            sites.push(next_u16(payload, &mut pos)?);
        }
        provenance.push((key, sites));
    }
    let mut windows = Vec::new();
    for _ in 0..next(payload, &mut pos)? {
        windows.push((
            next(payload, &mut pos)?,
            next(payload, &mut pos)?,
            next(payload, &mut pos)?,
            next(payload, &mut pos)?,
        ));
    }
    let mut evicted = Vec::new();
    for _ in 0..next(payload, &mut pos)? {
        evicted.push((next(payload, &mut pos)?, next(payload, &mut pos)?));
    }
    let mut positions = Vec::new();
    for _ in 0..next(payload, &mut pos)? {
        let site = next_u16(payload, &mut pos)?;
        positions.push((site, next(payload, &mut pos)?, next(payload, &mut pos)?));
    }
    let n = next(payload, &mut pos)? as usize;
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        counters.push(next(payload, &mut pos)?);
    }
    let ledger = ledger_from_counters(&counters).ok_or_else(bad)?;
    if pos != payload.len() {
        return Err(bad());
    }
    Ok(RelayState {
        span_ms,
        seq,
        provenance,
        windows,
        evicted,
        positions,
        ledger,
    })
}

fn ledger_counters(l: &RelayLedger) -> Vec<u64> {
    vec![
        l.frames,
        l.site_frames,
        l.agg_frames,
        l.rejected,
        l.exported,
        l.exported_bytes,
        l.full_exports,
        l.full_export_bytes,
        l.delta_exports,
        l.delta_export_bytes,
        l.delta_fallbacks,
        l.base_losses,
        l.late_downstream,
        l.replayed,
        l.rebase_requests,
        l.rebase_rewinds,
        l.reconnect_attempts,
        l.reconnect_failures,
        l.backoff_ms_total,
        l.spill_sheds,
        l.spill_shed_bytes,
    ]
}

fn ledger_from_counters(c: &[u64]) -> Option<RelayLedger> {
    // 19 counters = a snapshot from before the spill-shed ledger
    // fields existed; those recover as zero.
    if c.len() != 19 && c.len() != 21 {
        return None;
    }
    Some(RelayLedger {
        frames: c[0],
        site_frames: c[1],
        agg_frames: c[2],
        rejected: c[3],
        exported: c[4],
        exported_bytes: c[5],
        full_exports: c[6],
        full_export_bytes: c[7],
        delta_exports: c[8],
        delta_export_bytes: c[9],
        delta_fallbacks: c[10],
        base_losses: c[11],
        late_downstream: c[12],
        replayed: c[13],
        rebase_requests: c[14],
        rebase_rewinds: c[15],
        reconnect_attempts: c[16],
        reconnect_failures: c[17],
        backoff_ms_total: c[18],
        spill_sheds: c.get(19).copied().unwrap_or(0),
        spill_shed_bytes: c.get(20).copied().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay::{FrameOutcome, RelayConfig};
    use flowdist::{Summary, SummaryKind, WindowId};
    use flowkey::{FlowKey, Schema};
    use flowtree_core::{Config, FlowTree, Popularity};

    const SPAN: u64 = 1_000;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flowrelay-journal-{tag}-{}",
            std::process::id() as u64
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg() -> RelayConfig {
        RelayConfig {
            name: "j".into(),
            agg_site: 100,
            expected: vec![0, 1],
            schema: Schema::five_feature(),
            tree: Config::with_budget(100_000),
            export: Default::default(),
        }
    }

    fn site_summary(site: u16, window: u64, hosts: std::ops::Range<u8>, seq: u64) -> Summary {
        let schema = Schema::five_feature();
        let mut tree = FlowTree::new(schema, Config::with_budget(4_096));
        for h in hosts {
            let key: FlowKey =
                format!("src=10.{site}.0.{h}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp")
                    .parse()
                    .unwrap();
            tree.insert(&key, Popularity::new(1 + h as i64, 100, 1));
        }
        Summary {
            site,
            window: WindowId {
                start_ms: window * SPAN,
                span_ms: SPAN,
            },
            seq,
            kind: SummaryKind::Full,
            provenance: None,
            epoch: None,
            tree,
        }
    }

    /// The journaled relay and a never-journaled twin fed the same
    /// operations must be indistinguishable after a crash+reopen.
    #[test]
    fn reopened_relay_resumes_exactly_where_it_died() {
        let dir = tmpdir("resume");
        let (mut r, report) = Relay::open_journaled(cfg(), &dir, JournalConfig::default()).unwrap();
        assert_eq!(report.snapshot_slots, 0);
        let mut twin = Relay::new(cfg());
        for w in 0..2u64 {
            for s in 0..2u16 {
                let bytes = site_summary(s, w, 0..3, 1).encode();
                assert!(matches!(
                    r.ingest_classified(&bytes),
                    FrameOutcome::Applied(_)
                ));
                assert!(matches!(
                    twin.ingest_classified(&bytes),
                    FrameOutcome::Applied(_)
                ));
            }
        }
        // Export window 0, then late content arrives for it.
        let shipped: Vec<_> = r.flush_exports().iter().map(Summary::encode).collect();
        let twin_shipped: Vec<_> = twin.flush_exports().iter().map(Summary::encode).collect();
        assert_eq!(shipped, twin_shipped);
        let late = site_summary(0, 0, 0..5, 2).encode();
        assert!(matches!(
            r.ingest_classified(&late),
            FrameOutcome::Applied(_)
        ));
        assert!(matches!(
            twin.ingest_classified(&late),
            FrameOutcome::Applied(_)
        ));
        drop(r); // kill: everything after this lives only in the journal

        let (mut r2, report) =
            Relay::open_journaled(cfg(), &dir, JournalConfig::default()).unwrap();
        assert!(report.wal_records > 0, "the WAL replayed the history");
        for w in 0..2u64 {
            for s in 0..2u16 {
                assert_eq!(
                    r2.collector().window_epoch(w * SPAN, s),
                    twin.collector().window_epoch(w * SPAN, s),
                    "window {w} site {s} epoch chain must survive the crash"
                );
            }
        }
        assert_eq!(
            r2.merged_view(None, 0, 2 * SPAN).encode(),
            twin.merged_view(None, 0, 2 * SPAN).encode()
        );
        // Export positions replayed too: both ships produce identical
        // remaining frames (the late delta), byte for byte.
        let rest: Vec<_> = r2.flush_exports().iter().map(Summary::encode).collect();
        let twin_rest: Vec<_> = twin.flush_exports().iter().map(Summary::encode).collect();
        assert_eq!(rest, twin_rest);
        assert!(!rest.is_empty());
    }

    /// A half-written trailing WAL record (torn by the crash) is
    /// truncated; everything before it survives.
    #[test]
    fn torn_wal_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        let (mut r, _) = Relay::open_journaled(cfg(), &dir, JournalConfig::default()).unwrap();
        let bytes = site_summary(0, 0, 0..3, 1).encode();
        assert!(matches!(
            r.ingest_classified(&bytes),
            FrameOutcome::Applied(_)
        ));
        drop(r);
        // Simulate a record torn mid-write.
        use std::io::Write as _;
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(wal_path(&dir, 0))
            .unwrap();
        f.write_all(&[0x55; 11]).unwrap();
        drop(f);
        let (r2, report) = Relay::open_journaled(cfg(), &dir, JournalConfig::default()).unwrap();
        assert_eq!(report.torn_bytes, 11);
        assert_eq!(report.wal_records, 1);
        // The intact record survived: the frame's content is stored
        // (a pre-epoch frame tracks a seq, not an epoch).
        assert_eq!(r2.collector().window_seq(0, 0), 1);
        assert!(r2.collector().window_tree(0, 0).is_some());
    }

    /// A tiny WAL bound forces compaction (snapshot + generation
    /// flip); the compacted state reopens identically.
    #[test]
    fn compaction_flips_generations_and_preserves_state() {
        let dir = tmpdir("compact");
        let jcfg = JournalConfig {
            compact_wal_bytes: 1,
            ..JournalConfig::default()
        };
        let (mut r, _) = Relay::open_journaled(cfg(), &dir, jcfg).unwrap();
        let mut twin = Relay::new(cfg());
        for w in 0..3u64 {
            for s in 0..2u16 {
                let bytes = site_summary(s, w, 0..3, 1).encode();
                let _ = r.ingest_classified(&bytes);
                let _ = twin.ingest_classified(&bytes);
            }
        }
        assert!(r.journal_error().is_none());
        drop(r);
        assert!(
            read_current(&dir).unwrap() > 0,
            "the WAL bound must have forced at least one compaction"
        );
        let (r2, report) = Relay::open_journaled(cfg(), &dir, jcfg).unwrap();
        assert!(report.generation > 0);
        assert!(
            report.snapshot_slots > 0,
            "state restored from the snapshot"
        );
        assert_eq!(
            r2.merged_view(None, 0, 3 * SPAN).encode(),
            twin.merged_view(None, 0, 3 * SPAN).encode()
        );
        for w in 0..3u64 {
            for s in 0..2u16 {
                assert_eq!(
                    r2.collector().window_epoch(w * SPAN, s),
                    twin.collector().window_epoch(w * SPAN, s)
                );
            }
        }
    }

    /// Journaled export batches replay their state transitions without
    /// re-shipping: a reopened relay with no new content has nothing
    /// to flush.
    #[test]
    fn replayed_export_batches_do_not_re_ship() {
        let dir = tmpdir("noreship");
        let (mut r, _) = Relay::open_journaled(cfg(), &dir, JournalConfig::default()).unwrap();
        for s in 0..2u16 {
            let _ = r.ingest_classified(&site_summary(s, 0, 0..3, 1).encode());
        }
        let first = r.flush_exports();
        assert_eq!(first.len(), 1);
        let epoch = first[0].epoch.unwrap().epoch;
        r.note_shipped(0, epoch);
        drop(r);
        let (mut r2, _) = Relay::open_journaled(cfg(), &dir, JournalConfig::default()).unwrap();
        assert!(
            r2.flush_exports().is_empty(),
            "replay must restore exported positions, not reset them"
        );
        // The ack survived too: nothing rewinds.
        assert_eq!(r2.rewind_unacked_exports(), 0);
    }

    /// Retention eviction is journaled: a reopened relay does not
    /// resurrect evicted windows, and the epoch chain still advances
    /// past them if content re-arrives.
    #[test]
    fn evictions_survive_reopen() {
        let dir = tmpdir("evict");
        let (mut r, _) = Relay::open_journaled(cfg(), &dir, JournalConfig::default()).unwrap();
        for w in 0..2u64 {
            let _ = r.ingest_classified(&site_summary(0, w, 0..3, 1).encode());
        }
        let _ = r.flush_exports();
        assert_eq!(r.evict_windows_before(SPAN), 1);
        drop(r);
        let (mut r2, _) = Relay::open_journaled(cfg(), &dir, JournalConfig::default()).unwrap();
        assert!(r2.collector().window_coverage(0).is_empty());
        assert!(!r2.collector().window_coverage(SPAN).is_empty());
        // Re-arrived content resumes the evicted chain strictly past
        // what was exported before eviction (replay rejects stale).
        let _ = r2.ingest_classified(&site_summary(0, 0, 0..4, 2).encode());
        let frames = r2.flush_exports();
        if let Some(f) = frames.iter().find(|f| f.window.start_ms == 0) {
            assert!(f.epoch.unwrap().epoch > 1);
        }
    }
}
