//! Declarative relay topologies.
//!
//! A topology is a list of [`RelaySpec`]s forming a tree: every relay
//! names its parent (one root has none) and the real sites that feed
//! it directly. Validation guarantees the properties the planner and
//! the provenance checks rely on: one root, acyclic parent links,
//! every site owned by exactly one relay, and aggregate-export ids
//! disjoint from site ids.

use std::collections::{BTreeMap, BTreeSet};

/// One relay in a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelaySpec {
    /// Unique relay name (`"root"`, `"emea"`, …).
    pub name: String,
    /// Parent relay name; `None` for the root.
    pub parent: Option<String>,
    /// The id this relay's upstream aggregates are exported under.
    /// Must not collide with any real site id or other relay's id.
    pub agg_site: u16,
    /// Real sites feeding this relay directly (tier-1 membership).
    pub sites: Vec<u16>,
}

/// Why a topology failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No relays at all.
    Empty,
    /// Two relays share a name.
    DuplicateName(String),
    /// A relay names a parent that does not exist.
    UnknownParent(String),
    /// Not exactly one parentless relay.
    RootCount(usize),
    /// A parent chain loops.
    Cycle(String),
    /// A site is owned by more than one relay.
    DuplicateSite(u16),
    /// An aggregate id collides with a site id or another aggregate id.
    AggIdCollision(u16),
    /// A relay's coverage exceeds what one provenance header can carry
    /// ([`flowdist::summary::MAX_PROVENANCE`]); such a relay's exports
    /// would be rejected wholesale upstream. The wire format caps an
    /// exporting subtree at that many real sites.
    CoverageTooLarge {
        /// The oversized relay.
        relay: String,
        /// Its coverage size.
        sites: usize,
    },
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TopologyError::Empty => f.write_str("empty topology"),
            TopologyError::DuplicateName(n) => write!(f, "duplicate relay name {n}"),
            TopologyError::UnknownParent(n) => write!(f, "unknown parent {n}"),
            TopologyError::RootCount(n) => write!(f, "{n} roots (need exactly 1)"),
            TopologyError::Cycle(n) => write!(f, "parent cycle through {n}"),
            TopologyError::DuplicateSite(s) => write!(f, "site {s} owned twice"),
            TopologyError::AggIdCollision(s) => write!(f, "aggregate id {s} collides"),
            TopologyError::CoverageTooLarge { relay, sites } => write!(
                f,
                "relay {relay} covers {sites} sites (> {} per provenance header)",
                flowdist::summary::MAX_PROVENANCE
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A validated-on-demand relay tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayTopology {
    /// The relays; indices into this vector are the ids used by
    /// [`RelayTopology::children_of`] and friends.
    pub relays: Vec<RelaySpec>,
}

impl RelayTopology {
    /// Checks every structural invariant; returns the topology for
    /// chaining.
    pub fn validate(&self) -> Result<&RelayTopology, TopologyError> {
        if self.relays.is_empty() {
            return Err(TopologyError::Empty);
        }
        let mut by_name: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, r) in self.relays.iter().enumerate() {
            if by_name.insert(&r.name, i).is_some() {
                return Err(TopologyError::DuplicateName(r.name.clone()));
            }
        }
        let mut roots = 0usize;
        for r in &self.relays {
            match &r.parent {
                None => roots += 1,
                Some(p) => {
                    if !by_name.contains_key(p.as_str()) {
                        return Err(TopologyError::UnknownParent(p.clone()));
                    }
                }
            }
        }
        if roots != 1 {
            return Err(TopologyError::RootCount(roots));
        }
        // Acyclic: every parent chain must reach the root within
        // `relays.len()` hops.
        for r in &self.relays {
            let mut hops = 0usize;
            let mut cur = r;
            while let Some(p) = &cur.parent {
                hops += 1;
                if hops > self.relays.len() {
                    return Err(TopologyError::Cycle(r.name.clone()));
                }
                cur = &self.relays[by_name[p.as_str()]];
            }
        }
        let mut seen_sites: BTreeSet<u16> = BTreeSet::new();
        for r in &self.relays {
            for &s in &r.sites {
                if !seen_sites.insert(s) {
                    return Err(TopologyError::DuplicateSite(s));
                }
            }
        }
        let mut agg_ids: BTreeSet<u16> = BTreeSet::new();
        for r in &self.relays {
            if seen_sites.contains(&r.agg_site) || !agg_ids.insert(r.agg_site) {
                return Err(TopologyError::AggIdCollision(r.agg_site));
            }
        }
        // Every relay's exports must fit one provenance header, or its
        // parent would reject the whole tier's data frame by frame.
        for (i, r) in self.relays.iter().enumerate() {
            let covered = self.coverage(i).len();
            if covered > flowdist::summary::MAX_PROVENANCE {
                return Err(TopologyError::CoverageTooLarge {
                    relay: r.name.clone(),
                    sites: covered,
                });
            }
        }
        Ok(self)
    }

    /// Index of a relay by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.relays.iter().position(|r| r.name == name)
    }

    /// Index of the unique parentless relay.
    pub fn root(&self) -> usize {
        self.relays
            .iter()
            .position(|r| r.parent.is_none())
            .expect("validated topology has a root")
    }

    /// Indices of the relays feeding `idx` directly.
    pub fn children_of(&self, idx: usize) -> Vec<usize> {
        let name = &self.relays[idx].name;
        self.relays
            .iter()
            .enumerate()
            .filter(|(_, r)| r.parent.as_ref() == Some(name))
            .map(|(i, _)| i)
            .collect()
    }

    /// Every real site a relay covers: its own plus everything below.
    pub fn coverage(&self, idx: usize) -> BTreeSet<u16> {
        let mut out: BTreeSet<u16> = self.relays[idx].sites.iter().copied().collect();
        for child in self.children_of(idx) {
            out.extend(self.coverage(child));
        }
        out
    }

    /// All real sites in the topology.
    pub fn all_sites(&self) -> BTreeSet<u16> {
        self.relays
            .iter()
            .flat_map(|r| r.sites.iter().copied())
            .collect()
    }

    /// The tier-1 relay owning `site` directly, if any.
    pub fn owner_of(&self, site: u16) -> Option<usize> {
        self.relays.iter().position(|r| r.sites.contains(&site))
    }

    /// Hops from `idx` up to the root (root = 0).
    pub fn depth_of(&self, idx: usize) -> usize {
        let mut depth = 0usize;
        let mut cur = &self.relays[idx];
        while let Some(p) = &cur.parent {
            depth += 1;
            cur = &self.relays[self.index_of(p).expect("validated parent")];
        }
        depth
    }

    /// A site → relay → root tree over sites `0..sites`, grouping
    /// `fanout` consecutive sites per tier-1 relay. Aggregate ids are
    /// assigned above the site range. With a single group the root
    /// owns the sites directly (a flat, one-tier topology).
    pub fn two_tier(sites: u16, fanout: u16) -> RelayTopology {
        let fanout = fanout.max(1);
        let groups = sites.div_ceil(fanout).max(1);
        if groups <= 1 {
            return RelayTopology {
                relays: vec![RelaySpec {
                    name: "root".into(),
                    parent: None,
                    agg_site: sites,
                    sites: (0..sites).collect(),
                }],
            };
        }
        let mut relays = vec![RelaySpec {
            name: "root".into(),
            parent: None,
            agg_site: sites + groups,
            sites: Vec::new(),
        }];
        for g in 0..groups {
            relays.push(RelaySpec {
                name: format!("relay{g}"),
                parent: Some("root".into()),
                agg_site: sites + g,
                sites: (g * fanout..((g + 1) * fanout).min(sites)).collect(),
            });
        }
        RelayTopology { relays }
    }

    /// A site → leaf relay → mid relay → root tree: `leaf_fanout`
    /// consecutive sites per leaf relay, `mid_fanout` leaf relays per
    /// mid relay, one root above the mids. Aggregate ids are assigned
    /// above the site range (leaves first, then mids, then the root).
    /// Degenerates to [`RelayTopology::two_tier`] when one mid relay
    /// would cover everything.
    pub fn three_tier(sites: u16, leaf_fanout: u16, mid_fanout: u16) -> RelayTopology {
        let leaf_fanout = leaf_fanout.max(1);
        let mid_fanout = mid_fanout.max(1);
        let leaves = sites.div_ceil(leaf_fanout).max(1);
        let mids = leaves.div_ceil(mid_fanout).max(1);
        if mids <= 1 {
            return RelayTopology::two_tier(sites, leaf_fanout);
        }
        let mut relays = vec![RelaySpec {
            name: "root".into(),
            parent: None,
            agg_site: sites + leaves + mids,
            sites: Vec::new(),
        }];
        for m in 0..mids {
            relays.push(RelaySpec {
                name: format!("mid{m}"),
                parent: Some("root".into()),
                agg_site: sites + leaves + m,
                sites: Vec::new(),
            });
        }
        for g in 0..leaves {
            relays.push(RelaySpec {
                name: format!("leaf{g}"),
                parent: Some(format!("mid{}", g / mid_fanout)),
                agg_site: sites + g,
                sites: (g * leaf_fanout..((g + 1) * leaf_fanout).min(sites)).collect(),
            });
        }
        RelayTopology { relays }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, parent: Option<&str>, agg: u16, sites: &[u16]) -> RelaySpec {
        RelaySpec {
            name: name.into(),
            parent: parent.map(String::from),
            agg_site: agg,
            sites: sites.to_vec(),
        }
    }

    #[test]
    fn two_tier_builder_is_valid_and_covering() {
        for (sites, fanout) in [(8u16, 4u16), (32, 8), (128, 16), (5, 2), (1, 4)] {
            let t = RelayTopology::two_tier(sites, fanout);
            t.validate().unwrap();
            assert_eq!(t.all_sites().len(), sites as usize);
            assert_eq!(t.coverage(t.root()).len(), sites as usize);
            for s in 0..sites {
                let owner = t.owner_of(s).unwrap();
                assert!(
                    t.relays[owner].parent.is_some() || t.relays.len() == 1,
                    "site {s} owned by an inner relay in a multi-tier tree"
                );
            }
        }
    }

    #[test]
    fn three_tier_builder_is_valid_and_covering() {
        for (sites, leaf, mid) in [(16u16, 2u16, 2u16), (32, 4, 2), (9, 2, 3), (64, 4, 4)] {
            let t = RelayTopology::three_tier(sites, leaf, mid);
            t.validate().unwrap();
            assert_eq!(t.all_sites().len(), sites as usize);
            assert_eq!(t.coverage(t.root()).len(), sites as usize);
            assert_eq!(t.depth_of(t.root()), 0);
            // Every site-owning relay sits two hops below the root.
            for s in 0..sites {
                let owner = t.owner_of(s).unwrap();
                assert_eq!(t.depth_of(owner), 2, "site {s} owner depth");
            }
        }
        // One mid would cover everything → collapses to two tiers.
        let flat = RelayTopology::three_tier(4, 2, 4);
        flat.validate().unwrap();
        assert!(flat.relays.iter().all(|r| r.name != "mid0"));
    }

    #[test]
    fn validation_rejects_structural_breakage() {
        assert_eq!(
            RelayTopology { relays: vec![] }.validate(),
            Err(TopologyError::Empty)
        );
        let dup = RelayTopology {
            relays: vec![spec("a", None, 10, &[0]), spec("a", Some("a"), 11, &[1])],
        };
        assert!(matches!(
            dup.validate(),
            Err(TopologyError::DuplicateName(_))
        ));
        let orphan = RelayTopology {
            relays: vec![spec("a", Some("ghost"), 10, &[0])],
        };
        assert!(matches!(
            orphan.validate(),
            Err(TopologyError::UnknownParent(_))
        ));
        let two_roots = RelayTopology {
            relays: vec![spec("a", None, 10, &[0]), spec("b", None, 11, &[1])],
        };
        assert_eq!(two_roots.validate(), Err(TopologyError::RootCount(2)));
        let cycle = RelayTopology {
            relays: vec![
                spec("r", None, 10, &[]),
                spec("a", Some("b"), 11, &[0]),
                spec("b", Some("a"), 12, &[1]),
            ],
        };
        assert!(matches!(cycle.validate(), Err(TopologyError::Cycle(_))));
        let double_site = RelayTopology {
            relays: vec![spec("r", None, 10, &[0, 1]), spec("a", Some("r"), 11, &[1])],
        };
        assert_eq!(double_site.validate(), Err(TopologyError::DuplicateSite(1)));
        let agg_clash = RelayTopology {
            relays: vec![spec("r", None, 1, &[0, 1])],
        };
        assert_eq!(agg_clash.validate(), Err(TopologyError::AggIdCollision(1)));
    }

    #[test]
    fn oversized_coverage_is_rejected_at_validation_time() {
        // A relay covering more sites than one provenance header can
        // carry would have every export rejected upstream — catch it
        // here instead.
        let big = RelayTopology::two_tier(5_000, 5_000);
        assert!(matches!(
            big.validate(),
            Err(TopologyError::CoverageTooLarge { sites: 5_000, .. })
        ));
        let fine = RelayTopology::two_tier(4_096, 4_096);
        fine.validate().unwrap();
    }

    #[test]
    fn coverage_and_depth_walk_the_tree() {
        let t = RelayTopology {
            relays: vec![
                spec("root", None, 100, &[]),
                spec("a", Some("root"), 101, &[0, 1]),
                spec("b", Some("root"), 102, &[2]),
                spec("aa", Some("a"), 103, &[3]),
            ],
        };
        t.validate().unwrap();
        assert_eq!(t.root(), 0);
        assert_eq!(t.children_of(0), vec![1, 2]);
        assert_eq!(
            t.coverage(1),
            [0u16, 1, 3].into_iter().collect::<BTreeSet<_>>()
        );
        assert_eq!(t.coverage(0).len(), 4);
        assert_eq!(t.depth_of(0), 0);
        assert_eq!(t.depth_of(3), 2);
        assert_eq!(t.owner_of(3), Some(3));
        assert_eq!(t.owner_of(9), None);
    }
}
