//! In-process multi-tier simulation.
//!
//! Extends `flowdist::sim` with the hierarchy: the same packet trace
//! drives per-site caches and daemons ([`flowdist::sim::run_sites`]),
//! every site's encoded summary frames feed its owning tier-1 relay,
//! and each tier's flushed aggregates feed its parent — bottom-up,
//! until the root holds one pre-aggregated tree per (window, region).
//! Frames cross every hop *encoded*, so the simulation exercises the
//! same codec and validation paths a socketed deployment would.
//!
//! The report keeps the raw per-site frames, so tests can stand up a
//! flat [`Collector`] over identical inputs and assert the hierarchy
//! invariant (`tests/hierarchy_equiv.rs`).

use crate::plan::QueryRouter;
use crate::relay::{ExportConfig, Relay};
use crate::topology::RelayTopology;
use crate::RelayError;
use flowdist::sim::{run_sites, SimConfig};
use flowdist::{Collector, DaemonStats, DistError, Summary};
use flownet::PacketMeta;

/// How often the relays drain exports while the trace plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DrainCadence {
    /// One flush at end of trace — the classic single-shot shape
    /// ([`run_hierarchy`]'s behavior).
    #[default]
    AtEnd,
    /// Drain every relay (deepest tier first) after each window's
    /// frames are delivered.
    PerWindow,
    /// Drain after every single downstream frame — maximal
    /// incrementality: every site that lands late in a window triggers
    /// a re-export, which under [`crate::ExportMode::Delta`] ships as
    /// a structural delta frame.
    PerFrame,
}

/// Options of [`run_hierarchy_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchyOptions {
    /// Export-scheduler tuning handed to every relay.
    pub export: ExportConfig,
    /// When the relays drain while the trace plays.
    pub cadence: DrainCadence,
}

/// A finished hierarchy run.
#[derive(Debug)]
pub struct HierarchyReport {
    /// The validated topology driving the run.
    pub topo: RelayTopology,
    /// One relay per topology spec, fully fed.
    pub relays: Vec<Relay>,
    /// The root's upstream aggregates in export order (what a
    /// super-root would receive): version-3 frames — one full frame
    /// per window under [`DrainCadence::AtEnd`], an incremental
    /// full-then-delta stream under the finer cadences.
    pub root_exports: Vec<Summary>,
    /// Per-site daemon counters.
    pub daemon_stats: Vec<DaemonStats>,
    /// Packets routed per site.
    pub packets_per_site: Vec<u64>,
    /// Every site's encoded summary frames, for flat comparisons.
    pub site_frames: Vec<Vec<Vec<u8>>>,
}

impl HierarchyReport {
    /// The root relay.
    pub fn root(&self) -> &Relay {
        &self.relays[self.topo.root()]
    }

    /// A planner over this hierarchy.
    pub fn router(&self) -> QueryRouter<'_> {
        QueryRouter::new(&self.topo, &self.relays)
    }

    /// A flat collector fed the same per-site frames — the reference
    /// the hierarchy must agree with.
    pub fn flat_collector(
        &self,
        schema: flowkey::Schema,
        tree: flowtree_core::Config,
    ) -> Result<Collector, DistError> {
        let mut collector = Collector::new(schema, tree);
        for frames in &self.site_frames {
            for frame in frames {
                collector.apply_bytes(frame)?;
            }
        }
        Ok(collector)
    }
}

/// Runs the whole site → relay → root pipeline on one trace with the
/// default options (single flush at end of trace). The topology must
/// own exactly the sites `0..cfg.sites` (what the sim's packet router
/// produces).
pub fn run_hierarchy<I>(
    topo: &RelayTopology,
    cfg: SimConfig,
    trace: I,
) -> Result<HierarchyReport, RelayError>
where
    I: IntoIterator<Item = PacketMeta>,
{
    run_hierarchy_with(topo, cfg, trace, HierarchyOptions::default())
}

/// [`run_hierarchy`] with explicit export scheduling and drain
/// cadence. With an incremental cadence every drain cascades bottom-up
/// — deepest tiers first, each export crossing to its parent as an
/// encoded frame at once — so a window whose sites land one after
/// another re-exports after each arrival, and the parents see the v3
/// full-then-delta stream a wall-clock deployment would ship.
pub fn run_hierarchy_with<I>(
    topo: &RelayTopology,
    cfg: SimConfig,
    trace: I,
    opts: HierarchyOptions,
) -> Result<HierarchyReport, RelayError>
where
    I: IntoIterator<Item = PacketMeta>,
{
    topo.validate()?;
    let all_sites = topo.all_sites();
    for site in 0..cfg.sites.max(1) {
        if !all_sites.contains(&site) {
            return Err(RelayError::CoverageViolation { site });
        }
    }

    let site_run = run_sites(cfg, trace);
    let site_frames: Vec<Vec<Vec<u8>>> = site_run
        .summaries
        .iter()
        .map(|stream| stream.iter().map(Summary::encode).collect())
        .collect();

    let mut relays: Vec<Relay> = (0..topo.relays.len())
        .map(|i| Relay::from_topology_with(topo, i, cfg.schema, cfg.tree, opts.export))
        .collect();

    // Bottom-up drain order: deepest tiers first.
    let mut order: Vec<usize> = (0..relays.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(topo.depth_of(i)));
    let root = topo.root();
    let mut root_exports: Vec<Summary> = Vec::new();

    // One cascade: drain (or flush) every relay bottom-up, shipping
    // each tier's exports to its parent before the parent drains.
    let cascade = |relays: &mut Vec<Relay>,
                   root_exports: &mut Vec<Summary>,
                   now_ms: Option<u64>|
     -> Result<(), RelayError> {
        for &idx in &order {
            let exports = match now_ms {
                Some(now) => relays[idx].drain_exports_at(now),
                None => relays[idx].flush_exports(),
            };
            if idx == root {
                root_exports.extend(exports);
                continue;
            }
            let parent = topo
                .index_of(topo.relays[idx].parent.as_deref().expect("non-root"))
                .expect("validated parent");
            for summary in exports {
                relays[parent].ingest_frame(&summary.encode())?;
            }
        }
        Ok(())
    };

    match opts.cadence {
        DrainCadence::AtEnd => {
            for (site, frames) in site_frames.iter().enumerate() {
                let owner = topo
                    .owner_of(site as u16)
                    .expect("topology covers every sim site");
                for frame in frames {
                    relays[owner].ingest_frame(frame)?;
                }
            }
        }
        DrainCadence::PerWindow | DrainCadence::PerFrame => {
            // Global delivery order: windows ascending, sites within a
            // window in site order — so later sites of a window arrive
            // after the window may already have been exported.
            let mut deliveries: Vec<(u64, u16, usize)> = Vec::new();
            for (site, stream) in site_run.summaries.iter().enumerate() {
                for (i, s) in stream.iter().enumerate() {
                    deliveries.push((s.window.start_ms, site as u16, i));
                }
            }
            deliveries.sort_unstable();
            let linger = opts.export.linger_ms;
            let per_frame = opts.cadence == DrainCadence::PerFrame;
            let mut at = 0usize;
            while at < deliveries.len() {
                let window = deliveries[at].0;
                let span = site_run.summaries[deliveries[at].1 as usize][deliveries[at].2]
                    .window
                    .span_ms;
                // The wall clock sits past this window's close (plus
                // linger), as it would while late frames trickle in.
                let now = window.saturating_add(span).saturating_add(linger);
                while at < deliveries.len() && deliveries[at].0 == window {
                    let (_, site, i) = deliveries[at];
                    let owner = topo.owner_of(site).expect("topology covers every sim site");
                    relays[owner].ingest_frame(&site_frames[site as usize][i])?;
                    at += 1;
                    if per_frame {
                        cascade(&mut relays, &mut root_exports, Some(now))?;
                    }
                }
                if !per_frame {
                    cascade(&mut relays, &mut root_exports, Some(now))?;
                }
            }
        }
    }
    // Shutdown: everything with unshipped content flushes bottom-up.
    cascade(&mut relays, &mut root_exports, None)?;

    Ok(HierarchyReport {
        topo: topo.clone(),
        relays,
        root_exports,
        daemon_stats: site_run.daemon_stats,
        packets_per_site: site_run.packets_per_site,
        site_frames,
    })
}
