//! In-process multi-tier simulation.
//!
//! Extends `flowdist::sim` with the hierarchy: the same packet trace
//! drives per-site caches and daemons ([`flowdist::sim::run_sites`]),
//! every site's encoded summary frames feed its owning tier-1 relay,
//! and each tier's flushed aggregates feed its parent — bottom-up,
//! until the root holds one pre-aggregated tree per (window, region).
//! Frames cross every hop *encoded*, so the simulation exercises the
//! same codec and validation paths a socketed deployment would.
//!
//! The report keeps the raw per-site frames, so tests can stand up a
//! flat [`Collector`] over identical inputs and assert the hierarchy
//! invariant (`tests/hierarchy_equiv.rs`).

use crate::plan::QueryRouter;
use crate::relay::Relay;
use crate::topology::RelayTopology;
use crate::RelayError;
use flowdist::sim::{run_sites, SimConfig};
use flowdist::{Collector, DaemonStats, DistError, Summary};
use flownet::PacketMeta;

/// A finished hierarchy run.
#[derive(Debug)]
pub struct HierarchyReport {
    /// The validated topology driving the run.
    pub topo: RelayTopology,
    /// One relay per topology spec, fully fed.
    pub relays: Vec<Relay>,
    /// The root's flushed upstream aggregates (what a super-root would
    /// receive) — one version-2 frame per window.
    pub root_exports: Vec<Summary>,
    /// Per-site daemon counters.
    pub daemon_stats: Vec<DaemonStats>,
    /// Packets routed per site.
    pub packets_per_site: Vec<u64>,
    /// Every site's encoded summary frames, for flat comparisons.
    pub site_frames: Vec<Vec<Vec<u8>>>,
}

impl HierarchyReport {
    /// The root relay.
    pub fn root(&self) -> &Relay {
        &self.relays[self.topo.root()]
    }

    /// A planner over this hierarchy.
    pub fn router(&self) -> QueryRouter<'_> {
        QueryRouter::new(&self.topo, &self.relays)
    }

    /// A flat collector fed the same per-site frames — the reference
    /// the hierarchy must agree with.
    pub fn flat_collector(
        &self,
        schema: flowkey::Schema,
        tree: flowtree_core::Config,
    ) -> Result<Collector, DistError> {
        let mut collector = Collector::new(schema, tree);
        for frames in &self.site_frames {
            for frame in frames {
                collector.apply_bytes(frame)?;
            }
        }
        Ok(collector)
    }
}

/// Runs the whole site → relay → root pipeline on one trace. The
/// topology must own exactly the sites `0..cfg.sites` (what the sim's
/// packet router produces).
pub fn run_hierarchy<I>(
    topo: &RelayTopology,
    cfg: SimConfig,
    trace: I,
) -> Result<HierarchyReport, RelayError>
where
    I: IntoIterator<Item = PacketMeta>,
{
    topo.validate()?;
    let all_sites = topo.all_sites();
    for site in 0..cfg.sites.max(1) {
        if !all_sites.contains(&site) {
            return Err(RelayError::CoverageViolation { site });
        }
    }

    let site_run = run_sites(cfg, trace);
    let site_frames: Vec<Vec<Vec<u8>>> = site_run
        .summaries
        .iter()
        .map(|stream| stream.iter().map(Summary::encode).collect())
        .collect();

    let mut relays: Vec<Relay> = (0..topo.relays.len())
        .map(|i| Relay::from_topology(topo, i, cfg.schema, cfg.tree))
        .collect();

    // Tier-1 ingest: every site's frames land at its owner.
    for (site, frames) in site_frames.iter().enumerate() {
        let owner = topo
            .owner_of(site as u16)
            .expect("topology covers every sim site");
        for frame in frames {
            relays[owner].ingest_frame(frame)?;
        }
    }

    // Bottom-up aggregation: deepest tiers flush first, each export
    // crossing to the parent as an encoded frame.
    let mut order: Vec<usize> = (0..relays.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(topo.depth_of(i)));
    let root = topo.root();
    let mut root_exports = Vec::new();
    for idx in order {
        let exports = relays[idx].flush_exports();
        if idx == root {
            root_exports = exports;
            continue;
        }
        let parent = topo
            .index_of(topo.relays[idx].parent.as_deref().expect("non-root"))
            .expect("validated parent");
        for summary in exports {
            relays[parent].ingest_frame(&summary.encode())?;
        }
    }

    Ok(HierarchyReport {
        topo: topo.clone(),
        relays,
        root_exports,
        daemon_stats: site_run.daemon_stats,
        packets_per_site: site_run.packets_per_site,
        site_frames,
    })
}
