//! The hierarchy invariant: with compaction out of play, a root-tier
//! answer — and the root's re-exported wire bytes — is **identical**
//! to a flat collector fed the same site windows. Aggregation moves
//! merges down the tree; it never changes what they produce.

use flowdist::{Collector, Summary, SummaryKind, WindowId};
use flowkey::{FlowKey, Schema};
use flowquery::{parse, QueryEngine, QueryOutput};
use flowrelay::{QueryRouter, Relay, RelayTopology, Route};
use flowtree_core::{Config, FlowTree, Popularity};
use proptest::prelude::*;

const SPAN: u64 = 1_000;
/// Room for everything: no compaction anywhere.
const CFG: fn() -> Config = || Config::with_budget(1_000_000);

fn arb_key() -> impl Strategy<Value = FlowKey> {
    prop_oneof![
        (0u8..4, 0u8..6, 0u8..24, 1u16..4).prop_map(|(a, b, c, p)| format!(
            "src=10.{a}.{b}.{c}/32 dst=192.0.2.{}/32 sport={} dport=443 proto=tcp",
            b % 3,
            40_000 + p
        )
        .parse()
        .unwrap()),
        (0u8..4, 8u8..=24)
            .prop_map(|(a, len)| format!("src={}.0.0.0/{len}", 10 + a).parse().unwrap()),
        (0u8..8, 1u16..4).prop_map(|(c, p)| format!("src=10.0.0.{c}/32 dport={}", 50 + p)
            .parse()
            .unwrap()),
    ]
}

fn arb_inserts() -> impl Strategy<Value = Vec<(FlowKey, Popularity)>> {
    proptest::collection::vec(
        (
            arb_key(),
            (1i64..40, 1i64..900).prop_map(|(p, b)| Popularity::new(p, b, 1)),
        ),
        1..30,
    )
}

/// One generated case: sites, fanout, windows, and per-(site, window)
/// insert batches in site-major order.
type Grid = (u16, u16, u64, Vec<Vec<(FlowKey, Popularity)>>);

/// Random per-(site, window) masses for a `sites × windows` grid.
fn arb_grid() -> impl Strategy<Value = Grid> {
    proptest::strategy::fn_strategy(|rng: &mut proptest::TestRng| {
        let sites = Strategy::pick(&(2u16..=8), rng);
        let fanout = Strategy::pick(&(1u16..=4), rng);
        let windows = Strategy::pick(&(1u64..=3), rng);
        let inserts = arb_inserts();
        let cells = (0..sites as u64 * windows)
            .map(|_| Strategy::pick(&inserts, rng))
            .collect();
        (sites, fanout, windows, cells)
    })
}

fn summary(schema: Schema, site: u16, window: u64, inserts: &[(FlowKey, Popularity)]) -> Summary {
    let mut tree = FlowTree::new(schema, CFG());
    for (k, p) in inserts {
        tree.insert(k, *p);
    }
    Summary {
        site,
        window: WindowId {
            start_ms: window * SPAN,
            span_ms: SPAN,
        },
        seq: window + 1,
        kind: SummaryKind::Full,
        provenance: None,
        epoch: None,
        tree,
    }
}

/// Builds the hierarchy and the flat reference from one grid.
fn build_both(
    sites: u16,
    fanout: u16,
    windows: u64,
    cells: &[Vec<(FlowKey, Popularity)>],
) -> (RelayTopology, Vec<Relay>, Vec<Summary>, Collector) {
    let schema = Schema::five_feature();
    let topo = RelayTopology::two_tier(sites, fanout);
    topo.validate().unwrap();
    let mut relays: Vec<Relay> = (0..topo.relays.len())
        .map(|i| Relay::from_topology(&topo, i, schema, CFG()))
        .collect();
    let mut flat = Collector::new(schema, CFG());
    for s in 0..sites {
        for w in 0..windows {
            let cell = &cells[(s as u64 * windows + w) as usize];
            let summary = summary(schema, s, w, cell);
            let frame = summary.encode();
            flat.apply_bytes(&frame).unwrap();
            let owner = topo.owner_of(s).unwrap();
            relays[owner].ingest_frame(&frame).unwrap();
        }
    }
    // Bottom-up propagation, every hop encoded.
    let root = topo.root();
    let mut order: Vec<usize> = (0..relays.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(topo.depth_of(i)));
    let mut root_exports = Vec::new();
    for idx in order {
        let exports = relays[idx].flush_exports();
        if idx == root {
            root_exports = exports;
            continue;
        }
        let parent = topo
            .index_of(topo.relays[idx].parent.as_deref().unwrap())
            .unwrap();
        for e in exports {
            relays[parent].ingest_frame(&e.encode()).unwrap();
        }
    }
    (topo, relays, root_exports, flat)
}

fn outputs_agree(text: &str, hier: &QueryOutput, flat: &QueryOutput) {
    match (hier, flat) {
        (QueryOutput::Pop(a), QueryOutput::Pop(b)) => {
            assert!(
                (a.packets - b.packets).abs() < 1e-6
                    && (a.bytes - b.bytes).abs() < 1e-6
                    && (a.flows - b.flows).abs() < 1e-6,
                "{text}: pop {a:?} vs {b:?}"
            );
        }
        (a, b) => assert_eq!(a, b, "{text}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Root exports are byte-identical to the flat merge of the same
    /// windows, for random topologies and window grids.
    #[test]
    fn root_export_bytes_equal_flat_merge(
        (sites, fanout, windows, cells) in arb_grid(),
    ) {
        let (_topo, _relays, root_exports, flat) =
            build_both(sites, fanout, windows, &cells);
        prop_assert_eq!(root_exports.len() as u64, windows);
        for e in &root_exports {
            let reference = flat.merged(None, e.window.start_ms, e.window.end_ms());
            prop_assert_eq!(e.tree.encode(), reference.encode(), "window {}", e.window);
            // Provenance names every site.
            prop_assert_eq!(
                e.provenance.clone().unwrap(),
                (0..sites).collect::<Vec<_>>()
            );
        }
    }

    /// Root-tier query answers equal the flat engine's, across query
    /// shapes and scopes (full, one region, cross-region fan-out).
    #[test]
    fn routed_answers_equal_flat_answers(
        (sites, fanout, windows, cells) in arb_grid(),
    ) {
        let (topo, relays, _exports, flat) = build_both(sites, fanout, windows, &cells);
        let router = QueryRouter::new(&topo, &relays);
        let engine = QueryEngine::new(&flat);
        let group0: Vec<u16> = topo.relays[if topo.relays.len() == 1 { 0 } else { 1 }]
            .sites
            .clone();
        let group_list = group0
            .iter()
            .map(u16::to_string)
            .collect::<Vec<_>>()
            .join(",");
        // A cross-group partial scope: first site of every group.
        let cross: Vec<u16> = topo
            .relays
            .iter()
            .filter_map(|r| r.sites.first().copied())
            .collect();
        let cross_list = cross
            .iter()
            .map(u16::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let queries = [
            "pop".to_string(),
            "pop src=10.0.0.0/8".to_string(),
            "hhh 0.05 by packets".to_string(),
            "drill src".to_string(),
            "top 5 dport by bytes under src=10.0.0.0/8".to_string(),
            format!("pop sites={group_list}"),
            format!("hhh 0.1 by packets sites={group_list}"),
            format!("pop sites={cross_list}"),
            format!("drill src sites={cross_list}"),
            "bysite src=10.0.0.0/8".to_string(),
        ];
        for text in &queries {
            let q = parse(text, u64::MAX - 1).unwrap();
            let routed = router.run(&q);
            let flat_out = engine.run(&q);
            prop_assert!(routed.missing.is_empty(), "{text}: {:?}", routed.missing);
            outputs_agree(text, &routed.output, &flat_out);
        }
    }

    /// The planner picks the advertised tier: network-wide scopes ride
    /// pre-aggregated trees, single-region scopes stay at tier 1, and
    /// cross-region partial scopes fan out.
    #[test]
    fn planner_picks_the_cheapest_tier(
        (sites, fanout, windows, cells) in arb_grid(),
    ) {
        // Clamp the fanout so the tree always has ≥ 2 groups.
        let fanout = fanout.min(sites - 1).max(1);
        let (topo, relays, _exports, flat) = build_both(sites, fanout, windows, &cells);
        let _ = &flat;
        let router = QueryRouter::new(&topo, &relays);

        let q = parse("hhh 0.05 by packets", u64::MAX - 1).unwrap();
        let routed = router.run(&q);
        prop_assert!(
            matches!(routed.route, Route::Relay { relay, via_aggregates: true }
                if relay == topo.root()),
            "network-wide scope must ride root aggregates: {:?}",
            routed.route
        );

        let group: Vec<u16> = topo.relays[1].sites.clone();
        let list = group.iter().map(u16::to_string).collect::<Vec<_>>().join(",");
        let q = parse(&format!("pop sites={list}"), u64::MAX - 1).unwrap();
        let routed = router.run(&q);
        prop_assert!(
            matches!(routed.route, Route::Relay { relay, via_aggregates: false } if relay == 1),
            "single-region scope must stay at tier 1: {:?}",
            routed.route
        );

        if topo.relays.len() > 2 && topo.relays[1].sites.len() > 1 {
            // Part of group 1 plus all of group 2: no single tier
            // composes it.
            let mut scope: Vec<u16> = vec![topo.relays[1].sites[0]];
            scope.extend(&topo.relays[2].sites);
            let list = scope.iter().map(u16::to_string).collect::<Vec<_>>().join(",");
            let q = parse(&format!("hhh 0.1 by packets sites={list}"), u64::MAX - 1).unwrap();
            let routed = router.run(&q);
            prop_assert!(
                matches!(&routed.route, Route::FanOut { relays } if relays.len() == 2),
                "cross-region partial scope must fan out: {:?}",
                routed.route
            );
        }
    }
}

/// Trace-driven end-to-end: the multi-tier sim agrees with the flat
/// sim on totals and on routed query answers.
#[test]
fn sim_hierarchy_matches_flat_sim() {
    use flowdist::sim::SimConfig;
    use flowdist::TransferMode;
    use flownet::FlowCacheConfig;
    use flowtrace::{profile, TraceGen};

    let cfg = SimConfig {
        sites: 6,
        window_ms: 1_000,
        schema: Schema::five_feature(),
        tree: Config::with_budget(4_096),
        transfer: TransferMode::Full,
        cache: FlowCacheConfig {
            idle_timeout_ms: 500,
            active_timeout_ms: 2_000,
            max_entries: 10_000,
        },
    };
    let mut tcfg = profile::backbone(23);
    tcfg.packets = 20_000;
    tcfg.flows = 2_000;
    tcfg.mean_pps = 5_000.0;
    let trace: Vec<flownet::PacketMeta> = TraceGen::new(tcfg).collect();

    let topo = RelayTopology::two_tier(6, 2);
    let report = flowrelay::run_hierarchy(&topo, cfg, trace.iter().copied()).unwrap();
    let flat = flowdist::sim::run(cfg, trace.iter().copied()).unwrap();

    // Conservation through the tiers.
    assert_eq!(
        report.root().collector().total().packets,
        flat.collector.merged(None, 0, u64::MAX).total().packets
    );
    assert_eq!(report.packets_per_site, flat.packets_per_site);
    assert!(!report.root_exports.is_empty());

    // Routed answers agree with the flat engine (identical budgets on
    // both paths, so even compaction-era trees match: the same site
    // trees merge in a different grouping, which the byte-identity
    // property pins only for uncompacted trees — totals must agree
    // regardless).
    let router = report.router();
    let engine = QueryEngine::new(&flat.collector);
    let q = parse("pop", u64::MAX - 1).unwrap();
    let (QueryOutput::Pop(a), QueryOutput::Pop(b)) = (router.run(&q).output, engine.run(&q)) else {
        panic!("pop returns pop");
    };
    assert!((a.packets - b.packets).abs() < 1e-6, "{a:?} vs {b:?}");

    // The flat reference built from the report's own frames agrees too.
    let rebuilt = report.flat_collector(cfg.schema, cfg.tree).unwrap();
    assert_eq!(
        rebuilt.merged(None, 0, u64::MAX).total(),
        flat.collector.merged(None, 0, u64::MAX).total()
    );
}
