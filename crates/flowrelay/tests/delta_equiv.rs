//! The delta-stream invariant: an upstream fed a relay's **version-3
//! delta stream** (incremental drains, full-frame fallbacks, forced
//! base loss, downstream replacements) ends up byte-identical — stored
//! windows, merged answers, and its own re-exported wire bytes — to an
//! upstream fed the same relay's **full re-export stream**. Deltas
//! change what crosses the wire, never what the receiver holds.

use flowdist::{Collector, Summary, SummaryKind, WindowId};
use flowkey::{FlowKey, Schema};
use flowrelay::{ExportConfig, ExportMode, Relay, RelayConfig};
use flowtree_core::{Config, FlowTree, Popularity};
use proptest::prelude::*;

const SPAN: u64 = 1_000;
const CFG: fn() -> Config = || Config::with_budget(1_000_000);

fn arb_key() -> impl Strategy<Value = FlowKey> {
    prop_oneof![
        (0u8..4, 0u8..6, 0u8..24, 1u16..4).prop_map(|(a, b, c, p)| format!(
            "src=10.{a}.{b}.{c}/32 dst=192.0.2.{}/32 sport={} dport=443 proto=tcp",
            b % 3,
            40_000 + p
        )
        .parse()
        .unwrap()),
        (0u8..4, 8u8..=24)
            .prop_map(|(a, len)| format!("src={}.0.0.0/{len}", 10 + a).parse().unwrap()),
    ]
}

fn arb_inserts() -> impl Strategy<Value = Vec<(FlowKey, Popularity)>> {
    proptest::collection::vec(
        (
            arb_key(),
            (1i64..40, 1i64..900).prop_map(|(p, b)| Popularity::new(p, b, 1)),
        ),
        1..20,
    )
}

/// One generated run: `sites × windows` insert cells delivered
/// window-major, plus per-delivery event flags — drain after this
/// frame, re-send this cell with different content (a replacement),
/// drop the pinned bases right before this frame (forced base loss).
type Case = (
    u16,
    u64,
    Vec<Vec<(FlowKey, Popularity)>>,
    Vec<(bool, bool, bool)>,
);

fn arb_case() -> impl Strategy<Value = Case> {
    proptest::strategy::fn_strategy(|rng: &mut proptest::TestRng| {
        let sites = Strategy::pick(&(2u16..=5), rng);
        let windows = Strategy::pick(&(1u64..=3), rng);
        let n = sites as usize * windows as usize;
        let inserts = arb_inserts();
        let cells: Vec<_> = (0..n).map(|_| Strategy::pick(&inserts, rng)).collect();
        let flags: Vec<_> = (0..n)
            .map(|_| {
                (
                    Strategy::pick(&(0u8..3), rng) == 0, // drain ~1/3 of the time
                    Strategy::pick(&(0u8..4), rng) == 0, // replace ~1/4
                    Strategy::pick(&(0u8..5), rng) == 0, // drop bases ~1/5
                )
            })
            .collect();
        (sites, windows, cells, flags)
    })
}

fn site_summary(site: u16, window: u64, seq: u64, inserts: &[(FlowKey, Popularity)]) -> Summary {
    let mut tree = FlowTree::new(Schema::five_feature(), CFG());
    for (k, p) in inserts {
        tree.insert(k, *p);
    }
    Summary {
        site,
        window: WindowId {
            start_ms: window * SPAN,
            span_ms: SPAN,
        },
        seq,
        kind: SummaryKind::Full,
        provenance: None,
        epoch: None,
        tree,
    }
}

fn relay(sites: u16, mode: ExportMode) -> Relay {
    Relay::new(RelayConfig {
        name: "tier1".into(),
        agg_site: 1_000,
        expected: (0..sites).collect(),
        schema: Schema::five_feature(),
        tree: CFG(),
        export: ExportConfig {
            mode,
            linger_ms: 0,
            max_bases: 64,
            ..ExportConfig::default()
        },
    })
}

/// Runs one case through a relay in the given mode, returning its
/// encoded export stream (drains interleaved exactly as the flags
/// say, plus a final flush).
fn export_stream(case: &Case, mode: ExportMode) -> Vec<Vec<u8>> {
    let (sites, windows, cells, flags) = case;
    let mut r = relay(*sites, mode);
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut i = 0usize;
    for w in 0..*windows {
        for s in 0..*sites {
            let (drain, replace, drop_bases) = flags[i];
            let cell = &cells[i];
            i += 1;
            if drop_bases {
                r.drop_export_bases();
            }
            r.apply(site_summary(s, w, w + 1, cell)).unwrap();
            if replace {
                // The site restarts and re-sends the window with
                // different content — a non-monotone change.
                let shrunk: Vec<_> = cell.iter().take(1 + cell.len() / 2).cloned().collect();
                r.apply(site_summary(s, w, w + 1, &shrunk)).unwrap();
            }
            if drain {
                out.extend(
                    r.drain_exports_at((w + 1) * SPAN)
                        .iter()
                        .map(Summary::encode),
                );
            }
        }
    }
    out.extend(r.flush_exports().iter().map(Summary::encode));
    out
}

/// The upstream view of one stream: a collector plus a super-relay
/// (for re-export bytes).
fn upstream(sites: u16, stream: &[Vec<u8>]) -> (Collector, Vec<Vec<u8>>) {
    let mut c = Collector::new(Schema::five_feature(), CFG());
    for frame in stream {
        c.apply_bytes(frame).unwrap();
    }
    let mut root = Relay::new(RelayConfig {
        name: "root".into(),
        agg_site: 2_000,
        expected: (0..sites).collect(),
        schema: Schema::five_feature(),
        tree: CFG(),
        export: ExportConfig::default(),
    });
    for frame in stream {
        root.ingest_frame(frame).unwrap();
    }
    let re_exports = root.flush_exports().iter().map(Summary::encode).collect();
    (c, re_exports)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance pin: delta stream ≡ full stream at the receiver,
    /// bytes and all — stored windows, merged answers, re-exports —
    /// across random interleavings, replacements, and base loss.
    #[test]
    fn delta_stream_reconstructs_byte_identically_to_full_stream(case in arb_case()) {
        let delta_stream = export_stream(&case, ExportMode::Delta);
        let full_stream = export_stream(&case, ExportMode::Full);
        prop_assert_eq!(delta_stream.len(), full_stream.len(),
            "same drains, same export count");

        let (dc, d_re) = upstream(case.0, &delta_stream);
        let (fc, f_re) = upstream(case.0, &full_stream);

        // Stored windows are byte-identical slot by slot.
        prop_assert_eq!(dc.window_keys(), fc.window_keys());
        for (start, site) in dc.window_keys() {
            prop_assert_eq!(
                dc.window_tree(start, site).unwrap().encode(),
                fc.window_tree(start, site).unwrap().encode(),
                "window {} differs", start
            );
            prop_assert_eq!(
                dc.window_epoch(start, site),
                fc.window_epoch(start, site)
            );
            prop_assert_eq!(
                dc.window_coverage(start),
                fc.window_coverage(start)
            );
        }
        // Merged answers are byte-identical.
        prop_assert_eq!(
            dc.merged(None, 0, u64::MAX).encode(),
            fc.merged(None, 0, u64::MAX).encode()
        );
        // And so are the upstream's own re-exported wire bytes.
        prop_assert_eq!(d_re, f_re);

        // The deltas actually save wire bytes whenever any window was
        // re-exported incrementally (replacements force full-frame
        // fallbacks, so only require ≤ in general).
        let d_bytes: usize = delta_stream.iter().map(Vec::len).sum();
        let f_bytes: usize = full_stream.iter().map(Vec::len).sum();
        prop_assert!(d_bytes <= f_bytes, "delta {} > full {}", d_bytes, f_bytes);
    }
}

/// The same pin through the whole site → relay → root sim: a per-frame
/// delta-drained hierarchy and a full-re-export hierarchy hand a
/// super-root byte-identical state, and both agree with the flat
/// collector on answers.
#[test]
fn incremental_hierarchy_matches_full_hierarchy_and_flat() {
    use flowdist::sim::SimConfig;
    use flowdist::TransferMode;
    use flownet::FlowCacheConfig;
    use flowrelay::{DrainCadence, HierarchyOptions, RelayTopology};
    use flowtrace::{profile, TraceGen};

    let cfg = SimConfig {
        sites: 6,
        window_ms: 1_000,
        schema: Schema::five_feature(),
        tree: Config::with_budget(1 << 20),
        transfer: TransferMode::Full,
        cache: FlowCacheConfig {
            idle_timeout_ms: 500,
            active_timeout_ms: 2_000,
            max_entries: 10_000,
        },
    };
    let mut tcfg = profile::backbone(31);
    tcfg.packets = 12_000;
    tcfg.flows = 1_500;
    tcfg.mean_pps = 5_000.0;
    let trace: Vec<flownet::PacketMeta> = TraceGen::new(tcfg).collect();
    let topo = RelayTopology::two_tier(6, 2);

    let run = |mode: ExportMode, cadence: DrainCadence| {
        flowrelay::run_hierarchy_with(
            &topo,
            cfg,
            trace.iter().copied(),
            HierarchyOptions {
                export: ExportConfig {
                    mode,
                    ..ExportConfig::default()
                },
                cadence,
            },
        )
        .expect("hierarchy runs")
    };
    let delta = run(ExportMode::Delta, DrainCadence::PerFrame);
    let full = run(ExportMode::Full, DrainCadence::PerFrame);

    // The root's incremental export streams reconstruct identically.
    let apply = |report: &flowrelay::HierarchyReport| {
        let mut c = Collector::new(cfg.schema, cfg.tree);
        for s in &report.root_exports {
            c.apply_bytes(&s.encode()).unwrap();
        }
        c
    };
    let (dc, fc) = (apply(&delta), apply(&full));
    assert_eq!(dc.window_keys(), fc.window_keys());
    assert_eq!(
        dc.merged(None, 0, u64::MAX).encode(),
        fc.merged(None, 0, u64::MAX).encode()
    );
    for (start, site) in dc.window_keys() {
        assert_eq!(
            dc.window_tree(start, site).unwrap().encode(),
            fc.window_tree(start, site).unwrap().encode()
        );
    }

    // Delta drains shipped strictly fewer root-export bytes (every
    // window re-exported once per contributing downstream).
    let bytes = |r: &flowrelay::HierarchyReport| -> usize {
        r.root_exports.iter().map(|s| s.encoded_size()).sum()
    };
    assert!(
        bytes(&delta) < bytes(&full),
        "delta {} vs full {}",
        bytes(&delta),
        bytes(&full)
    );
    assert!(delta.root().ledger().delta_exports > 0);

    // And the flat reference agrees on the answers.
    let flat = flowdist::sim::run(cfg, trace.iter().copied()).unwrap();
    assert_eq!(
        dc.merged(None, 0, u64::MAX).total(),
        flat.collector.merged(None, 0, u64::MAX).total()
    );
    assert_eq!(
        delta.root().collector().total().packets,
        flat.collector.merged(None, 0, u64::MAX).total().packets
    );
}

mod random_topologies {
    use super::*;
    use flowrelay::RelayTopology;

    /// Random multi-tier grids with per-frame drain cascades: sites ×
    /// windows cells, random fanout, every frame followed by a
    /// bottom-up drain — the root's v3 stream under Delta vs Full
    /// export must hand a super-collector byte-identical state, and
    /// each window must equal the flat merge of its site trees.
    type Grid = (u16, u16, u64, Vec<Vec<(FlowKey, Popularity)>>);

    fn arb_grid() -> impl Strategy<Value = Grid> {
        proptest::strategy::fn_strategy(|rng: &mut proptest::TestRng| {
            let sites = Strategy::pick(&(2u16..=8), rng);
            let fanout = Strategy::pick(&(1u16..=4), rng);
            let windows = Strategy::pick(&(1u64..=3), rng);
            let inserts = arb_inserts();
            let cells = (0..sites as u64 * windows)
                .map(|_| Strategy::pick(&inserts, rng))
                .collect();
            (sites, fanout, windows, cells)
        })
    }

    /// Drives one grid through a hierarchy in `mode` with a drain
    /// cascade after every site frame; returns the root's encoded
    /// export stream and the flat reference collector.
    fn run(grid: &Grid, mode: ExportMode) -> (Vec<Vec<u8>>, Collector) {
        let (sites, fanout, windows, cells) = grid;
        let topo = RelayTopology::two_tier(*sites, *fanout);
        topo.validate().unwrap();
        let mut relays: Vec<Relay> = (0..topo.relays.len())
            .map(|i| {
                Relay::from_topology_with(
                    &topo,
                    i,
                    Schema::five_feature(),
                    CFG(),
                    ExportConfig {
                        mode,
                        linger_ms: 0,
                        max_bases: 64,
                        ..ExportConfig::default()
                    },
                )
            })
            .collect();
        let mut order: Vec<usize> = (0..relays.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(topo.depth_of(i)));
        let root = topo.root();
        let mut flat = Collector::new(Schema::five_feature(), CFG());
        let mut stream: Vec<Vec<u8>> = Vec::new();
        for w in 0..*windows {
            for s in 0..*sites {
                let cell = &cells[(s as u64 * windows + w) as usize];
                let frame = site_summary(s, w, w + 1, cell).encode();
                flat.apply_bytes(&frame).unwrap();
                relays[topo.owner_of(s).unwrap()]
                    .ingest_frame(&frame)
                    .unwrap();
                // Bottom-up cascade after every arrival.
                for &idx in &order {
                    let exports = relays[idx].drain_exports_at((w + 1) * SPAN);
                    if idx == root {
                        stream.extend(exports.iter().map(Summary::encode));
                        continue;
                    }
                    let parent = topo
                        .index_of(topo.relays[idx].parent.as_deref().unwrap())
                        .unwrap();
                    for e in exports {
                        relays[parent].ingest_frame(&e.encode()).unwrap();
                    }
                }
            }
        }
        for &idx in &order {
            let exports = relays[idx].flush_exports();
            if idx == root {
                stream.extend(exports.iter().map(Summary::encode));
                continue;
            }
            let parent = topo
                .index_of(topo.relays[idx].parent.as_deref().unwrap())
                .unwrap();
            for e in exports {
                relays[parent].ingest_frame(&e.encode()).unwrap();
            }
        }
        (stream, flat)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn hierarchy_delta_stream_equals_full_stream_and_flat(grid in arb_grid()) {
            let (delta_stream, flat) = run(&grid, ExportMode::Delta);
            let (full_stream, _) = run(&grid, ExportMode::Full);
            prop_assert_eq!(delta_stream.len(), full_stream.len());

            let apply = |stream: &[Vec<u8>]| {
                let mut c = Collector::new(Schema::five_feature(), CFG());
                for f in stream {
                    c.apply_bytes(f).unwrap();
                }
                c
            };
            let (dc, fc) = (apply(&delta_stream), apply(&full_stream));
            prop_assert_eq!(dc.window_keys(), fc.window_keys());
            for (start, site) in dc.window_keys() {
                let d = dc.window_tree(start, site).unwrap().encode();
                prop_assert_eq!(&d, &fc.window_tree(start, site).unwrap().encode());
                // The hierarchy invariant holds window by window: the
                // super-collector's reconstructed aggregate equals the
                // flat merge of the same site windows.
                prop_assert_eq!(
                    &d,
                    &flat.merged(None, start, start + SPAN).encode(),
                    "window {} diverged from flat", start
                );
            }
            let d_bytes: usize = delta_stream.iter().map(Vec::len).sum();
            let f_bytes: usize = full_stream.iter().map(Vec::len).sum();
            prop_assert!(d_bytes <= f_bytes);
        }
    }
}
