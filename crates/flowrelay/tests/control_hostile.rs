//! Hostile-peer tests for the ack/rebase control protocol: malformed
//! control frames against the serving loop, lying acks against the
//! shipper, and a full export chain driven through a dropping,
//! duplicating, flapping proxy.

mod common;

use common::{spawn_proxy, ProxyConfig};
use flowdist::control::{ControlFrame, SlotPos, CONTROL_MAGIC, FEATURE_ACKS};
use flowdist::net::{read_frame, write_frame};
use flowdist::{Summary, SummaryKind, WindowId};
use flowkey::{FlowKey, Schema};
use flowrelay::server::serve_acked_ingest;
use flowrelay::{
    BackoffConfig, ExportConfig, ExportShipper, Relay, RelayConfig, ShipperConfig, SteadyClock,
};
use flowtree_core::{Config, FlowTree, Popularity};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const SPAN: u64 = 1_000;

fn site_summary(site: u16, window: u64, hosts: std::ops::Range<u8>, seq: u64) -> Summary {
    let mut tree = FlowTree::new(Schema::five_feature(), Config::with_budget(4_096));
    for h in hosts {
        let key: FlowKey =
            format!("src=10.{site}.0.{h}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp")
                .parse()
                .unwrap();
        tree.insert(&key, Popularity::new(1 + h as i64, 100, 1));
    }
    Summary {
        site,
        window: WindowId {
            start_ms: window * SPAN,
            span_ms: SPAN,
        },
        seq,
        kind: SummaryKind::Full,
        provenance: None,
        epoch: None,
        tree,
    }
}

fn relay(name: &str, agg: u16, expected: &[u16]) -> Relay {
    Relay::new(RelayConfig {
        name: name.into(),
        agg_site: agg,
        expected: expected.to_vec(),
        schema: Schema::five_feature(),
        tree: Config::with_budget(100_000),
        export: ExportConfig::default(),
    })
}

/// Spawns an in-process acked-ingest server; returns its address.
fn spawn_server(relay: Arc<Mutex<Relay>>) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { continue };
            let relay = Arc::clone(&relay);
            std::thread::spawn(move || {
                let _ = serve_acked_ingest(&mut conn, &relay);
            });
        }
    });
    addr
}

/// A hostile client cannot crash or desynchronize the serving loop:
/// garbage control frames are counted, good frames keep being acked.
#[test]
fn serving_loop_survives_hostile_control_frames() {
    let relay = Arc::new(Mutex::new(relay("up", 200, &[0, 1])));
    let addr = spawn_server(Arc::clone(&relay));
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Handshake.
    write_frame(
        &mut stream,
        &ControlFrame::Hello {
            features: FEATURE_ACKS,
        }
        .encode(),
    )
    .unwrap();
    let reply = read_frame(&mut reader).unwrap().expect("hello reply");
    assert!(matches!(
        ControlFrame::decode(&reply),
        Ok(ControlFrame::Hello { features }) if features & FEATURE_ACKS != 0
    ));

    // Hostile battery: truncated control, unknown type, zero-span ack,
    // an ack (wrong direction), and a malformed summary.
    let mut bad_type = ControlFrame::Hello { features: 0 }.encode();
    bad_type[5] = 0x7F;
    let mut zero_span = ControlFrame::Ack(SlotPos {
        window_start_ms: 0,
        span_ms: SPAN,
        exporter: 0,
        epoch: 1,
    })
    .encode();
    // Rewrite the span varint (offset 6 after magic+ver+type) to 0.
    zero_span[7] = 0;
    let wrong_direction = ControlFrame::Ack(SlotPos {
        window_start_ms: 0,
        span_ms: SPAN,
        exporter: 0,
        epoch: 1,
    })
    .encode();
    for hostile in [
        &CONTROL_MAGIC[..3].to_vec(),
        &bad_type,
        &zero_span,
        &wrong_direction,
        &b"FSUMgarbage".to_vec(),
    ] {
        write_frame(&mut stream, hostile).unwrap();
    }

    // A good frame after the battery: still served, still acked.
    let good = site_summary(0, 0, 0..3, 1).encode();
    write_frame(&mut stream, &good).unwrap();
    let ack = read_frame(&mut reader).unwrap().expect("ack after battery");
    let Ok(ControlFrame::Ack(pos)) = ControlFrame::decode(&ack) else {
        panic!("expected an ack, got {ack:?}");
    };
    assert_eq!((pos.window_start_ms, pos.exporter), (0, 0));

    // A duplicate is acked (replay), not re-applied.
    write_frame(&mut stream, &good).unwrap();
    let ack2 = read_frame(&mut reader).unwrap().expect("replay ack");
    assert!(matches!(
        ControlFrame::decode(&ack2),
        Ok(ControlFrame::Ack(_))
    ));
    let guard = relay.lock().unwrap();
    assert_eq!(guard.ledger().replayed, 1);
    // Hostile *control* frames are tallied by the serving loop and never
    // reach the relay; the two non-control garbage blobs do, as rejects.
    assert_eq!(guard.ledger().rejected, 2, "garbage summaries were counted");
    assert_eq!(guard.collector().window_seq(0, 0), 1);
}

/// A legacy sender that never says hello gets pure one-way silence —
/// no unexpected frames appear on its stream.
#[test]
fn legacy_sender_sees_no_control_frames() {
    let relay = Arc::new(Mutex::new(relay("up", 200, &[0])));
    let addr = spawn_server(Arc::clone(&relay));
    let mut stream = TcpStream::connect(&addr).unwrap();
    write_frame(&mut stream, &site_summary(0, 0, 0..3, 1).encode()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // The frame must apply, and nothing must come back.
    for _ in 0..100 {
        if relay.lock().unwrap().collector().window_seq(0, 0) == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(relay.lock().unwrap().collector().window_seq(0, 0), 1);
    match read_frame(&mut reader) {
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut => {}
        other => panic!("legacy stream must stay silent, got {other:?}"),
    }
}

/// A lying upstream cannot trick the shipper into releasing frames it
/// never applied: stale acks, zero-epoch acks against v3 frames, and
/// unknown-window rebase requests are counted and ignored; a real ack
/// still drains.
#[test]
fn shipper_rejects_lying_acks_from_a_scripted_upstream() {
    // Scripted upstream: completes the handshake, fires a battery of
    // bogus control frames, then acks the frame for real.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let script = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let hello = read_frame(&mut reader).unwrap().expect("hello");
        assert!(matches!(
            ControlFrame::decode(&hello),
            Ok(ControlFrame::Hello { .. })
        ));
        write_frame(
            &mut conn,
            &ControlFrame::Hello {
                features: FEATURE_ACKS,
            }
            .encode(),
        )
        .unwrap();
        let data = read_frame(&mut reader).unwrap().expect("the export frame");
        let s = Summary::decode(&data, Config::with_budget(100_000)).unwrap();
        let epoch = s.epoch.unwrap().epoch;
        let pos = |w: u64, e: u64| SlotPos {
            window_start_ms: w,
            span_ms: SPAN,
            exporter: s.site,
            epoch: e,
        };
        // Lies first: unknown window, zero-epoch against a v3 frame,
        // rebase-request for a window nobody exported.
        for lie in [
            ControlFrame::Ack(pos(999 * SPAN, epoch)),
            ControlFrame::Ack(pos(s.window.start_ms, 0)),
            ControlFrame::RebaseRequest(pos(777 * SPAN, 0)),
        ] {
            write_frame(&mut conn, &lie.encode()).unwrap();
        }
        // Then the truth.
        write_frame(
            &mut conn,
            &ControlFrame::Ack(pos(s.window.start_ms, epoch)).encode(),
        )
        .unwrap();
        // Hold the connection so the shipper can drain the acks.
        std::thread::sleep(Duration::from_millis(500));
    });

    let relay = Mutex::new(relay("t1", 100, &[0]));
    relay
        .lock()
        .unwrap()
        .apply(site_summary(0, 0, 0..3, 1))
        .unwrap();
    let exports = relay.lock().unwrap().flush_exports();
    assert_eq!(exports.len(), 1);

    let mut shipper = ExportShipper::new(
        ShipperConfig {
            upstream: addr,
            handshake_ms: 2_000,
            stall_ms: 10_000,
            tree: Config::with_budget(100_000),
            backoff: BackoffConfig::default(),
        },
        flowdist::SpillQueue::in_memory(flowdist::SpillConfig::default()),
        7,
    );
    assert!(shipper.enqueue(&exports[0]).is_empty());
    let clock = SteadyClock::new();
    for _ in 0..200 {
        shipper.pump(&relay, clock.now_ms());
        if shipper.pending_len() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    script.join().unwrap();
    assert_eq!(shipper.pending_len(), 0, "the true ack drained the frame");
    let stats = shipper.stats();
    assert_eq!(stats.acked_frames, 1);
    assert!(stats.stale_acks >= 1, "unknown-window ack was not believed");
    assert!(
        stats.hostile_acks >= 1,
        "zero-epoch ack cannot cover a v3 frame"
    );
    assert_eq!(stats.rebase_unknown, 1);
    assert_eq!(stats.rebase_honored, 0);
    // And the relay's ledger saw the ack land.
    assert_eq!(relay.lock().unwrap().rewind_unacked_exports(), 0);
}

/// The full export chain through a dropping, duplicating, flapping
/// proxy: every window still converges at the upstream, byte-identical
/// to a directly-fed reference, because unacked frames are resent and
/// replays are deduped.
#[test]
fn export_chain_converges_through_lossy_duplicating_proxy() {
    let upstream = Arc::new(Mutex::new(relay("up", 200, &[0, 1])));
    let up_addr = spawn_server(Arc::clone(&upstream));
    let proxy = spawn_proxy(
        up_addr,
        // Flap aggressively: resend-all-unacked on reconnect is the
        // shipper's recovery path for dropped frames and dropped acks,
        // so a session has to die for the loss to heal.
        ProxyConfig {
            drop_percent: 25,
            dup_percent: 25,
            flap_after: 3,
            seed: 42,
        },
    );

    let relay = Mutex::new(relay("t1", 100, &[0, 1]));
    let mut reference = self::relay("ref", 200, &[0, 1]);
    let mut shipper = ExportShipper::new(
        // A short ack-stall window: dropped frames and dropped acks on
        // a connection too quiet to flap are healed by the recycle.
        ShipperConfig {
            upstream: proxy.addr.clone(),
            handshake_ms: 2_000,
            stall_ms: 150,
            tree: Config::with_budget(100_000),
            backoff: BackoffConfig {
                base_ms: 5,
                max_ms: 50,
            },
        },
        flowdist::SpillQueue::in_memory(flowdist::SpillConfig::default()),
        11,
    );
    let clock = SteadyClock::new();

    // Several windows, with late re-exports mixed in.
    for round in 1..=3u64 {
        for w in 0..4u64 {
            for site in 0..2u16 {
                let hosts = 0..(2 * round + site as u64) as u8;
                let _ = relay
                    .lock()
                    .unwrap()
                    .apply(site_summary(site, w, hosts, round));
            }
        }
        for e in relay.lock().unwrap().flush_exports() {
            // The reference upstream is fed directly, no network.
            reference.ingest_classified(&e.encode());
            assert!(shipper.enqueue(&e).is_empty());
        }
        for _ in 0..1_200 {
            shipper.pump(&relay, clock.now_ms());
            if shipper.pending_len() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            shipper.pending_len(),
            0,
            "round {round} drained through the weather (stats: {:?})",
            shipper.stats()
        );
    }

    assert_eq!(
        shipper.acked_mode(),
        Some(true),
        "hello survives the proxy, sessions negotiate acks"
    );
    let up = upstream.lock().unwrap();
    for w in 0..4u64 {
        let got = up
            .collector()
            .window_tree(w * SPAN, 100)
            .expect("window delivered")
            .encode();
        let want = reference
            .collector()
            .window_tree(w * SPAN, 100)
            .expect("reference window")
            .encode();
        assert_eq!(got, want, "window {w} byte-identical through the weather");
        assert_eq!(
            up.collector().window_epoch(w * SPAN, 100),
            reference.collector().window_epoch(w * SPAN, 100),
            "window {w} applied-frame count matches: duplicates were deduped"
        );
    }
    let dropped = proxy
        .stats
        .dropped
        .load(std::sync::atomic::Ordering::Relaxed);
    let duplicated = proxy
        .stats
        .duplicated
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        dropped > 0 && duplicated > 0,
        "the weather actually happened: dropped {dropped}, duplicated {duplicated}"
    );
}
