//! Observability conformance against live nodes: every `/metrics`
//! page a fleet serves must obey the Prometheus exposition rules
//! ([`flowrelay::fleetview::validate_exposition`]), the JSON stats
//! view must agree with the legacy plaintext one value for value,
//! the hot-path histograms must observe real work (export ship→ack
//! RTT, query latency), `/health` must report uptime and build
//! version, and `/events` must record operational events.

use flowdist::ops::ops_request;
use flowdist::runtime::{SiteNodeConfig, SiteRuntime};
use flownet::FlowRecord;
use flowrelay::fleetview;
use flowrelay::server::query_remote;
use flowrelay::spec::FleetSpec;
use flowrelay::NodeRuntime;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

const SPEC: &str = "\
[defaults]
linger-ms = 100
drain-every-ms = 50
window-ms = 2000
batch = 32
stats = 127.0.0.1:0

[site 0]
upstream = leaf
[site 1]
upstream = leaf

[relay leaf]
agg-site = 1001
sites = 0,1
parent = root
[relay root]
agg-site = 2000
";

struct Fleet {
    relays: Vec<NodeRuntime>,
    sites: Vec<SiteRuntime>,
}

/// Boots sites → leaf relay → root the way `flowctl run` would, stats
/// endpoints included.
fn boot() -> Fleet {
    let spec = FleetSpec::parse(SPEC).expect("spec parses");
    let relays = spec.boot_relays().expect("relays boot");
    let ingest: HashMap<String, SocketAddr> = relays
        .iter()
        .map(|rt| (rt.name().to_string(), rt.ingest_addr()))
        .collect();
    let mut sites = Vec::new();
    for s in &spec.sites {
        let mut cfg = SiteNodeConfig::new(s.site, ingest[&s.upstream].to_string());
        cfg.listen = s.listen.clone();
        cfg.stats = s.stats.clone();
        cfg.window_ms = s.window_ms;
        cfg.budget = s.budget;
        cfg.batch = s.batch;
        sites.push(SiteRuntime::start(cfg).expect("site boots"));
    }
    Fleet { relays, sites }
}

/// Deterministic traffic spanning three site windows so the first one
/// closes and ships without waiting for a drain.
fn send_traffic(sender: &UdpSocket, fleet: &Fleet, now_ms: u64, window_ms: u64, records: usize) {
    let w0 = (now_ms / window_ms).saturating_sub(3) * window_ms;
    for site in &fleet.sites {
        let recs: Vec<FlowRecord> = (0..records)
            .map(|i| {
                let widx = (i * 3 / records.max(1)) as u64;
                let ts = w0 + window_ms * widx + 10 + (i as u64 % 7);
                let mut r = FlowRecord::v4(
                    [10, site.site() as u8, (i % 200) as u8, 1],
                    [192, 0, 2, (i % 100) as u8],
                    1024 + (i % 500) as u16,
                    443,
                    6,
                    1 + (i % 5) as u64,
                    64 * (1 + (i % 5) as u64),
                );
                r.first_ms = ts;
                r.last_ms = ts;
                r
            })
            .collect();
        flowdist::net::export_netflow(sender, site.ingest_addr(), &recs, now_ms).expect("udp send");
    }
}

fn get(addr: &str, path: &str) -> (u16, String) {
    ops_request(addr, "GET", path, "").unwrap_or_else(|e| panic!("GET {path} on {addr}: {e}"))
}

/// `key value` out of a plaintext stats body.
fn stat_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    body.lines().find_map(|l| {
        let rest = l.strip_prefix(key)?;
        rest.starts_with(' ').then(|| rest.trim())
    })
}

/// `"key": value` out of the flat stats JSON object, as raw text.
fn json_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = body.find(&needle)? + needle.len();
    let rest = body[at..].trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Every numeric plaintext line must appear in the JSON view with the
/// same value — the two expositions are one snapshot, not two.
fn assert_json_matches_plaintext(addr: &str) {
    let (s1, text) = get(addr, "/stats");
    let (s2, json) = get(addr, "/stats.json");
    assert_eq!((s1, s2), (200, 200), "both stats views serve on {addr}");
    let mut checked = 0;
    for line in text.lines() {
        let Some((key, value)) = line.split_once(' ') else {
            continue;
        };
        let value = value.trim();
        if value.parse::<u64>().is_err() {
            continue; // strings and booleans render differently by design
        }
        let js = json_field(&json, key)
            .unwrap_or_else(|| panic!("{addr}: plaintext key {key} missing from JSON:\n{json}"));
        assert_eq!(js, value, "{addr}: {key} differs between views");
        checked += 1;
    }
    assert!(checked > 5, "{addr}: round-trip compared {checked} keys");
}

fn assert_health_reports_uptime_and_version(addr: &str, what: &str) {
    let (status, body) = get(addr, "/health");
    assert_eq!(status, 200, "{what} health serves");
    assert!(body.contains("ok true"), "{what} healthy: {body}");
    let uptime: u64 = stat_field(&body, "uptime_ms")
        .unwrap_or_else(|| panic!("{what} health has no uptime_ms: {body}"))
        .parse()
        .expect("uptime_ms is a number");
    let _ = uptime; // zero is legal right after boot; presence is the contract
    assert_eq!(
        stat_field(&body, "version"),
        Some(env!("CARGO_PKG_VERSION")),
        "{what} health reports the build version: {body}"
    );
}

#[test]
fn live_fleet_serves_conformant_metrics_and_matching_views() {
    let fleet = boot();
    let root = &fleet.relays[0];
    let leaf = fleet
        .relays
        .iter()
        .find(|r| r.name() == "leaf")
        .expect("leaf booted");
    let root_stats = root.stats_addr().expect("root stats").to_string();
    let leaf_stats = leaf.stats_addr().expect("leaf stats").to_string();
    let site_stats = fleet.sites[0].stats_addr().expect("site stats").to_string();

    let sender = UdpSocket::bind("127.0.0.1:0").expect("udp bind");
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    send_traffic(&sender, &fleet, now_ms, 2_000, 200);

    // Wait for aggregates to reach the root, then query it once so the
    // query-latency histogram has something to show.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let m = fleetview::scrape(&root_stats).expect("root scrape");
        if m.get("flowtree_relay_frames_total") > 0.0 {
            break;
        }
        assert!(Instant::now() < deadline, "no aggregates reached the root");
        std::thread::sleep(Duration::from_millis(50));
    }
    let mut conn = TcpStream::connect(root.query_addr()).expect("connect query");
    let answer = query_remote(&mut conn, "pop")
        .expect("transport ok")
        .expect("valid query");
    assert!(answer.contains("popularity: "), "root answered: {answer}");

    // Every node: the scrape itself runs validate_exposition, so a
    // malformed page fails here. Identity comes from build_info.
    let scrape_all = || -> Vec<fleetview::NodeMetrics> {
        let mut nodes = Vec::new();
        for rt in &fleet.relays {
            nodes.push(fleetview::scrape(&rt.stats_addr().unwrap().to_string()).expect("relay"));
        }
        for site in &fleet.sites {
            nodes.push(fleetview::scrape(&site.stats_addr().unwrap().to_string()).expect("site"));
        }
        nodes
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    let nodes = loop {
        let nodes = scrape_all();
        let rtt: f64 = nodes
            .iter()
            .filter(|n| n.role == "relay")
            .map(|n| n.get("flowtree_export_rtt_seconds_count"))
            .sum();
        let queries: f64 = nodes
            .iter()
            .filter(|n| n.role == "root")
            .map(|n| n.get("flowtree_query_seconds_count"))
            .sum();
        if rtt > 0.0 && queries > 0.0 {
            break nodes;
        }
        assert!(
            Instant::now() < deadline,
            "hot-path histograms never filled: rtt={rtt} queries={queries}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(nodes.len(), 4, "two relays, two sites scraped");
    for n in &nodes {
        assert_eq!(n.version, env!("CARGO_PKG_VERSION"), "{} version", n.node);
        assert!(
            n.get("flowtree_uptime_seconds") >= 0.0,
            "{} exposes uptime",
            n.node
        );
    }
    let site_node = nodes.iter().find(|n| n.role == "site").expect("a site");
    assert!(
        site_node.get("flowtree_ingest_records_total") > 0.0,
        "sites counted the records"
    );
    assert!(
        site_node.get("flowtree_decode_seconds_count") > 0.0,
        "decode latency histogram observed the packets"
    );

    // The per-tier fleet view folds all four nodes.
    let rows = fleetview::aggregate(&nodes);
    assert_eq!(rows.len(), 3, "site, relay, root tiers");
    assert!(rows[0].ingested > 0, "site tier ingested records");
    let table = fleetview::render_table(&rows);
    assert!(table.starts_with("TIER"), "table renders: {table}");

    // JSON and plaintext stats are one snapshot on every node kind.
    assert_json_matches_plaintext(&root_stats);
    assert_json_matches_plaintext(&leaf_stats);
    assert_json_matches_plaintext(&site_stats);

    // /health carries uptime and build version on both node kinds.
    assert_health_reports_uptime_and_version(&root_stats, "root");
    assert_health_reports_uptime_and_version(&site_stats, "site 0");

    // A reload is an operational event; /events must record it.
    let (status, _) =
        ops_request(&root_stats, "POST", "/reload", "linger-ms=60\n").expect("reload request");
    assert_eq!(status, 200, "reload applies");
    let (status, events) = get(&root_stats, "/events");
    assert_eq!(status, 200, "/events serves");
    assert!(
        events.lines().any(|l| l.contains("reload")),
        "reload recorded in the event ring:\n{events}"
    );

    for site in fleet.sites {
        site.drain();
    }
    for rt in fleet.relays.into_iter().rev() {
        rt.drain(Duration::from_secs(30));
    }
}
