//! The crash-safety property of the durable export tier: kill any
//! node between any two protocol steps, restart it from its journal
//! and spill, and the root converges to a state **byte-identical** to
//! an uninterrupted run of the same schedule — stored window trees,
//! epochs, seqs, merged views, and re-export bytes.
//!
//! The protocol is driven manually in-process (no TCP): a journaled
//! tier-1 relay drains into a disk spill, a journaled root applies
//! frames through `ingest_classified`, and acks are matched exactly
//! the way the shipper matches them. Crashes are a drop + reopen at
//! op granularity — the journal and spill write unbuffered, so the
//! on-disk state at a drop is the on-disk state at a `kill -9`
//! (the relayd smoke test covers the real SIGKILL).

mod common;

use common::Rng;
use flowdist::{FsyncPolicy, SpillConfig, SpillQueue, Summary, SummaryKind, WindowId};
use flowkey::{FlowKey, Schema};
use flowrelay::{ExportConfig, FrameOutcome, JournalConfig, Relay, RelayConfig};
use flowtree_core::{Config, FlowTree, Popularity};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const SPAN: u64 = 1_000;
const HORIZON_MS: u64 = 100 * SPAN;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flowrelay-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn site_summary(site: u16, window: u64, hosts: u8, seq: u64) -> Summary {
    let mut tree = FlowTree::new(Schema::five_feature(), Config::with_budget(4_096));
    for h in 0..hosts {
        let key: FlowKey =
            format!("src=10.{site}.0.{h}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp")
                .parse()
                .unwrap();
        tree.insert(&key, Popularity::new(1 + h as i64, 100, 1));
    }
    Summary {
        site,
        window: WindowId {
            start_ms: window * SPAN,
            span_ms: SPAN,
        },
        seq,
        kind: SummaryKind::Full,
        provenance: None,
        epoch: None,
        tree,
    }
}

fn tier_cfg(name: &str, agg: u16, expected: &[u16]) -> RelayConfig {
    RelayConfig {
        name: name.into(),
        agg_site: agg,
        expected: expected.to_vec(),
        schema: Schema::five_feature(),
        tree: Config::with_budget(100_000),
        export: ExportConfig::default(),
    }
}

/// The tier-1 node: journaled relay + disk spill + the shipper's
/// pending-frame metadata (rebuilt from spill bytes after a crash,
/// exactly like `ExportShipper::new`).
struct Tier {
    relay: Relay,
    spill: SpillQueue,
    /// spill seq → (window_start_ms, exporter, epoch).
    meta: BTreeMap<u64, (u64, u16, u64)>,
}

fn open_tier(dir: &Path, crashed: bool) -> Tier {
    let (relay, _report) = Relay::open_journaled(
        tier_cfg("t1", 100, &[0, 1]),
        &dir.join("journal"),
        JournalConfig::default(),
    )
    .expect("open tier journal");
    let spill = SpillQueue::open(
        &dir.join("spill"),
        SpillConfig {
            fsync: FsyncPolicy::Never,
            ..SpillConfig::default()
        },
    )
    .expect("open tier spill");
    let mut meta = BTreeMap::new();
    for rec in spill.pending() {
        let s = Summary::decode(&rec.bytes, Config::with_budget(100_000)).unwrap();
        meta.insert(
            rec.seq,
            (
                s.window.start_ms,
                s.site,
                s.epoch.map(|e| e.epoch).unwrap_or(0),
            ),
        );
    }
    let mut tier = Tier { relay, spill, meta };
    if crashed {
        // What relayd does on restart with an upstream configured:
        // anything exported but never acked is re-queued.
        tier.relay.rewind_unacked_exports();
    }
    tier
}

fn open_root(dir: &Path) -> Relay {
    Relay::open_journaled(
        tier_cfg("root", 200, &[0, 1]),
        &dir.join("journal"),
        JournalConfig::default(),
    )
    .expect("open root journal")
    .0
}

/// Drain the tier's exports into its spill, shipper-style.
fn drain(tier: &mut Tier) {
    for e in tier.relay.flush_exports() {
        let m = (
            e.window.start_ms,
            e.site,
            e.epoch.map(|h| h.epoch).unwrap_or(0),
        );
        let seq = tier.spill.next_seq();
        tier.spill.push(e.encode());
        tier.meta.insert(seq, m);
    }
}

/// Deliver every spilled frame to the root in order, applying the
/// shipper's non-positional ack matching to releases.
fn deliver(tier: &mut Tier, root: &mut Relay) {
    let pending: Vec<(u64, Vec<u8>)> = tier
        .spill
        .pending()
        .map(|r| (r.seq, r.bytes.clone()))
        .collect();
    for (_, bytes) in pending {
        match root.ingest_classified(&bytes) {
            FrameOutcome::Applied(pos) | FrameOutcome::Replayed(pos) => {
                let candidates: Vec<u64> = tier
                    .meta
                    .iter()
                    .filter(|(_, m)| m.0 == pos.window_start_ms && m.1 == pos.exporter)
                    .map(|(s, _)| *s)
                    .collect();
                if pos.epoch == 0 {
                    if let Some(seq) = candidates
                        .iter()
                        .copied()
                        .find(|s| tier.meta.get(s).is_some_and(|m| m.2 == 0))
                    {
                        tier.meta.remove(&seq);
                    }
                } else {
                    for seq in candidates {
                        if tier.meta.get(&seq).is_some_and(|m| m.2 <= pos.epoch) {
                            tier.meta.remove(&seq);
                        }
                    }
                }
                tier.relay.note_shipped(pos.window_start_ms, pos.epoch);
                let floor = tier
                    .meta
                    .keys()
                    .next()
                    .copied()
                    .unwrap_or_else(|| tier.spill.next_seq());
                tier.spill.ack_through(floor);
            }
            FrameOutcome::NeedsRebase(pos) => {
                // Orphan delta: no ack, ask the tier to rewind the
                // window. The rebasing full frame's later epoch-ack
                // clears this frame too (non-positional matching).
                tier.relay.request_rebase(pos.window_start_ms);
            }
            FrameOutcome::Rejected => panic!("the tier shipped a malformed frame"),
        }
    }
}

/// Everything observable about the root, as labeled byte sections:
/// stored slots (tree, epoch, seq) in sorted order, the merged view,
/// and what it would re-export upward.
fn fingerprint(root: &mut Relay) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let mut keys = root.collector().window_keys();
    keys.sort_unstable();
    for (w, site) in keys {
        out.push((
            format!("slot {w}/{site} epoch"),
            root.collector()
                .window_epoch(w, site)
                .to_le_bytes()
                .to_vec(),
        ));
        // Deliberately NOT fingerprinted: the slot's last-applied frame
        // seq. The tier's export seq is a global counter, and a rewound
        // re-export (same epoch, byte-identical tree) legitimately
        // carries a later seq — transport bookkeeping, not content.
        out.push((
            format!("slot {w}/{site} tree"),
            root.collector().window_tree(w, site).unwrap().encode(),
        ));
    }
    out.push((
        "merged view".into(),
        root.merged_view(None, 0, HORIZON_MS).encode(),
    ));
    for e in root.flush_exports() {
        out.push((
            format!("re-export {}/{}", e.window.start_ms, e.site),
            e.encode(),
        ));
    }
    out
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Site frame into the tier (site, window, hosts, per-slot seq).
    Ingest(u16, u64, u8, u64),
    Drain,
    Deliver,
}

/// A random but deterministic op schedule: ingest-heavy, with drains
/// and deliveries at random cadences and monotone-growing site
/// content (so the export stream mixes deltas and fulls).
fn schedule(seed: u64, ops: usize) -> Vec<Op> {
    let mut rng = Rng::new(seed);
    let mut seqs: BTreeMap<(u16, u64), u64> = BTreeMap::new();
    let mut hosts: BTreeMap<(u16, u64), u8> = BTreeMap::new();
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        match rng.below(5) {
            0..=2 => {
                let site = rng.below(2) as u16;
                let window = rng.below(3);
                let seq = seqs.entry((site, window)).or_insert(0);
                *seq += 1;
                let h = hosts.entry((site, window)).or_insert(0);
                *h = (*h + 1 + rng.below(3) as u8).min(20);
                out.push(Op::Ingest(site, window, *h, *seq));
            }
            3 => out.push(Op::Drain),
            _ => out.push(Op::Deliver),
        }
    }
    out
}

fn apply_op(op: Op, tier: &mut Tier, root: &mut Relay) {
    match op {
        Op::Ingest(site, window, hosts, seq) => {
            let frame = site_summary(site, window, hosts, seq).encode();
            match tier.relay.ingest_classified(&frame) {
                FrameOutcome::Applied(_) | FrameOutcome::Replayed(_) => {}
                other => panic!("site frame bounced at the tier: {other:?}"),
            }
        }
        Op::Drain => drain(tier),
        Op::Deliver => deliver(tier, root),
    }
}

/// Drain/deliver until nothing is pending anywhere.
fn quiesce(tier: &mut Tier, root: &mut Relay) {
    for _ in 0..50 {
        drain(tier);
        deliver(tier, root);
        if tier.spill.is_empty() && tier.meta.is_empty() {
            return;
        }
    }
    panic!(
        "did not quiesce: {} spilled, {} tracked",
        tier.spill.len(),
        tier.meta.len()
    );
}

/// One run of a schedule. `crashes` maps op index → which node dies
/// **before** that op executes.
fn run(tag: &str, ops: &[Op], crashes: &BTreeMap<usize, u8>) -> Vec<(String, Vec<u8>)> {
    let tdir = tmpdir(&format!("{tag}-tier"));
    let rdir = tmpdir(&format!("{tag}-root"));
    let mut tier = open_tier(&tdir, false);
    let mut root = open_root(&rdir);
    for (i, op) in ops.iter().enumerate() {
        match crashes.get(&i) {
            Some(0) => {
                drop(tier);
                tier = open_tier(&tdir, true);
            }
            Some(_) => {
                drop(root);
                root = open_root(&rdir);
            }
            None => {}
        }
        apply_op(*op, &mut tier, &mut root);
    }
    quiesce(&mut tier, &mut root);
    let print = fingerprint(&mut root);
    drop(tier);
    drop(root);
    let _ = std::fs::remove_dir_all(&tdir);
    let _ = std::fs::remove_dir_all(&rdir);
    print
}

/// The tentpole property: for a spread of seeds, kill the tier or the
/// root at random points mid-stream and the root's final state is
/// byte-identical to the uninterrupted run.
#[test]
fn crashed_runs_are_byte_identical_to_clean_runs() {
    for seed in 0..10u64 {
        let ops = schedule(seed, 40);
        let clean = run(&format!("clean-{seed}"), &ops, &BTreeMap::new());

        let mut rng = Rng::new(seed ^ 0xC4A5);
        let mut crashes = BTreeMap::new();
        for i in 0..ops.len() {
            if rng.chance(20) {
                crashes.insert(i, (rng.below(2)) as u8);
            }
        }
        assert!(!crashes.is_empty(), "seed {seed} scheduled no crashes");
        let crashed = run(&format!("crash-{seed}"), &ops, &crashes);
        let clean_names: Vec<&String> = clean.iter().map(|(n, _)| n).collect();
        let crashed_names: Vec<&String> = crashed.iter().map(|(n, _)| n).collect();
        assert_eq!(
            clean_names,
            crashed_names,
            "seed {seed}: observable sections differ after {} crashes",
            crashes.len()
        );
        for ((name, want), (_, got)) in clean.iter().zip(crashed.iter()) {
            assert_eq!(
                want,
                got,
                "seed {seed}: `{name}` diverged after {} crashes",
                crashes.len()
            );
        }
    }
}

/// Spilled frames survive a restart, drain strictly in order, and a
/// second delivery of the same bytes is pure replay — no epoch moves.
#[test]
fn spill_redelivery_is_in_order_and_idempotent() {
    let tdir = tmpdir("redeliver-tier");
    let rdir = tmpdir("redeliver-root");
    let mut tier = open_tier(&tdir, false);
    for seq in 1..=3u64 {
        let frame = site_summary(0, seq - 1, 3, 1).encode();
        tier.relay.ingest_classified(&frame);
        drain(&mut tier);
    }
    let before: Vec<Vec<u8>> = tier.spill.pending().map(|r| r.bytes.clone()).collect();
    assert_eq!(before.len(), 3);

    // Crash before anything ships.
    drop(tier);
    let mut tier = open_tier(&tdir, true);
    let after: Vec<Vec<u8>> = tier.spill.pending().map(|r| r.bytes.clone()).collect();
    assert_eq!(before, after, "spill recovered byte-identically, in order");

    // First delivery applies in window order; a forced second delivery
    // of the same bytes only replays.
    let mut root = open_root(&rdir);
    let mut outcomes = Vec::new();
    for bytes in &after {
        outcomes.push(root.ingest_classified(bytes));
    }
    for (i, o) in outcomes.iter().enumerate() {
        let FrameOutcome::Applied(pos) = o else {
            panic!("first delivery of frame {i} was {o:?}");
        };
        assert_eq!(pos.window_start_ms, i as u64 * SPAN, "drained in order");
    }
    let epochs: Vec<u64> = (0..3)
        .map(|w| root.collector().window_epoch(w * SPAN, 100))
        .collect();
    for bytes in &after {
        assert!(
            matches!(root.ingest_classified(bytes), FrameOutcome::Replayed(_)),
            "redelivery must be recognized as replay"
        );
    }
    let again: Vec<u64> = (0..3)
        .map(|w| root.collector().window_epoch(w * SPAN, 100))
        .collect();
    assert_eq!(epochs, again, "replays moved no epochs");
    deliver(&mut tier, &mut root);
    assert!(tier.spill.is_empty(), "acks drained the recovered spill");
    let _ = std::fs::remove_dir_all(&tdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

/// The shorter-retention regression: a root that already evicted a
/// window gets a delta based past its (now empty) ledger, answers
/// with a rebase-request, and the tier's full rebasing frame heals
/// the chain at the same epoch.
#[test]
fn shorter_retention_at_the_root_heals_via_rebase() {
    let tdir = tmpdir("retention-tier");
    let rdir = tmpdir("retention-root");
    let mut tier = open_tier(&tdir, false);
    let mut root = open_root(&rdir);

    // Epoch 1 ships and applies.
    tier.relay
        .ingest_classified(&site_summary(0, 0, 3, 1).encode());
    drain(&mut tier);
    deliver(&mut tier, &mut root);
    assert_eq!(root.collector().window_epoch(0, 100), 1);

    // The root's shorter retention evicts the window; the tier keeps
    // aggregating and ships a delta based on what the root forgot.
    root.evict_windows_before(SPAN);
    assert_eq!(root.collector().window_epoch(0, 100), 0);
    tier.relay
        .ingest_classified(&site_summary(0, 0, 6, 2).encode());
    drain(&mut tier);
    let shipped: Vec<Summary> = tier
        .spill
        .pending()
        .map(|r| Summary::decode(&r.bytes, Config::with_budget(100_000)).unwrap())
        .collect();
    assert!(
        shipped.iter().any(|s| s.kind == SummaryKind::Delta),
        "the steady state ships a delta"
    );
    let delta_epoch = shipped.last().unwrap().epoch.unwrap().epoch;

    // Delivery bounces (rebase-request), the tier rewinds, and the
    // rebasing full frame heals the window at the same epoch.
    deliver(&mut tier, &mut root);
    assert_eq!(root.ledger().rebase_requests, 1);
    assert_eq!(tier.relay.ledger().rebase_rewinds, 1);
    quiesce(&mut tier, &mut root);
    assert_eq!(root.collector().window_epoch(0, 100), delta_epoch);

    // The healed window matches a root that never evicted anything,
    // fed the same logical content through a fresh tier.
    let reference_dir = tmpdir("retention-ref");
    let mut reference = open_root(&reference_dir);
    let ref_tier_dir = tmpdir("retention-ref-tier");
    let mut ref_tier = open_tier(&ref_tier_dir, false);
    ref_tier
        .relay
        .ingest_classified(&site_summary(0, 0, 3, 1).encode());
    drain(&mut ref_tier);
    deliver(&mut ref_tier, &mut reference);
    ref_tier
        .relay
        .ingest_classified(&site_summary(0, 0, 6, 2).encode());
    quiesce(&mut ref_tier, &mut reference);
    assert_eq!(
        root.collector().window_tree(0, 100).unwrap().encode(),
        reference.collector().window_tree(0, 100).unwrap().encode(),
        "healed window is byte-identical to a never-evicted root"
    );

    // And the chain keeps moving: the next delta applies cleanly.
    tier.relay
        .ingest_classified(&site_summary(0, 0, 9, 3).encode());
    drain(&mut tier);
    let last = tier
        .spill
        .pending()
        .last()
        .map(|r| r.bytes.clone())
        .unwrap();
    let kind = Summary::decode(&last, Config::with_budget(100_000))
        .unwrap()
        .kind;
    deliver(&mut tier, &mut root);
    assert!(tier.spill.is_empty(), "post-heal export acked ({kind:?})");
    for d in [tdir, rdir, reference_dir, ref_tier_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}
