//! End-to-end smoke of the `relayd` binary: real process, real
//! sockets — frames in over TCP, a routed query answer out.

use flowdist::{Summary, SummaryKind, WindowId};
use flowkey::{FlowKey, Schema};
use flowrelay::server::{query_remote, ship_summaries};
use flowtree_core::{Config, FlowTree, Popularity};
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn site_summary(site: u16, window: u64) -> Summary {
    let mut tree = FlowTree::new(Schema::five_feature(), Config::with_budget(4_096));
    for h in 0..4u8 {
        let key: FlowKey =
            format!("src=10.{site}.0.{h}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp")
                .parse()
                .unwrap();
        tree.insert(&key, Popularity::new(1 + h as i64, 100, 1));
    }
    Summary {
        site,
        window: WindowId {
            start_ms: window * 1_000,
            span_ms: 1_000,
        },
        seq: window + 1,
        kind: SummaryKind::Full,
        provenance: None,
        epoch: None,
        tree,
    }
}

struct Daemon {
    child: Child,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns one `relayd` with extra args and returns (daemon, ingest
/// address, query address) parsed from its startup line. Stdin is
/// always piped so `--stdin-control` daemons can be driven.
fn spawn_relayd(name: &str, extra: &[&str]) -> (Daemon, String, String) {
    let mut args = vec![
        "--name",
        name,
        "--sites",
        "0,1",
        "--ingest",
        "127.0.0.1:0",
        "--query",
        "127.0.0.1:0",
        "--drain-every-ms",
        "50",
        "--linger-ms",
        "0",
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_relayd"))
        .args(&args)
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn relayd");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    // The address line is not necessarily first: a journaled start
    // logs its recovery report before binding.
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("startup line");
        assert!(n > 0, "relayd exited before announcing its addresses");
        if line.contains("ingest on ") {
            break;
        }
    }
    // Keep draining the daemon's log in the background so it never
    // blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while let Ok(n) = reader.read_line(&mut sink) {
            if n == 0 {
                break;
            }
            sink.clear();
        }
    });
    let grab = |marker: &str| -> String {
        let at = line.find(marker).unwrap_or_else(|| panic!("{line}")) + marker.len();
        line[at..]
            .chars()
            .take_while(|c| !c.is_whitespace() && *c != ',')
            .collect()
    };
    let ingest = grab("ingest on ");
    let query = grab("queries on ");
    (Daemon { child }, ingest, query)
}

/// Polls a relayd's query port until `pop` reports `want` packets (or
/// times out), returning the final body.
fn poll_pop(query_addr: &str, want: i64) -> String {
    let mut body = String::new();
    for _ in 0..200 {
        let mut q = TcpStream::connect(query_addr).expect("connect query");
        body = query_remote(&mut q, "pop")
            .expect("transport ok")
            .expect("valid query");
        if body.contains(&format!("popularity: {want} packets")) {
            return body;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    body
}

/// An upstream outage must not lose exports: the daemon keeps drained
/// frames pending and delivers them once the upstream appears.
#[test]
fn relayd_retries_pending_exports_across_an_upstream_outage() {
    use flowdist::net::read_frame;
    use std::net::TcpListener;

    // Reserve a port for the not-yet-running upstream, then free it.
    let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
    let upstream_addr = placeholder.local_addr().unwrap().to_string();
    drop(placeholder);

    let (tier1, t1_ingest, _q) = spawn_relayd(
        "west",
        &["--agg-site", "1000", "--upstream", &upstream_addr],
    );
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    let mut s = site_summary(0, 0);
    s.window = WindowId::containing(now_ms - 60_000, 1_000);
    let mut ingest = TcpStream::connect(&t1_ingest).expect("connect ingest");
    ship_summaries(&mut ingest, &[s]).unwrap();

    // Let several drain ticks pass with the upstream down.
    std::thread::sleep(Duration::from_millis(400));

    // The upstream comes up on the reserved port; the pending export
    // must arrive on a later tick.
    let upstream = TcpListener::bind(&upstream_addr).expect("rebind reserved port");
    upstream
        .set_nonblocking(false)
        .expect("blocking accept is fine");
    let (conn, _) = upstream.accept().expect("tier-1 reconnects");
    let mut reader = BufReader::new(conn);
    // The shipper leads with a hello control frame; a silent peer
    // (like this bare listener) downgrades it to legacy
    // fire-and-forget after the handshake timeout. Skip any control
    // frames and decode the first summary.
    let frame = loop {
        let frame = read_frame(&mut reader)
            .expect("clean frame stream")
            .expect("one export frame, not EOF");
        if !flowdist::control::is_control(&frame) {
            break frame;
        }
    };
    let summary = Summary::decode(&frame, Config::with_budget(1 << 20)).expect("valid v3 frame");
    assert_eq!(summary.site, 1000);
    assert_eq!(summary.tree.total().packets, 10);
    assert_eq!(summary.provenance.as_deref(), Some(&[0u16][..]));
    drop(tier1);
}

/// Two chained processes: a tier-1 relayd ships its exports to a root
/// relayd over `--upstream`. A late site frame forces the tier-1 node
/// to re-export the window across the wire — as a v3 delta — and the
/// root must compose it onto its stored base. An idle query client
/// holds a connection open throughout: it must not stall ingest or
/// the export schedulers.
#[test]
fn relayd_chain_ships_incremental_deltas_upstream() {
    let (root, root_ingest, root_query) = spawn_relayd("root", &["--agg-site", "2000"]);
    // The idle client: connects and never sends a frame.
    let _idle = TcpStream::connect(&root_query).expect("idle client connects");
    let (tier1, t1_ingest, _t1_query) =
        spawn_relayd("west", &["--agg-site", "1000", "--upstream", &root_ingest]);

    // Wall-clock windows: relayd's scheduler drains against real time,
    // so use a window that closed a minute ago.
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    let window = WindowId::containing(now_ms - 60_000, 1_000);
    let frame_for = |site: u16| {
        let mut s = site_summary(site, 0);
        s.window = window;
        s
    };

    // Site 0 lands; the window exports upstream as a full frame.
    let mut ingest = TcpStream::connect(&t1_ingest).expect("connect tier-1 ingest");
    ship_summaries(&mut ingest, &[frame_for(0)]).unwrap();
    let body = poll_pop(&root_query, 10);
    assert!(
        body.contains("popularity: 10 packets"),
        "site 0's window reached the root: {body}"
    );

    // Site 1 lands late; tier-1 re-exports the same window (a delta)
    // and the root composes it onto the stored base.
    ship_summaries(&mut ingest, &[frame_for(1)]).unwrap();
    let body = poll_pop(&root_query, 20);
    assert!(
        body.starts_with("route: root"),
        "root answers its own scope: {body}"
    );
    assert!(
        body.contains("popularity: 20 packets"),
        "the late site's delta composed at the root: {body}"
    );
    drop((root, tier1));
}

/// `kill -9` mid-stream, restart on the same `--state-dir`: the
/// stored windows, epoch chains, and query answers must survive the
/// crash, and late frames must keep composing onto the recovered
/// state.
#[test]
fn relayd_resumes_from_state_dir_after_kill_dash_nine() {
    let dir = std::env::temp_dir().join(format!("relayd-state-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap().to_string();

    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    let window = WindowId::containing(now_ms - 60_000, 1_000);
    let frame_for = |site: u16| {
        let mut s = site_summary(site, 0);
        s.window = window;
        s
    };

    let (d1, ingest1, query1) = spawn_relayd("dur", &["--agg-site", "1000", "--state-dir", &dir_s]);
    let mut ingest = TcpStream::connect(&ingest1).expect("connect ingest");
    ship_summaries(&mut ingest, &[frame_for(0), frame_for(1)]).unwrap();
    let body = poll_pop(&query1, 20);
    assert!(
        body.contains("popularity: 20 packets"),
        "both sites landed before the crash: {body}"
    );
    // SIGKILL: no flush, no shutdown path.
    drop(d1);

    let (d2, ingest2, query2) = spawn_relayd("dur", &["--agg-site", "1000", "--state-dir", &dir_s]);
    // No frames sent yet: the recovered journal alone must answer.
    let body = poll_pop(&query2, 20);
    assert!(
        body.contains("popularity: 20 packets"),
        "the journal restored both site windows across kill -9: {body}"
    );
    // A late superset frame for site 0 composes onto recovered state
    // (replacement semantics: 6 hosts → 1+…+6 = 21, plus site 1's 10).
    let mut late = site_summary(0, 0);
    late.window = window;
    late.seq = 2;
    late.tree = {
        let mut tree = FlowTree::new(Schema::five_feature(), Config::with_budget(4_096));
        for h in 0..6u8 {
            let key: FlowKey =
                format!("src=10.0.0.{h}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp")
                    .parse()
                    .unwrap();
            tree.insert(&key, Popularity::new(1 + h as i64, 100, 1));
        }
        tree
    };
    let mut ingest = TcpStream::connect(&ingest2).expect("connect ingest after restart");
    ship_summaries(&mut ingest, &[late]).unwrap();
    let body = poll_pop(&query2, 31);
    assert!(
        body.contains("popularity: 31 packets"),
        "late content composes onto the recovered window: {body}"
    );
    drop(d2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A graceful drain must flush windows the scheduler has not touched
/// yet: with an hour of `--linger-ms` nothing exports on its own, so
/// the only way the root can see the data is the drain path pushing
/// it upstream before exit.
#[test]
fn relayd_drain_flushes_unexported_windows_upstream_before_exit() {
    use std::io::Write as _;

    let (root, root_ingest, root_query) = spawn_relayd("root", &["--agg-site", "2000"]);
    let (mut west, west_ingest, west_query) = spawn_relayd(
        "west",
        &[
            "--agg-site",
            "1000",
            "--upstream",
            &root_ingest,
            "--stdin-control",
            "--linger-ms",
            "3600000",
        ],
    );

    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    let window = WindowId::containing(now_ms - 60_000, 1_000);
    let frame_for = |site: u16| {
        let mut s = site_summary(site, 0);
        s.window = window;
        s
    };
    let mut ingest = TcpStream::connect(&west_ingest).expect("connect west ingest");
    ship_summaries(&mut ingest, &[frame_for(0), frame_for(1)]).unwrap();

    // West holds the data; the hour-long linger keeps it off the wire.
    let body = poll_pop(&west_query, 20);
    assert!(
        body.contains("popularity: 20 packets"),
        "west ingested both sites: {body}"
    );

    // `drain` over stdin: flush everything pending, then exit. Exit
    // code 0 asserts the flush was *acknowledged* (code 3 means data
    // was left pending).
    let mut stdin = west.child.stdin.take().expect("piped stdin");
    writeln!(stdin, "drain").unwrap();
    drop(stdin);
    let status = west.child.wait().expect("west exits after drain");
    assert!(
        status.success(),
        "drain flushed every pending export before exit: {status:?}"
    );

    // The root holds the flushed aggregate without ever being queried
    // before west died.
    let body = poll_pop(&root_query, 20);
    assert!(
        body.contains("popularity: 20 packets"),
        "the drained export reached the root: {body}"
    );
    drop(root);
}

/// `kill -9` while a drain is chasing an unreachable upstream: the
/// pending export lives in the journal + spill, so a restart on the
/// same `--state-dir` must deliver it once the upstream appears.
#[test]
fn relayd_killed_mid_drain_recovers_pending_exports_on_restart() {
    use flowdist::net::read_frame;
    use std::io::Write as _;
    use std::net::TcpListener;

    let dir = std::env::temp_dir().join(format!("relayd-drain-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap().to_string();

    // Reserve a port for the never-up upstream, then free it.
    let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
    let upstream_addr = placeholder.local_addr().unwrap().to_string();
    drop(placeholder);

    let (mut west, west_ingest, west_query) = spawn_relayd(
        "west",
        &[
            "--agg-site",
            "1000",
            "--upstream",
            &upstream_addr,
            "--state-dir",
            &dir_s,
            "--stdin-control",
            "--drain-deadline-ms",
            "60000",
        ],
    );

    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    let mut s = site_summary(0, 0);
    s.window = WindowId::containing(now_ms - 60_000, 1_000);
    let mut ingest = TcpStream::connect(&west_ingest).expect("connect west ingest");
    ship_summaries(&mut ingest, &[s]).unwrap();
    let body = poll_pop(&west_query, 10);
    assert!(
        body.contains("popularity: 10 packets"),
        "the frame landed before the drain: {body}"
    );

    // Ask for a drain the daemon cannot finish (upstream is down, the
    // deadline is a minute out), give it a moment to enter the pump
    // loop, then SIGKILL it mid-drain.
    let mut stdin = west.child.stdin.take().expect("piped stdin");
    writeln!(stdin, "drain").unwrap();
    std::thread::sleep(Duration::from_millis(400));
    drop(west); // Drop kills with SIGKILL — no flush, no exit path.

    // Restart on the same state dir with the upstream now alive: the
    // journaled window and spilled export must come back and ship.
    let upstream = TcpListener::bind(&upstream_addr).expect("rebind reserved port");
    let (_d2, _i2, _q2) = spawn_relayd(
        "west",
        &[
            "--agg-site",
            "1000",
            "--upstream",
            &upstream_addr,
            "--state-dir",
            &dir_s,
        ],
    );
    let (conn, _) = upstream.accept().expect("restarted west reconnects");
    let mut reader = BufReader::new(conn);
    let frame = loop {
        let frame = read_frame(&mut reader)
            .expect("clean frame stream")
            .expect("one export frame, not EOF");
        if !flowdist::control::is_control(&frame) {
            break frame;
        }
    };
    let summary = Summary::decode(&frame, Config::with_budget(1 << 20)).expect("valid v3 frame");
    assert_eq!(
        summary.site, 1000,
        "the recovered export carries west's aggregate id"
    );
    assert_eq!(
        summary.tree.total().packets,
        10,
        "the recovered export is byte-built from the journaled window"
    );
    assert_eq!(summary.provenance.as_deref(), Some(&[0u16][..]));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn relayd_serves_ingest_and_queries_over_real_sockets() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_relayd"))
        .args([
            "--name",
            "smoke",
            "--sites",
            "0,1",
            "--ingest",
            "127.0.0.1:0",
            "--query",
            "127.0.0.1:0",
            "--drain-every-ms",
            "50",
            // This test's windows start at epoch 0 — ancient against
            // the wall-anchored retention cutoff, so keep forever.
            "--retention-ms",
            "0",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn relayd");
    let stderr = child.stderr.take().expect("piped stderr");
    let daemon = Daemon { child };

    // A stderr line announces the resolved addresses:
    //   relayd[smoke]: ingest on 127.0.0.1:P1, queries on 127.0.0.1:P2, …
    let mut reader = BufReader::new(stderr);
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("startup line");
        assert!(n > 0, "relayd exited before announcing its addresses");
        if line.contains("ingest on ") {
            break;
        }
    }
    let grab = |marker: &str| -> String {
        let at = line.find(marker).unwrap_or_else(|| panic!("{line}")) + marker.len();
        line[at..]
            .chars()
            .take_while(|c| !c.is_whitespace() && *c != ',')
            .collect()
    };
    let ingest_addr = grab("ingest on ");
    let query_addr = grab("queries on ");

    // Ship two site windows plus one garbage frame.
    let mut ingest = TcpStream::connect(&ingest_addr).expect("connect ingest");
    ship_summaries(&mut ingest, &[site_summary(0, 0), site_summary(1, 0)]).unwrap();
    flowdist::net::send_summary(&mut ingest, b"not a summary").unwrap();
    drop(ingest);

    // Query until the frames have landed (lock-per-frame ingest).
    let body = poll_pop(&query_addr, 20);
    assert!(
        body.starts_with("route: smoke"),
        "route header names the relay: {body}"
    );
    assert!(
        body.contains("popularity: 20 packets"),
        "2 sites × (1+2+3+4) packets: {body}"
    );

    // Pipelined queries on one connection: both frames land in the
    // server reader's first read-ahead; both must be answered.
    {
        use flowdist::net::{read_frame, write_frame};
        use std::io::Write as _;
        let mut batch = Vec::new();
        write_frame(&mut batch, b"pop").unwrap();
        write_frame(&mut batch, b"drill src").unwrap();
        let mut stream = TcpStream::connect(&query_addr).unwrap();
        stream.write_all(&batch).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let first = read_frame(&mut reader).unwrap().expect("first response");
        let second = read_frame(&mut reader).unwrap().expect("second response");
        assert_eq!(first[0], 0);
        assert_eq!(second[0], 0, "pipelined second frame survived");
    }
    drop(daemon);
}
