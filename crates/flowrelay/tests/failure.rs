//! Relay failure paths: hostile frames are rejected and counted, dead
//! downstreams degrade coverage instead of wedging the planner, and
//! the TCP surfaces survive garbage.

use flowdist::{Summary, SummaryKind, WindowId};
use flowkey::{FlowKey, Schema};
use flowquery::parse;
use flowquery::QueryOutput;
use flowrelay::server::{query_remote, receive_frames, serve_queries, ship_summaries};
use flowrelay::{QueryRouter, Relay, RelayError, RelaySpec, RelayTopology, Route};
use flowtree_core::{Config, FlowTree, Popularity};

const SPAN: u64 = 1_000;

fn schema() -> Schema {
    Schema::five_feature()
}

fn site_summary(site: u16, window: u64, hosts: std::ops::Range<u8>, seq: u64) -> Summary {
    let mut tree = FlowTree::new(schema(), Config::with_budget(4_096));
    for h in hosts {
        let key: FlowKey =
            format!("src=10.{site}.0.{h}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp")
                .parse()
                .unwrap();
        tree.insert(&key, Popularity::new(1 + h as i64, 100, 1));
    }
    Summary {
        site,
        window: WindowId {
            start_ms: window * SPAN,
            span_ms: SPAN,
        },
        seq,
        kind: SummaryKind::Full,
        provenance: None,
        tree,
    }
}

fn two_group_topology() -> RelayTopology {
    RelayTopology {
        relays: vec![
            RelaySpec {
                name: "root".into(),
                parent: None,
                agg_site: 100,
                sites: vec![],
            },
            RelaySpec {
                name: "west".into(),
                parent: Some("root".into()),
                agg_site: 101,
                sites: vec![0, 1],
            },
            RelaySpec {
                name: "east".into(),
                parent: Some("root".into()),
                agg_site: 102,
                sites: vec![2, 3],
            },
        ],
    }
}

/// Builds the 2-group hierarchy, feeding only `live_sites`.
fn hierarchy(live_sites: &[u16], windows: u64) -> (RelayTopology, Vec<Relay>) {
    let topo = two_group_topology();
    topo.validate().unwrap();
    let mut relays: Vec<Relay> = (0..topo.relays.len())
        .map(|i| Relay::from_topology(&topo, i, schema(), Config::with_budget(100_000)))
        .collect();
    for &s in live_sites {
        let owner = topo.owner_of(s).unwrap();
        for w in 0..windows {
            relays[owner]
                .ingest_frame(&site_summary(s, w, 0..3, w + 1).encode())
                .unwrap();
        }
    }
    for idx in [1usize, 2] {
        let exports = relays[idx].flush_exports();
        for e in exports {
            relays[0].ingest_frame(&e.encode()).unwrap();
        }
    }
    (topo, relays)
}

#[test]
fn truncated_and_hostile_provenance_frames_are_rejected_and_counted() {
    let topo = two_group_topology();
    let mut root = Relay::from_topology(&topo, 0, schema(), Config::with_budget(4_096));

    let mut agg = site_summary(101, 0, 0..3, 1);
    agg.provenance = Some(vec![0, 1]);
    let good = agg.encode();
    root.ingest_frame(&good).unwrap();

    // Truncations at every prefix length must fail cleanly.
    let mut rejected = 0;
    for cut in 0..good.len() {
        assert!(root.ingest_frame(&good[..cut]).is_err(), "cut at {cut}");
        rejected += 1;
    }
    // Garbage and a frame claiming a site outside root coverage.
    assert!(root.ingest_frame(b"\xff\xff\xff\xff hostile").is_err());
    rejected += 1;
    let mut foreign = site_summary(102, 0, 0..3, 1);
    foreign.provenance = Some(vec![2, 3, 9]);
    assert!(matches!(
        root.apply(foreign),
        Err(RelayError::CoverageViolation { site: 9 })
    ));
    rejected += 1;
    // A second downstream claiming site 0 again.
    let mut overlap = site_summary(102, 0, 0..3, 1);
    overlap.provenance = Some(vec![0, 2]);
    assert!(matches!(
        root.apply(overlap),
        Err(RelayError::OverlappingProvenance { site: 0 })
    ));
    rejected += 1;

    assert_eq!(root.ledger().rejected, rejected);
    assert_eq!(root.ledger().frames, 1, "only the good frame landed");
    // The stored data is untouched by the hostile attempts.
    assert_eq!(root.collector().stored_windows(), 1);
}

#[test]
fn dead_site_degrades_coverage_and_planner_keeps_answering() {
    // Site 3 is dead: never reports.
    let (topo, relays) = hierarchy(&[0, 1, 2], 2);
    let router = QueryRouter::new(&topo, &relays);

    // Network-wide query still routes (to the root's aggregates) and
    // reports the dead site instead of wedging or erroring.
    let q = parse("pop", u64::MAX - 1).unwrap();
    let routed = router.run(&q);
    assert_eq!(routed.missing, vec![3]);
    assert!(
        matches!(routed.route, Route::Relay { relay: 0, .. }),
        "{:?}",
        routed.route
    );
    let QueryOutput::Pop(est) = routed.output else {
        panic!()
    };
    // 3 sites × 2 windows × (1+2+3) packets.
    assert!((est.packets - 36.0).abs() < 1e-6, "{}", est.packets);

    // A scope naming only the dead site: empty answer, site reported.
    let q = parse("pop sites=3", u64::MAX - 1).unwrap();
    let routed = router.run(&q);
    assert_eq!(routed.missing, vec![3]);
    let QueryOutput::Pop(est) = routed.output else {
        panic!()
    };
    assert_eq!(est.packets, 0.0);

    // A scope mixing live and dead sites fans down to the live one.
    let q = parse("hhh 0.05 by packets sites=2,3", u64::MAX - 1).unwrap();
    let routed = router.run(&q);
    assert_eq!(routed.missing, vec![3]);
    let QueryOutput::Table(rows) = routed.output else {
        panic!()
    };
    assert!(!rows.is_empty(), "live site 2 still answers");

    // The east relay's own ledger shows the degradation.
    assert_eq!(
        relays[2].live_coverage(),
        [2u16]
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
    );
}

#[test]
fn frames_and_queries_flow_over_tcp() {
    use std::net::{TcpListener, TcpStream};

    let topo = two_group_topology();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // Downstream side: ship two site windows and one garbage frame.
    let sender = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let summaries = vec![site_summary(0, 0, 0..3, 1), site_summary(1, 0, 0..3, 1)];
        ship_summaries(&mut stream, &summaries).unwrap();
        flowdist::net::send_summary(&mut stream, b"garbage frame").unwrap();
    });

    let mut west = Relay::from_topology(&topo, 1, schema(), Config::with_budget(4_096));
    let (mut conn, _) = listener.accept().unwrap();
    let (applied, rejected) = receive_frames(&mut conn, &mut west).unwrap();
    sender.join().unwrap();
    assert_eq!((applied, rejected), (2, 1));
    assert_eq!(west.ledger().rejected, 1);

    // Query side: serve the (single-relay) hierarchy over TCP.
    let solo = RelayTopology {
        relays: vec![RelaySpec {
            name: "west".into(),
            parent: None,
            agg_site: 101,
            sites: vec![0, 1],
        }],
    };
    let relays = vec![west];
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let ok = query_remote(&mut stream, "pop src=10.0.0.0/8").unwrap();
        let body = ok.expect("valid query");
        assert!(body.starts_with("route: west"), "{body}");
        assert!(body.contains("popularity"), "{body}");
        let err = query_remote(&mut stream, "frobnicate everything").unwrap();
        assert!(err.is_err(), "bad verb must report, not kill the server");
        let ok = query_remote(&mut stream, "drill src").unwrap();
        assert!(ok.expect("valid query").contains("src="));
    });
    let (mut conn, _) = listener.accept().unwrap();
    let router = QueryRouter::new(&solo, &relays);
    let served = serve_queries(&mut conn, &router).unwrap();
    client.join().unwrap();
    assert_eq!(served, 3);
}

#[test]
fn relay_survives_downstream_restarts_with_replacement_windows() {
    let topo = two_group_topology();
    let mut west = Relay::from_topology(&topo, 1, schema(), Config::with_budget(4_096));
    west.ingest_frame(&site_summary(0, 0, 0..3, 1).encode())
        .unwrap();
    // The site restarts and re-sends window 0 with different content.
    west.ingest_frame(&site_summary(0, 0, 0..5, 1).encode())
        .unwrap();
    assert_eq!(west.collector().stored_windows(), 1);
    let exports = west.flush_exports();
    assert_eq!(exports.len(), 1);
    // The replacement (1+2+3+4+5 = 15 packets) is what exports.
    assert_eq!(exports[0].tree.total().packets, 15);
}
