//! Relay failure paths: hostile frames are rejected and counted, dead
//! downstreams degrade coverage instead of wedging the planner, and
//! the TCP surfaces survive garbage.

use flowdist::{Summary, SummaryKind, WindowId};
use flowkey::{FlowKey, Schema};
use flowquery::parse;
use flowquery::QueryOutput;
use flowrelay::server::{query_remote, receive_frames, serve_queries, ship_summaries};
use flowrelay::{QueryRouter, Relay, RelayError, RelaySpec, RelayTopology, Route};
use flowtree_core::{Config, FlowTree, Popularity};

const SPAN: u64 = 1_000;

fn schema() -> Schema {
    Schema::five_feature()
}

fn site_summary(site: u16, window: u64, hosts: std::ops::Range<u8>, seq: u64) -> Summary {
    let mut tree = FlowTree::new(schema(), Config::with_budget(4_096));
    for h in hosts {
        let key: FlowKey =
            format!("src=10.{site}.0.{h}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp")
                .parse()
                .unwrap();
        tree.insert(&key, Popularity::new(1 + h as i64, 100, 1));
    }
    Summary {
        site,
        window: WindowId {
            start_ms: window * SPAN,
            span_ms: SPAN,
        },
        seq,
        kind: SummaryKind::Full,
        provenance: None,
        epoch: None,
        tree,
    }
}

fn two_group_topology() -> RelayTopology {
    RelayTopology {
        relays: vec![
            RelaySpec {
                name: "root".into(),
                parent: None,
                agg_site: 100,
                sites: vec![],
            },
            RelaySpec {
                name: "west".into(),
                parent: Some("root".into()),
                agg_site: 101,
                sites: vec![0, 1],
            },
            RelaySpec {
                name: "east".into(),
                parent: Some("root".into()),
                agg_site: 102,
                sites: vec![2, 3],
            },
        ],
    }
}

/// Builds the 2-group hierarchy, feeding only `live_sites`.
fn hierarchy(live_sites: &[u16], windows: u64) -> (RelayTopology, Vec<Relay>) {
    let topo = two_group_topology();
    topo.validate().unwrap();
    let mut relays: Vec<Relay> = (0..topo.relays.len())
        .map(|i| Relay::from_topology(&topo, i, schema(), Config::with_budget(100_000)))
        .collect();
    for &s in live_sites {
        let owner = topo.owner_of(s).unwrap();
        for w in 0..windows {
            relays[owner]
                .ingest_frame(&site_summary(s, w, 0..3, w + 1).encode())
                .unwrap();
        }
    }
    for idx in [1usize, 2] {
        let exports = relays[idx].flush_exports();
        for e in exports {
            relays[0].ingest_frame(&e.encode()).unwrap();
        }
    }
    (topo, relays)
}

#[test]
fn truncated_and_hostile_provenance_frames_are_rejected_and_counted() {
    let topo = two_group_topology();
    let mut root = Relay::from_topology(&topo, 0, schema(), Config::with_budget(4_096));

    let mut agg = site_summary(101, 0, 0..3, 1);
    agg.provenance = Some(vec![0, 1]);
    let good = agg.encode();
    root.ingest_frame(&good).unwrap();

    // Truncations at every prefix length must fail cleanly.
    let mut rejected = 0;
    for cut in 0..good.len() {
        assert!(root.ingest_frame(&good[..cut]).is_err(), "cut at {cut}");
        rejected += 1;
    }
    // Garbage and a frame claiming a site outside root coverage.
    assert!(root.ingest_frame(b"\xff\xff\xff\xff hostile").is_err());
    rejected += 1;
    let mut foreign = site_summary(102, 0, 0..3, 1);
    foreign.provenance = Some(vec![2, 3, 9]);
    assert!(matches!(
        root.apply(foreign),
        Err(RelayError::CoverageViolation { site: 9 })
    ));
    rejected += 1;
    // A second downstream claiming site 0 again.
    let mut overlap = site_summary(102, 0, 0..3, 1);
    overlap.provenance = Some(vec![0, 2]);
    assert!(matches!(
        root.apply(overlap),
        Err(RelayError::OverlappingProvenance { site: 0 })
    ));
    rejected += 1;

    assert_eq!(root.ledger().rejected, rejected);
    assert_eq!(root.ledger().frames, 1, "only the good frame landed");
    // The stored data is untouched by the hostile attempts.
    assert_eq!(root.collector().stored_windows(), 1);
}

#[test]
fn dead_site_degrades_coverage_and_planner_keeps_answering() {
    // Site 3 is dead: never reports.
    let (topo, relays) = hierarchy(&[0, 1, 2], 2);
    let router = QueryRouter::new(&topo, &relays);

    // Network-wide query still routes (to the root's aggregates) and
    // reports the dead site instead of wedging or erroring.
    let q = parse("pop", u64::MAX - 1).unwrap();
    let routed = router.run(&q);
    assert_eq!(routed.missing, vec![3]);
    assert!(
        matches!(routed.route, Route::Relay { relay: 0, .. }),
        "{:?}",
        routed.route
    );
    let QueryOutput::Pop(est) = routed.output else {
        panic!()
    };
    // 3 sites × 2 windows × (1+2+3) packets.
    assert!((est.packets - 36.0).abs() < 1e-6, "{}", est.packets);

    // A scope naming only the dead site: empty answer, site reported.
    let q = parse("pop sites=3", u64::MAX - 1).unwrap();
    let routed = router.run(&q);
    assert_eq!(routed.missing, vec![3]);
    let QueryOutput::Pop(est) = routed.output else {
        panic!()
    };
    assert_eq!(est.packets, 0.0);

    // A scope mixing live and dead sites fans down to the live one.
    let q = parse("hhh 0.05 by packets sites=2,3", u64::MAX - 1).unwrap();
    let routed = router.run(&q);
    assert_eq!(routed.missing, vec![3]);
    let QueryOutput::Table(rows) = routed.output else {
        panic!()
    };
    assert!(!rows.is_empty(), "live site 2 still answers");

    // The east relay's own ledger shows the degradation.
    assert_eq!(
        relays[2].live_coverage(),
        [2u16]
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
    );
}

#[test]
fn frames_and_queries_flow_over_tcp() {
    use std::net::{TcpListener, TcpStream};

    let topo = two_group_topology();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // Downstream side: ship two site windows and one garbage frame.
    let sender = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let summaries = vec![site_summary(0, 0, 0..3, 1), site_summary(1, 0, 0..3, 1)];
        ship_summaries(&mut stream, &summaries).unwrap();
        flowdist::net::send_summary(&mut stream, b"garbage frame").unwrap();
    });

    let mut west = Relay::from_topology(&topo, 1, schema(), Config::with_budget(4_096));
    let (mut conn, _) = listener.accept().unwrap();
    let (applied, rejected) = receive_frames(&mut conn, &mut west).unwrap();
    sender.join().unwrap();
    assert_eq!((applied, rejected), (2, 1));
    assert_eq!(west.ledger().rejected, 1);

    // Query side: serve the (single-relay) hierarchy over TCP.
    let solo = RelayTopology {
        relays: vec![RelaySpec {
            name: "west".into(),
            parent: None,
            agg_site: 101,
            sites: vec![0, 1],
        }],
    };
    let relays = vec![west];
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let ok = query_remote(&mut stream, "pop src=10.0.0.0/8").unwrap();
        let body = ok.expect("valid query");
        assert!(body.starts_with("route: west"), "{body}");
        assert!(body.contains("popularity"), "{body}");
        let err = query_remote(&mut stream, "frobnicate everything").unwrap();
        assert!(err.is_err(), "bad verb must report, not kill the server");
        let ok = query_remote(&mut stream, "drill src").unwrap();
        assert!(ok.expect("valid query").contains("src="));
    });
    let (mut conn, _) = listener.accept().unwrap();
    let router = QueryRouter::new(&solo, &relays);
    let served = serve_queries(&mut conn, &router).unwrap();
    client.join().unwrap();
    assert_eq!(served, 3);
}

#[test]
fn relay_survives_downstream_restarts_with_replacement_windows() {
    let topo = two_group_topology();
    let mut west = Relay::from_topology(&topo, 1, schema(), Config::with_budget(4_096));
    west.ingest_frame(&site_summary(0, 0, 0..3, 1).encode())
        .unwrap();
    // The site restarts and re-sends window 0 with different content.
    west.ingest_frame(&site_summary(0, 0, 0..5, 1).encode())
        .unwrap();
    assert_eq!(west.collector().stored_windows(), 1);
    let exports = west.flush_exports();
    assert_eq!(exports.len(), 1);
    // The replacement (1+2+3+4+5 = 15 packets) is what exports.
    assert_eq!(exports[0].tree.total().packets, 15);
}

#[test]
fn per_window_missing_is_reported_for_exactly_the_gap_window() {
    // Sites 0,1,2 report windows 0 and 1; site 3 reports only window
    // 0. Lifetime coverage sees all four sites — only the per-window
    // report may say window 1 lacks site 3.
    let topo = two_group_topology();
    topo.validate().unwrap();
    let mut relays: Vec<Relay> = (0..topo.relays.len())
        .map(|i| Relay::from_topology(&topo, i, schema(), Config::with_budget(100_000)))
        .collect();
    for &s in &[0u16, 1, 2] {
        for w in 0..2u64 {
            let owner = topo.owner_of(s).unwrap();
            relays[owner]
                .ingest_frame(&site_summary(s, w, 0..3, w + 1).encode())
                .unwrap();
        }
    }
    let owner3 = topo.owner_of(3).unwrap();
    relays[owner3]
        .ingest_frame(&site_summary(3, 0, 0..3, 1).encode())
        .unwrap();
    for idx in [1usize, 2] {
        let exports = relays[idx].flush_exports();
        for e in &exports {
            relays[0].ingest_frame(&e.encode()).unwrap();
        }
    }
    // The east relay's window-1 export must not have advertised site 3
    // — pinned at the root's ledger too.
    assert_eq!(
        relays[0]
            .window_coverage(SPAN)
            .into_iter()
            .collect::<Vec<_>>(),
        vec![0, 1, 2],
        "window 1 at the root must not claim site 3"
    );

    let router = QueryRouter::new(&topo, &relays);
    let q = parse("pop", u64::MAX - 1).unwrap();
    let routed = router.run(&q);
    // Site 3 is live (it has window 0), so it is NOT lifetime-missing…
    assert!(routed.missing.is_empty(), "{:?}", routed.missing);
    // …but window 1 reports it, and only window 1.
    assert_eq!(
        routed.missing_windows.len(),
        1,
        "{:?}",
        routed.missing_windows
    );
    assert_eq!(routed.missing_windows[0].window_start_ms, SPAN);
    assert_eq!(routed.missing_windows[0].missing, vec![3]);

    // A scope that does not ask for site 3 has no gaps at all.
    let q = parse("pop sites=0,1,2", u64::MAX - 1).unwrap();
    assert!(router.run(&q).missing_windows.is_empty());

    // A scope confined to window 0 has no gaps either.
    let q = parse(&format!("pop from={} to={}", 0, SPAN), u64::MAX - 1);
    if let Ok(q) = q {
        assert!(router.run(&q).missing_windows.is_empty());
    }

    // The per-site breakdown reports the same gap.
    let q = parse("bysite src=0.0.0.0/0", u64::MAX - 1).unwrap();
    let routed = router.run(&q);
    assert_eq!(routed.missing_windows.len(), 1);
    assert_eq!(routed.missing_windows[0].missing, vec![3]);
}

#[test]
fn hostile_v3_frames_are_rejected_and_counted_at_the_relay() {
    use flowdist::EpochHeader;

    let topo = two_group_topology();
    let mut root = Relay::from_topology(&topo, 0, schema(), Config::with_budget(4_096));

    // Establish a healthy v3 slot: full at epoch 1.
    let mut full = site_summary(101, 0, 0..3, 1);
    full.provenance = Some(vec![0, 1]);
    full.epoch = Some(EpochHeader {
        epoch: 1,
        base: None,
    });
    root.ingest_frame(&full.encode()).unwrap();

    let mut rejected = 0u64;
    // A delta declaring a base the root does not hold (bad base epoch).
    let mut orphan = site_summary(101, 0, 0..2, 2);
    orphan.kind = flowdist::SummaryKind::Delta;
    orphan.provenance = Some(vec![0, 1]);
    orphan.epoch = Some(EpochHeader {
        epoch: 9,
        base: Some(7),
    });
    let err = root.ingest_frame(&orphan.encode());
    assert!(
        matches!(
            err,
            Err(RelayError::Dist(flowdist::DistError::EpochMismatch {
                have: 1,
                got: 7,
                ..
            }))
        ),
        "{err:?}"
    );
    rejected += 1;

    // Truncated v3 delta frames fail cleanly at every cut.
    let mut delta = site_summary(101, 0, 0..2, 2);
    delta.kind = flowdist::SummaryKind::Delta;
    delta.provenance = Some(vec![0, 1]);
    delta.epoch = Some(EpochHeader {
        epoch: 2,
        base: Some(1),
    });
    let good = delta.encode();
    for cut in 0..good.len() {
        assert!(root.ingest_frame(&good[..cut]).is_err(), "cut at {cut}");
        rejected += 1;
    }

    // A v3 frame claiming a foreign site in its per-window provenance.
    let mut foreign = site_summary(102, 0, 0..2, 1);
    foreign.provenance = Some(vec![2, 3, 9]);
    foreign.epoch = Some(EpochHeader {
        epoch: 1,
        base: None,
    });
    assert!(matches!(
        root.ingest_frame(&foreign.encode()),
        Err(RelayError::CoverageViolation { site: 9 })
    ));
    rejected += 1;

    // A v3 delta claiming a site another downstream owns (overlap).
    let mut overlap = site_summary(102, 0, 0..2, 1);
    overlap.provenance = Some(vec![0, 2]);
    overlap.epoch = Some(EpochHeader {
        epoch: 1,
        base: None,
    });
    assert!(matches!(
        root.ingest_frame(&overlap.encode()),
        Err(RelayError::OverlappingProvenance { site: 0 })
    ));
    rejected += 1;

    assert_eq!(root.ledger().rejected, rejected);
    assert_eq!(root.ledger().frames, 1, "only the healthy frame landed");
    // The good delta still applies after all the hostility.
    root.ingest_frame(&good).unwrap();
    assert_eq!(root.ledger().frames, 2);
}

mod tcp_error_paths {
    use super::*;
    use flowdist::net::{read_frame, write_frame, MAX_FRAME};
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    fn solo_router_relay() -> (RelayTopology, Vec<Relay>) {
        let topo = RelayTopology {
            relays: vec![RelaySpec {
                name: "west".into(),
                parent: None,
                agg_site: 101,
                sites: vec![0, 1],
            }],
        };
        let mut relay = Relay::from_topology(&topo, 0, schema(), Config::with_budget(4_096));
        relay
            .ingest_frame(&site_summary(0, 0, 0..3, 1).encode())
            .unwrap();
        (topo, vec![relay])
    }

    #[test]
    fn oversized_query_frame_errors_cleanly_not_panics() {
        let (topo, relays) = solo_router_relay();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            // A length prefix beyond MAX_FRAME: the server must refuse
            // to allocate and return an error, not panic or hang.
            stream.write_all(&(MAX_FRAME + 1).to_be_bytes()).unwrap();
            stream.write_all(b"junk").unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let router = QueryRouter::new(&topo, &relays);
        let served = serve_queries(&mut conn, &router);
        client.join().unwrap();
        assert!(served.is_err(), "oversized frame must surface an error");
    }

    #[test]
    fn mid_frame_disconnect_errors_cleanly() {
        let (topo, relays) = solo_router_relay();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            // Announce 100 bytes, send 4, vanish.
            stream.write_all(&100u32.to_be_bytes()).unwrap();
            stream.write_all(b"pop ").unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let router = QueryRouter::new(&topo, &relays);
        let served = serve_queries(&mut conn, &router);
        client.join().unwrap();
        assert!(
            served.is_err(),
            "a mid-frame disconnect is an error, not a clean EOF"
        );
    }

    #[test]
    fn mid_frame_disconnect_on_ingest_errors_cleanly() {
        let topo = two_group_topology();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&1_000u32.to_be_bytes()).unwrap();
            stream.write_all(b"FSUM").unwrap();
        });
        let mut west = Relay::from_topology(&topo, 1, schema(), Config::with_budget(4_096));
        let (mut conn, _) = listener.accept().unwrap();
        let res = receive_frames(&mut conn, &mut west);
        sender.join().unwrap();
        assert!(res.is_err());
        assert_eq!(west.ledger().frames, 0);
    }

    #[test]
    fn malformed_response_headers_do_not_wedge_the_client() {
        // A hostile "server" returns an empty response frame (no
        // status byte / route header at all), then a frame with an
        // unknown status byte: the client must surface both as errors.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut reader = std::io::BufReader::new(conn.try_clone().unwrap());
            let _ = read_frame(&mut reader).unwrap();
            write_frame(&mut conn, b"").unwrap();
            let _ = read_frame(&mut reader).unwrap();
            write_frame(&mut conn, &[7u8, b'h', b'i']).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let empty = query_remote(&mut stream, "pop");
        assert!(
            matches!(
                empty,
                Err(RelayError::Dist(flowdist::DistError::BadFrame(
                    "empty response"
                )))
            ),
            "{empty:?}"
        );
        let odd = query_remote(&mut stream, "pop").unwrap();
        assert_eq!(odd, Err("hi".into()), "unknown status byte reads as error");
        server.join().unwrap();
    }

    #[test]
    fn query_responses_carry_per_window_missing_lines() {
        let topo = two_group_topology();
        let mut relays: Vec<Relay> = (0..topo.relays.len())
            .map(|i| Relay::from_topology(&topo, i, schema(), Config::with_budget(100_000)))
            .collect();
        // Site 1 skips window 1.
        for w in 0..2u64 {
            relays[1]
                .ingest_frame(&site_summary(0, w, 0..3, w + 1).encode())
                .unwrap();
        }
        relays[1]
            .ingest_frame(&site_summary(1, 0, 0..3, 1).encode())
            .unwrap();

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let body = query_remote(&mut stream, "pop sites=0,1")
                .unwrap()
                .expect("valid query");
            assert!(
                body.contains(&format!("missing in window {SPAN}ms: [1]")),
                "{body}"
            );
        });
        let (mut conn, _) = listener.accept().unwrap();
        let router = QueryRouter::new(&topo, &relays);
        serve_queries(&mut conn, &router).unwrap();
        client.join().unwrap();
    }
}

#[test]
fn pipelined_query_frames_survive_the_readers_read_ahead() {
    use flowdist::net::{read_frame, write_frame};
    use std::io::{BufReader, Write as _};
    use std::net::{TcpListener, TcpStream};

    let topo = RelayTopology {
        relays: vec![RelaySpec {
            name: "west".into(),
            parent: None,
            agg_site: 101,
            sites: vec![0, 1],
        }],
    };
    let mut relay = Relay::from_topology(&topo, 0, schema(), Config::with_budget(4_096));
    relay
        .ingest_frame(&site_summary(0, 0, 0..3, 1).encode())
        .unwrap();
    let relays = vec![relay];

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = std::thread::spawn(move || {
        // Two frames in ONE write: the server's buffered reader pulls
        // both into its read-ahead on the first fill; a per-request
        // reader would drop the second frame with the buffer.
        let mut batch = Vec::new();
        write_frame(&mut batch, b"pop").unwrap();
        write_frame(&mut batch, b"drill src").unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&batch).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let first = read_frame(&mut reader).unwrap().expect("first response");
        let second = read_frame(&mut reader).unwrap().expect("second response");
        assert_eq!(first[0], 0, "pop succeeded");
        assert!(String::from_utf8_lossy(&first).contains("popularity"));
        assert_eq!(second[0], 0, "drill succeeded");
        assert!(String::from_utf8_lossy(&second).contains("src="));
    });
    let (mut conn, _) = listener.accept().unwrap();
    let router = QueryRouter::new(&topo, &relays);
    let served = serve_queries(&mut conn, &router).unwrap();
    client.join().unwrap();
    assert_eq!(served, 2, "both pipelined queries answered");
}
