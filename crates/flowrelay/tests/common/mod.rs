//! Shared plumbing for the robustness tests: a deterministic RNG and
//! a **frame-granular TCP proxy** that can drop, duplicate, and flap —
//! hostile-network weather for the ack/rebase export protocol.
#![allow(dead_code)]

use flowdist::net::{read_frame, write_frame};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// splitmix64 — deterministic, seedable, no dependencies.
pub struct Rng(pub u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u8) -> bool {
        self.below(100) < u64::from(percent)
    }
}

/// Proxy weather: what fraction of frames to drop or duplicate, and
/// how often to kill the connection outright.
#[derive(Clone, Copy)]
pub struct ProxyConfig {
    /// Chance (0–100) a forwarded frame is silently dropped.
    pub drop_percent: u8,
    /// Chance (0–100) a forwarded frame is sent twice.
    pub dup_percent: u8,
    /// Kill the session after this many client frames (both
    /// directions die; the client reconnects). 0 = never flap.
    pub flap_after: u64,
    pub seed: u64,
}

#[derive(Default)]
pub struct ProxyStats {
    pub forwarded: AtomicU64,
    pub dropped: AtomicU64,
    pub duplicated: AtomicU64,
    pub flaps: AtomicU64,
}

/// A running proxy: clients connect to `addr`, frames relay to the
/// upstream with the configured weather applied **per frame** in both
/// directions (data up, control frames down).
pub struct Proxy {
    pub addr: String,
    pub stats: Arc<ProxyStats>,
    shutdown: Arc<AtomicBool>,
}

impl Drop for Proxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(&self.addr);
    }
}

pub fn spawn_proxy(upstream: String, cfg: ProxyConfig) -> Proxy {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().unwrap().to_string();
    let stats = Arc::new(ProxyStats::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    {
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let mut session = 0u64;
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(client) = conn else { continue };
                session += 1;
                let Ok(up) = TcpStream::connect(&upstream) else {
                    continue; // client sees the close and backs off
                };
                run_session(client, up, cfg, session, &stats);
            }
        });
    }
    Proxy {
        addr,
        stats,
        shutdown,
    }
}

/// One client session, handled inline (the export path has one
/// connection at a time; serialized sessions keep the weather
/// deterministic for a given seed).
fn run_session(
    client: TcpStream,
    up: TcpStream,
    cfg: ProxyConfig,
    session: u64,
    stats: &Arc<ProxyStats>,
) {
    let stop = Arc::new(AtomicBool::new(false));
    // Downstream direction (acks/rebases): its own derived RNG stream.
    let down = {
        let stats = Arc::clone(stats);
        let stop = Arc::clone(&stop);
        let up_read = up.try_clone().expect("clone upstream");
        let mut client_write = client.try_clone().expect("clone client");
        let mut rng = Rng::new(cfg.seed ^ session.rotate_left(32) ^ 0xD0);
        std::thread::spawn(move || {
            let mut reader = BufReader::new(up_read);
            while let Ok(Some(frame)) = read_frame(&mut reader) {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                if !forward(&mut client_write, &frame, cfg, &mut rng, &stats) {
                    return;
                }
            }
        })
    };
    let mut rng = Rng::new(cfg.seed ^ session.rotate_left(32) ^ 0x0F);
    let mut reader = BufReader::new(client.try_clone().expect("clone client"));
    let mut up_write = up.try_clone().expect("clone upstream");
    let mut seen = 0u64;
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        seen += 1;
        if cfg.flap_after > 0 && seen > cfg.flap_after {
            stats.flaps.fetch_add(1, Ordering::Relaxed);
            // A dying connection is not a bidirectional guillotine:
            // stop forwarding upward, but let in-flight acks drain
            // down for a moment before the kill.
            std::thread::sleep(std::time::Duration::from_millis(50));
            break;
        }
        if !forward(&mut up_write, &frame, cfg, &mut rng, stats) {
            break;
        }
    }
    stop.store(true, Ordering::SeqCst);
    let _ = client.shutdown(std::net::Shutdown::Both);
    let _ = up.shutdown(std::net::Shutdown::Both);
    let _ = down.join();
}

fn forward(
    w: &mut TcpStream,
    frame: &[u8],
    cfg: ProxyConfig,
    rng: &mut Rng,
    stats: &Arc<ProxyStats>,
) -> bool {
    // Hello frames are exempt from the weather: losing one only
    // downgrades the session to legacy fire-and-forget, which is a
    // different (untestable-under-loss) delivery contract. Every
    // *data* and ack frame is fair game.
    let is_hello = flowdist::control::is_control(frame)
        && matches!(
            flowdist::ControlFrame::decode(frame),
            Ok(flowdist::ControlFrame::Hello { .. })
        );
    if !is_hello && rng.chance(cfg.drop_percent) {
        stats.dropped.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    let copies = if rng.chance(cfg.dup_percent) {
        stats.duplicated.fetch_add(1, Ordering::Relaxed);
        2
    } else {
        1
    };
    for _ in 0..copies {
        if write_frame(&mut *w, frame).is_err() {
            return false;
        }
    }
    stats.forwarded.fetch_add(1, Ordering::Relaxed);
    true
}
