//! Fleet-launcher end-to-end coverage: a spec-booted fleet must be
//! indistinguishable from hand-wired runtimes, `flowctl`'s own
//! subcommands must work against the checked-in example spec, and
//! spawn mode must supervise a `kill -9`'d relay back to life on its
//! pinned ports with its journaled state intact.

use flowdist::runtime::{SiteNodeConfig, SiteRuntime};
use flownet::FlowRecord;
use flowrelay::server::query_remote;
use flowrelay::spec::FleetSpec;
use flowrelay::{NodeConfig, NodeRuntime};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Path of the checked-in example spec (tests run with the crate as
/// cwd; the spec lives at the workspace root).
fn example_spec() -> String {
    format!("{}/../../examples/fleet.spec", env!("CARGO_MANIFEST_DIR"))
}

// ---------------------------------------------------------------------------
// Library-level: spec boot ≡ manual wiring
// ---------------------------------------------------------------------------

/// A whole in-process fleet, booted exactly the way `flowctl run`
/// boots one: relays root-first (each child's upstream resolved to its
/// parent's concrete ingest port, coverage = whole subtree), sites
/// last.
struct Fleet {
    relays: Vec<NodeRuntime>,
    sites: Vec<SiteRuntime>,
}

impl Fleet {
    fn from_spec(spec: &FleetSpec) -> Fleet {
        let relays = spec.boot_relays().expect("relays boot");
        let ingest: HashMap<String, SocketAddr> = relays
            .iter()
            .map(|rt| (rt.name().to_string(), rt.ingest_addr()))
            .collect();
        let mut sites = Vec::new();
        for s in &spec.sites {
            let mut cfg = SiteNodeConfig::new(s.site, ingest[&s.upstream].to_string());
            cfg.listen = s.listen.clone();
            cfg.window_ms = s.window_ms;
            cfg.budget = s.budget;
            cfg.batch = s.batch;
            sites.push(SiteRuntime::start(cfg).expect("site boots"));
        }
        Fleet { relays, sites }
    }

    fn root(&self) -> &NodeRuntime {
        &self.relays[0]
    }
}

/// Deterministic UDP traffic spanning three site windows (the site
/// daemon keeps two windows open, so the first only closes — and
/// ships — once event time reaches the third). Event times anchor
/// just behind the wall clock: relays evict windows older than their
/// retention horizon, which is measured against real time.
fn send_traffic(sender: &UdpSocket, fleet: &Fleet, now_ms: u64, window_ms: u64, records: usize) {
    let w0 = (now_ms / window_ms).saturating_sub(3) * window_ms;
    for site in &fleet.sites {
        let recs: Vec<FlowRecord> = (0..records)
            .map(|i| {
                let widx = (i * 3 / records.max(1)) as u64;
                let ts = w0 + window_ms * widx + 10 + (i as u64 % 7);
                let mut r = FlowRecord::v4(
                    [10, (site.site() % 250) as u8, (i % 200) as u8, 1],
                    [192, 0, 2, (i % 100) as u8],
                    1024 + (i % 500) as u16,
                    443,
                    6,
                    1 + (i % 5) as u64,
                    64 * (1 + (i % 5) as u64),
                );
                r.first_ms = ts;
                r.last_ms = ts;
                r
            })
            .collect();
        // base_ms must sit at or after every record timestamp: v5
        // carries times as sysuptime offsets *behind* it.
        flowdist::net::export_netflow(sender, site.ingest_addr(), &recs, now_ms).expect("udp send");
    }
}

fn pop(addr: SocketAddr) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect query");
    query_remote(&mut conn, "pop")
        .expect("transport ok")
        .expect("valid query")
}

const SPEC: &str = "\
[defaults]
linger-ms = 100
drain-every-ms = 50
window-ms = 2000
batch = 32

[site 0]
upstream = west
[site 1]
upstream = west
[site 2]
upstream = east
[site 3]
upstream = east

[relay west]
agg-site = 1001
sites = 0,1
parent = root
[relay east]
agg-site = 1002
sites = 2,3
parent = root
[relay root]
agg-site = 2000
";

/// The launcher's promise: booting from a spec answers queries
/// identically to wiring the same topology by hand.
#[test]
fn spec_booted_fleet_answers_identically_to_manual_wiring() {
    let spec = FleetSpec::parse(SPEC).expect("spec parses");
    let spec_fleet = Fleet::from_spec(&spec);

    // The same tree, wired by hand with explicit NodeConfigs.
    let manual_fleet = {
        let mut root = NodeConfig::new("root".to_string());
        root.agg_site = 2000;
        root.sites = vec![0, 1, 2, 3];
        root.linger_ms = 100;
        root.drain_every_ms = 50;
        let root_rt = NodeRuntime::start(root).expect("manual root boots");
        let mut relays = vec![];
        let mut site_upstreams = HashMap::new();
        for (name, agg, sites) in [("west", 1001, vec![0u16, 1]), ("east", 1002, vec![2, 3])] {
            let mut n = NodeConfig::new(name.to_string());
            n.agg_site = agg;
            n.sites = sites.clone();
            n.linger_ms = 100;
            n.drain_every_ms = 50;
            n.upstream = Some(root_rt.ingest_addr().to_string());
            let rt = NodeRuntime::start(n).expect("manual leaf boots");
            for s in sites {
                site_upstreams.insert(s, rt.ingest_addr());
            }
            relays.push(rt);
        }
        relays.insert(0, root_rt);
        let mut sites = vec![];
        for id in 0..4u16 {
            let mut cfg = SiteNodeConfig::new(id, site_upstreams[&id].to_string());
            cfg.window_ms = 2_000;
            cfg.batch = 32;
            sites.push(SiteRuntime::start(cfg).expect("manual site boots"));
        }
        Fleet { relays, sites }
    };

    let sender = UdpSocket::bind("127.0.0.1:0").expect("udp bind");
    // One shared time anchor: both fleets must see records in the
    // *same* absolute windows or their answers could legitimately
    // differ across a window boundary.
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    send_traffic(&sender, &spec_fleet, now_ms, 2_000, 300);
    send_traffic(&sender, &manual_fleet, now_ms, 2_000, 300);

    // Both roots converge on the same non-empty answer.
    let deadline = Instant::now() + Duration::from_secs(60);
    let (a, b) = loop {
        let a = pop(spec_fleet.root().query_addr());
        let b = pop(manual_fleet.root().query_addr());
        if a == b && a.contains("popularity: ") && !a.contains("popularity: 0 packets") {
            break (a, b);
        }
        assert!(
            Instant::now() < deadline,
            "fleets never converged; spec fleet:\n{a}\nmanual fleet:\n{b}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(a, b, "identical traffic, identical answers");
    assert!(a.starts_with("route: root"), "the root answers: {a}");

    // Both fleets drain leaves-first without abandoning anything.
    for fleet in [spec_fleet, manual_fleet] {
        for site in fleet.sites {
            let report = site.drain();
            assert_eq!(report.abandoned, 0, "site flushed everything");
        }
        for rt in fleet.relays.into_iter().rev() {
            let name = rt.name().to_string();
            let report = rt.drain(Duration::from_secs(30));
            assert_eq!(
                report.pending_at_exit, 0,
                "relay {name} flushed every pending export"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Binary: check + smoke against the checked-in example spec
// ---------------------------------------------------------------------------

#[test]
fn flowctl_check_validates_the_example_spec_and_rejects_broken_ones() {
    let out = Command::new(env!("CARGO_BIN_EXE_flowctl"))
        .args(["check", &example_spec()])
        .output()
        .expect("run flowctl check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "check accepts the example: {stdout}");
    assert!(
        stdout.contains("spec ok: 3 relays, 4 sites"),
        "check describes the tree: {stdout}"
    );

    // A site pointing at a relay that does not own it must be refused.
    let bad = std::env::temp_dir().join(format!("bad-fleet-{}.spec", std::process::id()));
    std::fs::write(
        &bad,
        "[site 7]\nupstream = west\n[relay west]\nagg-site = 1001\nsites = 0,1\n",
    )
    .expect("write bad spec");
    let out = Command::new(env!("CARGO_BIN_EXE_flowctl"))
        .args(["check", bad.to_str().unwrap()])
        .output()
        .expect("run flowctl check");
    assert!(
        !out.status.success(),
        "an incoherent spec must fail check: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn flowctl_smoke_boots_ingests_queries_reloads_and_drains() {
    let out = Command::new(env!("CARGO_BIN_EXE_flowctl"))
        .args(["smoke", &example_spec(), "--records", "200"])
        .output()
        .expect("run flowctl smoke");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "smoke exits clean:\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.contains("flowctl smoke: ok"),
        "smoke reports success: {stdout}"
    );
    assert!(
        stdout.contains("reload=applied"),
        "smoke exercised a live reload: {stdout}"
    );
}

// ---------------------------------------------------------------------------
// Binary: spawn-mode supervision across kill -9
// ---------------------------------------------------------------------------

/// Collects a child stream's lines so the test can poll for markers
/// without ever blocking the child on a full pipe.
fn collect_lines(reader: impl std::io::Read + Send + 'static) -> Arc<Mutex<Vec<String>>> {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lines);
    std::thread::spawn(move || {
        let mut reader = BufReader::new(reader);
        let mut line = String::new();
        while let Ok(n) = reader.read_line(&mut line) {
            if n == 0 {
                break;
            }
            sink.lock()
                .expect("line sink")
                .push(line.trim_end().to_string());
            line.clear();
        }
    });
    lines
}

/// Waits until some collected line satisfies `pred`, returning it.
fn await_line(lines: &Arc<Mutex<Vec<String>>>, what: &str, pred: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(hit) = lines
            .lock()
            .expect("line sink")
            .iter()
            .find(|l| pred(l))
            .cloned()
        {
            return hit;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; saw:\n{}",
            lines.lock().expect("line sink").join("\n")
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Grabs `key=value`'s value out of a launcher status line.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|w| w.strip_prefix(key).and_then(|w| w.strip_prefix('=')))
        .unwrap_or_else(|| panic!("no {key}= in: {line}"))
}

#[test]
fn flowctl_spawn_mode_restarts_a_killed_relay_and_recovers_its_state() {
    use flowdist::{Summary, SummaryKind, WindowId};
    use flowkey::{FlowKey, Schema};
    use flowrelay::server::ship_summaries;
    use flowtree_core::{Config, FlowTree, Popularity};

    let state = std::env::temp_dir().join(format!("flowctl-spawn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state);
    let spec_path = state.join("fleet.spec");
    std::fs::create_dir_all(&state).expect("state dir");
    std::fs::write(
        &spec_path,
        format!(
            "[defaults]\nlinger-ms = 0\ndrain-every-ms = 50\nstate-root = {}\n\n\
             [relay west]\nagg-site = 1001\nsites = 0,1\nparent = root\n\n\
             [relay root]\nagg-site = 2000\n",
            state.display()
        ),
    )
    .expect("write spec");

    let mut ctl = Command::new(env!("CARGO_BIN_EXE_flowctl"))
        .args([
            "run",
            spec_path.to_str().unwrap(),
            "--spawn",
            "--relayd",
            env!("CARGO_BIN_EXE_relayd"),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn flowctl");
    let stdout = collect_lines(ctl.stdout.take().expect("piped stdout"));
    let stderr = collect_lines(ctl.stderr.take().expect("piped stderr"));

    let west = await_line(&stdout, "west's announce line", |l| {
        l.starts_with("flowctl: relay west ")
    });
    let west_ingest = field(&west, "ingest").to_string();
    let west_query: SocketAddr = field(&west, "query").parse().expect("query addr");
    let west_pid = field(&west, "pid").to_string();
    await_line(&stdout, "fleet up", |l| l.contains("fleet up"));

    // Ship two site windows into west (a minute old, so the linger-0
    // scheduler exports them upstream immediately — and journals them).
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    let window = WindowId::containing(now_ms - 60_000, 1_000);
    let summaries: Vec<Summary> = [0u16, 1]
        .into_iter()
        .map(|site| {
            let mut tree = FlowTree::new(Schema::five_feature(), Config::with_budget(4_096));
            for h in 0..4u8 {
                let key: FlowKey = format!(
                    "src=10.{site}.0.{h}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp"
                )
                .parse()
                .unwrap();
                tree.insert(&key, Popularity::new(1 + h as i64, 100, 1));
            }
            Summary {
                site,
                window,
                seq: 1,
                kind: SummaryKind::Full,
                provenance: None,
                epoch: None,
                tree,
            }
        })
        .collect();
    let mut conn = TcpStream::connect(&west_ingest).expect("connect west ingest");
    ship_summaries(&mut conn, &summaries).expect("ship");
    drop(conn);

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let body = pop(west_query);
        if body.contains("popularity: 20 packets") {
            break;
        }
        assert!(Instant::now() < deadline, "west never ingested: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // SIGKILL the child out from under its supervisor.
    let killed = Command::new("kill")
        .args(["-9", &west_pid])
        .status()
        .expect("run kill");
    assert!(killed.success(), "kill -9 {west_pid}");
    await_line(&stderr, "the supervisor's restart notice", |l| {
        l.contains("relay west restarted")
    });

    // The restarted child came back on its pinned ports and replayed
    // its journal: the pre-crash windows must answer again.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(mut conn) = TcpStream::connect(west_query) {
            if let Ok(Ok(body)) = query_remote(&mut conn, "pop") {
                if body.contains("popularity: 20 packets") {
                    break;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "restarted west never recovered its windows"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Graceful teardown: `drain` drains leaves-first and exits 0.
    let mut stdin = ctl.stdin.take().expect("piped stdin");
    writeln!(stdin, "drain").expect("send drain");
    drop(stdin);
    let status = ctl.wait().expect("flowctl exits");
    assert!(status.success(), "drain teardown exits clean: {status:?}");
    await_line(&stdout, "fleet down", |l| l.contains("fleet down"));
    let _ = std::fs::remove_dir_all(&state);
}
