//! Exposition: Prometheus text format and JSON rendering.
//!
//! The Prometheus renderer follows the text-format contract the
//! conformance tests pin: one `# HELP` + `# TYPE` pair per family,
//! histogram buckets cumulative with inclusive `le` bounds, a final
//! `le="+Inf"` bucket equal to `_count`, and `_sum` in seconds. The
//! JSON renderer emits the same series flat so a scraper that can't
//! parse Prometheus (or a human with `jq`) gets identical numbers.

use crate::{Family, Kind, Value};
use std::fmt::Write as _;

/// A value in a key/value stats page ([`render_kv_text`] /
/// [`render_kv_json`]): the ops endpoints build one list and render
/// the legacy plaintext page and `/stats.json` from it, so the two
/// can never drift.
#[derive(Debug, Clone, PartialEq)]
pub enum KvValue {
    /// Unsigned integer (the common case: counters, gauges).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (rendered with enough digits to round-trip).
    F64(f64),
    /// Free-form string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for KvValue {
    fn from(v: u64) -> KvValue {
        KvValue::U64(v)
    }
}

impl From<usize> for KvValue {
    fn from(v: usize) -> KvValue {
        KvValue::U64(v as u64)
    }
}

impl From<bool> for KvValue {
    fn from(v: bool) -> KvValue {
        KvValue::Bool(v)
    }
}

impl From<&str> for KvValue {
    fn from(v: &str) -> KvValue {
        KvValue::Str(v.to_string())
    }
}

impl From<String> for KvValue {
    fn from(v: String) -> KvValue {
        KvValue::Str(v)
    }
}

/// Renders `key value` lines — the legacy plaintext stats page.
pub fn render_kv_text(pairs: &[(String, KvValue)]) -> String {
    let mut out = String::new();
    for (k, v) in pairs {
        match v {
            KvValue::U64(n) => {
                let _ = writeln!(out, "{k} {n}");
            }
            KvValue::I64(n) => {
                let _ = writeln!(out, "{k} {n}");
            }
            KvValue::F64(f) => {
                let _ = writeln!(out, "{k} {f}");
            }
            KvValue::Str(s) => {
                let _ = writeln!(out, "{k} {s}");
            }
            KvValue::Bool(b) => {
                let _ = writeln!(out, "{k} {b}");
            }
        }
    }
    out
}

/// Renders the same pairs as one flat JSON object, key order
/// preserved.
pub fn render_kv_json(pairs: &[(String, KvValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        let _ = write!(out, "  {}: ", json_string(k));
        match v {
            KvValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            KvValue::I64(n) => {
                let _ = write!(out, "{n}");
            }
            KvValue::F64(f) => {
                let _ = write!(out, "{}", json_number(*f));
            }
            KvValue::Str(s) => {
                let _ = write!(out, "{}", json_string(s));
            }
            KvValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
        }
    }
    out.push_str("\n}\n");
    out
}

/// JSON string literal with the escapes RFC 8259 requires.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(f: f64) -> String {
    if f.is_finite() {
        format!("{f}")
    } else {
        // JSON has no Inf/NaN; null is the least-wrong spelling.
        "null".to_string()
    }
}

fn label_str(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}={}", prom_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn type_str(kind: Kind) -> &'static str {
    match kind {
        Kind::Counter => "counter",
        Kind::Gauge => "gauge",
        Kind::Histogram => "histogram",
    }
}

pub(crate) fn prometheus(families: &[Family]) -> String {
    let mut out = String::new();
    for fam in families {
        let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
        let _ = writeln!(out, "# TYPE {} {}", fam.name, type_str(fam.kind));
        for s in &fam.series {
            let labels = label_str(&s.labels);
            match &s.value {
                Value::Counter(c) => {
                    let _ = writeln!(out, "{}{} {}", fam.name, labels, c.get());
                }
                Value::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {}", fam.name, labels, g.get());
                }
                Value::Histogram(h) => {
                    let (buckets, total) = h.cumulative();
                    for (bound, cum) in buckets {
                        let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {cum}", fam.name);
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {total}", fam.name);
                    let _ = writeln!(out, "{}_sum {}", fam.name, h.sum_secs());
                    let _ = writeln!(out, "{}_count {total}", fam.name);
                }
            }
        }
    }
    out
}

pub(crate) fn json(families: &[Family]) -> String {
    let mut pairs: Vec<(String, KvValue)> = Vec::new();
    for fam in families {
        for s in &fam.series {
            let key = format!("{}{}", fam.name, label_str(&s.labels));
            match &s.value {
                Value::Counter(c) => pairs.push((key, KvValue::U64(c.get()))),
                Value::Gauge(g) => pairs.push((key, KvValue::I64(g.get()))),
                Value::Histogram(h) => {
                    let (buckets, total) = h.cumulative();
                    for (bound, cum) in buckets {
                        pairs.push((
                            format!("{}_bucket{{le=\"{bound}\"}}", fam.name),
                            KvValue::U64(cum),
                        ));
                    }
                    pairs.push((
                        format!("{}_bucket{{le=\"+Inf\"}}", fam.name),
                        KvValue::U64(total),
                    ));
                    pairs.push((format!("{}_sum", fam.name), KvValue::F64(h.sum_secs())));
                    pairs.push((format!("{}_count", fam.name), KvValue::U64(total)));
                }
            }
        }
    }
    render_kv_json(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn prometheus_families_carry_help_and_type_once() {
        let reg = Registry::new();
        reg.counter_with(
            "flowtree_drops_total",
            "Dropped things.",
            &[("reason", "a")],
        )
        .add(2);
        reg.counter_with(
            "flowtree_drops_total",
            "Dropped things.",
            &[("reason", "b")],
        )
        .add(3);
        let text = reg.render_prometheus();
        assert_eq!(
            text.matches("# HELP flowtree_drops_total Dropped things.")
                .count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE flowtree_drops_total counter").count(),
            1
        );
        assert!(text.contains("flowtree_drops_total{reason=\"a\"} 2"));
        assert!(text.contains("flowtree_drops_total{reason=\"b\"} 3"));
    }

    #[test]
    fn prometheus_histogram_is_cumulative_with_inf_equal_to_count() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("flowtree_lat_seconds", "Latency.", &[0.001, 0.01]);
        h.observe_secs(0.0001);
        h.observe_secs(0.002);
        h.observe_secs(9.0);
        let text = reg.render_prometheus();
        assert!(text.contains("flowtree_lat_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("flowtree_lat_seconds_bucket{le=\"0.01\"} 2"));
        assert!(text.contains("flowtree_lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("flowtree_lat_seconds_count 3"));
    }

    #[test]
    fn json_escapes_and_round_trips_kv_pairs() {
        let pairs = vec![
            ("plain".to_string(), KvValue::U64(7)),
            ("text".to_string(), KvValue::Str("a\"b\\c\nd".to_string())),
            ("neg".to_string(), KvValue::I64(-4)),
            ("ok".to_string(), KvValue::Bool(true)),
        ];
        let json = render_kv_json(&pairs);
        assert!(json.contains("\"plain\": 7"));
        assert!(json.contains("\"text\": \"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"neg\": -4"));
        assert!(json.contains("\"ok\": true"));
        let text = render_kv_text(&pairs);
        assert!(text.contains("plain 7\n"));
        assert!(text.contains("neg -4\n"));
        assert!(text.contains("ok true\n"));
    }

    #[test]
    fn registry_json_matches_prometheus_values() {
        let reg = Registry::new();
        reg.counter("flowtree_things_total", "t").add(41);
        reg.gauge("flowtree_depth", "d").set(-3);
        let json = reg.render_json();
        assert!(json.contains("\"flowtree_things_total\": 41"));
        assert!(json.contains("\"flowtree_depth\": -3"));
    }
}
