//! Bounded in-memory ring of operational events.
//!
//! Counters say *that* something moved; the event ring says *why*:
//! a rebase was honored, a delta export fell back to full, the spill
//! queue shed frames, the node restarted after a crash. Every node
//! keeps one ring and serves it as `GET /events`, newest last, one
//! `ts_ms kind detail` line per event. The ring is bounded — a
//! misbehaving fleet can't grow a node's memory — and push is a short
//! critical section off every hot path (events are rare by
//! definition).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One operational event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Wall-clock milliseconds since the Unix epoch.
    pub ts_ms: u64,
    /// Stable machine-greppable kind, e.g. `rebase`, `delta_fallback`,
    /// `spill_shed`, `crash_restart`, `window_shed`, `reload`.
    pub kind: &'static str,
    /// Human-oriented detail.
    pub detail: String,
}

/// A bounded, shareable event ring (clones share the buffer).
#[derive(Clone)]
pub struct EventRing {
    inner: Arc<Mutex<Ring>>,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("total", &self.total())
            .finish()
    }
}

struct Ring {
    cap: usize,
    /// Events ever pushed, including ones the bound evicted.
    total: u64,
    buf: VecDeque<Event>,
}

impl EventRing {
    /// A ring keeping the newest `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> EventRing {
        EventRing {
            inner: Arc::new(Mutex::new(Ring {
                cap: cap.max(1),
                total: 0,
                buf: VecDeque::new(),
            })),
        }
    }

    /// Records an event, evicting the oldest past the bound.
    pub fn push(&self, ts_ms: u64, kind: &'static str, detail: String) {
        let mut ring = self.inner.lock().expect("event ring");
        ring.total += 1;
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
        }
        ring.buf.push_back(Event {
            ts_ms,
            kind,
            detail,
        });
    }

    /// Events currently held, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("event ring")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Events ever pushed (monotonic, survives eviction).
    pub fn total(&self) -> u64 {
        self.inner.lock().expect("event ring").total
    }

    /// `ts_ms kind detail` lines, oldest first — the `/events` body.
    pub fn render_text(&self) -> String {
        let ring = self.inner.lock().expect("event ring");
        let mut out = String::new();
        for e in &ring.buf {
            out.push_str(&format!("{} {} {}\n", e.ts_ms, e.kind, e.detail));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_total() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(1000 + i, "test", format!("event {i}"));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "event 2");
        assert_eq!(events[2].detail, "event 4");
        assert_eq!(ring.total(), 5);
    }

    #[test]
    fn clones_share_the_buffer() {
        let ring = EventRing::new(8);
        let other = ring.clone();
        other.push(7, "shared", "hello".to_string());
        assert_eq!(ring.snapshot().len(), 1);
        let text = ring.render_text();
        assert_eq!(text, "7 shared hello\n");
    }
}
