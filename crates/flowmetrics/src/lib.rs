//! In-tree metrics for the Flowtree fleet — no external dependencies.
//!
//! Every node (site daemon, relay, root) holds one [`Registry`]: a
//! cheap cloneable handle behind which instruments live as `Arc`'d
//! atomics. Registration takes a lock once; the instruments themselves
//! are lock-free on the hot path:
//!
//! * [`Counter`] — monotonically increasing `AtomicU64`. `set` exists
//!   so scrape handlers can mirror an existing snapshot counter
//!   (e.g. `RelayLedger` fields) into a registry-backed series without
//!   rewriting the producer.
//! * [`Gauge`] — an `AtomicI64` that can go up and down (queue depths,
//!   open windows, lag).
//! * [`Histogram`] — fixed exponential buckets over seconds, counts
//!   and sum as atomics. Built for latency: decode, flush, merge,
//!   export round-trip, query.
//! * [`Stopwatch`] — the hot-path timer. With the `hot-timers` feature
//!   (default on) it reads `Instant`; compiled out it is a zero-sized
//!   no-op, which is what the instrumentation-overhead benchmark
//!   toggles.
//!
//! Exposition is text-based and allocation-at-scrape-time only:
//! [`Registry::render_prometheus`] emits the Prometheus text format
//! (`# HELP`/`# TYPE`, cumulative `le` buckets, `+Inf` == `_count`),
//! [`Registry::render_json`] the same series as one JSON object. The
//! [`events`] module adds a bounded in-memory ring of operational
//! events (rebases, fallbacks, sheds, crash-restarts) served as
//! `GET /events`.
//!
//! Naming convention (enforced at registration): Prometheus charset
//! `[a-zA-Z_:][a-zA-Z0-9_:]*`, `flowtree_` prefix, `_total` suffix on
//! counters, `_seconds` on latency histograms, base units otherwise.

pub mod events;
pub mod expo;

pub use events::{Event, EventRing};
pub use expo::{render_kv_json, render_kv_text, KvValue};

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default latency bounds, seconds: powers of 4 from 1 µs to ~4.2 s.
/// Twelve finite buckets + `+Inf` covers a UDP decode (~µs) through a
/// WAN export round-trip (~s) with 2 buckets per decade.
pub const DEFAULT_LATENCY_BOUNDS: [f64; 12] = [
    0.000001, 0.000004, 0.000016, 0.000064, 0.000256, 0.001024, 0.004096, 0.016384, 0.065536,
    0.262144, 1.048576, 4.194304,
];

/// What a series holds; decides the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonic counter (`_total`).
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Latency distribution (`_bucket`/`_sum`/`_count`).
    Histogram,
}

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for scrape-time mirroring of an
    /// external monotonic counter, not for hot-path use.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negative) `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram internals: per-bucket counts (non-cumulative in memory,
/// cumulated at render), total count, and a sum held in nanoseconds so
/// it stays an integer atomic.
pub(crate) struct HistogramCore {
    pub(crate) bounds: Vec<f64>,
    pub(crate) counts: Box<[AtomicU64]>,
    pub(crate) inf: AtomicU64,
    pub(crate) sum_nanos: AtomicU64,
}

/// A fixed-bucket latency histogram over seconds.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum_secs", &self.sum_secs())
            .finish()
    }
}

impl Histogram {
    /// Records one observation in seconds.
    #[inline]
    pub fn observe_secs(&self, secs: f64) {
        let core = &*self.0;
        let nanos = (secs * 1e9).max(0.0) as u64;
        core.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        // Linear scan: 12 bounds, branch-predictable, cheaper than
        // binary search at this size.
        for (i, b) in core.bounds.iter().enumerate() {
            if secs <= *b {
                core.counts[i].fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        core.inf.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one observation from a `Duration`.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_secs(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        let core = &*self.0;
        let finite: u64 = core.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        finite + core.inf.load(Ordering::Relaxed)
    }

    /// Sum of observations, seconds.
    pub fn sum_secs(&self) -> f64 {
        self.0.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// `(bound, cumulative_count)` per finite bucket, then the total
    /// count (the `+Inf` bucket) — exactly the exposition shape.
    pub fn cumulative(&self) -> (Vec<(f64, u64)>, u64) {
        let core = &*self.0;
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(core.bounds.len());
        for (i, b) in core.bounds.iter().enumerate() {
            acc += core.counts[i].load(Ordering::Relaxed);
            out.push((*b, acc));
        }
        (out, acc + core.inf.load(Ordering::Relaxed))
    }
}

/// Hot-path timer. With `hot-timers` (default) this reads the
/// monotonic clock; compiled out it is zero-sized and every method is
/// a no-op the optimizer deletes.
pub struct Stopwatch {
    #[cfg(feature = "hot-timers")]
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts timing (or does nothing, feature-off).
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch {
            #[cfg(feature = "hot-timers")]
            start: std::time::Instant::now(),
        }
    }

    /// Stops and records into `hist` (feature-off: no-op).
    #[inline]
    pub fn observe(self, hist: &Histogram) {
        #[cfg(feature = "hot-timers")]
        hist.observe(self.start.elapsed());
        #[cfg(not(feature = "hot-timers"))]
        let _ = hist;
    }

    /// Whether timing is compiled in.
    pub const fn enabled() -> bool {
        cfg!(feature = "hot-timers")
    }
}

pub(crate) enum Value {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

pub(crate) struct Series {
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) value: Value,
}

pub(crate) struct Family {
    pub(crate) name: String,
    pub(crate) help: String,
    pub(crate) kind: Kind,
    pub(crate) series: Vec<Series>,
}

#[derive(Default)]
struct Inner {
    families: Vec<Family>,
}

/// Handle to a node's metric set. Cloning shares the same registry;
/// registration is idempotent per `(name, labels)` pair.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.inner.lock().expect("metrics registry").families.len();
        f.debug_struct("Registry")
            .field("families", &families)
            .finish()
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Value,
    ) -> Value {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut inner = self.inner.lock().expect("metrics registry");
        let fam = match inner.families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name} registered as {:?} and {:?}",
                    f.kind,
                    kind
                );
                f
            }
            None => {
                inner.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                inner.families.last_mut().expect("just pushed")
            }
        };
        if let Some(s) = fam.series.iter().find(|s| s.labels == labels) {
            return clone_value(&s.value);
        }
        let value = make();
        fam.series.push(Series {
            labels,
            value: clone_value(&value),
        });
        value
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a counter with static labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, Kind::Counter, labels, || {
            Value::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Value::Counter(c) => c,
            _ => unreachable!("registered as counter"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a gauge with static labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels, || {
            Value::Gauge(Gauge(Arc::new(AtomicI64::new(0))))
        }) {
            Value::Gauge(g) => g,
            _ => unreachable!("registered as gauge"),
        }
    }

    /// Registers (or finds) a histogram with the default latency
    /// bounds.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with_bounds(name, help, &DEFAULT_LATENCY_BOUNDS)
    }

    /// Registers (or finds) a histogram with explicit bucket bounds
    /// (strictly increasing, seconds).
    pub fn histogram_with_bounds(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must strictly increase"
        );
        match self.register(name, help, Kind::Histogram, &[], || {
            let counts: Box<[AtomicU64]> = (0..bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Value::Histogram(Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts,
                inf: AtomicU64::new(0),
                sum_nanos: AtomicU64::new(0),
            })))
        }) {
            Value::Histogram(h) => h,
            _ => unreachable!("registered as histogram"),
        }
    }

    /// Prometheus text exposition of every registered series.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry");
        expo::prometheus(&inner.families)
    }

    /// The same series as one JSON object, `{"name{labels}": value}`
    /// with histograms expanded to `_count`/`_sum`/`_bucket` keys.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry");
        expo::json(&inner.families)
    }
}

fn clone_value(v: &Value) -> Value {
    match v {
        Value::Counter(c) => Value::Counter(c.clone()),
        Value::Gauge(g) => Value::Gauge(g.clone()),
        Value::Histogram(h) => Value::Histogram(h.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_state_across_handles() {
        let reg = Registry::new();
        let a = reg.counter("flowtree_test_total", "test");
        let b = reg.counter("flowtree_test_total", "test");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);

        let g = reg.gauge("flowtree_depth", "test");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.gauge("flowtree_depth", "test").get(), 3);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let reg = Registry::new();
        let a = reg.counter_with("flowtree_drops_total", "d", &[("reason", "quota")]);
        let b = reg.counter_with("flowtree_drops_total", "d", &[("reason", "decode")]);
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        Registry::new().counter("flow-tree", "dash is not allowed");
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_conflicts_are_rejected() {
        let reg = Registry::new();
        reg.counter("flowtree_x", "x");
        reg.gauge("flowtree_x", "x");
    }

    #[test]
    fn histogram_buckets_accumulate_and_sum() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("flowtree_lat_seconds", "t", &[0.001, 0.01, 0.1]);
        h.observe_secs(0.0005); // bucket 0
        h.observe_secs(0.005); // bucket 1
        h.observe_secs(0.5); // +Inf
        let (buckets, total) = h.cumulative();
        assert_eq!(buckets, vec![(0.001, 1), (0.01, 2), (0.1, 2)]);
        assert_eq!(total, 3);
        assert_eq!(h.count(), 3);
        assert!((h.sum_secs() - 0.5055).abs() < 1e-6);
    }

    #[test]
    fn observation_on_a_bound_lands_in_that_bucket() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("flowtree_edge_seconds", "t", &[0.001, 0.01]);
        h.observe_secs(0.001); // le is inclusive
        let (buckets, _) = h.cumulative();
        assert_eq!(buckets[0].1, 1);
    }

    #[test]
    fn stopwatch_records_when_enabled() {
        let reg = Registry::new();
        let h = reg.histogram("flowtree_sw_seconds", "t");
        let sw = Stopwatch::start();
        sw.observe(&h);
        if Stopwatch::enabled() {
            assert_eq!(h.count(), 1);
        } else {
            assert_eq!(h.count(), 0);
        }
    }

    #[test]
    fn default_bounds_strictly_increase() {
        assert!(DEFAULT_LATENCY_BOUNDS.windows(2).all(|w| w[0] < w[1]));
    }
}
