//! Length-prefixed TCP framing — the one copy.
//!
//! Every TCP surface in the system (summary export, acknowledged
//! ingest, the relay query protocol) speaks the same frame format: a
//! `u32` big-endian length followed by that many payload bytes,
//! bounded by [`MAX_FRAME`]. The raw [`read_frame`] / [`write_frame`]
//! pair used to live in [`crate::net`] with the connection-serving
//! read loop re-implemented at every call site; this module is the
//! shared home for both, so `flowdist` and `flowrelay` stop carrying
//! divergent copies.
//!
//! [`FramedConn`] wraps one `TcpStream` the way every server loop
//! ended up doing by hand: a persistent buffered reader on a cloned
//! read half (per-request readers would drop their read-ahead and
//! desynchronize pipelined clients) and an unbuffered write half that
//! flushes per frame.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on a frame accepted from the network (16 MiB).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(mut w: W, frame: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(frame.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
pub fn read_frame<R: Read>(mut r: R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut frame = vec![0u8; len as usize];
    r.read_exact(&mut frame)?;
    Ok(Some(frame))
}

/// One framed TCP connection: a persistent buffered read half and a
/// flushing write half over the same stream.
///
/// The reader lives for the connection, never per request — a
/// per-request `BufReader` would discard its read-ahead each
/// iteration, so a client pipelining two frames into one segment
/// would lose the second and desynchronize the stream.
#[derive(Debug)]
pub struct FramedConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl FramedConn {
    /// Wraps an established stream (clones the read half).
    pub fn new(stream: TcpStream) -> std::io::Result<FramedConn> {
        let read_half = stream.try_clone()?;
        Ok(FramedConn {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Connects to `addr` and wraps the stream.
    pub fn connect(addr: &str) -> std::io::Result<FramedConn> {
        FramedConn::new(TcpStream::connect(addr)?)
    }

    /// Receives the next frame; `Ok(None)` on clean EOF.
    pub fn recv(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        read_frame(&mut self.reader)
    }

    /// Sends one frame (flushes).
    pub fn send(&mut self, frame: &[u8]) -> std::io::Result<()> {
        write_frame(&mut self.writer, frame)
    }

    /// One request → one response round trip.
    pub fn call(&mut self, request: &[u8]) -> std::io::Result<Vec<u8>> {
        self.send(request)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "connection closed")
        })
    }

    /// The underlying stream (e.g. for timeouts).
    pub fn stream(&self) -> &TcpStream {
        &self.writer
    }
}

/// Serves one connection with a frame handler until the peer closes
/// it: every received frame is passed to `handle`; a `Some` reply is
/// written back. Returns how many frames were received.
///
/// This is the shared shape of every per-connection server loop in
/// the system (summary ingest, acknowledged ingest, the query
/// protocol) — the call sites differ only in the handler.
pub fn serve_framed<F>(stream: TcpStream, mut handle: F) -> std::io::Result<usize>
where
    F: FnMut(Vec<u8>) -> Option<Vec<u8>>,
{
    let mut conn = FramedConn::new(stream)?;
    let mut served = 0usize;
    while let Some(frame) = conn.recv()? {
        served += 1;
        if let Some(reply) = handle(frame) {
            conn.send(&reply)?;
        }
    }
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn frame_roundtrip_over_buffers() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_rejected_both_ways() {
        let huge = vec![0u8; MAX_FRAME as usize + 1];
        assert!(write_frame(Vec::new(), &huge).is_err());
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        assert!(read_frame(&buf[..]).is_err());
    }

    #[test]
    fn framed_conn_pipelines_and_serves() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            serve_framed(stream, |frame| {
                let mut reply = frame;
                reply.reverse();
                Some(reply)
            })
            .unwrap()
        });
        let mut conn = FramedConn::connect(&addr.to_string()).unwrap();
        // Pipeline two requests before reading a single response: the
        // persistent reader must not lose the second frame.
        conn.send(b"abc").unwrap();
        conn.send(b"xyz").unwrap();
        assert_eq!(conn.recv().unwrap().unwrap(), b"cba");
        assert_eq!(conn.recv().unwrap().unwrap(), b"zyx");
        drop(conn);
        assert_eq!(server.join().unwrap(), 2);
    }
}
