//! A tiny plaintext operability endpoint.
//!
//! Every node in a fleet (site daemon, relay, root) exposes the same
//! shape of surface: `GET /health` and `GET /stats` return `key value`
//! lines, `POST /reload` accepts `key=value` lines and applies what
//! the node supports live. The protocol is deliberately the smallest
//! HTTP/1.0 subset `curl` and a shell script can speak — one request
//! per connection, `Connection: close`, plaintext bodies — because the
//! offline dependency set has no HTTP stack and none is needed for a
//! stats page.
//!
//! The server itself is node-agnostic: [`spawn_ops`] parks an
//! accept-poll loop on a thread and hands every parsed request to the
//! node's handler closure. [`OpsHandle::stop`] is cooperative and
//! frees the port (the loop polls a nonblocking listener instead of
//! parking in `accept`), so a drained node releases its endpoint.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One parsed request: method, path, and (for POST) the body.
#[derive(Debug, Clone)]
pub struct OpsRequest {
    /// `GET` or `POST` (anything else is answered 405 before the
    /// handler runs).
    pub method: String,
    /// The request path, e.g. `/stats`.
    pub path: String,
    /// The request body (empty for GET).
    pub body: String,
}

/// The handler's answer: an HTTP status code and a plaintext body.
#[derive(Debug, Clone)]
pub struct OpsResponse {
    /// HTTP status (200, 404, …).
    pub status: u16,
    /// Plaintext body; a trailing newline is added if missing.
    pub body: String,
}

impl OpsResponse {
    /// A `200 OK` plaintext response.
    pub fn ok(body: impl Into<String>) -> OpsResponse {
        OpsResponse {
            status: 200,
            body: body.into(),
        }
    }

    /// A `404 Not Found` response.
    pub fn not_found() -> OpsResponse {
        OpsResponse {
            status: 404,
            body: "not found".into(),
        }
    }

    /// A `400 Bad Request` with a reason.
    pub fn bad_request(msg: impl Into<String>) -> OpsResponse {
        OpsResponse {
            status: 400,
            body: msg.into(),
        }
    }
}

/// A running ops endpoint (see [`spawn_ops`]).
#[derive(Debug)]
pub struct OpsHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl OpsHandle {
    /// The bound address (useful with a `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the loop and frees the port.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for OpsHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// How long a single ops connection may take to deliver its request
/// or absorb its response before the server hangs up. Scrapes are
/// local one-packet exchanges; anything slower is a stalled or
/// hostile peer that must not hold resources.
const CONN_TIMEOUT: Duration = Duration::from_millis(2_000);

/// Binds `addr` and serves ops requests on a background thread. Each
/// accepted connection is handed to a short-lived thread with read
/// *and* write timeouts, so one slow or stalled scraper can't block
/// `/health` for the whole node; the handler itself must be
/// thread-safe and cheap (snapshot counters, flip a flag) — this is a
/// stats page, not an API gateway.
pub fn spawn_ops<F>(addr: &str, handler: F) -> std::io::Result<OpsHandle>
where
    F: Fn(&OpsRequest) -> OpsResponse + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handler = Arc::new(handler);
    let join = std::thread::Builder::new()
        .name("ops".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // One short-lived thread per connection: the
                        // accept loop goes right back to listening, so
                        // a scraper that stalls mid-request only ties
                        // up its own thread until the timeout fires.
                        let handler = Arc::clone(&handler);
                        let spawned =
                            std::thread::Builder::new()
                                .name("ops-conn".into())
                                .spawn(move || {
                                    let _ = serve_one(stream, &*handler);
                                });
                        if spawned.is_err() {
                            // Thread exhaustion: shed the connection
                            // rather than wedge the accept loop.
                            continue;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        })?;
    Ok(OpsHandle {
        addr: local,
        stop,
        join: Some(join),
    })
}

fn serve_one<F>(mut stream: TcpStream, handler: &F) -> std::io::Result<()>
where
    F: Fn(&OpsRequest) -> OpsResponse,
{
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    let req = match read_request(&mut stream) {
        Ok(Some(r)) => r,
        Ok(None) => return Ok(()),
        Err(_) => {
            return write_response(
                &mut stream,
                &OpsResponse {
                    status: 400,
                    body: "malformed request".into(),
                },
            )
        }
    };
    let resp = match req.method.as_str() {
        "GET" | "POST" => handler(&req),
        _ => OpsResponse {
            status: 405,
            body: "method not allowed".into(),
        },
    };
    write_response(&mut stream, &resp)
}

/// Parses the smallest useful HTTP subset: request line, headers (only
/// `Content-Length` is interpreted), optional body. Bodies are bounded
/// at 64 KiB — a reload spec is a handful of lines.
fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<OpsRequest>> {
    const MAX_HEAD: usize = 16 * 1024;
    const MAX_BODY: usize = 64 * 1024;
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    // Read byte-wise until the blank line; head sizes here are tiny
    // and this keeps any body bytes out of a read-ahead buffer.
    loop {
        match stream.read(&mut byte)? {
            0 => return Ok(None),
            _ => head.push(byte[0]),
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
        if head.len() > MAX_HEAD {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad request line",
        ));
    }
    let mut content_length = 0usize;
    for line in lines {
        let Some((k, v)) = line.split_once(':') else {
            continue;
        };
        if k.trim().eq_ignore_ascii_case("content-length") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    if content_length > MAX_BODY {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        stream.read_exact(&mut body)?;
    }
    Ok(Some(OpsRequest {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    }))
}

fn write_response(stream: &mut TcpStream, resp: &OpsResponse) -> std::io::Result<()> {
    let reason = match resp.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let mut body = resp.body.clone();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason,
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A one-shot plaintext HTTP client for the ops protocol — what
/// `flowctl` (and tests) use to scrape `/stats` or post `/reload`
/// without an HTTP dependency. Returns `(status, body)`.
pub fn ops_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_millis(5_000)))?;
    let req = format!(
        "{method} {path} HTTP/1.0\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, payload) = match raw.split_once("\r\n\r\n") {
        Some((h, b)) => (h, b),
        None => raw.split_once("\n\n").unwrap_or((raw.as_str(), "")),
    };
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Ok((status, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_page_roundtrip_and_stop_frees_port() {
        let handle = spawn_ops("127.0.0.1:0", |req| {
            match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/stats") => OpsResponse::ok("frames 42"),
                ("POST", "/reload") => OpsResponse::ok(format!("applied {}", req.body.trim())),
                _ => OpsResponse::not_found(),
            }
        })
        .unwrap();
        let addr = handle.local_addr().to_string();

        let (status, body) = ops_request(&addr, "GET", "/stats", "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.trim(), "frames 42");

        let (status, body) = ops_request(&addr, "POST", "/reload", "linger-ms=5").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.trim(), "applied linger-ms=5");

        let (status, _) = ops_request(&addr, "GET", "/nope", "").unwrap();
        assert_eq!(status, 404);

        handle.stop();
        // The port is released: a new bind on the same address works.
        let rebind = std::net::TcpListener::bind(&addr);
        assert!(rebind.is_ok(), "port not freed: {rebind:?}");
    }

    /// The satellite fix this PR pins: a scraper that connects and
    /// then stalls must not block other requests — connections are
    /// served concurrently with per-connection timeouts.
    #[test]
    fn stalled_scraper_does_not_block_health() {
        let handle = spawn_ops("127.0.0.1:0", |req| match req.path.as_str() {
            "/health" => OpsResponse::ok("ok true"),
            _ => OpsResponse::not_found(),
        })
        .unwrap();
        let addr = handle.local_addr().to_string();

        // Open a connection and send nothing: without per-connection
        // threads this parks the accept loop in read() for the whole
        // read-timeout window.
        let stalled = TcpStream::connect(&addr).unwrap();

        let start = std::time::Instant::now();
        let (status, body) = ops_request(&addr, "GET", "/health", "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.trim(), "ok true");
        assert!(
            start.elapsed() < Duration::from_millis(1_500),
            "health blocked behind a stalled connection: {:?}",
            start.elapsed()
        );
        drop(stalled);
        handle.stop();
    }
}
