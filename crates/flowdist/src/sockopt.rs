//! Best-effort socket receive-buffer sizing (`SO_RCVBUF`).
//!
//! A collector drinking from a UDP firehose lives or dies by the
//! kernel receive buffer: the default is far too small for a burst of
//! exporters flushing at once, and every overflow is an invisible
//! drop. std exposes no API for `SO_RCVBUF`, so this module holds the
//! workspace's only `unsafe` — two raw `setsockopt`/`getsockopt`
//! calls on an fd we own, gated to Linux (elsewhere the knob reports
//! back `None` and the caller proceeds with the OS default).
//!
//! Everything is best-effort by design: the kernel clamps requests to
//! `net.core.rmem_max` (and doubles them for bookkeeping), so the
//! *achieved* size — what [`set_recv_buffer`] returns — is the truth
//! to surface in stats, not the requested one.

/// Requests a receive buffer of `bytes` for `socket` and returns the
/// size the kernel actually granted (`None` when the platform has no
/// support or the call failed — the socket keeps its default).
#[cfg(target_os = "linux")]
pub fn set_recv_buffer(socket: &std::net::UdpSocket, bytes: usize) -> Option<usize> {
    use std::os::fd::AsRawFd;
    imp::set_and_read_rcvbuf(socket.as_raw_fd(), bytes)
}

/// Non-Linux fallback: no support, socket keeps the OS default.
#[cfg(not(target_os = "linux"))]
pub fn set_recv_buffer(_socket: &std::net::UdpSocket, _bytes: usize) -> Option<usize> {
    None
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use std::os::raw::{c_int, c_uint, c_void};

    // asm-generic values, correct for every Linux target this
    // workspace builds (x86_64, aarch64, riscv).
    const SOL_SOCKET: c_int = 1;
    const SO_RCVBUF: c_int = 8;

    // std links libc on Linux; declaring the two symbols here avoids a
    // crate dependency the offline build environment cannot add.
    unsafe extern "C" {
        fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: c_uint,
        ) -> c_int;
        fn getsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *mut c_void,
            len: *mut c_uint,
        ) -> c_int;
    }

    pub fn set_and_read_rcvbuf(fd: c_int, bytes: usize) -> Option<usize> {
        let requested: c_int = bytes.min(c_int::MAX as usize) as c_int;
        // SAFETY: fd is a live socket owned by the caller for the
        // duration of the call; the value pointer and length describe
        // a properly aligned c_int on this stack frame.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_RCVBUF,
                (&requested as *const c_int).cast(),
                std::mem::size_of::<c_int>() as c_uint,
            )
        };
        if rc != 0 {
            return None;
        }
        let mut achieved: c_int = 0;
        let mut len = std::mem::size_of::<c_int>() as c_uint;
        // SAFETY: same fd; the out-pointer and in/out length describe
        // the `achieved` c_int above.
        let rc = unsafe {
            getsockopt(
                fd,
                SOL_SOCKET,
                SO_RCVBUF,
                (&mut achieved as *mut c_int).cast(),
                &mut len,
            )
        };
        if rc != 0 || achieved < 0 {
            return None;
        }
        Some(achieved as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn achieved_size_is_reported_and_nonzero() {
        let sock = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        let achieved = set_recv_buffer(&sock, 256 * 1024);
        // The kernel may clamp (rmem_max) or double, but it grants
        // *something* and reports it back.
        let achieved = achieved.expect("linux supports SO_RCVBUF");
        assert!(achieved > 0);
    }

    #[test]
    fn zero_request_does_not_panic() {
        let sock = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        let _ = set_recv_buffer(&sock, 0);
    }
}
