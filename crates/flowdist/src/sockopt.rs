//! Best-effort socket and scheduler knobs (`SO_RCVBUF`,
//! `SO_REUSEPORT`, `sched_setaffinity`).
//!
//! A collector drinking from a UDP firehose lives or dies by the
//! kernel receive buffer: the default is far too small for a burst of
//! exporters flushing at once, and every overflow is an invisible
//! drop. std exposes no API for `SO_RCVBUF`, so this module holds the
//! workspace's raw-syscall seam — a handful of `unsafe` FFI calls on
//! fds we own, gated to Linux (elsewhere each knob reports back `None`
//! or `false` and the caller proceeds with the portable path).
//!
//! Three knobs live here:
//!
//! * [`set_recv_buffer`] — `SO_RCVBUF` on an existing socket.
//! * [`bind_reuseport`] — bind a UDP socket with `SO_REUSEPORT` set
//!   *before* `bind(2)` (std binds eagerly, so this needs the raw
//!   `socket`/`setsockopt`/`bind` sequence). N sockets bound this way
//!   to one port let the kernel fan incoming datagrams across N
//!   independent readers — the multi-lane ingest path.
//! * [`pin_current_thread`] / [`unpin_current_thread`] — opt-in CPU
//!   affinity for listen lanes and shard workers.
//!
//! Everything is best-effort by design: the kernel clamps `SO_RCVBUF`
//! requests to `net.core.rmem_max` (and doubles them for bookkeeping),
//! so the *achieved* size — what [`set_recv_buffer`] returns — is the
//! truth to surface in stats, not the requested one. Likewise a failed
//! reuseport bind or affinity call degrades to the portable behavior
//! rather than erroring out.

use std::net::{SocketAddr, UdpSocket};

/// Requests a receive buffer of `bytes` for `socket` and returns the
/// size the kernel actually granted (`None` when the platform has no
/// support or the call failed — the socket keeps its default).
#[cfg(target_os = "linux")]
pub fn set_recv_buffer(socket: &std::net::UdpSocket, bytes: usize) -> Option<usize> {
    use std::os::fd::AsRawFd;
    imp::set_and_read_rcvbuf(socket.as_raw_fd(), bytes)
}

/// Non-Linux fallback: no support, socket keeps the OS default.
#[cfg(not(target_os = "linux"))]
pub fn set_recv_buffer(_socket: &std::net::UdpSocket, _bytes: usize) -> Option<usize> {
    None
}

/// Binds a UDP socket to `addr` with `SO_REUSEPORT` set before the
/// bind, so several sockets can share one port and the kernel fans
/// datagrams across them. Returns `None` when the platform has no
/// support (callers fall back to a single socket feeding lanes over a
/// ring) or when any step of the raw sequence fails.
#[cfg(target_os = "linux")]
pub fn bind_reuseport(addr: SocketAddr) -> Option<UdpSocket> {
    imp::bind_reuseport(addr)
}

/// Non-Linux fallback: no `SO_REUSEPORT` bind, callers use the single
/// socket + fanout-ring path.
#[cfg(not(target_os = "linux"))]
pub fn bind_reuseport(_addr: SocketAddr) -> Option<UdpSocket> {
    None
}

/// Pins the calling thread to `core` (modulo the number of online
/// CPUs). Returns `true` when the affinity call succeeded; `false` on
/// unsupported platforms or failure — callers carry on unpinned.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(core: usize) -> bool {
    imp::set_affinity_one(core % online_cpus())
}

/// Non-Linux fallback: affinity is not supported; threads float.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_core: usize) -> bool {
    false
}

/// Clears any pinning on the calling thread (affinity mask = all
/// CPUs). Returns `true` on success — the live-reload path for
/// `pin-cores=0`.
#[cfg(target_os = "linux")]
pub fn unpin_current_thread() -> bool {
    imp::set_affinity_all()
}

/// Non-Linux fallback: nothing was pinned, nothing to clear.
#[cfg(not(target_os = "linux"))]
pub fn unpin_current_thread() -> bool {
    false
}

/// Number of online CPUs (at least 1) — the modulus for lane → core
/// assignment.
pub fn online_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use std::net::{SocketAddr, UdpSocket};
    use std::os::raw::{c_int, c_uint, c_void};

    // asm-generic values, correct for every Linux target this
    // workspace builds (x86_64, aarch64, riscv).
    const SOL_SOCKET: c_int = 1;
    const SO_RCVBUF: c_int = 8;
    const SO_REUSEPORT: c_int = 15;
    const AF_INET: c_int = 2;
    const AF_INET6: c_int = 10;
    const SOCK_DGRAM: c_int = 2;
    const SOCK_CLOEXEC: c_int = 0o2000000;

    // std links libc on Linux; declaring the symbols here avoids a
    // crate dependency the offline build environment cannot add.
    unsafe extern "C" {
        fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: c_uint,
        ) -> c_int;
        fn getsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *mut c_void,
            len: *mut c_uint,
        ) -> c_int;
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn bind(fd: c_int, addr: *const c_void, len: c_uint) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const c_void) -> c_int;
    }

    pub fn set_and_read_rcvbuf(fd: c_int, bytes: usize) -> Option<usize> {
        let requested: c_int = bytes.min(c_int::MAX as usize) as c_int;
        // SAFETY: fd is a live socket owned by the caller for the
        // duration of the call; the value pointer and length describe
        // a properly aligned c_int on this stack frame.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_RCVBUF,
                (&requested as *const c_int).cast(),
                std::mem::size_of::<c_int>() as c_uint,
            )
        };
        if rc != 0 {
            return None;
        }
        let mut achieved: c_int = 0;
        let mut len = std::mem::size_of::<c_int>() as c_uint;
        // SAFETY: same fd; the out-pointer and in/out length describe
        // the `achieved` c_int above.
        let rc = unsafe {
            getsockopt(
                fd,
                SOL_SOCKET,
                SO_RCVBUF,
                (&mut achieved as *mut c_int).cast(),
                &mut len,
            )
        };
        if rc != 0 || achieved < 0 {
            return None;
        }
        Some(achieved as usize)
    }

    /// sockaddr_in / sockaddr_in6 laid out by hand: family is a
    /// native-endian u16, port and address bytes are big-endian, and
    /// the v6 form carries flowinfo + scope_id as native u32s.
    fn sockaddr_bytes(addr: SocketAddr) -> ([u8; 28], c_uint) {
        let mut buf = [0u8; 28];
        match addr {
            SocketAddr::V4(v4) => {
                buf[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
                buf[2..4].copy_from_slice(&v4.port().to_be_bytes());
                buf[4..8].copy_from_slice(&v4.ip().octets());
                (buf, 16)
            }
            SocketAddr::V6(v6) => {
                buf[0..2].copy_from_slice(&(AF_INET6 as u16).to_ne_bytes());
                buf[2..4].copy_from_slice(&v6.port().to_be_bytes());
                buf[4..8].copy_from_slice(&v6.flowinfo().to_ne_bytes());
                buf[8..24].copy_from_slice(&v6.ip().octets());
                buf[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                (buf, 28)
            }
        }
    }

    pub fn bind_reuseport(addr: SocketAddr) -> Option<UdpSocket> {
        use std::os::fd::FromRawFd;
        let domain = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
        // SAFETY: plain socket(2); a negative return is checked below
        // and the fd is owned by this function until handed to
        // UdpSocket::from_raw_fd.
        let fd = unsafe { socket(domain, SOCK_DGRAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return None;
        }
        let on: c_int = 1;
        // SAFETY: fd is the live socket created above; value/len
        // describe an aligned c_int on this frame.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEPORT,
                (&on as *const c_int).cast(),
                std::mem::size_of::<c_int>() as c_uint,
            )
        };
        if rc != 0 {
            // SAFETY: closing the fd we created; it is not yet owned
            // by any Rust object.
            unsafe { close(fd) };
            return None;
        }
        let (sa, sa_len) = sockaddr_bytes(addr);
        // SAFETY: same fd; the pointer/length describe the sockaddr
        // buffer built above, valid for the duration of the call.
        let rc = unsafe { bind(fd, sa.as_ptr().cast(), sa_len) };
        if rc != 0 {
            // SAFETY: as above — fd still owned here.
            unsafe { close(fd) };
            return None;
        }
        // SAFETY: fd is a freshly bound UDP socket nothing else owns;
        // from_raw_fd transfers ownership to the UdpSocket.
        Some(unsafe { UdpSocket::from_raw_fd(fd) })
    }

    /// 1024-bit cpu_set_t, the kernel ABI's fixed-size default.
    const CPU_SET_WORDS: usize = 16;

    fn apply_mask(mask: &[u64; CPU_SET_WORDS]) -> bool {
        // SAFETY: pid 0 = calling thread; the mask pointer/size
        // describe the [u64; 16] (128 bytes = kernel cpu_set_t) on
        // this stack frame.
        let rc = unsafe {
            sched_setaffinity(
                0,
                std::mem::size_of::<[u64; CPU_SET_WORDS]>(),
                mask.as_ptr().cast(),
            )
        };
        rc == 0
    }

    pub fn set_affinity_one(core: usize) -> bool {
        if core >= CPU_SET_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; CPU_SET_WORDS];
        mask[core / 64] = 1u64 << (core % 64);
        apply_mask(&mask)
    }

    pub fn set_affinity_all() -> bool {
        // All bits set: the kernel intersects with the online CPU set,
        // which is exactly "unpinned".
        apply_mask(&[u64::MAX; CPU_SET_WORDS])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn achieved_size_is_reported_and_nonzero() {
        let sock = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        let achieved = set_recv_buffer(&sock, 256 * 1024);
        // The kernel may clamp (rmem_max) or double, but it grants
        // *something* and reports it back.
        let achieved = achieved.expect("linux supports SO_RCVBUF");
        assert!(achieved > 0);
    }

    #[test]
    fn zero_request_does_not_panic() {
        let sock = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        let _ = set_recv_buffer(&sock, 0);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn reuseport_sockets_share_a_port_and_deliver() {
        let a = bind_reuseport("127.0.0.1:0".parse().unwrap()).expect("linux reuseport");
        let port = a.local_addr().unwrap().port();
        let b = bind_reuseport(format!("127.0.0.1:{port}").parse().unwrap())
            .expect("second reuseport bind on same port");
        assert_eq!(b.local_addr().unwrap().port(), port);

        // A datagram lands on exactly one of the two sockets.
        let tx = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.send_to(b"ping", ("127.0.0.1", port)).unwrap();
        a.set_read_timeout(Some(std::time::Duration::from_millis(300)))
            .unwrap();
        b.set_read_timeout(Some(std::time::Duration::from_millis(300)))
            .unwrap();
        let mut buf = [0u8; 16];
        let got_a = a.recv_from(&mut buf).map(|(n, _)| n).ok();
        let got_b = b.recv_from(&mut buf).map(|(n, _)| n).ok();
        assert!(got_a == Some(4) || got_b == Some(4));
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn reuseport_v6_binds_when_stack_present() {
        // Dual-stack hosts bind; v6-less containers return None — both
        // are acceptable, the call must simply not misbehave.
        if let Some(sock) = bind_reuseport("[::1]:0".parse().unwrap()) {
            assert!(sock.local_addr().unwrap().port() > 0);
        }
    }

    #[test]
    fn pin_and_unpin_round_trip() {
        // On Linux pinning to core 0 always succeeds (every machine
        // has a CPU 0); elsewhere both calls report false.
        let pinned = pin_current_thread(0);
        let cleared = unpin_current_thread();
        if cfg!(target_os = "linux") {
            assert!(pinned);
            assert!(cleared);
        } else {
            assert!(!pinned);
            assert!(!cleared);
        }
    }

    #[test]
    fn online_cpus_is_at_least_one() {
        assert!(online_cpus() >= 1);
    }
}
