//! Lock-free single-producer / single-consumer ring.
//!
//! The portable ingest fallback (no `SO_REUSEPORT`) keeps one reader
//! thread on the socket and fans datagrams out to N lane threads.
//! Going through a mutex-backed channel there would put a lock on
//! every datagram — exactly what the lane architecture exists to
//! avoid — so the fanout hop is this minimal SPSC ring: a power-of-two
//! slot array with an acquire/release head/tail pair, one atomic load
//! and one store per push/pop, no locks, no allocation after
//! construction.
//!
//! [`spsc`] returns a split `(Producer, Consumer)` pair so the
//! single-producer / single-consumer contract is enforced by the type
//! system: neither endpoint is `Clone`, and both [`Producer::try_push`]
//! and [`Consumer::try_pop`] take `&mut self`, so even a shared
//! reference smuggled across threads (the endpoints are `Sync` through
//! their `Arc`) cannot run two pushes — or two pops — concurrently.
//! The `unsafe` inside is the slot-cell access that contract makes
//! sound, scoped with the same `#[allow(unsafe_code)]` discipline as
//! `sockopt` and `mrecv`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared ring state. Slots in `head..tail` (mod capacity) are
/// initialized; the producer only writes at `tail`, the consumer only
/// reads at `head`, and the release/acquire pairing on each index
/// hands ownership of a slot's contents across threads.
struct Shared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
}

// SAFETY: the producer/consumer split guarantees at most one thread
// touches each end; slot handoff is ordered by the release store of
// the index that publishes it.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Shared<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for Shared<T> {}

/// The write end of an SPSC ring. Not `Clone` — exactly one producer.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The read end of an SPSC ring. Not `Clone` — exactly one consumer.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a ring with at least `capacity` slots (rounded up to a
/// power of two, minimum 2).
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

impl<T> Producer<T> {
    /// Pushes `item`, or hands it back when the ring is full.
    ///
    /// `&mut self` is load-bearing: it makes concurrent pushes through
    /// a shared `&Producer` unrepresentable in safe code, which is
    /// what the `unsafe` slot write below relies on.
    #[allow(unsafe_code)]
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        let s = &*self.shared;
        let tail = s.tail.load(Ordering::Relaxed);
        let head = s.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > s.mask {
            return Err(item);
        }
        // SAFETY: `tail - head <= mask` means this slot is vacant and
        // the consumer will not touch it until the release store of
        // `tail + 1` below publishes it; we are the only producer.
        unsafe {
            (*s.slots[tail & s.mask].get()).write(item);
        }
        s.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// True when the consumer end has been dropped.
    pub fn receiver_gone(&self) -> bool {
        Arc::strong_count(&self.shared) == 1
    }
}

impl<T> Consumer<T> {
    /// Pops the oldest item, or `None` when the ring is empty.
    ///
    /// `&mut self` mirrors [`Producer::try_push`]: it rules out two
    /// threads popping through a shared `&Consumer` at once.
    #[allow(unsafe_code)]
    pub fn try_pop(&mut self) -> Option<T> {
        let s = &*self.shared;
        let head = s.head.load(Ordering::Relaxed);
        let tail = s.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head != tail` means the producer's release store
        // published this slot; we are the only consumer, and the
        // release store of `head + 1` below returns the slot to the
        // producer only after the value has been moved out.
        let item = unsafe { (*s.slots[head & s.mask].get()).assume_init_read() };
        s.head.store(head.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Number of items currently queued (a racy snapshot, exact only
    /// when the producer is quiescent).
    pub fn len(&self) -> usize {
        let s = &*self.shared;
        s.tail
            .load(Ordering::Acquire)
            .wrapping_sub(s.head.load(Ordering::Relaxed))
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the producer end has been dropped.
    pub fn sender_gone(&self) -> bool {
        Arc::strong_count(&self.shared) == 1
    }
}

impl<T> Drop for Shared<T> {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        // Drop any items still queued. &mut self: no concurrency here.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut i = head;
        while i != tail {
            // SAFETY: slots in head..tail are initialized and owned
            // solely by us now.
            unsafe {
                (*self.slots[i & self.mask].get()).assume_init_drop();
            }
            i = i.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(99), "ring of 4 holds exactly 4");
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up() {
        let (mut tx, rx) = spsc::<u8>(3);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert!(tx.try_push(9).is_err());
        assert_eq!(rx.len(), 4);
    }

    #[test]
    fn cross_thread_stream_is_lossless_and_ordered() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = spsc::<u64>(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.try_push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            if let Some(v) = rx.try_pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn endpoint_drop_is_observable() {
        let (tx, rx) = spsc::<u8>(2);
        assert!(!tx.receiver_gone());
        drop(rx);
        assert!(tx.receiver_gone());

        let (mut tx2, mut rx2) = spsc::<u8>(2);
        tx2.try_push(7).unwrap();
        drop(tx2);
        assert!(rx2.sender_gone());
        // Items pushed before the drop still drain.
        assert_eq!(rx2.try_pop(), Some(7));
    }

    #[test]
    fn queued_items_are_dropped_with_the_ring() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = spsc::<D>(4);
        assert!(tx.try_push(D).is_ok());
        assert!(tx.try_push(D).is_ok());
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }
}
