//! The daemon's socket loop: a UDP listener bound to an
//! [`IngestPipeline`] behind its own thread.
//!
//! [`crate::net`] supplies per-format listeners that hand out decoded
//! `Vec<FlowRecord>` per datagram; [`crate::pipeline`] supplies the
//! decode→window→batch front end but is socket-agnostic. This module
//! closes the gap the ROADMAP left open: [`spawn_udp_ingest`] parks a
//! socket on a thread, feeds every raw exporter payload (NetFlow
//! v5/v9/IPFIX, auto-detected, template caches persisting) straight
//! into the pipeline, and ships each emitted [`Summary`] frame through
//! a bounded channel — the `listen → pipeline` loop a production
//! daemon runs, with the caller free to forward the frames over TCP to
//! a collector or an aggregation relay.
//!
//! Shutdown is cooperative: [`UdpIngestHandle::stop`] raises a flag,
//! the thread drains whatever already sits in the socket buffer (so no
//! datagram sent before `stop` is lost), flushes the pipeline, closes
//! every open window, ships the final frames, and returns its
//! counters.

use crate::admission::{AdmissionControl, AdmissionKnobs, AdmissionStats};
use crate::daemon::DaemonStats;
use crate::pipeline::{IngestPipeline, PipelineStats};
use crate::DistError;
use crossbeam::channel::Sender;
use flownet::DecoderStats;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Live counters of a running ingest loop, published after every
/// datagram so another thread (a per-node stats endpoint) can read
/// them while the loop runs — [`IngestReport`] only exists after
/// [`UdpIngestHandle::stop`].
#[derive(Debug, Default)]
pub struct IngestGauges {
    /// Raw datagrams received (admitted or not). The edge identity:
    /// `datagrams == packets + decode_errors + quota_packet_drops`.
    pub datagrams: AtomicU64,
    /// Export packets decoded successfully.
    pub packets: AtomicU64,
    /// Payloads that failed to decode.
    pub decode_errors: AtomicU64,
    /// Datagrams denied by a per-exporter packet quota.
    pub quota_packet_drops: AtomicU64,
    /// Records denied by a per-exporter record quota.
    pub quota_record_drops: AtomicU64,
    /// Flow records extracted.
    pub records: AtomicU64,
    /// Data records/sets dropped for lack of a template.
    pub records_no_template: AtomicU64,
    /// Templates currently cached by the decoders.
    pub templates: AtomicU64,
    /// Templates evicted (count cap + timeout).
    pub templates_evicted: AtomicU64,
    /// Templates rejected for violating shape bounds.
    pub templates_rejected: AtomicU64,
    /// Window buckets force-flushed to honor the open-window budget.
    pub window_sheds: AtomicU64,
    /// 1 ms waits spent on a full frames channel (backpressure).
    pub backpressure_waits: AtomicU64,
    /// Exporter addresses currently tracked by admission control.
    pub exporters: AtomicU64,
    /// Exporter entries evicted to bound the table.
    pub exporters_evicted: AtomicU64,
    /// Achieved socket receive buffer (0 = OS default / unsupported).
    pub recv_buffer_bytes: AtomicU64,
    /// Records dropped as older than any open window.
    pub late_drops: AtomicU64,
    /// Summaries emitted by the daemon.
    pub summaries: AtomicU64,
    /// Summary frames shipped through the channel.
    pub frames_sent: AtomicU64,
    /// Frames dropped (receiver gone, or full channel while stopping).
    pub frames_dropped: AtomicU64,
}

/// One coherent reading of [`IngestGauges`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestSnapshot {
    /// Raw datagrams received (admitted or not).
    pub datagrams: u64,
    /// Export packets decoded successfully.
    pub packets: u64,
    /// Payloads that failed to decode.
    pub decode_errors: u64,
    /// Datagrams denied by a per-exporter packet quota.
    pub quota_packet_drops: u64,
    /// Records denied by a per-exporter record quota.
    pub quota_record_drops: u64,
    /// Flow records extracted.
    pub records: u64,
    /// Data records/sets dropped for lack of a template.
    pub records_no_template: u64,
    /// Templates currently cached by the decoders.
    pub templates: u64,
    /// Templates evicted (count cap + timeout).
    pub templates_evicted: u64,
    /// Templates rejected for violating shape bounds.
    pub templates_rejected: u64,
    /// Window buckets force-flushed to honor the open-window budget.
    pub window_sheds: u64,
    /// 1 ms waits spent on a full frames channel (backpressure).
    pub backpressure_waits: u64,
    /// Exporter addresses currently tracked by admission control.
    pub exporters: u64,
    /// Exporter entries evicted to bound the table.
    pub exporters_evicted: u64,
    /// Achieved socket receive buffer (0 = OS default / unsupported).
    pub recv_buffer_bytes: u64,
    /// Records dropped as older than any open window.
    pub late_drops: u64,
    /// Summaries emitted by the daemon.
    pub summaries: u64,
    /// Summary frames shipped through the channel.
    pub frames_sent: u64,
    /// Frames dropped (receiver gone, or full channel while stopping).
    pub frames_dropped: u64,
}

impl IngestGauges {
    /// Reads every gauge (relaxed — counters, not a consistent cut).
    pub fn snapshot(&self) -> IngestSnapshot {
        IngestSnapshot {
            datagrams: self.datagrams.load(Ordering::Relaxed),
            packets: self.packets.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            quota_packet_drops: self.quota_packet_drops.load(Ordering::Relaxed),
            quota_record_drops: self.quota_record_drops.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            records_no_template: self.records_no_template.load(Ordering::Relaxed),
            templates: self.templates.load(Ordering::Relaxed),
            templates_evicted: self.templates_evicted.load(Ordering::Relaxed),
            templates_rejected: self.templates_rejected.load(Ordering::Relaxed),
            window_sheds: self.window_sheds.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            exporters: self.exporters.load(Ordering::Relaxed),
            exporters_evicted: self.exporters_evicted.load(Ordering::Relaxed),
            recv_buffer_bytes: self.recv_buffer_bytes.load(Ordering::Relaxed),
            late_drops: self.late_drops.load(Ordering::Relaxed),
            summaries: self.summaries.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn publish(
        &self,
        datagrams: u64,
        pipeline: &PipelineStats,
        decoder: &DecoderStats,
        daemon: &DaemonStats,
        admission: &AdmissionStats,
        exporters: u64,
        sent: u64,
        dropped: u64,
        waits: u64,
    ) {
        self.datagrams.store(datagrams, Ordering::Relaxed);
        self.packets.store(pipeline.packets, Ordering::Relaxed);
        self.decode_errors
            .store(pipeline.decode_errors, Ordering::Relaxed);
        self.quota_packet_drops
            .store(admission.packet_drops, Ordering::Relaxed);
        self.quota_record_drops
            .store(admission.record_drops, Ordering::Relaxed);
        self.records.store(pipeline.records, Ordering::Relaxed);
        self.records_no_template
            .store(decoder.records_skipped, Ordering::Relaxed);
        self.templates
            .store(decoder.templates as u64, Ordering::Relaxed);
        self.templates_evicted.store(
            decoder.templates_evicted_cap + decoder.templates_evicted_timeout,
            Ordering::Relaxed,
        );
        self.templates_rejected
            .store(decoder.templates_rejected, Ordering::Relaxed);
        self.window_sheds
            .store(pipeline.window_sheds, Ordering::Relaxed);
        self.backpressure_waits.store(waits, Ordering::Relaxed);
        self.exporters.store(exporters, Ordering::Relaxed);
        self.exporters_evicted
            .store(admission.exporters_evicted, Ordering::Relaxed);
        self.late_drops.store(daemon.late_drops, Ordering::Relaxed);
        self.summaries.store(daemon.summaries, Ordering::Relaxed);
        self.frames_sent.store(sent, Ordering::Relaxed);
        self.frames_dropped.store(dropped, Ordering::Relaxed);
    }
}

/// What the socket thread hands back on shutdown.
#[derive(Debug)]
pub struct IngestReport {
    /// Raw datagrams received (admitted or not).
    pub datagrams: u64,
    /// Decode/bucket/batch counters of the pipeline.
    pub pipeline: PipelineStats,
    /// The decoder's hardening counters (templates, skipped records).
    pub decoder: DecoderStats,
    /// Admission-control drop/eviction counters.
    pub admission: AdmissionStats,
    /// The wrapped daemon's counters.
    pub daemon: DaemonStats,
    /// Summary frames shipped through the channel.
    pub frames_sent: u64,
    /// Frames dropped because the channel's receiver was gone, or
    /// because the channel was still full while stopping (the caller
    /// was no longer draining).
    pub frames_dropped: u64,
    /// 1 ms waits spent on a full frames channel (backpressure).
    pub backpressure_waits: u64,
    /// A socket-level error that ended the loop early, if any.
    pub error: Option<std::io::Error>,
}

/// Optional observability hooks for the ingest loop — the pieces the
/// snapshot counters can't carry: an instantaneous open-window gauge
/// and shed events with a *why* attached.
#[derive(Debug, Clone, Default)]
pub struct IngestTelemetry {
    /// Set to the pipeline's open window-bucket count after every
    /// datagram.
    pub open_windows: Option<flowmetrics::Gauge>,
    /// Receives a `window_shed` event whenever the open-window budget
    /// force-flushes buckets.
    pub events: Option<flowmetrics::EventRing>,
}

/// Tuning for [`spawn_udp_ingest_with`] beyond the defaults.
#[derive(Debug, Clone, Default)]
pub struct IngestOptions {
    /// Requested `SO_RCVBUF` (best-effort; achieved size lands in
    /// [`IngestGauges::recv_buffer_bytes`]). `None` keeps the OS
    /// default.
    pub receive_buffer_bytes: Option<usize>,
    /// Live-reloadable admission quotas + open-window budget, shared
    /// with whoever serves `POST /reload`.
    pub knobs: Arc<AdmissionKnobs>,
    /// Observability hooks (see [`IngestTelemetry`]).
    pub telemetry: IngestTelemetry,
}

/// A running `listen → pipeline` loop (see [`spawn_udp_ingest`]).
#[derive(Debug)]
pub struct UdpIngestHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    gauges: Arc<IngestGauges>,
    join: std::thread::JoinHandle<IngestReport>,
}

impl UdpIngestHandle {
    /// The bound local address (useful with a `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The loop's live counters (see [`IngestGauges`]).
    pub fn gauges(&self) -> Arc<IngestGauges> {
        Arc::clone(&self.gauges)
    }

    /// Stops the loop: drains the socket buffer, flushes the pipeline,
    /// ships the final summary frames, and returns the counters.
    pub fn stop(self) -> IngestReport {
        self.stop.store(true, Ordering::Relaxed);
        self.join.join().expect("udp ingest thread panicked")
    }
}

/// Binds `addr` and spawns a thread that feeds every received datagram
/// to `pipeline`, sending each emitted summary's encoded frame through
/// `frames`. Malformed datagrams are counted by the pipeline, never
/// fatal. Returns once the socket is bound, so the caller can read
/// [`UdpIngestHandle::local_addr`] immediately.
pub fn spawn_udp_ingest(
    addr: &str,
    pipeline: IngestPipeline,
    frames: Sender<Vec<u8>>,
) -> Result<UdpIngestHandle, DistError> {
    spawn_udp_ingest_with(addr, pipeline, frames, IngestOptions::default())
}

/// [`spawn_udp_ingest`] with explicit [`IngestOptions`]: receive
/// buffer sizing and live-reloadable per-exporter admission control.
pub fn spawn_udp_ingest_with(
    addr: &str,
    pipeline: IngestPipeline,
    frames: Sender<Vec<u8>>,
    opts: IngestOptions,
) -> Result<UdpIngestHandle, DistError> {
    let socket = UdpSocket::bind(addr).map_err(DistError::Io)?;
    let local = socket.local_addr().map_err(DistError::Io)?;
    socket
        .set_read_timeout(Some(Duration::from_millis(20)))
        .map_err(DistError::Io)?;
    let gauges = Arc::new(IngestGauges::default());
    if let Some(bytes) = opts.receive_buffer_bytes {
        // Best-effort: surface what the kernel granted, keep the OS
        // default (reported as 0) when the platform has no support.
        let achieved = crate::sockopt::set_recv_buffer(&socket, bytes).unwrap_or(0);
        gauges
            .recv_buffer_bytes
            .store(achieved as u64, Ordering::Relaxed);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let loop_gauges = Arc::clone(&gauges);
    let knobs = opts.knobs;
    let telemetry = opts.telemetry;
    let join = std::thread::Builder::new()
        .name("udp-ingest".into())
        .spawn(move || {
            ingest_loop(
                socket,
                pipeline,
                frames,
                stop_flag,
                loop_gauges,
                knobs,
                telemetry,
            )
        })
        .map_err(DistError::Io)?;
    Ok(UdpIngestHandle {
        addr: local,
        stop,
        gauges,
        join,
    })
}

fn epoch_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn ingest_loop(
    socket: UdpSocket,
    mut pipeline: IngestPipeline,
    frames: Sender<Vec<u8>>,
    stop: Arc<AtomicBool>,
    gauges: Arc<IngestGauges>,
    knobs: Arc<AdmissionKnobs>,
    telemetry: IngestTelemetry,
) -> IngestReport {
    let mut buf = vec![0u8; 65_536];
    let (mut sent, mut dropped, mut waits) = (0u64, 0u64, 0u64);
    let mut datagrams = 0u64;
    let mut admission = AdmissionControl::new();
    let mut error = None;
    let mut seen_sheds = 0u64;
    // Backpressure without a shutdown deadlock: a full channel parks
    // this thread in 1 ms waits (a slow consumer throttles ingest),
    // but once the stop flag is up, undeliverable frames are dropped
    // and counted instead — `stop()` joins this thread, so blocking
    // on `send` here would deadlock a caller that drains the channel
    // only after stopping.
    let ship =
        |summaries: Vec<crate::Summary>, sent: &mut u64, dropped: &mut u64, waits: &mut u64| {
            for s in summaries {
                let mut frame = s.encode();
                loop {
                    use crossbeam::channel::TrySendError;
                    match frames.try_send(frame) {
                        Ok(()) => {
                            *sent += 1;
                            break;
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            *dropped += 1;
                            break;
                        }
                        Err(TrySendError::Full(f)) => {
                            if stop.load(Ordering::Relaxed) {
                                *dropped += 1;
                                break;
                            }
                            frame = f;
                            *waits += 1;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
            }
        };
    'listen: loop {
        let stopping = stop.load(Ordering::Relaxed);
        match socket.recv_from(&mut buf) {
            Ok((n, peer)) => {
                datagrams += 1;
                let now_ms = epoch_ms();
                let cfg = knobs.load();
                pipeline.set_max_open_windows(knobs.max_open_windows() as usize);
                // Admission order pins the accounting identity:
                // datagrams == packets + decode_errors +
                // quota_packet_drops — a datagram is quota-dropped
                // *before* decode (no work for the hostile), or it
                // decodes (packets/decode_errors). Records of an
                // admitted packet are then charged all-or-nothing.
                if admission.admit_packet(peer.ip(), &cfg, now_ms) {
                    if let Some(records) = pipeline.decode_packet_at(&buf[..n], now_ms) {
                        if admission.admit_records(peer.ip(), records.len(), &cfg, now_ms) {
                            let out = pipeline.push_records(&records);
                            ship(out, &mut sent, &mut dropped, &mut waits);
                        }
                    }
                }
                gauges.publish(
                    datagrams,
                    pipeline.stats(),
                    &pipeline.decoder_stats(),
                    pipeline.daemon().stats(),
                    &admission.stats(),
                    admission.exporters() as u64,
                    sent,
                    dropped,
                    waits,
                );
                if let Some(g) = &telemetry.open_windows {
                    g.set(pipeline.open_windows() as i64);
                }
                if let Some(ring) = &telemetry.events {
                    let sheds = pipeline.stats().window_sheds;
                    if sheds > seen_sheds {
                        ring.push(
                            now_ms,
                            "window_shed",
                            format!("buckets={} total={sheds}", sheds - seen_sheds),
                        );
                        seen_sheds = sheds;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // The receive buffer is drained; a raised stop flag can
                // now end the loop without losing queued datagrams.
                if stopping {
                    break 'listen;
                }
            }
            Err(e) => {
                error = Some(e);
                break 'listen;
            }
        }
        if stopping {
            // Stop requested while data was still flowing: switch to a
            // non-blocking final drain so shutdown stays prompt.
            if socket.set_nonblocking(true).is_err() {
                break 'listen;
            }
        }
    }
    let stats = *pipeline.stats();
    let decoder = pipeline.decoder_stats();
    let (rest, daemon) = pipeline.finish();
    ship(rest, &mut sent, &mut dropped, &mut waits);
    gauges.publish(
        datagrams,
        &stats,
        &decoder,
        daemon.stats(),
        &admission.stats(),
        admission.exporters() as u64,
        sent,
        dropped,
        waits,
    );
    IngestReport {
        datagrams,
        pipeline: stats,
        decoder,
        admission: admission.stats(),
        daemon: *daemon.stats(),
        frames_sent: sent,
        frames_dropped: dropped,
        backpressure_waits: waits,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{DaemonConfig, SiteDaemon, TransferMode};
    use crate::net::export_netflow;
    use crate::Collector;
    use crossbeam::channel;
    use flowkey::Schema;
    use flownet::FlowRecord;
    use flowtree_core::Config;

    fn pipeline(window_ms: u64) -> IngestPipeline {
        let mut cfg = DaemonConfig::new(7);
        cfg.window_ms = window_ms;
        cfg.schema = Schema::five_feature();
        cfg.tree = Config::with_budget(512);
        cfg.transfer = TransferMode::Full;
        IngestPipeline::new(SiteDaemon::new(cfg), 64)
    }

    fn record(ts_ms: u64, host: u8, packets: u64) -> FlowRecord {
        let mut r = FlowRecord::v4(
            [10, 7, 0, host],
            [192, 0, 2, 1],
            1234,
            443,
            6,
            packets,
            packets * 100,
        );
        r.first_ms = ts_ms;
        r.last_ms = ts_ms;
        r
    }

    #[test]
    fn listen_pipeline_loop_feeds_a_collector() {
        let (tx, rx) = channel::bounded::<Vec<u8>>(256);
        let handle = spawn_udp_ingest("127.0.0.1:0", pipeline(1_000), tx).unwrap();
        let to = handle.local_addr();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();

        // Three windows of traffic, plus one hostile datagram.
        let records: Vec<FlowRecord> = (0..30)
            .map(|i| record((i / 10) * 1_000 + 100 + i, (i % 10) as u8, 2))
            .collect();
        export_netflow(&sender, to, &records, 10_000).unwrap();
        sender.send_to(b"not an export packet", to).unwrap();

        let report = handle.stop();
        assert!(report.error.is_none());
        assert_eq!(report.pipeline.records, 30);
        assert_eq!(report.pipeline.decode_errors, 1);
        assert_eq!(report.daemon.records, 30);
        assert_eq!(report.daemon.late_drops, 0);
        assert!(report.frames_sent >= 3, "{} frames", report.frames_sent);
        assert_eq!(report.frames_dropped, 0);

        // The emitted frames reconstruct at a collector.
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(4_096));
        for frame in rx.iter() {
            collector.apply_bytes(&frame).unwrap();
        }
        assert_eq!(collector.stored_windows() as u64, report.frames_sent);
        assert_eq!(collector.merged(None, 0, u64::MAX).total().packets, 60);
    }

    #[test]
    fn stop_with_no_traffic_returns_clean_counters() {
        let (tx, rx) = channel::bounded::<Vec<u8>>(8);
        let handle = spawn_udp_ingest("127.0.0.1:0", pipeline(1_000), tx).unwrap();
        let report = handle.stop();
        assert!(report.error.is_none());
        assert_eq!(report.pipeline.packets, 0);
        assert_eq!(report.frames_sent, 0);
        assert!(rx.try_recv().is_err(), "no frames were shipped");
    }

    #[test]
    fn stop_with_a_full_undrained_channel_terminates() {
        // Regression: a bounded channel smaller than the frame count,
        // drained only after stop() — the loop must not deadlock in a
        // blocking send while stop() joins it.
        let (tx, rx) = channel::bounded::<Vec<u8>>(1);
        let handle = spawn_udp_ingest("127.0.0.1:0", pipeline(1_000), tx).unwrap();
        let to = handle.local_addr();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        // Five windows → five summaries against a capacity of one.
        let records: Vec<FlowRecord> = (0..5).map(|w| record(w * 1_000 + 100, 1, 1)).collect();
        export_netflow(&sender, to, &records, 10_000).unwrap();
        let report = handle.stop();
        assert_eq!(report.pipeline.records, 5);
        assert_eq!(
            report.frames_sent + report.frames_dropped,
            report.daemon.summaries,
            "every summary is accounted for"
        );
        assert!(report.frames_sent >= 1, "the channel's slot was used");
        drop(rx);
    }

    #[test]
    fn dropped_receiver_counts_not_wedges() {
        let (tx, rx) = channel::bounded::<Vec<u8>>(8);
        drop(rx);
        let handle = spawn_udp_ingest("127.0.0.1:0", pipeline(1_000), tx).unwrap();
        let to = handle.local_addr();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        export_netflow(&sender, to, &[record(100, 1, 1)], 1_000).unwrap();
        let report = handle.stop();
        assert_eq!(report.pipeline.records, 1);
        assert_eq!(report.frames_sent, 0);
        assert!(report.frames_dropped >= 1);
    }
}
