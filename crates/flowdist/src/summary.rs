//! Site summaries and their wire encoding.
//!
//! A [`Summary`] is what crosses the network in Fig. 1: one site's
//! Flowtree for one closed window, either in full or as a **delta**
//! against the site's previous window (the paper: "allowing transfer of
//! only summaries or even difference of consecutive summaries").
//!
//! Frame layout (after the 4-byte magic):
//!
//! ```text
//! magic    4  "FSUM"
//! version  1  = 1
//! kind     1  0 = full, 1 = delta
//! site     2  big-endian site id
//! start    varint  window start (ms)
//! span     varint  window span (ms)
//! seq      varint  per-site sequence number
//! tree     flowtree-core codec frame
//! ```

use crate::window::WindowId;
use crate::DistError;
use flowkey::pack::{read_varint, write_varint};
use flowtree_core::{Config, FlowTree};

/// Frame magic for summaries.
pub const SUMMARY_MAGIC: [u8; 4] = *b"FSUM";
/// Current summary frame version.
pub const SUMMARY_VERSION: u8 = 1;

/// Whether a summary carries the whole window or a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryKind {
    /// The complete window tree.
    Full,
    /// The difference against the site's previous window tree.
    Delta,
}

/// One site's summary of one window.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Producing site.
    pub site: u16,
    /// The summarized window.
    pub window: WindowId,
    /// Per-site sequence number (collector uses it to detect gaps).
    pub seq: u64,
    /// Full or delta.
    pub kind: SummaryKind,
    /// The tree (for deltas: comp-popularity differences, possibly
    /// negative).
    pub tree: FlowTree,
}

impl Summary {
    /// Encodes the summary frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&SUMMARY_MAGIC);
        out.push(SUMMARY_VERSION);
        out.push(match self.kind {
            SummaryKind::Full => 0,
            SummaryKind::Delta => 1,
        });
        out.extend_from_slice(&self.site.to_be_bytes());
        write_varint(&mut out, self.window.start_ms);
        write_varint(&mut out, self.window.span_ms);
        write_varint(&mut out, self.seq);
        out.extend_from_slice(&self.tree.encode());
        out
    }

    /// Decodes and validates a summary frame. The tree inside is fully
    /// re-validated by the flowtree codec (untrusted network input).
    pub fn decode(bytes: &[u8], tree_cfg: Config) -> Result<Summary, DistError> {
        if bytes.len() < 8 {
            return Err(DistError::BadFrame("short summary frame"));
        }
        if bytes[..4] != SUMMARY_MAGIC {
            return Err(DistError::BadFrame("summary magic"));
        }
        if bytes[4] != SUMMARY_VERSION {
            return Err(DistError::BadFrame("summary version"));
        }
        let kind = match bytes[5] {
            0 => SummaryKind::Full,
            1 => SummaryKind::Delta,
            _ => return Err(DistError::BadFrame("summary kind")),
        };
        let site = u16::from_be_bytes([bytes[6], bytes[7]]);
        let mut pos = 8usize;
        let mut next = || -> Result<u64, DistError> {
            let (v, n) =
                read_varint(&bytes[pos..]).map_err(|_| DistError::BadFrame("summary varint"))?;
            pos += n;
            Ok(v)
        };
        let start_ms = next()?;
        let span_ms = next()?;
        let seq = next()?;
        if span_ms == 0 {
            return Err(DistError::BadFrame("zero window span"));
        }
        if start_ms % span_ms != 0 {
            return Err(DistError::BadFrame("unaligned window"));
        }
        let (tree, used) = FlowTree::decode_prefix(&bytes[pos..], tree_cfg)?;
        if pos + used != bytes.len() {
            return Err(DistError::BadFrame("trailing bytes"));
        }
        Ok(Summary {
            site,
            window: WindowId { start_ms, span_ms },
            seq,
            kind,
            tree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkey::Schema;
    use flowtree_core::Popularity;

    fn sample() -> Summary {
        let mut tree = FlowTree::new(Schema::two_feature(), Config::with_budget(128));
        for i in 0..20u32 {
            tree.insert(
                &format!("src=10.0.0.{i}/32 dst=192.0.2.1/32")
                    .parse()
                    .unwrap(),
                Popularity::new(i as i64 + 1, 100, 1),
            );
        }
        Summary {
            site: 3,
            window: WindowId::containing(1_700_000_123_456, 300_000),
            seq: 17,
            kind: SummaryKind::Full,
            tree,
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let bytes = s.encode();
        let back = Summary::decode(&bytes, Config::with_budget(128)).unwrap();
        assert_eq!(back.site, 3);
        assert_eq!(back.window, s.window);
        assert_eq!(back.seq, 17);
        assert_eq!(back.kind, SummaryKind::Full);
        assert_eq!(back.tree.total(), s.tree.total());
        assert_eq!(back.tree.len(), s.tree.len());
    }

    #[test]
    fn rejects_malformed_frames() {
        let s = sample();
        let bytes = s.encode();
        // Magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Summary::decode(&bad, Config::paper()).is_err());
        // Version.
        let mut bad = bytes.clone();
        bad[4] = 7;
        assert!(Summary::decode(&bad, Config::paper()).is_err());
        // Kind.
        let mut bad = bytes.clone();
        bad[5] = 9;
        assert!(Summary::decode(&bad, Config::paper()).is_err());
        // Truncations.
        for cut in [0, 4, 8, 12, bytes.len() - 1] {
            assert!(Summary::decode(&bytes[..cut], Config::paper()).is_err());
        }
        // Trailing garbage.
        let mut bad = bytes;
        bad.push(0);
        assert!(Summary::decode(&bad, Config::paper()).is_err());
    }

    #[test]
    fn rejects_unaligned_window() {
        let mut s = sample();
        s.window.start_ms += 7;
        let bytes = s.encode();
        assert!(matches!(
            Summary::decode(&bytes, Config::paper()),
            Err(DistError::BadFrame("unaligned window"))
        ));
    }

    #[test]
    fn delta_kind_roundtrips() {
        let mut s = sample();
        s.kind = SummaryKind::Delta;
        let back = Summary::decode(&s.encode(), Config::with_budget(128)).unwrap();
        assert_eq!(back.kind, SummaryKind::Delta);
    }
}
