//! Site summaries and their wire encoding.
//!
//! A [`Summary`] is what crosses the network in Fig. 1: one site's
//! Flowtree for one closed window, either in full or as a **delta**
//! against the site's previous window (the paper: "allowing transfer of
//! only summaries or even difference of consecutive summaries").
//!
//! Frame layout (after the 4-byte magic):
//!
//! ```text
//! magic    4  "FSUM"
//! version  1  = 1 (site summary) | 2 (aggregate with provenance)
//! kind     1  0 = full, 1 = delta          (v2: full only)
//! site     2  big-endian site id           (v2: the exporter's agg id)
//! start    varint  window start (ms)
//! span     varint  window span (ms)
//! seq      varint  per-site sequence number
//! prov     v2 only: varint count, then count × big-endian u16 site
//!          ids, strictly ascending — the **site-set provenance** of a
//!          pre-aggregated super-site summary (which real sites' trees
//!          were folded into it)
//! tree     flowtree-core codec frame
//! ```
//!
//! Version 1 frames predate the hierarchy tier and keep decoding
//! unchanged; version 2 is what a [`flowrelay`-style aggregation relay
//! re-exports upstream after folding its downstream sites' windows
//! with [`FlowTree::merge_many`]. Aggregates are always `Full`: a
//! delta of a merged view would need the receiver to hold the exact
//! previous merged view, which re-aggregation after downstream churn
//! cannot guarantee.

use crate::window::WindowId;
use crate::DistError;
use flowkey::pack::{read_varint, write_varint};
use flowtree_core::{Config, FlowTree};

/// Frame magic for summaries.
pub const SUMMARY_MAGIC: [u8; 4] = *b"FSUM";
/// Frame version of plain per-site summaries.
pub const SUMMARY_VERSION: u8 = 1;
/// Frame version of pre-aggregated summaries carrying a site-set
/// provenance header.
pub const SUMMARY_VERSION_AGG: u8 = 2;
/// Upper bound on the provenance list of one aggregate frame (a relay
/// covering more sites than this should itself be tiered).
pub const MAX_PROVENANCE: usize = 4_096;

/// Whether a summary carries the whole window or a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryKind {
    /// The complete window tree.
    Full,
    /// The difference against the site's previous window tree.
    Delta,
}

/// One site's summary of one window.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Producing site.
    pub site: u16,
    /// The summarized window.
    pub window: WindowId,
    /// Per-site sequence number (collector uses it to detect gaps).
    pub seq: u64,
    /// Full or delta.
    pub kind: SummaryKind,
    /// The site-set provenance of a pre-aggregated summary: the real
    /// sites whose trees were folded into `tree`, sorted strictly
    /// ascending. `None` for plain per-site summaries (encoded as
    /// version-1 frames; `Some` encodes version 2).
    pub provenance: Option<Vec<u16>>,
    /// The tree (for deltas: comp-popularity differences, possibly
    /// negative).
    pub tree: FlowTree,
}

impl Summary {
    /// The real sites this summary covers: its provenance for an
    /// aggregate, its producing site otherwise.
    pub fn covered_sites(&self) -> Vec<u16> {
        match &self.provenance {
            Some(p) => p.clone(),
            None => vec![self.site],
        }
    }

    /// The exact byte length [`Summary::encode`] would produce,
    /// computed arithmetically (no throwaway buffer) — header fields,
    /// varint widths, the optional provenance list, and the tree's own
    /// arithmetic [`FlowTree::encoded_size`].
    pub fn encoded_size(&self) -> usize {
        fn varint_len(mut v: u64) -> usize {
            let mut n = 1;
            while v >= 0x80 {
                v >>= 7;
                n += 1;
            }
            n
        }
        let mut len = 4 + 1 + 1 + 2; // magic, version, kind, site
        len += varint_len(self.window.start_ms);
        len += varint_len(self.window.span_ms);
        len += varint_len(self.seq);
        if let Some(prov) = &self.provenance {
            len += varint_len(prov.len() as u64) + 2 * prov.len();
        }
        len + self.tree.encoded_size()
    }

    /// Encodes the summary frame (version 1, or version 2 when a
    /// provenance site set is present).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&SUMMARY_MAGIC);
        out.push(match self.provenance {
            Some(_) => SUMMARY_VERSION_AGG,
            None => SUMMARY_VERSION,
        });
        out.push(match self.kind {
            SummaryKind::Full => 0,
            SummaryKind::Delta => 1,
        });
        out.extend_from_slice(&self.site.to_be_bytes());
        write_varint(&mut out, self.window.start_ms);
        write_varint(&mut out, self.window.span_ms);
        write_varint(&mut out, self.seq);
        if let Some(prov) = &self.provenance {
            debug_assert!(
                prov.windows(2).all(|w| w[0] < w[1]) && !prov.is_empty(),
                "provenance must be nonempty and strictly ascending"
            );
            write_varint(&mut out, prov.len() as u64);
            for site in prov {
                out.extend_from_slice(&site.to_be_bytes());
            }
        }
        out.extend_from_slice(&self.tree.encode());
        out
    }

    /// Decodes and validates a summary frame. The tree inside is fully
    /// re-validated by the flowtree codec (untrusted network input).
    /// Both frame versions decode; the provenance header of a version-2
    /// frame must be nonempty, strictly ascending, bounded by
    /// [`MAX_PROVENANCE`], and attached to a `Full` summary.
    pub fn decode(bytes: &[u8], tree_cfg: Config) -> Result<Summary, DistError> {
        if bytes.len() < 8 {
            return Err(DistError::BadFrame("short summary frame"));
        }
        if bytes[..4] != SUMMARY_MAGIC {
            return Err(DistError::BadFrame("summary magic"));
        }
        let version = bytes[4];
        if version != SUMMARY_VERSION && version != SUMMARY_VERSION_AGG {
            return Err(DistError::BadFrame("summary version"));
        }
        let kind = match bytes[5] {
            0 => SummaryKind::Full,
            1 => SummaryKind::Delta,
            _ => return Err(DistError::BadFrame("summary kind")),
        };
        let site = u16::from_be_bytes([bytes[6], bytes[7]]);
        let mut pos = 8usize;
        let mut next = || -> Result<u64, DistError> {
            let (v, n) =
                read_varint(&bytes[pos..]).map_err(|_| DistError::BadFrame("summary varint"))?;
            pos += n;
            Ok(v)
        };
        let start_ms = next()?;
        let span_ms = next()?;
        let seq = next()?;
        if span_ms == 0 {
            return Err(DistError::BadFrame("zero window span"));
        }
        if start_ms % span_ms != 0 {
            return Err(DistError::BadFrame("unaligned window"));
        }
        let provenance = if version == SUMMARY_VERSION_AGG {
            if kind != SummaryKind::Full {
                return Err(DistError::BadFrame("aggregate summaries must be full"));
            }
            let count = next()?;
            if count == 0 || count as usize > MAX_PROVENANCE {
                return Err(DistError::BadFrame("provenance count"));
            }
            let mut prov = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let end = pos
                    .checked_add(2)
                    .filter(|&e| e <= bytes.len())
                    .ok_or(DistError::BadFrame("truncated provenance"))?;
                let s = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]);
                pos = end;
                if prov.last().is_some_and(|&last| last >= s) {
                    return Err(DistError::BadFrame("provenance not strictly ascending"));
                }
                prov.push(s);
            }
            Some(prov)
        } else {
            None
        };
        let (tree, used) = FlowTree::decode_prefix(&bytes[pos..], tree_cfg)?;
        if pos + used != bytes.len() {
            return Err(DistError::BadFrame("trailing bytes"));
        }
        Ok(Summary {
            site,
            window: WindowId { start_ms, span_ms },
            seq,
            kind,
            provenance,
            tree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkey::Schema;
    use flowtree_core::Popularity;

    fn sample() -> Summary {
        let mut tree = FlowTree::new(Schema::two_feature(), Config::with_budget(128));
        for i in 0..20u32 {
            tree.insert(
                &format!("src=10.0.0.{i}/32 dst=192.0.2.1/32")
                    .parse()
                    .unwrap(),
                Popularity::new(i as i64 + 1, 100, 1),
            );
        }
        Summary {
            site: 3,
            window: WindowId::containing(1_700_000_123_456, 300_000),
            seq: 17,
            kind: SummaryKind::Full,
            provenance: None,
            tree,
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let bytes = s.encode();
        let back = Summary::decode(&bytes, Config::with_budget(128)).unwrap();
        assert_eq!(back.site, 3);
        assert_eq!(back.window, s.window);
        assert_eq!(back.seq, 17);
        assert_eq!(back.kind, SummaryKind::Full);
        assert_eq!(back.tree.total(), s.tree.total());
        assert_eq!(back.tree.len(), s.tree.len());
    }

    #[test]
    fn rejects_malformed_frames() {
        let s = sample();
        let bytes = s.encode();
        // Magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Summary::decode(&bad, Config::paper()).is_err());
        // Version.
        let mut bad = bytes.clone();
        bad[4] = 7;
        assert!(Summary::decode(&bad, Config::paper()).is_err());
        // Kind.
        let mut bad = bytes.clone();
        bad[5] = 9;
        assert!(Summary::decode(&bad, Config::paper()).is_err());
        // Truncations.
        for cut in [0, 4, 8, 12, bytes.len() - 1] {
            assert!(Summary::decode(&bytes[..cut], Config::paper()).is_err());
        }
        // Trailing garbage.
        let mut bad = bytes;
        bad.push(0);
        assert!(Summary::decode(&bad, Config::paper()).is_err());
    }

    #[test]
    fn rejects_unaligned_window() {
        let mut s = sample();
        s.window.start_ms += 7;
        let bytes = s.encode();
        assert!(matches!(
            Summary::decode(&bytes, Config::paper()),
            Err(DistError::BadFrame("unaligned window"))
        ));
    }

    #[test]
    fn delta_kind_roundtrips() {
        let mut s = sample();
        s.kind = SummaryKind::Delta;
        let back = Summary::decode(&s.encode(), Config::with_budget(128)).unwrap();
        assert_eq!(back.kind, SummaryKind::Delta);
    }

    #[test]
    fn encoded_size_predicts_encode_exactly() {
        let mut s = sample();
        assert_eq!(s.encoded_size(), s.encode().len());
        s.provenance = Some(vec![1, 4, 9, 4_000]);
        assert_eq!(s.encoded_size(), s.encode().len());
        s.kind = SummaryKind::Full;
        s.window = WindowId::containing(u64::MAX / 2, 300_000);
        s.seq = u64::MAX;
        assert_eq!(s.encoded_size(), s.encode().len());
    }

    #[test]
    fn aggregate_provenance_roundtrips_as_v2() {
        let mut s = sample();
        s.provenance = Some(vec![1, 4, 9]);
        let bytes = s.encode();
        assert_eq!(bytes[4], SUMMARY_VERSION_AGG);
        let back = Summary::decode(&bytes, Config::with_budget(128)).unwrap();
        assert_eq!(back.provenance.as_deref(), Some(&[1u16, 4, 9][..]));
        assert_eq!(back.covered_sites(), vec![1, 4, 9]);
        assert_eq!(back.tree.total(), s.tree.total());
        // Plain summaries still report themselves.
        assert_eq!(sample().covered_sites(), vec![3]);
    }

    #[test]
    fn v1_frames_still_decode_bit_for_bit() {
        // A version-1 frame must be untouched by the v2 extension: the
        // pre-hierarchy encoding decodes with `provenance: None`.
        let s = sample();
        let bytes = s.encode();
        assert_eq!(bytes[4], SUMMARY_VERSION);
        let back = Summary::decode(&bytes, Config::with_budget(128)).unwrap();
        assert!(back.provenance.is_none());
    }

    #[test]
    fn hostile_provenance_frames_are_rejected() {
        let mut s = sample();
        s.provenance = Some(vec![2, 5, 7]);
        let good = s.encode();
        // Truncations anywhere in the provenance header.
        for cut in 9..good.len().min(20) {
            assert!(Summary::decode(&good[..cut], Config::paper()).is_err());
        }
        // Unsorted / duplicated site sets (tamper with the list bytes:
        // count sits after site(2)+3 varints; find it by re-encoding).
        let mut unsorted = s.clone();
        unsorted.provenance = Some(vec![5, 2, 7]);
        // Bypass encode's debug_assert by patching the sorted frame.
        let mut bytes = good.clone();
        let prov_at = bytes.len() - s.tree.encode().len() - 6;
        bytes[prov_at..prov_at + 2].copy_from_slice(&5u16.to_be_bytes());
        bytes[prov_at + 2..prov_at + 4].copy_from_slice(&2u16.to_be_bytes());
        assert!(matches!(
            Summary::decode(&bytes, Config::with_budget(128)),
            Err(DistError::BadFrame("provenance not strictly ascending"))
        ));
        // A zero-count provenance list.
        let mut zero = good.clone();
        zero[prov_at - 1] = 0;
        assert!(Summary::decode(&zero, Config::with_budget(128)).is_err());
        // Aggregates must be Full.
        let mut delta = good;
        delta[5] = 1;
        assert!(matches!(
            Summary::decode(&delta, Config::with_budget(128)),
            Err(DistError::BadFrame("aggregate summaries must be full"))
        ));
    }
}
