//! Site summaries and their wire encoding.
//!
//! A [`Summary`] is what crosses the network in Fig. 1: one site's
//! Flowtree for one closed window, either in full or as a **delta**
//! against the site's previous window (the paper: "allowing transfer of
//! only summaries or even difference of consecutive summaries").
//!
//! Summary frames flow downstream→upstream; the acknowledged export
//! path adds a reverse channel of **control frames** (acks and
//! rebase-requests, magic `"FCTL"`) in [`crate::control`]. The magics
//! are disjoint, so each side classifies a frame from its first four
//! bytes, and a pre-handshake peer that sees a control frame rejects
//! it as a malformed summary and carries on — version gating for free.
//!
//! Frame layout (after the 4-byte magic):
//!
//! ```text
//! magic    4  "FSUM"
//! version  1  = 1 (site summary) | 2 (aggregate with provenance)
//!             | 3 (incremental aggregate with epoch handshake)
//! kind     1  0 = full, 1 = delta          (v2: full only)
//! site     2  big-endian site id           (v2/v3: the exporter's agg id)
//! start    varint  window start (ms)
//! span     varint  window span (ms)
//! seq      varint  per-site sequence number
//! epoch    v3 only: varint ≥ 1 — the content epoch this frame
//!          advances its window to
//! base     v3 delta only: varint < epoch — the content epoch of the
//!          re-aggregation base the delta applies on top of
//! prov     v2/v3: varint count, then count × big-endian u16 site ids,
//!          strictly ascending — the **site-set provenance** of a
//!          pre-aggregated super-site summary. For a v2 frame this is
//!          whatever the exporter claims (historically a lifetime
//!          union); for a v3 frame it is the **per-window** site set:
//!          exactly the real sites folded into *this* window at *this*
//!          epoch.
//! tree     flowtree-core codec frame
//! ```
//!
//! Version 1 frames predate the hierarchy tier and keep decoding
//! unchanged; version 2 is what a [`flowrelay`-style aggregation relay
//! re-exported upstream before the delta-oriented export path, and
//! still decodes bit-for-bit. Version-2 aggregates are always `Full`.
//!
//! ## Version 3: the epoch/base handshake
//!
//! A relay's window keeps changing after its first export — late
//! downstream frames, deeper-tier increments, site restarts. Version 3
//! makes re-export incremental: every frame carries the **content
//! epoch** it advances its `(window, exporter)` slot to, and a `Delta`
//! frame carries the epoch of the pinned re-aggregation **base** it
//! was diffed against (the [`FlowTree::diff_many`] output: the merged
//! aggregate now, minus the merged aggregate as of the base epoch). A
//! receiver applies a delta by structural merge onto its stored tree
//! — but only when its stored epoch equals the declared base; any
//! other pairing is an out-of-order or orphaned delta and is rejected
//! by the epoch ledger ([`crate::Collector`]). A v3 `Full` frame
//! (re)establishes the base wholesale and must strictly advance the
//! stored epoch. Exporters fall back to `Full` on base loss and on
//! non-monotone or size-regressed deltas (see `flowrelay::relay`).

use crate::window::WindowId;
use crate::DistError;
use flowkey::pack::{read_varint, write_varint};
use flowtree_core::{Config, FlowTree};

/// Frame magic for summaries.
pub const SUMMARY_MAGIC: [u8; 4] = *b"FSUM";
/// Frame version of plain per-site summaries.
pub const SUMMARY_VERSION: u8 = 1;
/// Frame version of pre-aggregated summaries carrying a site-set
/// provenance header.
pub const SUMMARY_VERSION_AGG: u8 = 2;
/// Frame version of incremental aggregates: per-window provenance plus
/// the content-epoch handshake that lets a window re-export as a
/// structural delta against a pinned base (see the module docs).
pub const SUMMARY_VERSION_DELTA_AGG: u8 = 3;
/// Upper bound on the provenance list of one aggregate frame (a relay
/// covering more sites than this should itself be tiered).
pub const MAX_PROVENANCE: usize = 4_096;

/// Whether a summary carries the whole window or a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryKind {
    /// The complete window tree.
    Full,
    /// A difference tree: against the site's previous window
    /// (version 1) or against this window's pinned re-aggregation
    /// base (version 3, see [`EpochHeader`]).
    Delta,
}

/// The content-epoch handshake of a version-3 incremental aggregate
/// frame (`None` on v1/v2 frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochHeader {
    /// The content epoch (≥ 1) this frame advances its `(window,
    /// exporter)` slot to.
    pub epoch: u64,
    /// For a `Delta` frame: the content epoch of the re-aggregation
    /// base the delta was diffed against (strictly below `epoch`).
    /// `None` on a `Full` frame, which (re)establishes the base.
    pub base: Option<u64>,
}

/// One site's summary of one window.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Producing site.
    pub site: u16,
    /// The summarized window.
    pub window: WindowId,
    /// Per-site sequence number (collector uses it to detect gaps).
    pub seq: u64,
    /// Full or delta.
    pub kind: SummaryKind,
    /// The site-set provenance of a pre-aggregated summary: the real
    /// sites whose trees were folded into `tree`, sorted strictly
    /// ascending. `None` for plain per-site summaries (encoded as
    /// version-1 frames; `Some` encodes version 2 — or 3 when an
    /// [`EpochHeader`] is present). On a version-3 frame this is the
    /// **per-window** site set: exactly the sites folded into this
    /// window at this epoch, never a lifetime union.
    pub provenance: Option<Vec<u16>>,
    /// The content-epoch handshake of a version-3 incremental
    /// aggregate; requires `provenance` to be present.
    pub epoch: Option<EpochHeader>,
    /// The tree (for deltas: comp-popularity differences, possibly
    /// negative).
    pub tree: FlowTree,
}

impl Summary {
    /// The real sites this summary covers: its provenance for an
    /// aggregate, its producing site otherwise.
    pub fn covered_sites(&self) -> Vec<u16> {
        match &self.provenance {
            Some(p) => p.clone(),
            None => vec![self.site],
        }
    }

    /// The exact byte length [`Summary::encode`] would produce,
    /// computed arithmetically (no throwaway buffer) — header fields,
    /// varint widths, the optional provenance list, and the tree's own
    /// arithmetic [`FlowTree::encoded_size`].
    pub fn encoded_size(&self) -> usize {
        fn varint_len(mut v: u64) -> usize {
            let mut n = 1;
            while v >= 0x80 {
                v >>= 7;
                n += 1;
            }
            n
        }
        let mut len = 4 + 1 + 1 + 2; // magic, version, kind, site
        len += varint_len(self.window.start_ms);
        len += varint_len(self.window.span_ms);
        len += varint_len(self.seq);
        if let Some(eh) = &self.epoch {
            len += varint_len(eh.epoch);
            if let Some(base) = eh.base {
                len += varint_len(base);
            }
        }
        if let Some(prov) = &self.provenance {
            len += varint_len(prov.len() as u64) + 2 * prov.len();
        }
        len + self.tree.encoded_size()
    }

    /// Encodes the summary frame: version 1, version 2 when a
    /// provenance site set is present, version 3 when an epoch header
    /// is present too.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&SUMMARY_MAGIC);
        out.push(match (&self.provenance, &self.epoch) {
            (Some(_), Some(_)) => SUMMARY_VERSION_DELTA_AGG,
            (Some(_), None) => SUMMARY_VERSION_AGG,
            (None, None) => SUMMARY_VERSION,
            (None, Some(_)) => unreachable!("epoch header requires per-window provenance"),
        });
        out.push(match self.kind {
            SummaryKind::Full => 0,
            SummaryKind::Delta => 1,
        });
        out.extend_from_slice(&self.site.to_be_bytes());
        write_varint(&mut out, self.window.start_ms);
        write_varint(&mut out, self.window.span_ms);
        write_varint(&mut out, self.seq);
        if let Some(eh) = &self.epoch {
            debug_assert!(eh.epoch >= 1, "content epochs start at 1");
            debug_assert_eq!(
                eh.base.is_some(),
                self.kind == SummaryKind::Delta,
                "deltas declare a base, fulls establish one"
            );
            debug_assert!(eh.base.is_none_or(|b| b < eh.epoch));
            write_varint(&mut out, eh.epoch);
            if let Some(base) = eh.base {
                write_varint(&mut out, base);
            }
        }
        if let Some(prov) = &self.provenance {
            debug_assert!(
                prov.windows(2).all(|w| w[0] < w[1]) && !prov.is_empty(),
                "provenance must be nonempty and strictly ascending"
            );
            write_varint(&mut out, prov.len() as u64);
            for site in prov {
                out.extend_from_slice(&site.to_be_bytes());
            }
        }
        out.extend_from_slice(&self.tree.encode());
        out
    }

    /// Decodes and validates a summary frame. The tree inside is fully
    /// re-validated by the flowtree codec (untrusted network input).
    /// All three frame versions decode; the provenance header of a
    /// version-2/3 frame must be nonempty, strictly ascending, bounded
    /// by [`MAX_PROVENANCE`]; version-2 aggregates must be `Full`;
    /// version-3 frames must carry an epoch ≥ 1, a `Delta` declaring a
    /// strictly older base.
    pub fn decode(bytes: &[u8], tree_cfg: Config) -> Result<Summary, DistError> {
        if bytes.len() < 8 {
            return Err(DistError::BadFrame("short summary frame"));
        }
        if bytes[..4] != SUMMARY_MAGIC {
            return Err(DistError::BadFrame("summary magic"));
        }
        let version = bytes[4];
        if version != SUMMARY_VERSION
            && version != SUMMARY_VERSION_AGG
            && version != SUMMARY_VERSION_DELTA_AGG
        {
            return Err(DistError::BadFrame("summary version"));
        }
        let kind = match bytes[5] {
            0 => SummaryKind::Full,
            1 => SummaryKind::Delta,
            _ => return Err(DistError::BadFrame("summary kind")),
        };
        let site = u16::from_be_bytes([bytes[6], bytes[7]]);
        let mut pos = 8usize;
        let mut next = || -> Result<u64, DistError> {
            let (v, n) =
                read_varint(&bytes[pos..]).map_err(|_| DistError::BadFrame("summary varint"))?;
            pos += n;
            Ok(v)
        };
        let start_ms = next()?;
        let span_ms = next()?;
        let seq = next()?;
        if span_ms == 0 {
            return Err(DistError::BadFrame("zero window span"));
        }
        if start_ms % span_ms != 0 {
            return Err(DistError::BadFrame("unaligned window"));
        }
        let epoch = if version == SUMMARY_VERSION_DELTA_AGG {
            let epoch = next()?;
            if epoch == 0 {
                return Err(DistError::BadFrame("zero content epoch"));
            }
            let base = if kind == SummaryKind::Delta {
                let base = next()?;
                if base == 0 {
                    // Epoch 0 marks pre-epoch (v1/v2) slots in the
                    // receiver's ledger; a delta claiming it as base
                    // would merge onto a tree the exporter never
                    // pinned.
                    return Err(DistError::BadFrame("zero delta base epoch"));
                }
                if base >= epoch {
                    return Err(DistError::BadFrame("delta base not older than its epoch"));
                }
                Some(base)
            } else {
                None
            };
            Some(EpochHeader { epoch, base })
        } else {
            None
        };
        let provenance = if version != SUMMARY_VERSION {
            if version == SUMMARY_VERSION_AGG && kind != SummaryKind::Full {
                return Err(DistError::BadFrame("aggregate summaries must be full"));
            }
            let count = next()?;
            if count == 0 || count as usize > MAX_PROVENANCE {
                return Err(DistError::BadFrame("provenance count"));
            }
            let mut prov = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let end = pos
                    .checked_add(2)
                    .filter(|&e| e <= bytes.len())
                    .ok_or(DistError::BadFrame("truncated provenance"))?;
                let s = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]);
                pos = end;
                if prov.last().is_some_and(|&last| last >= s) {
                    return Err(DistError::BadFrame("provenance not strictly ascending"));
                }
                prov.push(s);
            }
            Some(prov)
        } else {
            None
        };
        let (tree, used) = FlowTree::decode_prefix(&bytes[pos..], tree_cfg)?;
        if pos + used != bytes.len() {
            return Err(DistError::BadFrame("trailing bytes"));
        }
        Ok(Summary {
            site,
            window: WindowId { start_ms, span_ms },
            seq,
            kind,
            provenance,
            epoch,
            tree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkey::Schema;
    use flowtree_core::Popularity;

    fn sample() -> Summary {
        let mut tree = FlowTree::new(Schema::two_feature(), Config::with_budget(128));
        for i in 0..20u32 {
            tree.insert(
                &format!("src=10.0.0.{i}/32 dst=192.0.2.1/32")
                    .parse()
                    .unwrap(),
                Popularity::new(i as i64 + 1, 100, 1),
            );
        }
        Summary {
            site: 3,
            window: WindowId::containing(1_700_000_123_456, 300_000),
            seq: 17,
            kind: SummaryKind::Full,
            provenance: None,
            epoch: None,
            tree,
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let bytes = s.encode();
        let back = Summary::decode(&bytes, Config::with_budget(128)).unwrap();
        assert_eq!(back.site, 3);
        assert_eq!(back.window, s.window);
        assert_eq!(back.seq, 17);
        assert_eq!(back.kind, SummaryKind::Full);
        assert_eq!(back.tree.total(), s.tree.total());
        assert_eq!(back.tree.len(), s.tree.len());
    }

    #[test]
    fn rejects_malformed_frames() {
        let s = sample();
        let bytes = s.encode();
        // Magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Summary::decode(&bad, Config::paper()).is_err());
        // Version.
        let mut bad = bytes.clone();
        bad[4] = 7;
        assert!(Summary::decode(&bad, Config::paper()).is_err());
        // Kind.
        let mut bad = bytes.clone();
        bad[5] = 9;
        assert!(Summary::decode(&bad, Config::paper()).is_err());
        // Truncations.
        for cut in [0, 4, 8, 12, bytes.len() - 1] {
            assert!(Summary::decode(&bytes[..cut], Config::paper()).is_err());
        }
        // Trailing garbage.
        let mut bad = bytes;
        bad.push(0);
        assert!(Summary::decode(&bad, Config::paper()).is_err());
    }

    #[test]
    fn rejects_unaligned_window() {
        let mut s = sample();
        s.window.start_ms += 7;
        let bytes = s.encode();
        assert!(matches!(
            Summary::decode(&bytes, Config::paper()),
            Err(DistError::BadFrame("unaligned window"))
        ));
    }

    #[test]
    fn delta_kind_roundtrips() {
        let mut s = sample();
        s.kind = SummaryKind::Delta;
        let back = Summary::decode(&s.encode(), Config::with_budget(128)).unwrap();
        assert_eq!(back.kind, SummaryKind::Delta);
    }

    #[test]
    fn encoded_size_predicts_encode_exactly() {
        let mut s = sample();
        assert_eq!(s.encoded_size(), s.encode().len());
        s.provenance = Some(vec![1, 4, 9, 4_000]);
        assert_eq!(s.encoded_size(), s.encode().len());
        s.kind = SummaryKind::Full;
        s.window = WindowId::containing(u64::MAX / 2, 300_000);
        s.seq = u64::MAX;
        assert_eq!(s.encoded_size(), s.encode().len());
        // v3: full (epoch only) and delta (epoch + base).
        s.epoch = Some(EpochHeader {
            epoch: 300,
            base: None,
        });
        assert_eq!(s.encoded_size(), s.encode().len());
        s.kind = SummaryKind::Delta;
        s.epoch = Some(EpochHeader {
            epoch: 300,
            base: Some(299),
        });
        assert_eq!(s.encoded_size(), s.encode().len());
    }

    #[test]
    fn aggregate_provenance_roundtrips_as_v2() {
        let mut s = sample();
        s.provenance = Some(vec![1, 4, 9]);
        let bytes = s.encode();
        assert_eq!(bytes[4], SUMMARY_VERSION_AGG);
        let back = Summary::decode(&bytes, Config::with_budget(128)).unwrap();
        assert_eq!(back.provenance.as_deref(), Some(&[1u16, 4, 9][..]));
        assert_eq!(back.covered_sites(), vec![1, 4, 9]);
        assert_eq!(back.tree.total(), s.tree.total());
        // Plain summaries still report themselves.
        assert_eq!(sample().covered_sites(), vec![3]);
    }

    #[test]
    fn v1_frames_still_decode_bit_for_bit() {
        // A version-1 frame must be untouched by the v2 extension: the
        // pre-hierarchy encoding decodes with `provenance: None`.
        let s = sample();
        let bytes = s.encode();
        assert_eq!(bytes[4], SUMMARY_VERSION);
        let back = Summary::decode(&bytes, Config::with_budget(128)).unwrap();
        assert!(back.provenance.is_none());
    }

    #[test]
    fn hostile_provenance_frames_are_rejected() {
        let mut s = sample();
        s.provenance = Some(vec![2, 5, 7]);
        let good = s.encode();
        // Truncations anywhere in the provenance header.
        for cut in 9..good.len().min(20) {
            assert!(Summary::decode(&good[..cut], Config::paper()).is_err());
        }
        // Unsorted / duplicated site sets (tamper with the list bytes:
        // count sits after site(2)+3 varints; find it by re-encoding).
        let mut unsorted = s.clone();
        unsorted.provenance = Some(vec![5, 2, 7]);
        // Bypass encode's debug_assert by patching the sorted frame.
        let mut bytes = good.clone();
        let prov_at = bytes.len() - s.tree.encode().len() - 6;
        bytes[prov_at..prov_at + 2].copy_from_slice(&5u16.to_be_bytes());
        bytes[prov_at + 2..prov_at + 4].copy_from_slice(&2u16.to_be_bytes());
        assert!(matches!(
            Summary::decode(&bytes, Config::with_budget(128)),
            Err(DistError::BadFrame("provenance not strictly ascending"))
        ));
        // A zero-count provenance list.
        let mut zero = good.clone();
        zero[prov_at - 1] = 0;
        assert!(Summary::decode(&zero, Config::with_budget(128)).is_err());
        // Aggregates must be Full.
        let mut delta = good;
        delta[5] = 1;
        assert!(matches!(
            Summary::decode(&delta, Config::with_budget(128)),
            Err(DistError::BadFrame("aggregate summaries must be full"))
        ));
    }

    fn v3_sample(kind: SummaryKind, epoch: u64, base: Option<u64>) -> Summary {
        let mut s = sample();
        s.kind = kind;
        s.provenance = Some(vec![1, 4, 9]);
        s.epoch = Some(EpochHeader { epoch, base });
        s
    }

    #[test]
    fn v3_full_and_delta_frames_roundtrip() {
        let full = v3_sample(SummaryKind::Full, 7, None);
        let bytes = full.encode();
        assert_eq!(bytes[4], SUMMARY_VERSION_DELTA_AGG);
        let back = Summary::decode(&bytes, Config::with_budget(128)).unwrap();
        assert_eq!(back.kind, SummaryKind::Full);
        assert_eq!(
            back.epoch,
            Some(EpochHeader {
                epoch: 7,
                base: None
            })
        );
        assert_eq!(back.provenance.as_deref(), Some(&[1u16, 4, 9][..]));
        assert_eq!(back.tree.total(), full.tree.total());

        let delta = v3_sample(SummaryKind::Delta, 9, Some(7));
        let bytes = delta.encode();
        assert_eq!(bytes[4], SUMMARY_VERSION_DELTA_AGG);
        let back = Summary::decode(&bytes, Config::with_budget(128)).unwrap();
        assert_eq!(back.kind, SummaryKind::Delta);
        assert_eq!(
            back.epoch,
            Some(EpochHeader {
                epoch: 9,
                base: Some(7)
            })
        );
    }

    #[test]
    fn hostile_v3_frames_are_rejected() {
        // Truncation at every prefix of both shapes must fail cleanly.
        for s in [
            v3_sample(SummaryKind::Full, 7, None),
            v3_sample(SummaryKind::Delta, 9, Some(7)),
        ] {
            let good = s.encode();
            assert!(Summary::decode(&good, Config::with_budget(128)).is_ok());
            for cut in 0..good.len() {
                assert!(
                    Summary::decode(&good[..cut], Config::with_budget(128)).is_err(),
                    "cut at {cut}"
                );
            }
        }
        // A zero content epoch.
        let mut s = v3_sample(SummaryKind::Full, 1, None);
        s.epoch = Some(EpochHeader {
            epoch: 1,
            base: None,
        });
        let mut bytes = s.encode();
        // epoch varint sits right after site(2) + 3 varints; window
        // start/span/seq of sample() are multi-byte, so locate it by
        // re-encoding with a recognizable epoch instead: epoch 1 is a
        // single 0x01 byte immediately before the provenance count.
        let prov_at = bytes.len() - s.tree.encode().len() - (1 + 3 * 2);
        assert_eq!(bytes[prov_at - 1], 1, "epoch byte located");
        bytes[prov_at - 1] = 0;
        assert!(matches!(
            Summary::decode(&bytes, Config::with_budget(128)),
            Err(DistError::BadFrame("zero content epoch"))
        ));
        // A delta whose base is not older than its epoch.
        let s = v3_sample(SummaryKind::Delta, 3, Some(2));
        let mut bytes = s.encode();
        let base_at = bytes.len() - s.tree.encode().len() - (1 + 3 * 2) - 1;
        assert_eq!(bytes[base_at], 2, "base byte located");
        bytes[base_at] = 3;
        assert!(matches!(
            Summary::decode(&bytes, Config::with_budget(128)),
            Err(DistError::BadFrame("delta base not older than its epoch"))
        ));
        bytes[base_at] = 9;
        assert!(Summary::decode(&bytes, Config::with_budget(128)).is_err());
        // A delta claiming base 0: epoch 0 is the pre-epoch ledger
        // marker, never a pinned base — it must not decode into a
        // frame that would merge onto a v1/v2-stored tree.
        bytes[base_at] = 0;
        assert!(matches!(
            Summary::decode(&bytes, Config::with_budget(128)),
            Err(DistError::BadFrame("zero delta base epoch"))
        ));
    }
}
