//! The site-node runtime: one deployable site daemon as a value.
//!
//! [`crate::listen`] gives the `UDP → pipeline → summary frames`
//! loop; what a *fleet* needs on top is the other half a production
//! site node runs — a forwarder that ships those frames upstream over
//! TCP (reconnecting through outages), a stats endpoint, and a
//! drain-on-shutdown path — wired behind one `start`/`drain` handle so
//! a launcher ([`flowrelay`]'s `flowctl`) can boot a site from a spec
//! line instead of hand-assembling threads. The relay-side twin is
//! `flowrelay::runtime::NodeRuntime`.
//!
//! Shutdown is a **drain**, never a cut: [`SiteRuntime::drain`] stops
//! the UDP loop (which itself drains the socket buffer and flushes
//! every open window), then joins the forwarder after it has pushed
//! the final frames upstream, then frees the stats port.

use crate::admission::{AdmissionConfig, AdmissionKnobs};
use crate::lane::{spawn_multi_lane_ingest, LaneOptions, MultiGaugeView, MultiIngestHandle};
use crate::listen::{IngestReport, IngestTelemetry};
use crate::ops::{spawn_ops, OpsHandle, OpsRequest, OpsResponse};
use crate::pipeline::IngestPipeline;
use crate::{DaemonConfig, DistError, SiteDaemon, TransferMode};
use flowkey::Schema;
use flowmetrics::{EventRing, KvValue, Registry};
use flownet::DecoderLimits;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything one site node needs, as a value (superseding ad-hoc
/// wiring): where to listen, where to ship, and the daemon knobs.
#[derive(Debug, Clone)]
pub struct SiteNodeConfig {
    /// The site id carried in emitted summary frames.
    pub site: u16,
    /// UDP bind address for exporter packets (`127.0.0.1:0` picks a
    /// port; read it back from [`SiteRuntime::ingest_addr`]).
    pub listen: String,
    /// TCP address of the upstream relay's ingest listener.
    pub upstream: String,
    /// Optional bind address for the plaintext stats endpoint.
    pub stats: Option<String>,
    /// Window span (ms).
    pub window_ms: u64,
    /// Parallel ingest shards (1 = unsharded).
    pub shards: usize,
    /// Per-window tree node budget.
    pub budget: usize,
    /// Records per pipeline batch.
    pub batch: usize,
    /// Requested UDP receive buffer (`SO_RCVBUF`, best-effort; the
    /// achieved size shows as `recv_buffer_bytes` in stats).
    pub receive_buffer_bytes: Option<usize>,
    /// Decoder hardening limits (template caps/timeouts/bounds).
    pub limits: DecoderLimits,
    /// Per-exporter admission quotas (live-reloadable).
    pub admission: AdmissionConfig,
    /// Max distinct buffered window buckets before oldest-first
    /// shedding (0 = unbounded; live-reloadable).
    pub max_open_windows: u64,
    /// Independent listen→pipeline lanes (1 = the classic
    /// single-reader loop; see [`crate::lane`]).
    pub lanes: usize,
    /// Datagrams pulled per receive syscall (`recvmmsg` batch size).
    pub recv_batch: usize,
    /// Multi-socket `SO_REUSEPORT` mode for `lanes > 1` where the
    /// platform supports it (`false` forces the portable fanout-ring
    /// mode).
    pub reuseport: bool,
    /// Pin lane threads and shard workers to cores (live-reloadable
    /// via `pin-cores` on `POST /reload`).
    pub pin_cores: bool,
}

impl SiteNodeConfig {
    /// Defaults for one site shipping to `upstream`: 5-minute windows,
    /// unsharded, the five-feature schema, default hardening limits,
    /// quotas off.
    pub fn new(site: u16, upstream: impl Into<String>) -> SiteNodeConfig {
        SiteNodeConfig {
            site,
            listen: "127.0.0.1:0".into(),
            upstream: upstream.into(),
            stats: None,
            window_ms: 300_000,
            shards: 1,
            budget: 1 << 16,
            batch: crate::pipeline::DEFAULT_BATCH,
            receive_buffer_bytes: None,
            limits: DecoderLimits::default(),
            admission: AdmissionConfig::default(),
            max_open_windows: 256,
            lanes: 1,
            recv_batch: 32,
            reuseport: true,
            pin_cores: false,
        }
    }
}

/// Counters of the TCP forwarder thread, shared with the stats
/// endpoint.
#[derive(Debug, Default)]
struct ForwardGauges {
    forwarded: AtomicU64,
    reconnects: AtomicU64,
    /// Frames abandoned after the upstream stayed unreachable through
    /// the drain deadline (explicit, accounted loss — only on drain).
    abandoned: AtomicU64,
}

/// Shared observability state of one site node: the metric registry
/// behind `GET /metrics`, the event ring behind `GET /events`, and the
/// boot instant behind `/health`'s `uptime_ms`.
#[derive(Debug, Clone)]
struct SiteTelemetry {
    registry: Registry,
    events: EventRing,
    started: Instant,
}

/// What [`SiteRuntime::drain`] hands back.
#[derive(Debug)]
pub struct SiteDrainReport {
    /// The ingest loop's final counters.
    pub ingest: IngestReport,
    /// Frames successfully written upstream over the node's lifetime.
    pub forwarded: u64,
    /// Upstream reconnect attempts.
    pub reconnects: u64,
    /// Frames abandoned because the upstream stayed unreachable while
    /// draining.
    pub abandoned: u64,
}

/// A running site node (see [`SiteNodeConfig`] and the module docs).
#[derive(Debug)]
pub struct SiteRuntime {
    site: u16,
    ingest: MultiIngestHandle,
    forward: std::thread::JoinHandle<()>,
    gauges: MultiGaugeView,
    fwd: Arc<ForwardGauges>,
    knobs: Arc<AdmissionKnobs>,
    ops: Option<OpsHandle>,
}

impl SiteRuntime {
    /// Boots the node: binds the UDP listener, spawns the upstream
    /// forwarder, and (if configured) the stats endpoint.
    pub fn start(cfg: SiteNodeConfig) -> Result<SiteRuntime, DistError> {
        let mut dcfg = DaemonConfig::new(cfg.site);
        dcfg.window_ms = cfg.window_ms.max(1);
        dcfg.schema = Schema::five_feature();
        dcfg.tree = flowtree_core::Config::with_budget(cfg.budget);
        dcfg.transfer = TransferMode::Full;
        dcfg.shards = cfg.shards.max(1);
        dcfg.pin_cores = cfg.pin_cores;
        let telemetry = SiteTelemetry {
            registry: Registry::new(),
            events: EventRing::new(256),
            started: Instant::now(),
        };
        let decode_hist = telemetry.registry.histogram(
            "flowtree_decode_seconds",
            "Export-packet decode latency (one datagram through the dialect decoders).",
        );
        let flush_hist = telemetry.registry.histogram(
            "flowtree_flush_seconds",
            "Pipeline flush latency (one record batch into the windowed trees).",
        );
        let batch = cfg.batch.max(1);
        let limits = cfg.limits;
        let pipeline_for = move |_lane: usize| {
            let mut p = IngestPipeline::with_limits(SiteDaemon::new(dcfg), batch, limits);
            p.set_latency_instruments(decode_hist.clone(), flush_hist.clone());
            p
        };
        let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(256);
        let knobs = Arc::new(AdmissionKnobs::new(cfg.admission, cfg.max_open_windows));
        knobs.set_pin_cores(cfg.pin_cores);
        let opts = LaneOptions {
            lanes: cfg.lanes.max(1),
            recv_batch: cfg.recv_batch.max(1),
            reuseport: cfg.reuseport,
            force_fallback_recv: false,
            receive_buffer_bytes: cfg.receive_buffer_bytes,
            knobs: Arc::clone(&knobs),
            telemetry: IngestTelemetry {
                open_windows: Some(telemetry.registry.gauge(
                    "flowtree_open_windows",
                    "Distinct window buckets currently open in the ingest pipeline.",
                )),
                events: Some(telemetry.events.clone()),
            },
            batch_hist: Some(telemetry.registry.histogram_with_bounds(
                "flowtree_lane_batch_size",
                "Datagrams delivered per receive batch (recvmmsg syscall or ring burst).",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            )),
            ..LaneOptions::default()
        };
        let ingest = spawn_multi_lane_ingest(&cfg.listen, pipeline_for, tx, opts)?;
        let gauges = ingest.view();
        let fwd = Arc::new(ForwardGauges::default());
        let fwd_loop = Arc::clone(&fwd);
        let upstream = cfg.upstream.clone();
        let forward = std::thread::Builder::new()
            .name(format!("site{}-forward", cfg.site))
            .spawn(move || forward_loop(&upstream, rx, &fwd_loop))
            .map_err(DistError::Io)?;
        let ops = match &cfg.stats {
            Some(addr) => {
                let site = cfg.site;
                let g = gauges.clone();
                let f = Arc::clone(&fwd);
                let k = Arc::clone(&knobs);
                let tel = telemetry.clone();
                Some(
                    spawn_ops(addr, move |req| site_ops(site, &g, &f, &k, &tel, req))
                        .map_err(DistError::Io)?,
                )
            }
            None => None,
        };
        Ok(SiteRuntime {
            site: cfg.site,
            ingest,
            forward,
            gauges,
            fwd,
            knobs,
            ops,
        })
    }

    /// The live admission/budget knobs — the same block the ops
    /// endpoint's `POST /reload` writes.
    pub fn knobs(&self) -> Arc<AdmissionKnobs> {
        Arc::clone(&self.knobs)
    }

    /// The site id.
    pub fn site(&self) -> u16 {
        self.site
    }

    /// The bound UDP ingest address.
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest.local_addr()
    }

    /// The bound stats endpoint address, if one was configured.
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().map(|o| o.local_addr())
    }

    /// The ingest loop's live counters.
    pub fn ingest_snapshot(&self) -> crate::listen::IngestSnapshot {
        self.gauges.snapshot()
    }

    /// Drains and shuts the node down: the UDP loop empties its socket
    /// buffer and flushes every open window, the forwarder ships the
    /// final frames upstream (retrying within the drain deadline),
    /// then every port is released.
    pub fn drain(self) -> SiteDrainReport {
        let report = self.ingest.stop();
        // The ingest thread owned the channel sender; with it gone the
        // forwarder drains the queue and exits on its own.
        let _ = self.forward.join();
        if let Some(ops) = self.ops {
            ops.stop();
        }
        SiteDrainReport {
            ingest: report,
            forwarded: self.fwd.forwarded.load(Ordering::Relaxed),
            reconnects: self.fwd.reconnects.load(Ordering::Relaxed),
            abandoned: self.fwd.abandoned.load(Ordering::Relaxed),
        }
    }
}

/// The workspace version every node reports in `/health` — how
/// `flowctl top` spots a mixed-version or crash-restarted fleet.
pub fn build_version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

/// The shared `/health` tail: `uptime_ms` (restarts reset it — a
/// freshly low value on a long-lived fleet flags a crash-restart) and
/// the build version.
pub fn health_tail(started: Instant) -> String {
    format!(
        "uptime_ms {}\nversion {}",
        started.elapsed().as_millis(),
        build_version()
    )
}

/// The site node's stats as ordered key/value pairs — the single
/// source both the legacy plaintext page and `/stats.json` render
/// from, so the two can never drift.
fn site_stat_pairs(
    site: u16,
    view: &MultiGaugeView,
    fwd: &ForwardGauges,
    knobs: &AdmissionKnobs,
) -> Vec<(String, KvValue)> {
    let s = &view.snapshot();
    let cfg = knobs.load();
    let mut pairs: Vec<(String, KvValue)> = vec![
        ("role".into(), "site".into()),
        ("site".into(), KvValue::U64(site as u64)),
    ];
    let mut line = |k: &str, v: u64| pairs.push((k.to_string(), KvValue::U64(v)));
    line("datagrams", s.datagrams);
    line("packets", s.packets);
    line("decode_errors", s.decode_errors);
    line("quota_packet_drops", s.quota_packet_drops);
    line("quota_record_drops", s.quota_record_drops);
    line("records", s.records);
    line("records_no_template", s.records_no_template);
    line("templates_live", s.templates);
    line("templates_evicted", s.templates_evicted);
    line("templates_rejected", s.templates_rejected);
    line("window_sheds", s.window_sheds);
    line("backpressure_waits", s.backpressure_waits);
    line("exporters_tracked", s.exporters);
    line("exporters_evicted", s.exporters_evicted);
    line("recv_buffer_bytes", s.recv_buffer_bytes);
    line("late_drops", s.late_drops);
    line("summaries", s.summaries);
    line("frames_sent", s.frames_sent);
    line("frames_dropped", s.frames_dropped);
    line("forwarded", fwd.forwarded.load(Ordering::Relaxed));
    line("forward_reconnects", fwd.reconnects.load(Ordering::Relaxed));
    line("forward_abandoned", fwd.abandoned.load(Ordering::Relaxed));
    line("knob_packet_rate", cfg.packet_rate);
    line("knob_packet_burst", cfg.packet_burst);
    line("knob_record_rate", cfg.record_rate);
    line("knob_record_burst", cfg.record_burst);
    line("knob_max_exporters", cfg.max_exporters as u64);
    line("knob_max_open_windows", knobs.max_open_windows());
    line("knob_pin_cores", knobs.pin_cores() as u64);
    line("lanes", view.lanes() as u64);
    line("merger_stale_windows", view.merger_stale_windows());
    for i in 0..view.lanes() {
        let l = view.lane(i);
        line(&format!("lane{i}_datagrams"), l.datagrams);
        line(&format!("lane{i}_records"), l.records);
        line(&format!("lane{i}_recv_batches"), l.recv_batches);
        line(&format!("lane{i}_backpressure_waits"), l.backpressure_waits);
        line(&format!("lane{i}_dead_drops"), l.dead_drops);
        line(&format!("lane{i}_pinned"), l.pinned as u64);
    }
    pairs
}

/// Mirrors the site's snapshot counters into its registry so a
/// `/metrics` scrape sees every ad-hoc counter as a first-class
/// Prometheus series next to the live histograms/gauges.
fn sync_site_registry(site: u16, tel: &SiteTelemetry, view: &MultiGaugeView, fwd: &ForwardGauges) {
    let s = &view.snapshot();
    let reg = &tel.registry;
    let node = format!("site{site}");
    reg.gauge_with(
        "flowtree_build_info",
        "Constant 1; identity in labels.",
        &[
            ("role", "site"),
            ("node", &node),
            ("version", build_version()),
        ],
    )
    .set(1);
    reg.gauge("flowtree_uptime_seconds", "Seconds since this node booted.")
        .set(tel.started.elapsed().as_secs() as i64);
    let c = |name: &str, help: &str, v: u64| reg.counter(name, help).set(v);
    let g = |name: &str, help: &str, v: u64| reg.gauge(name, help).set(v as i64);
    c(
        "flowtree_ingest_datagrams_total",
        "Raw datagrams received (admitted or not).",
        s.datagrams,
    );
    c(
        "flowtree_ingest_packets_total",
        "Export packets decoded successfully.",
        s.packets,
    );
    c(
        "flowtree_ingest_decode_errors_total",
        "Payloads that failed to decode.",
        s.decode_errors,
    );
    c(
        "flowtree_ingest_quota_packet_drops_total",
        "Datagrams denied by a per-exporter packet quota.",
        s.quota_packet_drops,
    );
    c(
        "flowtree_ingest_quota_record_drops_total",
        "Records denied by a per-exporter record quota.",
        s.quota_record_drops,
    );
    c(
        "flowtree_ingest_records_total",
        "Flow records extracted.",
        s.records,
    );
    c(
        "flowtree_ingest_records_no_template_total",
        "Records dropped for lack of a template.",
        s.records_no_template,
    );
    g(
        "flowtree_templates_live",
        "Templates currently cached by the decoders.",
        s.templates,
    );
    c(
        "flowtree_templates_evicted_total",
        "Templates evicted (count cap + timeout).",
        s.templates_evicted,
    );
    c(
        "flowtree_templates_rejected_total",
        "Templates rejected for violating shape bounds.",
        s.templates_rejected,
    );
    c(
        "flowtree_window_sheds_total",
        "Window buckets force-flushed to honor the open-window budget.",
        s.window_sheds,
    );
    c(
        "flowtree_backpressure_waits_total",
        "1 ms waits spent on a full frames channel.",
        s.backpressure_waits,
    );
    g(
        "flowtree_exporters_tracked",
        "Exporter addresses currently tracked by admission control.",
        s.exporters,
    );
    c(
        "flowtree_exporters_evicted_total",
        "Exporter entries evicted to bound the table.",
        s.exporters_evicted,
    );
    g(
        "flowtree_recv_buffer_bytes",
        "Achieved socket receive buffer (0 = OS default).",
        s.recv_buffer_bytes,
    );
    c(
        "flowtree_late_drops_total",
        "Records dropped as older than any open window.",
        s.late_drops,
    );
    c(
        "flowtree_summaries_total",
        "Summaries emitted by the daemon.",
        s.summaries,
    );
    c(
        "flowtree_frames_sent_total",
        "Summary frames shipped through the channel.",
        s.frames_sent,
    );
    c(
        "flowtree_frames_dropped_total",
        "Frames dropped (receiver gone or full channel while stopping).",
        s.frames_dropped,
    );
    c(
        "flowtree_forward_frames_total",
        "Frames written upstream by the TCP forwarder.",
        fwd.forwarded.load(Ordering::Relaxed),
    );
    c(
        "flowtree_forward_reconnects_total",
        "Upstream reconnect attempts by the forwarder.",
        fwd.reconnects.load(Ordering::Relaxed),
    );
    c(
        "flowtree_forward_abandoned_total",
        "Frames abandoned because the upstream stayed unreachable while draining.",
        fwd.abandoned.load(Ordering::Relaxed),
    );
    c(
        "flowtree_events_total",
        "Operational events recorded (including ones the ring evicted).",
        tel.events.total(),
    );
    g(
        "flowtree_lanes",
        "Configured ingest lanes on this site node.",
        view.lanes() as u64,
    );
    c(
        "flowtree_merger_stale_windows_total",
        "Straggler window trees dropped because the window was already emitted \
         past an idle-excluded lane.",
        view.merger_stale_windows(),
    );
    for i in 0..view.lanes() {
        let l = view.lane(i);
        let lane = i.to_string();
        let labels: &[(&str, &str)] = &[("lane", lane.as_str())];
        reg.counter_with(
            "flowtree_lane_datagrams_total",
            "Raw datagrams received by one ingest lane.",
            labels,
        )
        .set(l.datagrams);
        reg.counter_with(
            "flowtree_lane_records_total",
            "Flow records extracted by one ingest lane.",
            labels,
        )
        .set(l.records);
        reg.counter_with(
            "flowtree_lane_recv_batches_total",
            "Successful receive batches (syscalls or ring bursts) on one lane.",
            labels,
        )
        .set(l.recv_batches);
        reg.counter_with(
            "flowtree_lane_backpressure_waits_total",
            "1 ms fanout-reader waits on one lane's full ring.",
            labels,
        )
        .set(l.backpressure_waits);
        reg.counter_with(
            "flowtree_lane_dead_drops_total",
            "Datagrams the fanout reader discarded because the lane's ring \
             consumer was gone.",
            labels,
        )
        .set(l.dead_drops);
        reg.gauge_with(
            "flowtree_lane_pinned",
            "Whether the lane thread currently holds a CPU affinity pin.",
            labels,
        )
        .set(l.pinned as i64);
    }
}

/// Renders the site node's ops surface.
fn site_ops(
    site: u16,
    gauges: &MultiGaugeView,
    fwd: &ForwardGauges,
    knobs: &AdmissionKnobs,
    tel: &SiteTelemetry,
    req: &OpsRequest,
) -> OpsResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => OpsResponse::ok(format!(
            "ok true\nrole site\nsite {site}\n{}",
            health_tail(tel.started)
        )),
        ("GET", "/stats" | "/") => {
            let pairs = site_stat_pairs(site, gauges, fwd, knobs);
            let mut body = flowmetrics::render_kv_text(&pairs);
            body.pop();
            OpsResponse::ok(body)
        }
        ("GET", "/stats.json") => {
            let pairs = site_stat_pairs(site, gauges, fwd, knobs);
            OpsResponse::ok(flowmetrics::render_kv_json(&pairs))
        }
        ("GET", "/metrics") => {
            sync_site_registry(site, tel, gauges, fwd);
            OpsResponse::ok(tel.registry.render_prometheus())
        }
        ("GET", "/events") => OpsResponse::ok(tel.events.render_text()),
        ("POST", "/reload") => match parse_site_reload(&req.body, knobs) {
            Ok(applied) => {
                tel.events.push(epoch_ms_now(), "reload", applied.clone());
                OpsResponse::ok(applied)
            }
            Err(e) => OpsResponse::bad_request(e),
        },
        _ => OpsResponse::not_found(),
    }
}

fn epoch_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Applies a `POST /reload` body (`key=value` lines; keys
/// `packet-rate`, `packet-burst`, `record-rate`, `record-burst`,
/// `max-exporters`, `max-open-windows`, `pin-cores`) to the live
/// admission knobs.
/// Unknown keys or unparsable values fail the whole request so a
/// typoed reload never half-applies silently — the same all-or-nothing
/// grammar the relay's reload endpoint speaks.
fn parse_site_reload(body: &str, knobs: &AdmissionKnobs) -> Result<String, String> {
    let mut cfg = knobs.load();
    let mut windows = knobs.max_open_windows();
    let mut pin = knobs.pin_cores();
    let mut applied = Vec::new();
    for raw in body.lines() {
        let lineno = raw.trim();
        if lineno.is_empty() || lineno.starts_with('#') {
            continue;
        }
        let (key, value) = lineno
            .split_once('=')
            .ok_or_else(|| format!("malformed line (want key=value): {lineno:?}"))?;
        let (key, value) = (key.trim(), value.trim());
        let parsed: u64 = value
            .parse()
            .map_err(|_| format!("{key}: not a number: {value:?}"))?;
        match key {
            "packet-rate" => cfg.packet_rate = parsed,
            "packet-burst" => cfg.packet_burst = parsed,
            "record-rate" => cfg.record_rate = parsed,
            "record-burst" => cfg.record_burst = parsed,
            "max-exporters" => cfg.max_exporters = parsed as usize,
            "max-open-windows" => windows = parsed,
            "pin-cores" => pin = parsed != 0,
            other => return Err(format!("unknown key: {other}")),
        }
        applied.push(format!("{key}={parsed}"));
    }
    if applied.is_empty() {
        return Ok("unchanged".to_string());
    }
    knobs.store(cfg);
    knobs.set_max_open_windows(windows);
    knobs.set_pin_cores(pin);
    Ok(format!("applied {}", applied.join(" ")))
}

/// Ships queued frames upstream until the channel closes, then drains
/// what is left. Reconnects with a capped linear backoff; while the
/// channel is open a frame waits indefinitely for the upstream (the
/// bounded channel throttles ingest meanwhile). Once the channel has
/// closed (drain), each remaining frame gets a bounded retry window so
/// a dead upstream cannot wedge shutdown.
fn forward_loop(upstream: &str, rx: crossbeam::channel::Receiver<Vec<u8>>, gauges: &ForwardGauges) {
    let mut conn: Option<TcpStream> = None;
    while let Ok(frame) = rx.recv() {
        if !forward_one(upstream, &mut conn, &frame, gauges, usize::MAX) {
            gauges.abandoned.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Channel closed: the ingest loop flushed its final frames before
    // dropping the sender — recv() above already delivered them, so
    // nothing is left here. (Kept as a loop for clarity if crossbeam
    // ever buffers past disconnect.)
    while let Ok(frame) = rx.try_recv() {
        if !forward_one(upstream, &mut conn, &frame, gauges, 50) {
            gauges.abandoned.fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(c) = conn {
        let _ = c.shutdown(std::net::Shutdown::Write);
    }
}

/// Writes one frame, (re)connecting as needed. `max_attempts` bounds
/// the retry loop; returns whether the frame was written.
fn forward_one(
    upstream: &str,
    conn: &mut Option<TcpStream>,
    frame: &[u8],
    gauges: &ForwardGauges,
    max_attempts: usize,
) -> bool {
    let mut attempts = 0usize;
    loop {
        if conn.is_none() {
            attempts += 1;
            gauges.reconnects.fetch_add(1, Ordering::Relaxed);
            match TcpStream::connect(upstream) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    *conn = Some(s);
                }
                Err(_) => {
                    if attempts >= max_attempts {
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis((50 * attempts).min(1_000) as u64));
                    continue;
                }
            }
        }
        let stream = conn.as_mut().expect("connected above");
        match crate::framing::write_frame(&mut *stream, frame).and_then(|()| stream.flush()) {
            Ok(()) => {
                gauges.forwarded.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            Err(_) => {
                *conn = None;
                if attempts >= max_attempts {
                    return false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::export_netflow;
    use crate::Collector;
    use flownet::FlowRecord;
    use std::net::{TcpListener, UdpSocket};

    fn record(ts_ms: u64, host: u8, packets: u64) -> FlowRecord {
        let mut r = FlowRecord::v4(
            [10, 9, 0, host],
            [192, 0, 2, 1],
            1234,
            443,
            6,
            packets,
            packets * 100,
        );
        r.first_ms = ts_ms;
        r.last_ms = ts_ms;
        r
    }

    #[test]
    fn site_runtime_ships_upstream_and_drains() {
        // A stand-in relay: accept frames, apply to a collector.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = listener.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let mut collector = Collector::new(
                Schema::five_feature(),
                flowtree_core::Config::with_budget(4_096),
            );
            let (mut stream, _) = listener.accept().unwrap();
            let (applied, rejected) =
                crate::net::receive_summaries(&mut stream, &mut collector).expect("clean stream");
            (collector, applied, rejected)
        });

        let mut cfg = SiteNodeConfig::new(3, upstream_addr.to_string());
        cfg.window_ms = 1_000;
        cfg.budget = 512;
        cfg.stats = Some("127.0.0.1:0".into());
        let node = SiteRuntime::start(cfg).unwrap();

        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        let records: Vec<FlowRecord> = (0..20)
            .map(|i| record((i / 10) * 1_000 + 100 + i, (i % 10) as u8, 2))
            .collect();
        export_netflow(&sender, node.ingest_addr(), &records, 10_000).unwrap();

        // The stats endpoint answers while the node runs.
        let stats_addr = node.stats_addr().unwrap().to_string();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let (status, body) = crate::ops::ops_request(&stats_addr, "GET", "/stats", "").unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("role site"), "{body}");
            if body.contains("records 20") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "stats never caught up: {body}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        let report = node.drain();
        assert!(report.ingest.error.is_none());
        assert_eq!(report.ingest.pipeline.records, 20);
        assert_eq!(report.abandoned, 0);
        assert!(
            report.forwarded >= 2,
            "windows flushed: {}",
            report.forwarded
        );

        let (collector, applied, rejected) = sink.join().unwrap();
        assert_eq!(rejected, 0);
        assert_eq!(applied as u64, report.forwarded);
        assert_eq!(collector.merged(None, 0, u64::MAX).total().packets, 40);
    }
}
