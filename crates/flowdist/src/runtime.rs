//! The site-node runtime: one deployable site daemon as a value.
//!
//! [`crate::listen`] gives the `UDP → pipeline → summary frames`
//! loop; what a *fleet* needs on top is the other half a production
//! site node runs — a forwarder that ships those frames upstream over
//! TCP (reconnecting through outages), a stats endpoint, and a
//! drain-on-shutdown path — wired behind one `start`/`drain` handle so
//! a launcher ([`flowrelay`]'s `flowctl`) can boot a site from a spec
//! line instead of hand-assembling threads. The relay-side twin is
//! `flowrelay::runtime::NodeRuntime`.
//!
//! Shutdown is a **drain**, never a cut: [`SiteRuntime::drain`] stops
//! the UDP loop (which itself drains the socket buffer and flushes
//! every open window), then joins the forwarder after it has pushed
//! the final frames upstream, then frees the stats port.

use crate::listen::{spawn_udp_ingest, IngestGauges, IngestReport, UdpIngestHandle};
use crate::ops::{spawn_ops, OpsHandle, OpsRequest, OpsResponse};
use crate::pipeline::IngestPipeline;
use crate::{DaemonConfig, DistError, SiteDaemon, TransferMode};
use flowkey::Schema;
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything one site node needs, as a value (superseding ad-hoc
/// wiring): where to listen, where to ship, and the daemon knobs.
#[derive(Debug, Clone)]
pub struct SiteNodeConfig {
    /// The site id carried in emitted summary frames.
    pub site: u16,
    /// UDP bind address for exporter packets (`127.0.0.1:0` picks a
    /// port; read it back from [`SiteRuntime::ingest_addr`]).
    pub listen: String,
    /// TCP address of the upstream relay's ingest listener.
    pub upstream: String,
    /// Optional bind address for the plaintext stats endpoint.
    pub stats: Option<String>,
    /// Window span (ms).
    pub window_ms: u64,
    /// Parallel ingest shards (1 = unsharded).
    pub shards: usize,
    /// Per-window tree node budget.
    pub budget: usize,
    /// Records per pipeline batch.
    pub batch: usize,
}

impl SiteNodeConfig {
    /// Defaults for one site shipping to `upstream`: 5-minute windows,
    /// unsharded, the five-feature schema.
    pub fn new(site: u16, upstream: impl Into<String>) -> SiteNodeConfig {
        SiteNodeConfig {
            site,
            listen: "127.0.0.1:0".into(),
            upstream: upstream.into(),
            stats: None,
            window_ms: 300_000,
            shards: 1,
            budget: 1 << 16,
            batch: crate::pipeline::DEFAULT_BATCH,
        }
    }
}

/// Counters of the TCP forwarder thread, shared with the stats
/// endpoint.
#[derive(Debug, Default)]
struct ForwardGauges {
    forwarded: AtomicU64,
    reconnects: AtomicU64,
    /// Frames abandoned after the upstream stayed unreachable through
    /// the drain deadline (explicit, accounted loss — only on drain).
    abandoned: AtomicU64,
}

/// What [`SiteRuntime::drain`] hands back.
#[derive(Debug)]
pub struct SiteDrainReport {
    /// The ingest loop's final counters.
    pub ingest: IngestReport,
    /// Frames successfully written upstream over the node's lifetime.
    pub forwarded: u64,
    /// Upstream reconnect attempts.
    pub reconnects: u64,
    /// Frames abandoned because the upstream stayed unreachable while
    /// draining.
    pub abandoned: u64,
}

/// A running site node (see [`SiteNodeConfig`] and the module docs).
#[derive(Debug)]
pub struct SiteRuntime {
    site: u16,
    ingest: UdpIngestHandle,
    forward: std::thread::JoinHandle<()>,
    gauges: Arc<IngestGauges>,
    fwd: Arc<ForwardGauges>,
    ops: Option<OpsHandle>,
}

impl SiteRuntime {
    /// Boots the node: binds the UDP listener, spawns the upstream
    /// forwarder, and (if configured) the stats endpoint.
    pub fn start(cfg: SiteNodeConfig) -> Result<SiteRuntime, DistError> {
        let mut dcfg = DaemonConfig::new(cfg.site);
        dcfg.window_ms = cfg.window_ms.max(1);
        dcfg.schema = Schema::five_feature();
        dcfg.tree = flowtree_core::Config::with_budget(cfg.budget);
        dcfg.transfer = TransferMode::Full;
        dcfg.shards = cfg.shards.max(1);
        let pipeline = IngestPipeline::new(SiteDaemon::new(dcfg), cfg.batch.max(1));
        let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(256);
        let ingest = spawn_udp_ingest(&cfg.listen, pipeline, tx)?;
        let gauges = ingest.gauges();
        let fwd = Arc::new(ForwardGauges::default());
        let fwd_loop = Arc::clone(&fwd);
        let upstream = cfg.upstream.clone();
        let forward = std::thread::Builder::new()
            .name(format!("site{}-forward", cfg.site))
            .spawn(move || forward_loop(&upstream, rx, &fwd_loop))
            .map_err(DistError::Io)?;
        let ops = match &cfg.stats {
            Some(addr) => {
                let site = cfg.site;
                let g = Arc::clone(&gauges);
                let f = Arc::clone(&fwd);
                Some(
                    spawn_ops(addr, move |req| site_ops(site, &g, &f, req))
                        .map_err(DistError::Io)?,
                )
            }
            None => None,
        };
        Ok(SiteRuntime {
            site: cfg.site,
            ingest,
            forward,
            gauges,
            fwd,
            ops,
        })
    }

    /// The site id.
    pub fn site(&self) -> u16 {
        self.site
    }

    /// The bound UDP ingest address.
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest.local_addr()
    }

    /// The bound stats endpoint address, if one was configured.
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().map(|o| o.local_addr())
    }

    /// The ingest loop's live counters.
    pub fn ingest_snapshot(&self) -> crate::listen::IngestSnapshot {
        self.gauges.snapshot()
    }

    /// Drains and shuts the node down: the UDP loop empties its socket
    /// buffer and flushes every open window, the forwarder ships the
    /// final frames upstream (retrying within the drain deadline),
    /// then every port is released.
    pub fn drain(self) -> SiteDrainReport {
        let report = self.ingest.stop();
        // The ingest thread owned the channel sender; with it gone the
        // forwarder drains the queue and exits on its own.
        let _ = self.forward.join();
        if let Some(ops) = self.ops {
            ops.stop();
        }
        SiteDrainReport {
            ingest: report,
            forwarded: self.fwd.forwarded.load(Ordering::Relaxed),
            reconnects: self.fwd.reconnects.load(Ordering::Relaxed),
            abandoned: self.fwd.abandoned.load(Ordering::Relaxed),
        }
    }
}

/// Renders the site node's ops surface.
fn site_ops(
    site: u16,
    gauges: &IngestGauges,
    fwd: &ForwardGauges,
    req: &OpsRequest,
) -> OpsResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => OpsResponse::ok(format!("ok true\nrole site\nsite {site}")),
        ("GET", "/stats" | "/") => {
            let s = gauges.snapshot();
            OpsResponse::ok(format!(
                "role site\nsite {site}\npackets {}\ndecode_errors {}\nrecords {}\nlate_drops {}\nsummaries {}\nframes_sent {}\nframes_dropped {}\nforwarded {}\nforward_reconnects {}\nforward_abandoned {}",
                s.packets,
                s.decode_errors,
                s.records,
                s.late_drops,
                s.summaries,
                s.frames_sent,
                s.frames_dropped,
                fwd.forwarded.load(Ordering::Relaxed),
                fwd.reconnects.load(Ordering::Relaxed),
                fwd.abandoned.load(Ordering::Relaxed),
            ))
        }
        // Site knobs (window span, shards) are structural — nothing
        // applies without a restart, so a reload is a recognized no-op.
        ("POST", "/reload") => OpsResponse::ok("unchanged (site nodes have no reloadable keys)"),
        _ => OpsResponse::not_found(),
    }
}

/// Ships queued frames upstream until the channel closes, then drains
/// what is left. Reconnects with a capped linear backoff; while the
/// channel is open a frame waits indefinitely for the upstream (the
/// bounded channel throttles ingest meanwhile). Once the channel has
/// closed (drain), each remaining frame gets a bounded retry window so
/// a dead upstream cannot wedge shutdown.
fn forward_loop(upstream: &str, rx: crossbeam::channel::Receiver<Vec<u8>>, gauges: &ForwardGauges) {
    let mut conn: Option<TcpStream> = None;
    while let Ok(frame) = rx.recv() {
        if !forward_one(upstream, &mut conn, &frame, gauges, usize::MAX) {
            gauges.abandoned.fetch_add(1, Ordering::Relaxed);
        }
    }
    // Channel closed: the ingest loop flushed its final frames before
    // dropping the sender — recv() above already delivered them, so
    // nothing is left here. (Kept as a loop for clarity if crossbeam
    // ever buffers past disconnect.)
    while let Ok(frame) = rx.try_recv() {
        if !forward_one(upstream, &mut conn, &frame, gauges, 50) {
            gauges.abandoned.fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(c) = conn {
        let _ = c.shutdown(std::net::Shutdown::Write);
    }
}

/// Writes one frame, (re)connecting as needed. `max_attempts` bounds
/// the retry loop; returns whether the frame was written.
fn forward_one(
    upstream: &str,
    conn: &mut Option<TcpStream>,
    frame: &[u8],
    gauges: &ForwardGauges,
    max_attempts: usize,
) -> bool {
    let mut attempts = 0usize;
    loop {
        if conn.is_none() {
            attempts += 1;
            gauges.reconnects.fetch_add(1, Ordering::Relaxed);
            match TcpStream::connect(upstream) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    *conn = Some(s);
                }
                Err(_) => {
                    if attempts >= max_attempts {
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis((50 * attempts).min(1_000) as u64));
                    continue;
                }
            }
        }
        let stream = conn.as_mut().expect("connected above");
        match crate::framing::write_frame(&mut *stream, frame).and_then(|()| stream.flush()) {
            Ok(()) => {
                gauges.forwarded.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            Err(_) => {
                *conn = None;
                if attempts >= max_attempts {
                    return false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::export_netflow;
    use crate::Collector;
    use flownet::FlowRecord;
    use std::net::{TcpListener, UdpSocket};

    fn record(ts_ms: u64, host: u8, packets: u64) -> FlowRecord {
        let mut r = FlowRecord::v4(
            [10, 9, 0, host],
            [192, 0, 2, 1],
            1234,
            443,
            6,
            packets,
            packets * 100,
        );
        r.first_ms = ts_ms;
        r.last_ms = ts_ms;
        r
    }

    #[test]
    fn site_runtime_ships_upstream_and_drains() {
        // A stand-in relay: accept frames, apply to a collector.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = listener.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            let mut collector = Collector::new(
                Schema::five_feature(),
                flowtree_core::Config::with_budget(4_096),
            );
            let (mut stream, _) = listener.accept().unwrap();
            let (applied, rejected) =
                crate::net::receive_summaries(&mut stream, &mut collector).expect("clean stream");
            (collector, applied, rejected)
        });

        let mut cfg = SiteNodeConfig::new(3, upstream_addr.to_string());
        cfg.window_ms = 1_000;
        cfg.budget = 512;
        cfg.stats = Some("127.0.0.1:0".into());
        let node = SiteRuntime::start(cfg).unwrap();

        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        let records: Vec<FlowRecord> = (0..20)
            .map(|i| record((i / 10) * 1_000 + 100 + i, (i % 10) as u8, 2))
            .collect();
        export_netflow(&sender, node.ingest_addr(), &records, 10_000).unwrap();

        // The stats endpoint answers while the node runs.
        let stats_addr = node.stats_addr().unwrap().to_string();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let (status, body) = crate::ops::ops_request(&stats_addr, "GET", "/stats", "").unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("role site"), "{body}");
            if body.contains("records 20") {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "stats never caught up: {body}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        let report = node.drain();
        assert!(report.ingest.error.is_none());
        assert_eq!(report.ingest.pipeline.records, 20);
        assert_eq!(report.abandoned, 0);
        assert!(
            report.forwarded >= 2,
            "windows flushed: {}",
            report.forwarded
        );

        let (collector, applied, rejected) = sink.join().unwrap();
        assert_eq!(rejected, 0);
        assert_eq!(applied as u64, report.forwarded);
        assert_eq!(collector.merged(None, 0, u64::MAX).total().packets, 40);
    }
}
