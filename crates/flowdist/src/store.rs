//! The on-disk summary store — Fig. 1's "database".
//!
//! Summaries are append-only historical data: one file per
//! (site, window) under a directory, named so that plain `ls` sorts by
//! time. Writes go through a temp-file + rename so a crash never leaves
//! a half-written summary behind, and loading re-validates every frame
//! (disk content is as untrusted as network content — bit rot, partial
//! writes, tampering).
//!
//! ```text
//! <root>/
//!   s00003/
//!     w00000000001700000000000.fsum     (site 3, window start 1.7e12 ms)
//!     w00000000001700000300000.fsum
//! ```

use crate::summary::Summary;
use crate::{Collector, DistError};
use flowtree_core::Config;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The file extension of stored summary frames.
pub const EXT: &str = "fsum";

/// An on-disk store of summary frames.
#[derive(Debug)]
pub struct SummaryStore {
    root: PathBuf,
}

/// Outcome counters of a [`SummaryStore::load_into`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Frames applied to the collector.
    pub loaded: usize,
    /// Files that failed validation or application (left on disk for
    /// inspection, counted here and in the collector ledger).
    pub rejected: usize,
}

impl SummaryStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<SummaryStore, DistError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(DistError::Io)?;
        Ok(SummaryStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn site_dir(&self, site: u16) -> PathBuf {
        self.root.join(format!("s{site:05}"))
    }

    fn window_path(&self, site: u16, start_ms: u64) -> PathBuf {
        self.site_dir(site).join(format!("w{start_ms:023}.{EXT}"))
    }

    /// Persists one summary atomically (temp file + rename). A summary
    /// for the same (site, window) replaces the previous one.
    ///
    /// The store holds **one frame per (site, window)** — so persist
    /// reconstructed state, not delta frames: a v1 delta (against the
    /// site's previous window) or a v3 delta (against a base epoch)
    /// stored alone would be an orphan on reload, rejected by the
    /// collector's base/epoch checks. Callers persisting an
    /// incremental stream should `put` the receiver's rebuilt full
    /// window after applying each increment.
    pub fn put(&self, summary: &Summary) -> Result<PathBuf, DistError> {
        let dir = self.site_dir(summary.site);
        fs::create_dir_all(&dir).map_err(DistError::Io)?;
        let bytes = summary.encode();
        let tmp = dir.join(format!(".tmp-{}-{}", summary.window.start_ms, summary.seq));
        {
            let mut f = fs::File::create(&tmp).map_err(DistError::Io)?;
            f.write_all(&bytes).map_err(DistError::Io)?;
            f.sync_all().map_err(DistError::Io)?;
        }
        let final_path = self.window_path(summary.site, summary.window.start_ms);
        fs::rename(&tmp, &final_path).map_err(DistError::Io)?;
        Ok(final_path)
    }

    /// Lists stored (site, window-start) pairs, sorted.
    pub fn list(&self) -> Result<Vec<(u16, u64)>, DistError> {
        let mut out = Vec::new();
        let entries = match fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(DistError::Io(e)),
        };
        for site_entry in entries {
            let site_entry = site_entry.map_err(DistError::Io)?;
            let name = site_entry.file_name();
            let Some(site) = name
                .to_str()
                .and_then(|s| s.strip_prefix('s'))
                .and_then(|s| s.parse::<u16>().ok())
            else {
                continue; // foreign file; ignore
            };
            for w in fs::read_dir(site_entry.path()).map_err(DistError::Io)? {
                let w = w.map_err(DistError::Io)?;
                let fname = w.file_name();
                let Some(start) = fname
                    .to_str()
                    .and_then(|s| s.strip_prefix('w'))
                    .and_then(|s| s.strip_suffix(&format!(".{EXT}")))
                    .and_then(|s| s.parse::<u64>().ok())
                else {
                    continue;
                };
                out.push((site, start));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Reads one stored summary back (fully re-validated).
    pub fn get(&self, site: u16, start_ms: u64, cfg: Config) -> Result<Summary, DistError> {
        let bytes = fs::read(self.window_path(site, start_ms)).map_err(DistError::Io)?;
        Summary::decode(&bytes, cfg)
    }

    /// Loads every stored frame into a collector, oldest first per
    /// site. Invalid files are counted, not fatal.
    pub fn load_into(&self, collector: &mut Collector) -> Result<LoadReport, DistError> {
        let mut report = LoadReport::default();
        // Per-site time order so delta chains (if stored) reconstruct.
        let mut items = self.list()?;
        items.sort_by_key(|(site, start)| (*site, *start));
        for (site, start) in items {
            let path = self.window_path(site, start);
            match fs::read(&path) {
                Ok(bytes) => match collector.apply_bytes(&bytes) {
                    Ok(()) => report.loaded += 1,
                    Err(_) => report.rejected += 1,
                },
                Err(_) => report.rejected += 1,
            }
        }
        Ok(report)
    }

    /// Deletes windows strictly older than `cutoff_ms` (retention).
    /// Returns how many files were removed.
    pub fn expire_before(&self, cutoff_ms: u64) -> Result<usize, DistError> {
        let mut removed = 0;
        for (site, start) in self.list()? {
            if start < cutoff_ms {
                fs::remove_file(self.window_path(site, start)).map_err(DistError::Io)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{DaemonConfig, SiteDaemon, TransferMode};
    use crate::window::WindowId;
    use flowkey::Schema;
    use flownet::FlowRecord;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("flowtree-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn summaries(site: u16, windows: u64) -> Vec<Summary> {
        let mut cfg = DaemonConfig::new(site);
        cfg.window_ms = 1_000;
        cfg.schema = Schema::five_feature();
        cfg.tree = Config::with_budget(256);
        cfg.transfer = TransferMode::Full;
        let mut d = SiteDaemon::new(cfg);
        let mut out = Vec::new();
        for w in 0..windows {
            for h in 0..4u8 {
                let mut r =
                    FlowRecord::v4([10, site as u8, 0, h], [192, 0, 2, 1], 999, 443, 6, 3, 300);
                r.first_ms = w * 1_000 + 10;
                r.last_ms = r.first_ms;
                out.extend(d.ingest_record(&r));
            }
        }
        out.extend(d.flush());
        out
    }

    #[test]
    fn put_list_get_roundtrip() {
        let store = SummaryStore::open(tmpdir("roundtrip")).unwrap();
        for s in summaries(3, 3) {
            store.put(&s).unwrap();
        }
        let listed = store.list().unwrap();
        assert_eq!(listed, vec![(3, 0), (3, 1_000), (3, 2_000)]);
        let s = store.get(3, 1_000, Config::with_budget(256)).unwrap();
        assert_eq!(s.site, 3);
        assert_eq!(
            s.window,
            WindowId {
                start_ms: 1_000,
                span_ms: 1_000
            }
        );
        assert_eq!(s.tree.total().packets, 12);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn load_into_rebuilds_the_collector() {
        let store = SummaryStore::open(tmpdir("load")).unwrap();
        for site in [1u16, 2] {
            for s in summaries(site, 4) {
                store.put(&s).unwrap();
            }
        }
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(256));
        let report = store.load_into(&mut collector).unwrap();
        assert_eq!(
            report,
            LoadReport {
                loaded: 8,
                rejected: 0
            }
        );
        assert_eq!(collector.stored_windows(), 8);
        assert_eq!(collector.merged(None, 0, u64::MAX).total().packets, 8 * 12);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_files_are_counted_not_fatal() {
        let store = SummaryStore::open(tmpdir("corrupt")).unwrap();
        let all = summaries(5, 2);
        store.put(&all[0]).unwrap();
        store.put(&all[1]).unwrap();
        // Flip a byte in the middle of the second file (bit rot).
        let path = store.window_path(5, 1_000);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(256));
        let report = store.load_into(&mut collector).unwrap();
        assert_eq!(report.loaded, 1);
        assert_eq!(report.rejected, 1);
        assert_eq!(collector.stored_windows(), 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn retention_expires_old_windows() {
        let store = SummaryStore::open(tmpdir("retention")).unwrap();
        for s in summaries(1, 5) {
            store.put(&s).unwrap();
        }
        let removed = store.expire_before(3_000).unwrap();
        assert_eq!(removed, 3);
        assert_eq!(store.list().unwrap(), vec![(1, 3_000), (1, 4_000)]);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn rewrite_replaces_same_window() {
        let store = SummaryStore::open(tmpdir("rewrite")).unwrap();
        let all = summaries(2, 1);
        store.put(&all[0]).unwrap();
        store.put(&all[0]).unwrap(); // idempotent
        assert_eq!(store.list().unwrap().len(), 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn foreign_files_are_ignored() {
        let store = SummaryStore::open(tmpdir("foreign")).unwrap();
        fs::write(store.root().join("README"), b"not a summary").unwrap();
        fs::create_dir_all(store.root().join("sXYZ")).unwrap();
        for s in summaries(1, 1) {
            store.put(&s).unwrap();
        }
        fs::write(store.site_dir(1).join("notes.txt"), b"also not a summary").unwrap();
        assert_eq!(store.list().unwrap(), vec![(1, 0)]);
        let _ = fs::remove_dir_all(store.root());
    }
}
