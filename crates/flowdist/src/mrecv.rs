//! Batched UDP receive: `recvmmsg(2)` behind a reusable buffer arena.
//!
//! The single-datagram `recv_from` loop pays one syscall per packet —
//! at NetFlow export rates the syscall boundary, not the tree, is the
//! ingest ceiling. [`BatchReceiver`] amortizes it: one `recvmmsg` call
//! pulls up to [`MAX_RECV_BATCH`] datagrams into a pre-allocated
//! arena (no per-packet allocation, buffers reused across calls).
//!
//! The raw syscall lives behind the same scoped `#[allow(unsafe_code)]`
//! seam as `sockopt` and is Linux-gated; everywhere else — and on
//! Linux when [`BatchReceiver::force_fallback`] is used, which is how
//! CI exercises the portable path on a Linux host — each `recv` call
//! degrades to one `recv_from` returning a batch of one.
//!
//! Timeout semantics are preserved exactly: `MSG_WAITFORONE` makes
//! `recvmmsg` return as soon as at least one datagram is in, and a
//! socket `SO_RCVTIMEO` (or nonblocking mode during drain) surfaces as
//! `WouldBlock`/`TimedOut` from [`BatchReceiver::recv`] just as it
//! does from `recv_from` — the ingest loop's stop discipline carries
//! over unchanged.

use std::io;
use std::net::{SocketAddr, UdpSocket};

/// Hard cap on datagrams pulled per `recvmmsg` call.
pub const MAX_RECV_BATCH: usize = 64;

/// Per-slot buffer size. A UDP datagram can carry up to ~64 KiB; a
/// short slot would silently truncate oversized exporter packets, so
/// each slot takes the full size (the arena is allocated once).
const SLOT_BYTES: usize = 64 * 1024;

/// A reusable receive arena that pulls batches of datagrams from a
/// `UdpSocket` — `recvmmsg` on Linux, a `recv_from` batch-of-one
/// everywhere else (or when forced, for fallback-path tests).
pub struct BatchReceiver {
    bufs: Vec<Box<[u8]>>,
    /// (payload length, peer) per filled slot of the last batch.
    metas: Vec<(usize, SocketAddr)>,
    filled: usize,
    batched: bool,
    /// Kernel-facing `recvmmsg` arrays (sockaddr storage, iovecs,
    /// mmsghdrs), allocated once alongside the payload arena so the
    /// hot receive path performs no per-call allocation.
    #[cfg(target_os = "linux")]
    scratch: imp::Scratch,
}

impl BatchReceiver {
    /// Creates an arena holding up to `batch` datagrams per call
    /// (clamped to `1..=MAX_RECV_BATCH`). Uses `recvmmsg` when the
    /// platform has it.
    pub fn new(batch: usize) -> Self {
        Self::build(batch, cfg!(target_os = "linux"))
    }

    /// Creates an arena that always uses the portable single-datagram
    /// path, regardless of platform — the knob fallback-matrix tests
    /// and the CI fallback leg use to exercise the non-Linux path on
    /// Linux hosts.
    pub fn force_fallback(batch: usize) -> Self {
        Self::build(batch, false)
    }

    fn build(batch: usize, batched: bool) -> Self {
        let cap = batch.clamp(1, MAX_RECV_BATCH);
        let cap = if batched { cap } else { 1 };
        BatchReceiver {
            bufs: (0..cap)
                .map(|_| vec![0u8; SLOT_BYTES].into_boxed_slice())
                .collect(),
            metas: Vec::with_capacity(cap),
            filled: 0,
            batched,
            // The fallback path never calls recvmmsg; skip its arrays.
            #[cfg(target_os = "linux")]
            scratch: imp::Scratch::new(if batched { cap } else { 0 }),
        }
    }

    /// True when this receiver uses the batched `recvmmsg` path.
    pub fn is_batched(&self) -> bool {
        self.batched
    }

    /// Maximum datagrams a single [`recv`](Self::recv) can return.
    pub fn capacity(&self) -> usize {
        self.bufs.len()
    }

    /// Pulls the next batch from `socket`, returning how many
    /// datagrams were filled (≥ 1). Errors — including the
    /// `WouldBlock`/`TimedOut` that a read timeout or nonblocking
    /// drain produces — pass through untranslated.
    pub fn recv(&mut self, socket: &UdpSocket) -> io::Result<usize> {
        self.filled = 0;
        self.metas.clear();
        #[cfg(target_os = "linux")]
        if self.batched {
            let n = imp::recvmmsg_into(socket, &mut self.bufs, &mut self.metas, &mut self.scratch)?;
            self.filled = n;
            return Ok(n);
        }
        let (len, peer) = socket.recv_from(&mut self.bufs[0])?;
        self.metas.push((len, peer));
        self.filled = 1;
        Ok(1)
    }

    /// Number of datagrams in the last successful batch.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True when the last batch was empty (no successful `recv` yet).
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Payload and peer of datagram `i` of the last batch.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn datagram(&self, i: usize) -> (&[u8], SocketAddr) {
        let (len, peer) = self.metas[i];
        (&self.bufs[i][..len], peer)
    }
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod imp {
    use std::io;
    use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, SocketAddrV4, SocketAddrV6, UdpSocket};
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_uint, c_void};

    // Return as soon as >= 1 datagram is available, so the socket's
    // SO_RCVTIMEO / nonblocking behavior is preserved for the first
    // datagram and later slots never block.
    const MSG_WAITFORONE: c_int = 0x10000;
    const AF_INET: u16 = 2;
    const AF_INET6: u16 = 10;

    /// struct iovec (bits/uio.h).
    #[repr(C)]
    struct IoVec {
        base: *mut c_void,
        len: usize,
    }

    /// struct msghdr (bits/socket.h, 64-bit Linux layout — repr(C)
    /// inserts the same padding after `namelen` the C struct has).
    #[repr(C)]
    struct MsgHdr {
        name: *mut c_void,
        namelen: c_uint,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut c_void,
        controllen: usize,
        flags: c_int,
    }

    /// struct mmsghdr.
    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: c_uint,
    }

    /// sockaddr_storage stand-in: 128 bytes, enough for any family.
    const NAME_BYTES: usize = 128;

    unsafe extern "C" {
        fn recvmmsg(
            fd: c_int,
            msgvec: *mut c_void,
            vlen: c_uint,
            flags: c_int,
            timeout: *mut c_void,
        ) -> c_int;
    }

    fn parse_sockaddr(name: &[u8; NAME_BYTES], len: usize) -> Option<SocketAddr> {
        if len < 2 {
            return None;
        }
        let family = u16::from_ne_bytes([name[0], name[1]]);
        if family == AF_INET && len >= 8 {
            let port = u16::from_be_bytes([name[2], name[3]]);
            let ip = Ipv4Addr::new(name[4], name[5], name[6], name[7]);
            Some(SocketAddr::V4(SocketAddrV4::new(ip, port)))
        } else if family == AF_INET6 && len >= 28 {
            let port = u16::from_be_bytes([name[2], name[3]]);
            let flowinfo = u32::from_ne_bytes([name[4], name[5], name[6], name[7]]);
            let mut oct = [0u8; 16];
            oct.copy_from_slice(&name[8..24]);
            let scope = u32::from_ne_bytes([name[24], name[25], name[26], name[27]]);
            Some(SocketAddr::V6(SocketAddrV6::new(
                Ipv6Addr::from(oct),
                port,
                flowinfo,
                scope,
            )))
        } else {
            None
        }
    }

    /// The kernel-facing arrays a `recvmmsg` call writes through,
    /// allocated once per [`super::BatchReceiver`] and reused across
    /// calls. The raw pointers inside `iovecs`/`hdrs` are dead between
    /// calls: [`recvmmsg_into`] rewrites every one from the live
    /// payload arena and `names` before each syscall, so the arrays
    /// carry no stale provenance across moves of the receiver.
    pub struct Scratch {
        names: Vec<[u8; NAME_BYTES]>,
        iovecs: Vec<IoVec>,
        hdrs: Vec<MMsgHdr>,
    }

    // SAFETY: the raw pointers inside are only meaningful during a
    // `recvmmsg_into` call on the thread that owns the receiver, and
    // are refreshed at the top of every call — between calls they are
    // inert bytes, so moving a Scratch across threads is sound.
    #[allow(unsafe_code)]
    unsafe impl Send for Scratch {}

    impl Scratch {
        pub fn new(n: usize) -> Scratch {
            Scratch {
                names: vec![[0u8; NAME_BYTES]; n],
                iovecs: (0..n)
                    .map(|_| IoVec {
                        base: std::ptr::null_mut(),
                        len: 0,
                    })
                    .collect(),
                hdrs: (0..n)
                    .map(|_| MMsgHdr {
                        hdr: MsgHdr {
                            name: std::ptr::null_mut(),
                            namelen: 0,
                            iov: std::ptr::null_mut(),
                            iovlen: 0,
                            control: std::ptr::null_mut(),
                            controllen: 0,
                            flags: 0,
                        },
                        len: 0,
                    })
                    .collect(),
            }
        }
    }

    pub fn recvmmsg_into(
        socket: &UdpSocket,
        bufs: &mut [Box<[u8]>],
        metas: &mut Vec<(usize, SocketAddr)>,
        scratch: &mut Scratch,
    ) -> io::Result<usize> {
        let n = bufs.len().min(scratch.hdrs.len());
        // Refresh every kernel-visible pointer from the live arena.
        // The kernel also writes `namelen`/`flags` back per message,
        // so each field is reset on every call, not just at build.
        for (i, buf) in bufs.iter_mut().enumerate().take(n) {
            scratch.iovecs[i].base = buf.as_mut_ptr().cast();
            scratch.iovecs[i].len = buf.len();
            let h = &mut scratch.hdrs[i];
            h.hdr.name = scratch.names[i].as_mut_ptr().cast();
            h.hdr.namelen = NAME_BYTES as c_uint;
            h.hdr.iov = &mut scratch.iovecs[i] as *mut IoVec;
            h.hdr.iovlen = 1;
            h.hdr.flags = 0;
            h.len = 0;
        }
        // SAFETY: every pointer in `hdrs` was just rewritten to refer
        // to storage (`bufs`, `scratch.names`, `scratch.iovecs`) that
        // outlives this call and is not moved while the kernel writes
        // through it; vlen matches the refreshed prefix; the fd is a
        // live socket borrowed for the call.
        let rc = unsafe {
            recvmmsg(
                socket.as_raw_fd(),
                scratch.hdrs.as_mut_ptr().cast(),
                n as c_uint,
                MSG_WAITFORONE,
                std::ptr::null_mut(),
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        let got = rc as usize;
        for (i, h) in scratch.hdrs.iter().take(got).enumerate() {
            let peer = parse_sockaddr(&scratch.names[i], h.hdr.namelen as usize)
                .unwrap_or_else(|| SocketAddr::from(([0, 0, 0, 0], 0)));
            metas.push((h.len as usize, peer));
        }
        Ok(got)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = rx.local_addr().unwrap();
        (rx, tx, addr)
    }

    #[test]
    fn batched_pulls_multiple_datagrams_per_call() {
        let (rx, tx, addr) = pair();
        for i in 0..5u8 {
            tx.send_to(&[i; 3], addr).unwrap();
        }
        let mut r = BatchReceiver::new(8);
        let mut got = Vec::new();
        while got.len() < 5 {
            let n = r.recv(&rx).expect("datagrams pending");
            assert!(n >= 1);
            for i in 0..n {
                let (payload, peer) = r.datagram(i);
                assert_eq!(peer, tx.local_addr().unwrap());
                got.push(payload.to_vec());
            }
        }
        assert_eq!(got.len(), 5);
        assert_eq!(got[4], vec![4u8; 3]);
    }

    #[test]
    fn forced_fallback_returns_batches_of_one() {
        let (rx, tx, addr) = pair();
        tx.send_to(b"abc", addr).unwrap();
        tx.send_to(b"defg", addr).unwrap();
        let mut r = BatchReceiver::force_fallback(64);
        assert!(!r.is_batched());
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.recv(&rx).unwrap(), 1);
        assert_eq!(r.datagram(0).0, b"abc");
        assert_eq!(r.recv(&rx).unwrap(), 1);
        assert_eq!(r.datagram(0).0, b"defg");
    }

    #[test]
    fn timeout_surfaces_as_wouldblock_or_timedout() {
        let (rx, _tx, _addr) = pair();
        let mut r = BatchReceiver::new(8);
        let err = r.recv(&rx).expect_err("no traffic");
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "unexpected error kind: {err:?}"
        );
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn nonblocking_drain_surfaces_wouldblock() {
        let (rx, tx, addr) = pair();
        rx.set_nonblocking(true).unwrap();
        tx.send_to(b"x", addr).unwrap();
        let mut r = BatchReceiver::new(4);
        // Give loopback delivery a beat, then drain to empty.
        std::thread::sleep(Duration::from_millis(50));
        let mut total = 0;
        loop {
            match r.recv(&rx) {
                Ok(n) => total += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("unexpected: {e:?}"),
            }
        }
        assert_eq!(total, 1);
    }

    #[test]
    fn capacity_is_clamped() {
        assert_eq!(BatchReceiver::new(0).capacity(), 1);
        let big = BatchReceiver::new(10_000);
        assert!(big.capacity() <= MAX_RECV_BATCH);
    }
}
