//! Disk-backed spill queue for unacknowledged export frames.
//!
//! `relayd` used to keep pending exports in a bounded in-memory `Vec`:
//! an upstream outage longer than the buffer simply lost the chain,
//! and a crash lost everything. The spill queue makes the pending set
//! durable and the shed policy explicit:
//!
//! * Every enqueued frame is appended to an **append-only segment
//!   file** (`spill-<firstseq>.seg`) as a `[u32 LE len][u32 LE
//!   crc32][bytes]` record before it counts as pending. A torn tail
//!   (crash mid-append) is detected by length/CRC and truncated on
//!   recovery — everything before it is intact.
//! * A tiny **ledger file** records the acked floor: the sequence
//!   number below which every frame has been acknowledged upstream.
//!   It is replaced atomically (tmp + rename) so recovery always sees
//!   a consistent floor. Segments entirely below the floor are
//!   deleted.
//! * Total on-disk bytes are **bounded** ([`SpillConfig::max_bytes`]);
//!   overflow sheds the *oldest* unacked frames first and accounts for
//!   every shed byte ([`SpillStats::shed_frames`]) — loss is a
//!   recorded decision, never an accident. Shed frames are returned to
//!   the caller so it can rewind the relay's export state
//!   (`mark_unshipped`) and re-export later.
//! * The **fsync policy** is a knob: [`FsyncPolicy::Always`] makes
//!   each append power-loss durable; [`FsyncPolicy::Never`] still
//!   survives `kill -9` (completed `write`s live in the page cache,
//!   which outlives the process) and is the right default for the
//!   kill-restart crash model the fault-injection suite pins.
//!
//! The in-memory front (`VecDeque`) mirrors the unacked suffix so the
//! hot path never re-reads disk; recovery rebuilds it by scanning the
//! segments from the ledger floor.

use crate::DistError;
use std::collections::VecDeque;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// When segment appends reach the disk platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every append: durable against power loss.
    Always,
    /// No explicit sync: durable against process death (`kill -9`)
    /// but not power loss. The default — matches the crash model the
    /// recovery suite tests.
    #[default]
    Never,
}

/// Spill queue tuning.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Cap on total bytes across live segment files; overflow sheds
    /// the oldest unacked frames. 0 = unbounded.
    pub max_bytes: u64,
    /// Rotate to a new segment file once the active one reaches this
    /// many bytes.
    pub segment_bytes: u64,
    /// Fsync policy for segment appends and ledger updates.
    pub fsync: FsyncPolicy,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            max_bytes: 256 << 20,
            segment_bytes: 8 << 20,
            fsync: FsyncPolicy::Never,
        }
    }
}

/// Counters the spill queue maintains (monotonic over the queue's
/// lifetime, zeroed on construction — recovery re-counts recovered
/// frames as `recovered_frames`, not `pushed_frames`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Frames appended by [`SpillQueue::push`].
    pub pushed_frames: u64,
    /// Bytes appended (record payloads, excluding headers).
    pub pushed_bytes: u64,
    /// Frames acknowledged and released by [`SpillQueue::ack_through`].
    pub acked_frames: u64,
    /// Frames shed by the byte bound — explicit, accounted loss.
    pub shed_frames: u64,
    /// Payload bytes shed by the byte bound.
    pub shed_bytes: u64,
    /// Unacked frames recovered from disk at open.
    pub recovered_frames: u64,
    /// Trailing bytes truncated at open (torn tail after a crash).
    pub torn_bytes: u64,
    /// Disk I/O failures after which the queue dropped its disk
    /// backing and continued memory-only (see [`SpillQueue::push`]).
    pub io_errors: u64,
}

/// One queued frame: its queue sequence number and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillRecord {
    /// Position in the queue's append order (strictly increasing,
    /// never reused).
    pub seq: u64,
    /// The frame bytes as handed to [`SpillQueue::push`].
    pub bytes: Vec<u8>,
}

struct Segment {
    path: PathBuf,
    /// Sequence one past the last record in the file.
    next_seq: u64,
    bytes: u64,
}

/// A durable FIFO of unacked export frames (see the module docs).
pub struct SpillQueue {
    dir: Option<PathBuf>,
    cfg: SpillConfig,
    /// Live segments, oldest first; the last one is the append target.
    segments: Vec<Segment>,
    active: Option<File>,
    /// The unacked suffix, oldest first, mirroring disk.
    pending: VecDeque<SpillRecord>,
    /// Every seq below this is acked (persisted in the ledger file).
    floor: u64,
    next_seq: u64,
    stats: SpillStats,
}

const REC_HEADER: usize = 8;

impl SpillQueue {
    /// Opens (or creates) a spill queue rooted at `dir`, recovering
    /// any unacked frames a previous process left behind. A torn tail
    /// is truncated; segments wholly below the acked floor are
    /// deleted.
    pub fn open(dir: &Path, cfg: SpillConfig) -> Result<SpillQueue, DistError> {
        fs::create_dir_all(dir).map_err(DistError::Io)?;
        let floor = read_ledger(&dir.join("ledger"))?;
        let mut q = SpillQueue {
            dir: Some(dir.to_path_buf()),
            cfg,
            segments: Vec::new(),
            active: None,
            pending: VecDeque::new(),
            floor,
            next_seq: floor,
            stats: SpillStats::default(),
        };
        q.recover()?;
        Ok(q)
    }

    /// A memory-only queue (no directory, nothing survives the
    /// process) — the fallback when no state dir is configured, with
    /// the same bounding and shed accounting.
    pub fn in_memory(cfg: SpillConfig) -> SpillQueue {
        SpillQueue {
            dir: None,
            cfg,
            segments: Vec::new(),
            active: None,
            pending: VecDeque::new(),
            floor: 0,
            next_seq: 0,
            stats: SpillStats::default(),
        }
    }

    fn recover(&mut self) -> Result<(), DistError> {
        let dir = self.dir.clone().expect("recover only on disk queues");
        let mut seg_starts: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir).map_err(DistError::Io)? {
            let entry = entry.map_err(DistError::Io)?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name
                .strip_prefix("spill-")
                .and_then(|r| r.strip_suffix(".seg"))
            {
                if let Ok(first) = num.parse::<u64>() {
                    seg_starts.push(first);
                }
            }
        }
        seg_starts.sort_unstable();
        for first in seg_starts {
            let path = dir.join(format!("spill-{first:020}.seg"));
            let mut data = Vec::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut data))
                .map_err(DistError::Io)?;
            let (records, good_len) = scan_segment(&data);
            let next_seq = first + records.len() as u64;
            if next_seq <= self.floor {
                // Entirely acked: drop the file.
                fs::remove_file(&path).map_err(DistError::Io)?;
                continue;
            }
            if good_len < data.len() {
                // Torn tail from a crash mid-append: truncate to the
                // last intact record so future appends stay aligned.
                self.stats.torn_bytes += (data.len() - good_len) as u64;
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(DistError::Io)?;
                f.set_len(good_len as u64).map_err(DistError::Io)?;
                if self.cfg.fsync == FsyncPolicy::Always {
                    f.sync_all().map_err(DistError::Io)?;
                }
            }
            for (i, bytes) in records.into_iter().enumerate() {
                let seq = first + i as u64;
                if seq >= self.floor {
                    self.stats.recovered_frames += 1;
                    self.pending.push_back(SpillRecord { seq, bytes });
                }
            }
            self.segments.push(Segment {
                path,
                next_seq,
                bytes: good_len as u64,
            });
            self.next_seq = self.next_seq.max(next_seq);
        }
        Ok(())
    }

    /// Appends a frame; it stays queued until acked or shed. Returns
    /// the frames shed to honor the byte bound (oldest first) so the
    /// caller can rewind their windows' export state.
    ///
    /// Disk trouble (a full or read-only volume, a yanked mount) never
    /// fails the push and never poisons the caller: the queue drops
    /// its disk backing, counts the event
    /// ([`SpillStats::io_errors`]), and continues memory-only with the
    /// same bounding and shed accounting — durability is lost, the
    /// export path is not.
    pub fn push(&mut self, bytes: Vec<u8>) -> Vec<SpillRecord> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.pushed_frames += 1;
        self.stats.pushed_bytes += bytes.len() as u64;
        if self.dir.is_some() && self.append_record(seq, &bytes).is_err() {
            self.degrade();
        }
        self.pending.push_back(SpillRecord { seq, bytes });
        self.enforce_bound()
    }

    /// Whether the queue still has a disk backing (false after
    /// [`SpillQueue::in_memory`] or an I/O degrade).
    pub fn disk_backed(&self) -> bool {
        self.dir.is_some()
    }

    /// Drops the disk backing after an I/O failure: pending frames
    /// stay queued in memory, future appends skip disk, and the event
    /// is counted. The on-disk files are left as-is — stale next to a
    /// newer ledger at worst, re-reconciled by the next clean open.
    fn degrade(&mut self) {
        self.stats.io_errors += 1;
        self.dir = None;
        self.active = None;
        self.segments.clear();
    }

    fn append_record(&mut self, seq: u64, bytes: &[u8]) -> Result<(), DistError> {
        let rec_len = (REC_HEADER + bytes.len()) as u64;
        let need_new = match self.segments.last() {
            Some(seg) => seg.bytes + rec_len > self.cfg.segment_bytes && seg.bytes > 0,
            None => true,
        };
        if need_new {
            let dir = self.dir.as_ref().expect("disk queue");
            let path = dir.join(format!("spill-{seq:020}.seg"));
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(DistError::Io)?;
            self.active = Some(file);
            self.segments.push(Segment {
                path,
                next_seq: seq,
                bytes: 0,
            });
        } else if self.active.is_none() {
            // Recovery left a tail segment with room: reopen it for
            // append instead of fragmenting into a new file.
            let seg = self.segments.last().expect("nonempty");
            let file = OpenOptions::new()
                .append(true)
                .open(&seg.path)
                .map_err(DistError::Io)?;
            self.active = Some(file);
        }
        let mut buf = Vec::with_capacity(REC_HEADER + bytes.len());
        buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(bytes).to_le_bytes());
        buf.extend_from_slice(bytes);
        let file = self.active.as_mut().expect("active segment");
        file.write_all(&buf).map_err(DistError::Io)?;
        if self.cfg.fsync == FsyncPolicy::Always {
            file.sync_all().map_err(DistError::Io)?;
        }
        let seg = self.segments.last_mut().expect("segment just ensured");
        seg.next_seq = seq + 1;
        seg.bytes += rec_len;
        Ok(())
    }

    /// Releases every frame with `seq < upto`: they are delivered and
    /// acknowledged. Persists the new floor and deletes fully-acked
    /// segments; ledger I/O trouble degrades to memory-only (see
    /// [`SpillQueue::push`]) rather than failing the ack.
    pub fn ack_through(&mut self, upto: u64) {
        if upto <= self.floor {
            return;
        }
        while let Some(front) = self.pending.front() {
            if front.seq < upto {
                self.pending.pop_front();
                self.stats.acked_frames += 1;
            } else {
                break;
            }
        }
        self.floor = self.floor.max(upto);
        if self
            .persist_floor()
            .and_then(|()| self.drop_acked_segments())
            .is_err()
        {
            self.degrade();
        }
    }

    fn persist_floor(&mut self) -> Result<(), DistError> {
        let Some(dir) = self.dir.clone() else {
            return Ok(());
        };
        let tmp = dir.join("ledger.tmp");
        let path = dir.join("ledger");
        let mut f = File::create(&tmp).map_err(DistError::Io)?;
        f.write_all(format!("{}\n", self.floor).as_bytes())
            .map_err(DistError::Io)?;
        if self.cfg.fsync == FsyncPolicy::Always {
            f.sync_all().map_err(DistError::Io)?;
        }
        drop(f);
        fs::rename(&tmp, &path).map_err(DistError::Io)?;
        Ok(())
    }

    fn drop_acked_segments(&mut self) -> Result<(), DistError> {
        if self.dir.is_none() {
            return Ok(());
        }
        // Never delete the active (last) segment: appends continue there.
        while self.segments.len() > 1 && self.segments[0].next_seq <= self.floor {
            let seg = self.segments.remove(0);
            fs::remove_file(&seg.path).map_err(DistError::Io)?;
        }
        // A lone fully-acked segment can go too once it has content.
        if self.segments.len() == 1 && self.segments[0].next_seq <= self.floor {
            let seg = self.segments.remove(0);
            fs::remove_file(&seg.path).map_err(DistError::Io)?;
            self.active = None;
        }
        Ok(())
    }

    fn enforce_bound(&mut self) -> Vec<SpillRecord> {
        let mut shed = Vec::new();
        if self.cfg.max_bytes == 0 {
            return shed;
        }
        while self.pending_bytes() > self.cfg.max_bytes && self.pending.len() > 1 {
            let rec = self.pending.pop_front().expect("nonempty");
            self.stats.shed_frames += 1;
            self.stats.shed_bytes += rec.bytes.len() as u64;
            self.floor = self.floor.max(rec.seq + 1);
            shed.push(rec);
        }
        if !shed.is_empty()
            && self
                .persist_floor()
                .and_then(|()| self.drop_acked_segments())
                .is_err()
        {
            self.degrade();
        }
        shed
    }

    /// Payload bytes currently pending (unacked).
    pub fn pending_bytes(&self) -> u64 {
        self.pending.iter().map(|r| r.bytes.len() as u64).sum()
    }

    /// Unacked frames, oldest first. The shipper resends exactly this
    /// suffix after a reconnect.
    pub fn pending(&self) -> impl Iterator<Item = &SpillRecord> {
        self.pending.iter()
    }

    /// Number of unacked frames.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The sequence the next [`SpillQueue::push`] will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The acked floor: every seq below it is released.
    pub fn acked_floor(&self) -> u64 {
        self.floor
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }
}

/// Scans a segment's bytes into records, returning them plus the byte
/// length of the intact prefix (anything after is a torn tail).
fn scan_segment(data: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while data.len() - pos >= REC_HEADER {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        let Some(end) = pos.checked_add(REC_HEADER + len) else {
            break;
        };
        if end > data.len() {
            break;
        }
        let payload = &data[pos + REC_HEADER..end];
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        pos = end;
    }
    (records, pos)
}

fn read_ledger(path: &Path) -> Result<u64, DistError> {
    match fs::read_to_string(path) {
        Ok(text) => Ok(text.trim().parse::<u64>().unwrap_or(0)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(DistError::Io(e)),
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) — the usual zlib CRC,
/// table-driven, no dependencies.
pub fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "flowdist-spill-{tag}-{}",
            std::process::id() as u64
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn frame(i: u64, len: usize) -> Vec<u8> {
        let mut v = vec![(i & 0xFF) as u8; len];
        v[0] = (i >> 8) as u8;
        v
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn push_ack_recover_roundtrip() {
        let dir = tmpdir("roundtrip");
        let cfg = SpillConfig::default();
        {
            let mut q = SpillQueue::open(&dir, cfg.clone()).unwrap();
            for i in 0..10 {
                assert!(q.push(frame(i, 100)).is_empty());
            }
            q.ack_through(4);
            assert_eq!(q.len(), 6);
            assert_eq!(q.acked_floor(), 4);
        }
        // Reopen: the unacked suffix survives in order.
        let q = SpillQueue::open(&dir, cfg).unwrap();
        assert_eq!(q.len(), 6);
        assert_eq!(q.stats().recovered_frames, 6);
        let seqs: Vec<u64> = q.pending().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6, 7, 8, 9]);
        let bytes: Vec<Vec<u8>> = q.pending().map(|r| r.bytes.clone()).collect();
        assert_eq!(bytes[0], frame(4, 100));
        assert_eq!(bytes[5], frame(9, 100));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_kept() {
        let dir = tmpdir("torn");
        let cfg = SpillConfig::default();
        {
            let mut q = SpillQueue::open(&dir, cfg.clone()).unwrap();
            for i in 0..3 {
                q.push(frame(i, 64));
            }
        }
        // Corrupt: append a half-written record to the segment.
        let seg = dir.join(format!("spill-{:020}.seg", 0));
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0x40, 0, 0, 0, 0xAA, 0xBB]).unwrap(); // len=64, torn
        drop(f);
        let q = SpillQueue::open(&dir, cfg.clone()).unwrap();
        assert_eq!(q.len(), 3, "intact records survive the torn tail");
        assert_eq!(q.stats().torn_bytes, 6);
        // And the truncation leaves the file appendable.
        let mut q = q;
        q.push(frame(3, 64));
        drop(q);
        let q = SpillQueue::open(&dir, cfg).unwrap();
        assert_eq!(q.len(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_stops_the_scan_at_the_last_good_record() {
        let dir = tmpdir("crc");
        let cfg = SpillConfig::default();
        {
            let mut q = SpillQueue::open(&dir, cfg.clone()).unwrap();
            for i in 0..4 {
                q.push(frame(i, 32));
            }
        }
        let seg = dir.join(format!("spill-{:020}.seg", 0));
        let mut data = fs::read(&seg).unwrap();
        // Flip a payload byte in the third record.
        let rec = REC_HEADER + 32;
        data[2 * rec + REC_HEADER + 5] ^= 0xFF;
        fs::write(&seg, &data).unwrap();
        let q = SpillQueue::open(&dir, cfg).unwrap();
        assert_eq!(q.len(), 2, "records after the corruption are dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_bound_sheds_oldest_with_accounting() {
        let mut q = SpillQueue::in_memory(SpillConfig {
            max_bytes: 1_000,
            ..SpillConfig::default()
        });
        for i in 0..3 {
            assert!(q.push(frame(i, 300)).is_empty());
        }
        let shed = q.push(frame(3, 300));
        assert_eq!(shed.len(), 1, "oldest shed to fit 1000 bytes");
        assert_eq!(shed[0].seq, 0);
        let shed = q.push(frame(4, 300));
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].seq, 1);
        assert_eq!(q.stats().shed_frames, 2);
        assert_eq!(q.stats().shed_bytes, 600);
        assert_eq!(q.len(), 3);
        // An oversized single frame is never shed to nothing: the
        // newest frame always stays queued.
        let shed = q.push(frame(5, 5_000));
        assert_eq!(q.len(), 1);
        assert_eq!(shed.len(), 3);
    }

    #[test]
    fn bound_enforced_on_disk_queue_deletes_acked_segments() {
        let dir = tmpdir("bound");
        let cfg = SpillConfig {
            max_bytes: 2_000,
            segment_bytes: 500,
            fsync: FsyncPolicy::Never,
        };
        let mut q = SpillQueue::open(&dir, cfg.clone()).unwrap();
        for i in 0..12 {
            q.push(frame(i, 200));
        }
        assert!(q.pending_bytes() <= 2_000);
        assert!(q.stats().shed_frames > 0);
        // Ack everything; all but the active segment file disappear.
        q.ack_through(q.next_seq());
        assert!(q.is_empty());
        let segs = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".seg")
            })
            .count();
        assert_eq!(segs, 0, "fully acked segments are deleted");
        // Floor survives reopen: nothing comes back.
        drop(q);
        let q = SpillQueue::open(&dir, cfg).unwrap();
        assert!(q.is_empty());
        assert_eq!(q.next_seq(), 12);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_rotation_and_multi_segment_recovery() {
        let dir = tmpdir("rotate");
        let cfg = SpillConfig {
            max_bytes: 0,
            segment_bytes: 300,
            fsync: FsyncPolicy::Always,
        };
        {
            let mut q = SpillQueue::open(&dir, cfg.clone()).unwrap();
            for i in 0..8 {
                q.push(frame(i, 100));
            }
            assert!(q.segments.len() > 1, "rotation produced segments");
        }
        let q = SpillQueue::open(&dir, cfg).unwrap();
        assert_eq!(q.len(), 8);
        let seqs: Vec<u64> = q.pending().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replayed_acks_and_backward_acks_are_no_ops() {
        let mut q = SpillQueue::in_memory(SpillConfig::default());
        for i in 0..5 {
            q.push(frame(i, 10));
        }
        q.ack_through(3);
        assert_eq!(q.len(), 2);
        q.ack_through(3);
        q.ack_through(1);
        assert_eq!(q.len(), 2, "stale acks change nothing");
        assert_eq!(q.acked_floor(), 3);
    }

    // The degrade tests force I/O errors by planting a *directory*
    // where the queue will create its next file (EISDIR) — a read-only
    // mode bit would not do: the suite may run as root, which
    // bypasses permission checks entirely.

    #[test]
    fn segment_write_failure_degrades_to_memory_not_poison() {
        let dir = tmpdir("degrade-seg");
        let mut q = SpillQueue::open(&dir, SpillConfig::default()).unwrap();
        assert!(q.disk_backed());
        // The first push would create spill-<0>.seg; make that path a
        // directory so the open fails.
        fs::create_dir_all(dir.join(format!("spill-{:020}.seg", 0))).unwrap();
        let shed = q.push(frame(0, 100));
        assert!(shed.is_empty());
        assert!(!q.disk_backed(), "disk backing dropped");
        assert_eq!(q.stats().io_errors, 1);
        assert_eq!(q.len(), 1, "the frame still queues in memory");
        // The queue keeps working memory-only; no second error count.
        q.push(frame(1, 100));
        q.ack_through(1);
        assert_eq!(q.stats().io_errors, 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pending().next().unwrap().seq, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_write_failure_degrades_to_memory_not_poison() {
        let dir = tmpdir("degrade-ledger");
        let mut q = SpillQueue::open(&dir, SpillConfig::default()).unwrap();
        q.push(frame(0, 100));
        q.push(frame(1, 100));
        assert_eq!(q.stats().io_errors, 0, "appends were healthy");
        // persist_floor creates ledger.tmp; make that path a directory.
        fs::create_dir_all(dir.join("ledger.tmp")).unwrap();
        q.ack_through(1);
        assert!(!q.disk_backed());
        assert_eq!(q.stats().io_errors, 1);
        assert_eq!(q.stats().acked_frames, 1, "the ack itself landed");
        assert_eq!(q.len(), 1);
        assert_eq!(q.acked_floor(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
