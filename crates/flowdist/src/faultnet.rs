//! Deterministic fault injection for the ingest edge: a seeded
//! generator of hostile-exporter traffic.
//!
//! [`HostileExporter`] emits the packet mix a public-facing collector
//! must survive — valid v5/v9/IPFIX interleaved with template floods
//! across many observation domains, templates with oversized field
//! counts or record widths, data sets referencing templates that were
//! never sent, truncations, bit flips, and pure garbage. The stream is
//! a pure function of the seed (splitmix64), so a fuzz failure replays
//! exactly and CI runs are reproducible.
//!
//! The generator also tracks how many *valid* flow records it put on
//! the wire ([`HostileExporter::valid_records`]) so tests can pin the
//! exact accounting identity: everything sent is either ingested or in
//! precisely one drop counter.

use flownet::{ipfix, netflow5, netflow9, FlowRecord};

/// splitmix64 — tiny, seedable, good enough to scatter faults.
#[derive(Debug, Clone)]
pub struct FaultRng(u64);

impl FaultRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng(seed)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A seeded stream of hostile exporter packets (see the module docs).
#[derive(Debug)]
pub struct HostileExporter {
    rng: FaultRng,
    sequence: u32,
    valid_records: u64,
    base_ms: u64,
}

impl HostileExporter {
    /// A hostile exporter whose stream is determined by `seed`;
    /// `base_ms` anchors the timestamps of its valid records.
    pub fn new(seed: u64, base_ms: u64) -> HostileExporter {
        HostileExporter {
            rng: FaultRng::new(seed),
            sequence: 0,
            valid_records: 0,
            base_ms,
        }
    }

    /// Valid flow records emitted so far inside well-formed packets —
    /// the "should have been ingested" side of accounting identities.
    pub fn valid_records(&self) -> u64 {
        self.valid_records
    }

    fn records(&mut self, n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|_| {
                let a = self.rng.below(200) as u8;
                let b = self.rng.below(200) as u8;
                let mut r = FlowRecord::v4(
                    [10, 0, 1, a],
                    [192, 0, 2, b],
                    1_024 + a as u16,
                    443,
                    6,
                    1 + self.rng.below(50),
                    100 + self.rng.below(5_000),
                );
                r.first_ms = self.base_ms + self.rng.below(2_000);
                r.last_ms = r.first_ms + self.rng.below(500);
                r
            })
            .collect()
    }

    fn valid_packet(&mut self) -> Vec<u8> {
        let n = 1 + self.rng.below(8) as usize;
        let records = self.records(n);
        self.sequence = self.sequence.wrapping_add(1);
        let pkt = match self.rng.below(3) {
            0 => netflow5::encode(&records, self.base_ms + 2_000, self.sequence),
            1 => netflow9::encode(&records, self.base_ms + 2_000, self.sequence, 7),
            _ => ipfix::encode_message(
                &records,
                ((self.base_ms + 2_000) / 1_000) as u32,
                self.sequence,
                7,
                true,
            ),
        };
        self.valid_records += records.len() as u64;
        pkt
    }

    /// An IPFIX message carrying `k` templates across random domains,
    /// some with hostile shapes (oversized field counts / widths).
    fn template_flood(&mut self) -> Vec<u8> {
        let domain = self.rng.below(64) as u32;
        let k = 1 + self.rng.below(8) as u16;
        let mut tset = Vec::new();
        for i in 0..k {
            let tid = 256 + self.rng.below(512) as u16 + i;
            let hostile = self.rng.below(4) == 0;
            let fields: Vec<(u16, u16)> = if hostile {
                // Far past any sane max_fields / max_record_bytes.
                (0..300u16).map(|f| (100 + f, 64)).collect()
            } else {
                vec![
                    (ipfix::ie::SOURCE_IPV4_ADDRESS, 4),
                    (ipfix::ie::DESTINATION_IPV4_ADDRESS, 4),
                ]
            };
            tset.extend_from_slice(&tid.to_be_bytes());
            tset.extend_from_slice(&(fields.len() as u16).to_be_bytes());
            for (id, len) in fields {
                tset.extend_from_slice(&id.to_be_bytes());
                tset.extend_from_slice(&len.to_be_bytes());
            }
        }
        let mut msg = Vec::new();
        msg.extend_from_slice(&ipfix::VERSION.to_be_bytes());
        msg.extend_from_slice(&((ipfix::HEADER_LEN + tset.len() + 4) as u16).to_be_bytes());
        msg.extend_from_slice(&0u32.to_be_bytes());
        msg.extend_from_slice(&self.sequence.to_be_bytes());
        msg.extend_from_slice(&domain.to_be_bytes());
        msg.extend_from_slice(&2u16.to_be_bytes());
        msg.extend_from_slice(&((tset.len() + 4) as u16).to_be_bytes());
        msg.extend_from_slice(&tset);
        msg
    }

    /// A well-formed v9 packet whose data flowset references a
    /// template id that was never announced.
    fn missing_template_data(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&netflow9::VERSION.to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes());
        out.extend_from_slice(&0u32.to_be_bytes());
        out.extend_from_slice(&(((self.base_ms + 2_000) / 1_000) as u32).to_be_bytes());
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&(self.rng.below(16) as u32).to_be_bytes());
        let tid = 500 + self.rng.below(200) as u16;
        let payload_len = 8 + self.rng.below(24) as usize;
        out.extend_from_slice(&tid.to_be_bytes());
        out.extend_from_slice(&((payload_len + 4) as u16).to_be_bytes());
        for _ in 0..payload_len {
            out.push(self.rng.next_u64() as u8);
        }
        out
    }

    /// Next packet of the hostile mix. Roughly half the stream is
    /// valid traffic; the rest exercises one attack class each.
    pub fn next_packet(&mut self) -> Vec<u8> {
        match self.rng.below(8) {
            0..=3 => self.valid_packet(),
            4 => self.template_flood(),
            5 => self.missing_template_data(),
            6 => {
                // Mutate a valid packet: bit flips and/or truncation.
                // These count as valid records only if the header
                // survives — conservatively, don't count them at all.
                let saved = self.valid_records;
                let mut pkt = self.valid_packet();
                self.valid_records = saved;
                for _ in 0..=self.rng.below(4) {
                    let i = self.rng.below(pkt.len() as u64) as usize;
                    pkt[i] ^= self.rng.next_u64() as u8;
                }
                if self.rng.below(2) == 0 {
                    pkt.truncate(self.rng.below(pkt.len() as u64 + 1) as usize);
                }
                pkt
            }
            _ => {
                let n = 1 + self.rng.below(120) as usize;
                (0..n).map(|_| self.rng.next_u64() as u8).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let mut a = HostileExporter::new(42, 1_000_000);
        let mut b = HostileExporter::new(42, 1_000_000);
        for _ in 0..200 {
            assert_eq!(a.next_packet(), b.next_packet());
        }
        assert_eq!(a.valid_records(), b.valid_records());
        let mut c = HostileExporter::new(43, 1_000_000);
        let differs = (0..50).any(|_| a.next_packet() != c.next_packet());
        assert!(differs, "different seeds diverge");
    }

    #[test]
    fn the_mix_contains_valid_and_hostile_traffic() {
        let mut gen = HostileExporter::new(7, 1_000_000);
        let mut dec = flownet::ExportDecoder::new();
        let (mut ok, mut err) = (0u32, 0u32);
        for _ in 0..300 {
            match flownet::decode_export_packet(&mut dec, &gen.next_packet()) {
                Ok(_) => ok += 1,
                Err(_) => err += 1,
            }
        }
        assert!(ok > 50, "{ok} valid");
        assert!(err > 20, "{err} hostile");
        assert!(gen.valid_records() > 0);
    }
}
