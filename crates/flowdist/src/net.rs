//! Real-socket transports.
//!
//! Two small pieces wire the system to actual networks:
//!
//! * [`NetflowListener`] — a UDP socket speaking NetFlow v5, feeding
//!   decoded records to a callback (what a daemon binds next to its
//!   routers).
//! * Length-prefixed frame I/O over TCP ([`write_frame`] /
//!   [`read_frame`]) for shipping summary frames site → collector.
//!
//! Everything here is synchronous `std::net`; the daemons are
//! single-site and the collector fan-in is modest, so threads suffice
//! (the offline dependency set has no async runtime, and none is
//! needed at this scale).

use crate::DistError;
use flownet::netflow5;
use flownet::FlowRecord;
use std::net::{SocketAddr, TcpStream, UdpSocket};

// The framing primitives moved to the shared [`crate::framing`]
// module (one copy for flowdist and flowrelay alike); re-exported
// here so existing `net::read_frame` call sites keep compiling.
pub use crate::framing::{read_frame, write_frame, FramedConn, MAX_FRAME};

/// Sends one frame to a connected TCP peer.
pub fn send_summary(stream: &mut TcpStream, frame: &[u8]) -> Result<(), DistError> {
    write_frame(stream, frame).map_err(DistError::Io)
}

/// A UDP NetFlow v5 listener.
#[derive(Debug)]
pub struct NetflowListener {
    socket: UdpSocket,
    buf: Vec<u8>,
    /// Datagrams that failed to decode (malformed/hostile input).
    pub decode_errors: u64,
    /// Records decoded so far.
    pub records: u64,
}

impl NetflowListener {
    /// Binds to `addr` (e.g. `127.0.0.1:2055`).
    pub fn bind(addr: &str) -> Result<NetflowListener, DistError> {
        let socket = UdpSocket::bind(addr).map_err(DistError::Io)?;
        Ok(NetflowListener {
            socket,
            buf: vec![0u8; 65_536],
            decode_errors: 0,
            records: 0,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> Result<SocketAddr, DistError> {
        self.socket.local_addr().map_err(DistError::Io)
    }

    /// Sets a receive timeout so [`poll_once`](Self::poll_once) can
    /// return periodically.
    pub fn set_timeout(&self, dur: std::time::Duration) -> Result<(), DistError> {
        self.socket
            .set_read_timeout(Some(dur))
            .map_err(DistError::Io)
    }

    /// Receives and decodes one datagram; `Ok(None)` on timeout.
    /// Malformed datagrams are counted, not fatal — routers reboot,
    /// attackers probe, the listener survives.
    pub fn poll_once(&mut self) -> Result<Option<Vec<FlowRecord>>, DistError> {
        match self.socket.recv_from(&mut self.buf) {
            Ok((n, _peer)) => match netflow5::decode(&self.buf[..n]) {
                Ok((_, records)) => {
                    self.records += records.len() as u64;
                    Ok(Some(records))
                }
                Err(_) => {
                    self.decode_errors += 1;
                    Ok(Some(Vec::new()))
                }
            },
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(DistError::Io(e)),
        }
    }
}

/// Sends flow records to a NetFlow v5 collector address in ≤ 30-record
/// packets; returns the number of datagrams sent.
pub fn export_netflow(
    socket: &UdpSocket,
    to: SocketAddr,
    records: &[FlowRecord],
    base_ms: u64,
) -> Result<usize, DistError> {
    let mut sent = 0usize;
    let mut seq = 0u32;
    for chunk in records.chunks(netflow5::MAX_RECORDS) {
        let pkt = netflow5::encode(chunk, base_ms, seq);
        socket.send_to(&pkt, to).map_err(DistError::Io)?;
        seq = seq.wrapping_add(chunk.len() as u32);
        sent += 1;
    }
    Ok(sent)
}

/// A UDP IPFIX listener — the second export protocol of "APIs such as
/// NetFlow" (and the one that carries IPv6 flows).
#[derive(Debug)]
pub struct IpfixListener {
    socket: UdpSocket,
    buf: Vec<u8>,
    decoder: flownet::ipfix::Decoder,
    /// Messages that failed structural validation.
    pub decode_errors: u64,
    /// Flow records decoded so far.
    pub records: u64,
    /// Data records skipped (e.g. data before its template).
    pub skipped: u64,
}

impl IpfixListener {
    /// Binds to `addr` (e.g. `127.0.0.1:4739`, the IANA IPFIX port).
    pub fn bind(addr: &str) -> Result<IpfixListener, DistError> {
        let socket = UdpSocket::bind(addr).map_err(DistError::Io)?;
        Ok(IpfixListener {
            socket,
            buf: vec![0u8; 65_536],
            decoder: flownet::ipfix::Decoder::new(),
            decode_errors: 0,
            records: 0,
            skipped: 0,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> Result<SocketAddr, DistError> {
        self.socket.local_addr().map_err(DistError::Io)
    }

    /// Sets a receive timeout so [`poll_once`](Self::poll_once) can
    /// return periodically.
    pub fn set_timeout(&self, dur: std::time::Duration) -> Result<(), DistError> {
        self.socket
            .set_read_timeout(Some(dur))
            .map_err(DistError::Io)
    }

    /// Receives and decodes one message; `Ok(None)` on timeout.
    /// Malformed datagrams are counted, not fatal; templates persist
    /// across messages in the listener's decoder.
    pub fn poll_once(&mut self) -> Result<Option<Vec<FlowRecord>>, DistError> {
        match self.socket.recv_from(&mut self.buf) {
            Ok((n, _peer)) => match self.decoder.decode_message(&self.buf[..n]) {
                Ok((records, info)) => {
                    self.records += records.len() as u64;
                    self.skipped += info.records_skipped as u64;
                    Ok(Some(records))
                }
                Err(_) => {
                    self.decode_errors += 1;
                    Ok(Some(Vec::new()))
                }
            },
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(DistError::Io(e)),
        }
    }
}

/// Sends flow records to an IPFIX collector, templates first, in
/// ≤ `batch` record messages; returns the number of datagrams sent.
pub fn export_ipfix(
    socket: &UdpSocket,
    to: SocketAddr,
    records: &[FlowRecord],
    export_time: u32,
    domain: u32,
) -> Result<usize, DistError> {
    let mut sent = 0usize;
    let mut seq = 0u32;
    let batch = 200usize;
    let mut first = true;
    for chunk in records.chunks(batch.max(1)) {
        let msg = flownet::ipfix::encode_message(chunk, export_time, seq, domain, first);
        first = false;
        socket.send_to(&msg, to).map_err(DistError::Io)?;
        seq = seq.wrapping_add(chunk.len() as u32);
        sent += 1;
    }
    // An empty record set still announces templates once.
    if records.is_empty() {
        let msg = flownet::ipfix::encode_message(&[], export_time, seq, domain, true);
        socket.send_to(&msg, to).map_err(DistError::Io)?;
        sent += 1;
    }
    Ok(sent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn frame_roundtrip_over_buffers() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected_both_ways() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        assert!(read_frame(&buf[..]).is_err());
        // Truncated body is an error, not None.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_frame(&buf[..]).is_err());
    }

    #[test]
    fn netflow_over_loopback_udp() {
        let mut listener = NetflowListener::bind("127.0.0.1:0").unwrap();
        listener.set_timeout(Duration::from_millis(500)).unwrap();
        let to = listener.local_addr().unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();

        let records: Vec<FlowRecord> = (0..75)
            .map(|i| {
                let mut r = FlowRecord::v4(
                    [10, 0, 0, (i % 250) as u8],
                    [192, 0, 2, 1],
                    1000 + i as u16,
                    443,
                    6,
                    i as u64 + 1,
                    500,
                );
                r.first_ms = 1_000;
                r.last_ms = 2_000;
                r
            })
            .collect();
        let datagrams = export_netflow(&sender, to, &records, 10_000).unwrap();
        assert_eq!(datagrams, 3); // 30 + 30 + 15

        let mut got = Vec::new();
        while got.len() < 75 {
            match listener.poll_once().unwrap() {
                Some(batch) => got.extend(batch),
                None => panic!("timed out with {} records", got.len()),
            }
        }
        assert_eq!(got.len(), 75);
        assert_eq!(listener.records, 75);
        assert_eq!(listener.decode_errors, 0);
        // Spot-check one record surviving the wire.
        assert!(got.iter().any(|r| r.sport == 1000 && r.packets == 1));
    }

    #[test]
    fn hostile_datagrams_are_survived() {
        let mut listener = NetflowListener::bind("127.0.0.1:0").unwrap();
        listener.set_timeout(Duration::from_millis(300)).unwrap();
        let to = listener.local_addr().unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        sender.send_to(b"not netflow at all", to).unwrap();
        let got = listener.poll_once().unwrap();
        assert_eq!(got, Some(Vec::new()));
        assert_eq!(listener.decode_errors, 1);
    }
}

#[cfg(test)]
mod ipfix_tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ipfix_over_loopback_udp_with_v6_records() {
        let mut listener = IpfixListener::bind("127.0.0.1:0").unwrap();
        listener.set_timeout(Duration::from_millis(500)).unwrap();
        let to = listener.local_addr().unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();

        let mut records: Vec<FlowRecord> = (0..300)
            .map(|i| {
                FlowRecord::v4(
                    [10, 0, (i / 250) as u8, (i % 250) as u8],
                    [192, 0, 2, 1],
                    1000 + i as u16,
                    443,
                    6,
                    1 + i as u64,
                    100,
                )
            })
            .collect();
        records.push(FlowRecord {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            sport: 53,
            dport: 53,
            proto: 17,
            packets: 9,
            bytes: 900,
            first_ms: 1,
            last_ms: 2,
        });
        let n = export_ipfix(&sender, to, &records, 1_700_000_000, 7).unwrap();
        assert!(n >= 2, "batched into {n} datagrams");

        let mut got = Vec::new();
        while got.len() < records.len() {
            match listener.poll_once().unwrap() {
                Some(batch) => got.extend(batch),
                None => panic!("timed out with {} of {} records", got.len(), records.len()),
            }
        }
        assert_eq!(got.len(), records.len());
        assert_eq!(listener.decode_errors, 0);
        assert!(
            got.iter().any(|r| r.proto == 17 && r.packets == 9),
            "v6 record arrived"
        );
    }

    #[test]
    fn ipfix_listener_survives_garbage() {
        let mut listener = IpfixListener::bind("127.0.0.1:0").unwrap();
        listener.set_timeout(Duration::from_millis(300)).unwrap();
        let to = listener.local_addr().unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        sender.send_to(&[0xde, 0xad, 0xbe, 0xef], to).unwrap();
        assert_eq!(listener.poll_once().unwrap(), Some(Vec::new()));
        assert_eq!(listener.decode_errors, 1);
    }

    #[test]
    fn ipfix_empty_export_still_sends_templates() {
        let mut listener = IpfixListener::bind("127.0.0.1:0").unwrap();
        listener.set_timeout(Duration::from_millis(300)).unwrap();
        let to = listener.local_addr().unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        let n = export_ipfix(&sender, to, &[], 0, 3).unwrap();
        assert_eq!(n, 1);
        assert_eq!(listener.poll_once().unwrap(), Some(Vec::new()));
        assert_eq!(listener.decode_errors, 0);
    }
}

/// Reads length-prefixed summary frames from one TCP connection until
/// EOF, applying each to the collector. Returns (applied, rejected) —
/// a malformed frame is counted and skipped, not fatal, so one bad
/// exporter cannot take the collector down.
pub fn receive_summaries(
    stream: &mut std::net::TcpStream,
    collector: &mut crate::Collector,
) -> Result<(usize, usize), DistError> {
    let (mut applied, mut rejected) = (0usize, 0usize);
    let owned = stream.try_clone().map_err(DistError::Io)?;
    crate::framing::serve_framed(owned, |frame| {
        match collector.apply_bytes(&frame) {
            Ok(()) => applied += 1,
            Err(_) => rejected += 1,
        }
        None
    })
    .map_err(DistError::Io)?;
    Ok((applied, rejected))
}

#[cfg(test)]
mod tcp_tests {
    use super::*;
    use crate::daemon::{DaemonConfig, SiteDaemon, TransferMode};
    use crate::Collector;
    use flowkey::Schema;
    use flowtree_core::Config;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn summaries_over_tcp_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Site side: produce summaries and stream them over TCP.
        let sender = std::thread::spawn(move || {
            let mut cfg = DaemonConfig::new(7);
            cfg.window_ms = 1_000;
            cfg.schema = Schema::five_feature();
            cfg.tree = Config::with_budget(512);
            cfg.transfer = TransferMode::Full;
            let mut d = SiteDaemon::new(cfg);
            let mut frames = Vec::new();
            for w in 0..4u64 {
                for h in 0..5u8 {
                    let mut r =
                        flownet::FlowRecord::v4([10, 7, 0, h], [192, 0, 2, 1], 999, 443, 6, 2, 200);
                    r.first_ms = w * 1_000 + 50;
                    r.last_ms = r.first_ms;
                    frames.extend(d.ingest_record(&r).into_iter().map(|s| s.encode()));
                }
            }
            frames.extend(d.flush().into_iter().map(|s| s.encode()));
            let mut stream = TcpStream::connect(addr).unwrap();
            let n = frames.len();
            for f in frames {
                send_summary(&mut stream, &f).unwrap();
            }
            n
        });

        // Collector side: accept one connection, drain it.
        let (mut conn, _) = listener.accept().unwrap();
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(512));
        let (applied, rejected) = receive_summaries(&mut conn, &mut collector).unwrap();
        let sent = sender.join().unwrap();
        assert_eq!(applied, sent);
        assert_eq!(rejected, 0);
        assert_eq!(collector.stored_windows(), 4);
        assert_eq!(collector.merged(None, 0, u64::MAX).total().packets, 40);
    }

    #[test]
    fn corrupt_tcp_frames_are_skipped() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            send_summary(&mut stream, b"this is not a summary frame").unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(64));
        let (applied, rejected) = receive_summaries(&mut conn, &mut collector).unwrap();
        sender.join().unwrap();
        assert_eq!((applied, rejected), (0, 1));
        assert_eq!(collector.stored_windows(), 0);
    }
}

/// A UDP NetFlow v9 listener (template-based, per-source caches).
#[derive(Debug)]
pub struct Netflow9Listener {
    socket: UdpSocket,
    buf: Vec<u8>,
    decoder: flownet::netflow9::Decoder,
    /// Packets that failed structural validation.
    pub decode_errors: u64,
    /// Flow records decoded so far.
    pub records: u64,
    /// Records skipped (data before templates).
    pub skipped: u64,
}

impl Netflow9Listener {
    /// Binds to `addr`.
    pub fn bind(addr: &str) -> Result<Netflow9Listener, DistError> {
        let socket = UdpSocket::bind(addr).map_err(DistError::Io)?;
        Ok(Netflow9Listener {
            socket,
            buf: vec![0u8; 65_536],
            decoder: flownet::netflow9::Decoder::new(),
            decode_errors: 0,
            records: 0,
            skipped: 0,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> Result<SocketAddr, DistError> {
        self.socket.local_addr().map_err(DistError::Io)
    }

    /// Sets a receive timeout so [`poll_once`](Self::poll_once) can
    /// return periodically.
    pub fn set_timeout(&self, dur: std::time::Duration) -> Result<(), DistError> {
        self.socket
            .set_read_timeout(Some(dur))
            .map_err(DistError::Io)
    }

    /// Receives and decodes one packet; `Ok(None)` on timeout.
    pub fn poll_once(&mut self) -> Result<Option<Vec<FlowRecord>>, DistError> {
        match self.socket.recv_from(&mut self.buf) {
            Ok((n, _peer)) => match self.decoder.decode(&self.buf[..n]) {
                Ok((records, info)) => {
                    self.records += records.len() as u64;
                    self.skipped += info.records_skipped as u64;
                    Ok(Some(records))
                }
                Err(_) => {
                    self.decode_errors += 1;
                    Ok(Some(Vec::new()))
                }
            },
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(DistError::Io(e)),
        }
    }
}

#[cfg(test)]
mod netflow9_tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn netflow9_over_loopback_udp() {
        let mut listener = Netflow9Listener::bind("127.0.0.1:0").unwrap();
        listener.set_timeout(Duration::from_millis(500)).unwrap();
        let to = listener.local_addr().unwrap();
        let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
        let records: Vec<FlowRecord> = (0..12)
            .map(|i| {
                let mut r = FlowRecord::v4(
                    [10, 0, 0, i as u8],
                    [192, 0, 2, 1],
                    2000 + i,
                    53,
                    17,
                    3,
                    300,
                );
                r.first_ms = 1_700_000_000_000;
                r.last_ms = r.first_ms + 10;
                r
            })
            .collect();
        let pkt = flownet::netflow9::encode(&records, 1_700_000_001_000, 1, 4);
        sender.send_to(&pkt, to).unwrap();
        let got = listener.poll_once().unwrap().unwrap();
        assert_eq!(got.len(), 12);
        assert_eq!(listener.decode_errors, 0);
        assert!(got.iter().all(|r| r.proto == 17 && r.packets == 3));
    }
}
