//! End-to-end multi-site simulation.
//!
//! Drives the whole Fig. 1 pipeline on one machine: packets are routed
//! to per-site exporters (flow caches), whose records feed per-site
//! [`SiteDaemon`]s, whose encoded summaries feed the [`Collector`] —
//! either single-threaded (deterministic, for tests and benches) or
//! with one OS thread per site connected by crossbeam channels (the
//! deployment shape the paper envisions).

use crate::collector::Collector;
use crate::daemon::{DaemonConfig, DaemonStats, SiteDaemon, TransferMode};
use crate::DistError;
use crossbeam::channel;
use flowkey::Schema;
use flownet::{FlowCache, FlowCacheConfig, PacketMeta};
use flowtree_core::{fxhash, Config};

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of monitoring sites.
    pub sites: u16,
    /// Window span (ms).
    pub window_ms: u64,
    /// Flow schema at every site.
    pub schema: Schema,
    /// Tree configuration at every site.
    pub tree: Config,
    /// Transfer policy.
    pub transfer: TransferMode,
    /// Exporter flow-cache tuning.
    pub cache: FlowCacheConfig,
}

impl SimConfig {
    /// Five sites, 5-minute windows — the Fig. 1 illustration.
    pub fn fig1() -> SimConfig {
        SimConfig {
            sites: 5,
            window_ms: 300_000,
            schema: Schema::five_feature(),
            tree: Config::paper(),
            transfer: TransferMode::Full,
            cache: FlowCacheConfig::default(),
        }
    }
}

/// What a finished simulation hands back.
#[derive(Debug)]
pub struct SimReport {
    /// The collector with every reconstructed window.
    pub collector: Collector,
    /// Per-site daemon counters.
    pub daemon_stats: Vec<DaemonStats>,
    /// Packets routed per site.
    pub packets_per_site: Vec<u64>,
}

impl SimReport {
    /// Raw export volume across sites (NetFlow bytes).
    pub fn raw_bytes(&self) -> u64 {
        self.daemon_stats.iter().map(|s| s.raw_bytes).sum()
    }

    /// Summary transfer volume across sites.
    pub fn summary_bytes(&self) -> u64 {
        self.daemon_stats.iter().map(|s| s.summary_bytes).sum()
    }

    /// Transfer reduction vs raw flow export (the paper's headline
    /// storage/transfer claim, as a fraction in [0, 1]).
    pub fn transfer_reduction(&self) -> f64 {
        let raw = self.raw_bytes() as f64;
        if raw == 0.0 {
            return 0.0;
        }
        1.0 - self.summary_bytes() as f64 / raw
    }
}

/// Stable packet→site routing (by source address, like ingress routers).
pub fn route(meta: &PacketMeta, sites: u16) -> u16 {
    (fxhash(&meta.src) % sites.max(1) as u64) as u16
}

/// The site half of the pipeline, detached from any collector: every
/// site's emitted [`crate::Summary`] stream in emission order, plus the
/// counters [`run`] reports. This is the seam a hierarchy layer plugs
/// into — the same per-site streams can feed one flat collector, a
/// tier of aggregation relays, or both (the `flowrelay` equivalence
/// tests do exactly that).
#[derive(Debug)]
pub struct SiteRun {
    /// Per site: the summaries it emitted, oldest window first.
    pub summaries: Vec<Vec<crate::Summary>>,
    /// Per-site daemon counters.
    pub daemon_stats: Vec<DaemonStats>,
    /// Packets routed per site.
    pub packets_per_site: Vec<u64>,
}

/// The single-threaded driver both [`run`] and [`run_sites`] share:
/// routes every packet through its site's flow cache and daemon, and
/// hands each emitted summary to `sink` **as it is produced** — the
/// flat pipeline streams into its collector with O(open windows)
/// memory, the hierarchy seam collects per-site streams.
fn drive<I, F>(
    cfg: SimConfig,
    trace: I,
    mut sink: F,
) -> Result<(Vec<DaemonStats>, Vec<u64>), DistError>
where
    I: IntoIterator<Item = PacketMeta>,
    F: FnMut(u16, crate::Summary) -> Result<(), DistError>,
{
    let sites = cfg.sites.max(1);
    let mut caches: Vec<FlowCache> = (0..sites).map(|_| FlowCache::new(cfg.cache)).collect();
    let mut daemons: Vec<SiteDaemon> = (0..sites)
        .map(|site| {
            SiteDaemon::new(DaemonConfig {
                site,
                window_ms: cfg.window_ms,
                schema: cfg.schema,
                tree: cfg.tree,
                transfer: cfg.transfer,
                open_windows: 2,
                shards: 1,
                pin_cores: false,
            })
        })
        .collect();
    let mut packets_per_site = vec![0u64; sites as usize];

    for meta in trace {
        let site = route(&meta, sites) as usize;
        packets_per_site[site] += 1;
        for record in caches[site].observe(&meta) {
            for summary in daemons[site].ingest_record(&record) {
                sink(site as u16, summary)?;
            }
        }
    }
    for site in 0..sites as usize {
        for record in caches[site].drain() {
            for summary in daemons[site].ingest_record(&record) {
                sink(site as u16, summary)?;
            }
        }
        for summary in daemons[site].flush() {
            sink(site as u16, summary)?;
        }
    }
    Ok((
        daemons.iter().map(|d| *d.stats()).collect(),
        packets_per_site,
    ))
}

/// Drives the trace through per-site flow caches and daemons,
/// collecting each site's summary stream instead of applying it
/// anywhere (deterministic; [`run`] is the same driver streaming into
/// a flat collector).
pub fn run_sites<I>(cfg: SimConfig, trace: I) -> SiteRun
where
    I: IntoIterator<Item = PacketMeta>,
{
    let sites = cfg.sites.max(1);
    let mut summaries: Vec<Vec<crate::Summary>> = (0..sites).map(|_| Vec::new()).collect();
    let (daemon_stats, packets_per_site) = drive(cfg, trace, |site, summary| {
        summaries[site as usize].push(summary);
        Ok(())
    })
    .expect("collecting sink never fails");
    SiteRun {
        summaries,
        daemon_stats,
        packets_per_site,
    }
}

/// Runs the pipeline single-threaded (deterministic). Summaries
/// stream into the collector as windows close — peak memory stays at
/// O(open windows), not O(trace).
pub fn run<I>(cfg: SimConfig, trace: I) -> Result<SimReport, DistError>
where
    I: IntoIterator<Item = PacketMeta>,
{
    let mut collector = Collector::new(cfg.schema, cfg.tree);
    let (daemon_stats, packets_per_site) = drive(cfg, trace, |_site, summary| {
        collector.apply_bytes(&summary.encode())
    })?;
    Ok(SimReport {
        daemon_stats,
        collector,
        packets_per_site,
    })
}

/// Runs the pipeline with one thread per site plus a collector thread,
/// wired with bounded crossbeam channels — same results as [`run`],
/// different execution shape.
pub fn run_threaded<I>(cfg: SimConfig, trace: I) -> Result<SimReport, DistError>
where
    I: IntoIterator<Item = PacketMeta>,
{
    let sites = cfg.sites.max(1) as usize;
    let (summary_tx, summary_rx) = channel::bounded::<Vec<u8>>(1024);
    let mut packet_txs = Vec::with_capacity(sites);
    let mut packets_per_site = vec![0u64; sites];

    std::thread::scope(|scope| {
        let mut site_handles = Vec::with_capacity(sites);
        for site in 0..sites {
            let (tx, rx) = channel::bounded::<PacketMeta>(4096);
            packet_txs.push(tx);
            let summary_tx = summary_tx.clone();
            site_handles.push(scope.spawn(move || {
                let mut cache = FlowCache::new(cfg.cache);
                let mut daemon = SiteDaemon::new(DaemonConfig {
                    site: site as u16,
                    window_ms: cfg.window_ms,
                    schema: cfg.schema,
                    tree: cfg.tree,
                    transfer: cfg.transfer,
                    open_windows: 2,
                    shards: 1,
                    pin_cores: false,
                });
                for meta in rx {
                    for record in cache.observe(&meta) {
                        for summary in daemon.ingest_record(&record) {
                            summary_tx.send(summary.encode()).expect("collector alive");
                        }
                    }
                }
                for record in cache.drain() {
                    for summary in daemon.ingest_record(&record) {
                        summary_tx.send(summary.encode()).expect("collector alive");
                    }
                }
                for summary in daemon.flush() {
                    summary_tx.send(summary.encode()).expect("collector alive");
                }
                *daemon.stats()
            }));
        }
        drop(summary_tx);

        let collector_handle = scope.spawn(move || {
            let mut collector = Collector::new(cfg.schema, cfg.tree);
            let mut first_err = None;
            for frame in summary_rx {
                if let Err(e) = collector.apply_bytes(&frame) {
                    first_err.get_or_insert(e);
                }
            }
            (collector, first_err)
        });

        for meta in trace {
            let site = route(&meta, sites as u16) as usize;
            packets_per_site[site] += 1;
            packet_txs[site].send(meta).expect("site thread alive");
        }
        drop(packet_txs);

        let daemon_stats: Vec<DaemonStats> = site_handles
            .into_iter()
            .map(|h| h.join().expect("site thread panicked"))
            .collect();
        let (collector, first_err) = collector_handle.join().expect("collector panicked");
        match first_err {
            Some(e) => Err(e),
            None => Ok(SimReport {
                collector,
                daemon_stats,
                packets_per_site,
            }),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowtrace::{profile, TraceGen};

    fn small_cfg() -> SimConfig {
        SimConfig {
            sites: 4,
            window_ms: 1_000,
            schema: Schema::five_feature(),
            tree: Config::with_budget(2_048),
            transfer: TransferMode::Full,
            cache: FlowCacheConfig {
                idle_timeout_ms: 500,
                active_timeout_ms: 2_000,
                max_entries: 10_000,
            },
        }
    }

    fn small_trace() -> Vec<flownet::PacketMeta> {
        let mut cfg = profile::backbone(11);
        cfg.packets = 30_000;
        cfg.flows = 3_000;
        cfg.mean_pps = 5_000.0; // ≈ 6 s of traffic → several windows
        TraceGen::new(cfg).collect()
    }

    #[test]
    fn single_threaded_pipeline_conserves_packets() {
        let trace = small_trace();
        let report = run(small_cfg(), trace.iter().copied()).unwrap();
        let merged = report.collector.merged(None, 0, u64::MAX);
        assert_eq!(merged.total().packets, 30_000);
        assert_eq!(report.packets_per_site.iter().sum::<u64>(), 30_000);
        assert!(report.collector.stored_windows() >= 4 * 3);
        assert!(report.transfer_reduction() > 0.0);
    }

    #[test]
    fn threaded_pipeline_matches_single_threaded() {
        let trace = small_trace();
        let a = run(small_cfg(), trace.iter().copied()).unwrap();
        let b = run_threaded(small_cfg(), trace.iter().copied()).unwrap();
        assert_eq!(
            a.collector.merged(None, 0, u64::MAX).total(),
            b.collector.merged(None, 0, u64::MAX).total()
        );
        assert_eq!(a.collector.stored_windows(), b.collector.stored_windows());
        assert_eq!(a.raw_bytes(), b.raw_bytes());
    }

    /// A perfectly periodic trace: every window carries the same flows
    /// with the same counts, so consecutive windows are identical.
    fn periodic_trace(windows: u64, flows: u16) -> Vec<flownet::PacketMeta> {
        let mut out = Vec::new();
        for w in 0..windows {
            for f in 0..flows {
                out.push(flownet::PacketMeta {
                    ts_micros: (w * 1_000 + (f as u64 * 3) % 900) * 1_000,
                    src: std::net::IpAddr::V4([10, (f >> 8) as u8, f as u8, 1].into()),
                    dst: std::net::IpAddr::V4([192, 0, 2, (f % 100) as u8].into()),
                    sport: 1024 + f,
                    dport: 443,
                    proto: 6,
                    wire_len: 500,
                });
            }
        }
        out
    }

    #[test]
    fn delta_mode_reduces_transfer_on_stable_traffic() {
        // Identical consecutive windows: deltas are near-empty while
        // fulls repeat the whole tree — the regime the paper's
        // diff-transfer optimization targets.
        let mut cfg = small_cfg();
        cfg.cache = FlowCacheConfig {
            idle_timeout_ms: 50, // flush flows inside their window
            active_timeout_ms: 400,
            max_entries: 100_000,
        };
        let trace = periodic_trace(10, 400);
        let full = run(cfg, trace.iter().copied()).unwrap();
        let mut dcfg = cfg;
        dcfg.transfer = TransferMode::Delta;
        let delta = run(dcfg, trace.iter().copied()).unwrap();
        assert_eq!(
            full.collector.merged(None, 0, u64::MAX).total(),
            delta.collector.merged(None, 0, u64::MAX).total(),
            "delta reconstruction must not lose mass"
        );
        assert!(
            (delta.summary_bytes() as f64) < full.summary_bytes() as f64 * 0.8,
            "delta {} vs full {}",
            delta.summary_bytes(),
            full.summary_bytes()
        );
    }

    #[test]
    fn routing_is_stable_and_balanced() {
        let trace = small_trace();
        let sites = 4u16;
        for meta in trace.iter().take(100) {
            assert_eq!(route(meta, sites), route(meta, sites));
        }
        let report = run(small_cfg(), trace.iter().copied()).unwrap();
        let max = *report.packets_per_site.iter().max().unwrap() as f64;
        let min = *report.packets_per_site.iter().min().unwrap() as f64;
        assert!(min > 0.0, "every site sees traffic");
        assert!(
            max / min < 20.0,
            "gross imbalance: {:?}",
            report.packets_per_site
        );
    }
}
