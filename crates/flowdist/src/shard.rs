//! Sharded parallel ingest.
//!
//! Flowtrees are mergeable (paper §2): summaries built from disjoint
//! slices of a trace merge node-wise into exactly the summary of the
//! whole trace, modulo budget-induced folding. [`ShardedTree`] exploits
//! that for parallelism the same way Flowyager scales the structure
//! network-wide — fan updates across `N` per-core [`FlowTree`]s keyed
//! by the flow-key hash, and fold the shards with the `merge` operator
//! when a summary is needed. The shard router reuses the key's
//! [`flowkey::key_hash`] that the tree index needs anyway, so sharding
//! adds zero extra hashing to the hot path.
//!
//! The node budget is split evenly across shards, so a folded
//! `ShardedTree` obeys the same budget (and byte size on the wire) as a
//! single tree: the fold target is created with the full, unsplit
//! budget and merging compacts to it. Because the router keys shards by
//! flow-key hash, each key lands in exactly one shard; budget pressure
//! per shard matches a `budget / N` tree over `1 / N` of the key space,
//! which keeps per-key error comparable to the unsharded tree.

use flowkey::{key_hash, FlowKey, Schema};
use flowtree_core::{Config, FlowTree, Popularity, Stats};

/// A Flowtree fanned out over `N` independent shards for parallel
/// ingest, folded back into one [`FlowTree`] via the paper's `merge`.
#[derive(Debug, Clone)]
pub struct ShardedTree {
    shards: Vec<FlowTree>,
    schema: Schema,
    /// The full (unsplit) configuration, used when folding.
    cfg: Config,
}

impl ShardedTree {
    /// Creates `shards` trees sharing `cfg.node_budget` evenly
    /// (`shards` is clamped to ≥ 1; each shard keeps at least
    /// [`Config::MIN_BUDGET`]).
    pub fn new(schema: Schema, cfg: Config, shards: usize) -> ShardedTree {
        let n = shards.max(1);
        let mut per_shard = cfg;
        per_shard.node_budget = (cfg.node_budget / n).max(Config::MIN_BUDGET);
        ShardedTree {
            shards: (0..n).map(|_| FlowTree::new(schema, per_shard)).collect(),
            schema,
            cfg,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The flow schema shared by every shard.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Which shard a key hash routes to (multiply-shift, no modulo).
    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        (((hash as u128) * (self.shards.len() as u128)) >> 64) as usize
    }

    /// Records mass for `key` in its shard. The key is canonicalized
    /// and hashed exactly once; the hash routes the shard *and* serves
    /// as the tree index hash.
    pub fn insert(&mut self, key: &FlowKey, pop: Popularity) {
        let key = self.schema.canonicalize(key);
        let hash = key_hash(&key);
        let s = self.shard_of(hash);
        self.shards[s].insert_prehashed(key, hash, pop);
    }

    /// Canonicalizes, hashes, and buckets a batch by shard.
    fn bucketize(&self, batch: &[(FlowKey, Popularity)]) -> Vec<Vec<(u64, FlowKey, Popularity)>> {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<(u64, FlowKey, Popularity)>> = (0..n)
            .map(|_| Vec::with_capacity(batch.len() / n + 1))
            .collect();
        for (k, p) in batch {
            let k = self.schema.canonicalize(k);
            let h = key_hash(&k);
            buckets[self.shard_of(h)].push((h, k, *p));
        }
        buckets
    }

    /// Sequential batch ingest: one canonicalize + hash per key, one
    /// budget check per shard at the end.
    pub fn insert_batch(&mut self, batch: &[(FlowKey, Popularity)]) {
        let mut buckets = self.bucketize(batch);
        for (tree, bucket) in self.shards.iter_mut().zip(buckets.iter_mut()) {
            if !bucket.is_empty() {
                tree.insert_batch_prehashed(bucket);
            }
        }
    }

    /// Parallel batch ingest: buckets the batch by shard, then runs one
    /// scoped OS thread per non-empty shard. Shards are fully
    /// independent trees, so this is lock-free data parallelism; on a
    /// single-core host it degrades to roughly [`Self::insert_batch`]
    /// plus thread spawn overhead.
    pub fn par_insert_batch(&mut self, batch: &[(FlowKey, Popularity)]) {
        if self.shards.len() == 1 {
            return self.insert_batch(batch);
        }
        let mut buckets = self.bucketize(batch);
        std::thread::scope(|scope| {
            for (tree, bucket) in self.shards.iter_mut().zip(buckets.iter_mut()) {
                if !bucket.is_empty() {
                    scope.spawn(move || tree.insert_batch_prehashed(bucket));
                }
            }
        });
    }

    /// Total mass across all shards.
    pub fn total(&self) -> Popularity {
        self.shards
            .iter()
            .fold(Popularity::ZERO, |acc, t| acc + t.total())
    }

    /// Live nodes across all shards (roots included per shard).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|t| t.len()).sum()
    }

    /// Whether no shard holds anything beyond its root.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|t| t.is_empty())
    }

    /// Summed work counters of all shards.
    pub fn stats(&self) -> Stats {
        let mut out = Stats::default();
        for t in &self.shards {
            let s = t.stats();
            out.inserts += s.inserts;
            out.hits += s.hits;
            out.misses += s.misses;
            out.chain_steps += s.chain_steps;
            out.descent_hops += s.descent_hops;
            out.joins_created += s.joins_created;
            out.compactions += s.compactions;
            out.evictions += s.evictions;
            out.contractions += s.contractions;
        }
        out
    }

    /// Read access to one shard (bench/diagnostic use).
    pub fn shard(&self, i: usize) -> &FlowTree {
        &self.shards[i]
    }

    /// Folds every shard into a single tree with the full node budget
    /// via the paper's `merge` operator, leaving the shards untouched.
    /// The result is shape-identical to a tree built unsharded: same
    /// schema, same budget, same wire encoding rules.
    pub fn fold(&self) -> FlowTree {
        let mut out = FlowTree::new(self.schema, self.cfg);
        for t in &self.shards {
            out.merge(t).expect("shards share one schema");
        }
        out
    }

    /// Like [`Self::fold`], but consumes the shards; the single-shard
    /// case hands back its tree without copying.
    pub fn into_tree(mut self) -> FlowTree {
        if self.shards.len() == 1 {
            return self.shards.pop().expect("one shard");
        }
        self.fold()
    }

    /// Validates every shard's structural invariants. (No per-key
    /// routing assertion: shards legitimately hold keys whose own hash
    /// routes elsewhere — join nodes and compaction fold-ups are
    /// *ancestors* of the routed keys, created shard-locally.)
    pub fn validate(&self) {
        for t in &self.shards {
            t.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> FlowKey {
        s.parse().unwrap()
    }

    fn mixed_batch(n: usize) -> Vec<(FlowKey, Popularity)> {
        (0..n)
            .map(|i| {
                let k = key(&format!(
                    "src=10.{}.{}.{}/32 dst=192.0.2.{}/32 sport={} dport=443 proto=tcp",
                    i % 3,
                    (i / 3) % 6,
                    i % 251,
                    i % 2,
                    40_000 + (i % 20)
                ));
                (k, Popularity::packet(100 + (i as u32 % 400)))
            })
            .collect()
    }

    #[test]
    fn sharded_total_matches_single_tree() {
        let batch = mixed_batch(2_000);
        let schema = Schema::five_feature();
        let mut single = FlowTree::new(schema, Config::with_budget(4_096));
        for (k, p) in &batch {
            single.insert(k, *p);
        }
        for shards in [1usize, 2, 4, 8] {
            let mut st = ShardedTree::new(schema, Config::with_budget(4_096), shards);
            st.par_insert_batch(&batch);
            st.validate();
            assert_eq!(st.total(), single.total(), "{shards} shards conserve mass");
            let folded = st.fold();
            folded.validate();
            assert_eq!(folded.total(), single.total());
        }
    }

    #[test]
    fn sequential_and_parallel_ingest_agree_exactly() {
        let batch = mixed_batch(1_500);
        let schema = Schema::five_feature();
        let mut a = ShardedTree::new(schema, Config::with_budget(2_048), 4);
        let mut b = ShardedTree::new(schema, Config::with_budget(2_048), 4);
        a.insert_batch(&batch);
        b.par_insert_batch(&batch);
        let (fa, fb) = (a.fold(), b.fold());
        assert_eq!(fa.total(), fb.total());
        assert_eq!(fa.len(), fb.len());
        let mut ma: Vec<_> = fa.iter().map(|v| (*v.key, v.comp)).collect();
        let mut mb: Vec<_> = fb.iter().map(|v| (*v.key, v.comp)).collect();
        ma.sort_by_key(|(k, _)| *k);
        mb.sort_by_key(|(k, _)| *k);
        assert_eq!(
            ma, mb,
            "shard-local determinism is independent of threading"
        );
    }

    #[test]
    fn into_tree_single_shard_is_free_of_merging() {
        let batch = mixed_batch(500);
        let schema = Schema::five_feature();
        let mut st = ShardedTree::new(schema, Config::with_budget(1_024), 1);
        st.insert_batch(&batch);
        let direct = st.clone().fold();
        let tree = st.into_tree();
        assert_eq!(tree.total(), direct.total());
        assert_eq!(tree.config().node_budget, 1_024);
    }
}
