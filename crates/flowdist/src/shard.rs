//! Sharded parallel ingest.
//!
//! Flowtrees are mergeable (paper §2): summaries built from disjoint
//! slices of a trace merge node-wise into exactly the summary of the
//! whole trace, modulo budget-induced folding. [`ShardedTree`] exploits
//! that for parallelism the same way Flowyager scales the structure
//! network-wide — fan updates across `N` per-core [`FlowTree`]s keyed
//! by the flow-key hash, and fold the shards with the `merge` operator
//! when a summary is needed. The shard router reuses the key's
//! [`flowkey::key_hash`] that the tree index needs anyway, so sharding
//! adds zero extra hashing to the hot path.
//!
//! Parallel ingest runs on a **persistent worker pool**
//! ([`crate::worker`]): one long-lived thread per shard draining a
//! bounded FIFO queue of pre-hashed buckets. The pool spawns on the
//! first [`ShardedTree::par_insert_batch`] call and lives until the
//! tree is folded or dropped, so steady-state batches pay one queue
//! send per shard instead of an OS thread spawn/join per batch. Every
//! read (`fold`, `total`, `stats`, …) first drains the queues, so the
//! observable state is always exactly the sequential-ingest state:
//! per shard there is a single consumer applying buckets in submission
//! order, which is precisely the order [`ShardedTree::insert_batch`]
//! applies them.
//!
//! The node budget is split evenly across shards, so a folded
//! `ShardedTree` obeys the same budget (and byte size on the wire) as a
//! single tree: the fold target is created with the full, unsplit
//! budget and merging compacts to it. Because the router keys shards by
//! flow-key hash, each key lands in exactly one shard; budget pressure
//! per shard matches a `budget / N` tree over `1 / N` of the key space,
//! which keeps per-key error comparable to the unsharded tree.

use crate::worker::WorkerPool;
use flowkey::{key_hash, FlowKey, Schema};
use flowtree_core::{Config, FlowTree, Popularity, Stats};
use std::sync::{Arc, Mutex, MutexGuard};

/// A Flowtree fanned out over `N` independent shards for parallel
/// ingest, folded back into one [`FlowTree`] via the paper's `merge`.
#[derive(Debug)]
pub struct ShardedTree {
    shards: Vec<Arc<Mutex<FlowTree>>>,
    schema: Schema,
    /// The full (unsplit) configuration, used when folding.
    cfg: Config,
    /// Persistent shard workers; spawned on first parallel batch.
    pool: Option<WorkerPool>,
    /// Pin worker `i` to core `i` when the pool spawns (opt-in;
    /// best-effort, Linux only).
    pin_workers: bool,
    /// Per-shard staging for single-record inserts while the pool is
    /// active: records accumulate lock-cheap and ride the queue as one
    /// bucket, keeping the per-record path free of per-record
    /// allocations and channel rendezvous. Always empty when `pool` is
    /// `None`; flushed before any batch submit or drain.
    staging: Vec<Mutex<Vec<(u64, FlowKey, Popularity)>>>,
}

/// Staged single-record inserts per shard before they are submitted to
/// the worker queue as one bucket.
const STAGE_LIMIT: usize = 64;

/// Smallest batch that justifies spawning the worker pool: below this,
/// a pool-less tree applies the batch sequentially, so short-lived or
/// trickle-fed windows never pay an N-thread spawn/join for a handful
/// of records. Once the pool exists it is always used (FIFO order).
const PAR_SPAWN_MIN: usize = 32;

impl ShardedTree {
    /// Creates `shards` trees sharing `cfg.node_budget` evenly
    /// (`shards` is clamped to ≥ 1; each shard keeps at least
    /// [`Config::MIN_BUDGET`]). No worker threads start until the
    /// first [`Self::par_insert_batch`] call.
    pub fn new(schema: Schema, cfg: Config, shards: usize) -> ShardedTree {
        let n = shards.max(1);
        let mut per_shard = cfg;
        per_shard.node_budget = (cfg.node_budget / n).max(Config::MIN_BUDGET);
        ShardedTree {
            shards: (0..n)
                .map(|_| Arc::new(Mutex::new(FlowTree::new(schema, per_shard))))
                .collect(),
            schema,
            cfg,
            pool: None,
            pin_workers: false,
            staging: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Opts the (not-yet-spawned) worker pool into CPU pinning: worker
    /// `i` pins itself to core `i` modulo online CPUs. No effect on a
    /// pool that is already running.
    pub fn set_pin_workers(&mut self, pin: bool) {
        self.pin_workers = pin;
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The flow schema shared by every shard.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Which shard a key hash routes to (multiply-shift, no modulo).
    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        (((hash as u128) * (self.shards.len() as u128)) >> 64) as usize
    }

    /// Waits until every staged record and queued bucket has been
    /// applied; afterwards the shard trees hold exactly the
    /// sequential-ingest state.
    fn drain_workers(&self) {
        if let Some(pool) = &self.pool {
            self.flush_staging(pool);
            pool.drain();
        }
    }

    /// Submits every non-empty staging buffer to its shard's queue.
    fn flush_staging(&self, pool: &WorkerPool) {
        for (i, stage) in self.staging.iter().enumerate() {
            let mut staged = stage.lock().expect("staging lock");
            if !staged.is_empty() {
                pool.submit(i, std::mem::take(&mut *staged));
            }
        }
    }

    fn lock_shard(&self, i: usize) -> MutexGuard<'_, FlowTree> {
        self.shards[i].lock().expect("shard tree lock")
    }

    /// Records mass for `key` in its shard. The key is canonicalized
    /// and hashed exactly once; the hash routes the shard *and* serves
    /// as the tree index hash. With no pool active this applies
    /// directly, allocation-free. With a worker pool active the record
    /// lands in its shard's staging buffer (an uncontended lock, no
    /// allocation or channel rendezvous per record) and rides the FIFO
    /// queue as part of one [`STAGE_LIMIT`]-record bucket — per-shard
    /// program order relative to queued batches is preserved, with one
    /// budget check per staged bucket like any small batch.
    pub fn insert(&mut self, key: &FlowKey, pop: Popularity) {
        let key = self.schema.canonicalize(key);
        let hash = key_hash(&key);
        let s = self.shard_of(hash);
        if let Some(pool) = &self.pool {
            let mut staged = self.staging[s].lock().expect("staging lock");
            staged.push((hash, key, pop));
            if staged.len() >= STAGE_LIMIT {
                pool.submit(s, std::mem::take(&mut *staged));
            }
        } else {
            self.lock_shard(s).insert_prehashed(key, hash, pop);
        }
    }

    /// Canonicalizes, hashes, and buckets key/mass pairs by shard,
    /// straight from any iterator (no intermediate copy of the input).
    fn bucketize_iter<'a>(
        &self,
        items: impl Iterator<Item = (&'a FlowKey, Popularity)>,
        len_hint: usize,
    ) -> Vec<Vec<(u64, FlowKey, Popularity)>> {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<(u64, FlowKey, Popularity)>> = (0..n)
            .map(|_| Vec::with_capacity(len_hint / n + 1))
            .collect();
        for (k, p) in items {
            let k = self.schema.canonicalize(k);
            let h = key_hash(&k);
            buckets[self.shard_of(h)].push((h, k, p));
        }
        buckets
    }

    /// Sequential batch ingest: one canonicalize + hash per key, one
    /// budget check per shard at the end.
    pub fn insert_batch(&mut self, batch: &[(FlowKey, Popularity)]) {
        self.drain_workers();
        let mut buckets = self.bucketize_iter(batch.iter().map(|(k, p)| (k, *p)), batch.len());
        for (i, bucket) in buckets.iter_mut().enumerate() {
            if !bucket.is_empty() {
                self.lock_shard(i).insert_batch_prehashed(bucket);
            }
        }
    }

    /// Parallel batch ingest through the persistent worker pool: the
    /// batch is canonicalized, hashed, and bucketed by shard on the
    /// caller's thread, then each non-empty bucket is queued to its
    /// shard's worker. Returns as soon as the buckets are queued
    /// (bounded queues give backpressure); any read — `fold`, `total`,
    /// [`Self::into_tree`] on window close — drains the queues first,
    /// so results are always exactly those of [`Self::insert_batch`].
    pub fn par_insert_batch(&mut self, batch: &[(FlowKey, Popularity)]) {
        self.par_insert_iter(batch.iter().map(|(k, p)| (k, *p)), batch.len());
    }

    /// [`Self::par_insert_batch`] over any key/mass iterator — batch
    /// callers that hold richer tuples (e.g. the daemon's timestamped
    /// items) feed the shards without copying into a slice first.
    /// Batches under [`PAR_SPAWN_MIN`] on a pool-less tree apply
    /// sequentially instead of spawning workers.
    pub fn par_insert_iter<'a>(
        &mut self,
        items: impl Iterator<Item = (&'a FlowKey, Popularity)>,
        len_hint: usize,
    ) {
        if self.shards.len() == 1 || (self.pool.is_none() && len_hint < PAR_SPAWN_MIN) {
            self.drain_workers();
            let mut buckets = self.bucketize_iter(items, len_hint);
            for (i, bucket) in buckets.iter_mut().enumerate() {
                if !bucket.is_empty() {
                    self.lock_shard(i).insert_batch_prehashed(bucket);
                }
            }
            return;
        }
        let buckets = self.bucketize_iter(items, len_hint);
        self.dispatch_buckets(buckets);
    }

    /// [`Self::par_insert_iter`] over items whose keys are **already
    /// canonicalized and hashed** — the streaming pipeline hashes each
    /// record once at decode time, so routing here is pure arithmetic
    /// on the carried hash: no re-canonicalize, no re-hash per record
    /// at flush time (the shard-degradation root cause the bench rows
    /// exposed).
    pub fn par_insert_prehashed_iter(
        &mut self,
        items: impl Iterator<Item = (u64, FlowKey, Popularity)>,
        len_hint: usize,
    ) {
        let n = self.shards.len();
        if n == 1 || (self.pool.is_none() && len_hint < PAR_SPAWN_MIN) {
            self.drain_workers();
            if n == 1 {
                // Single shard: no routing at all, one bucket, one lock.
                let mut bucket: Vec<(u64, FlowKey, Popularity)> = items.collect();
                if !bucket.is_empty() {
                    self.lock_shard(0).insert_batch_prehashed(&mut bucket);
                }
                return;
            }
            let mut buckets = self.bucketize_prehashed(items, len_hint);
            for (i, bucket) in buckets.iter_mut().enumerate() {
                if !bucket.is_empty() {
                    self.lock_shard(i).insert_batch_prehashed(bucket);
                }
            }
            return;
        }
        let buckets = self.bucketize_prehashed(items, len_hint);
        self.dispatch_buckets(buckets);
    }

    /// Routes already-hashed items into per-shard buckets (no
    /// canonicalize, no hash — just the multiply-shift).
    fn bucketize_prehashed(
        &self,
        items: impl Iterator<Item = (u64, FlowKey, Popularity)>,
        len_hint: usize,
    ) -> Vec<Vec<(u64, FlowKey, Popularity)>> {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<(u64, FlowKey, Popularity)>> = (0..n)
            .map(|_| Vec::with_capacity(len_hint / n + 1))
            .collect();
        for (h, k, p) in items {
            buckets[self.shard_of(h)].push((h, k, p));
        }
        buckets
    }

    /// Queues per-shard buckets on the worker pool (spawning it on
    /// first use), after flushing staged single inserts so per-shard
    /// FIFO order holds.
    fn dispatch_buckets(&mut self, buckets: Vec<Vec<(u64, FlowKey, Popularity)>>) {
        if self.pool.is_none() {
            self.pool = Some(WorkerPool::spawn(&self.shards, self.pin_workers));
        }
        let pool = self.pool.as_ref().expect("pool just ensured");
        // Staged single-record inserts precede this batch in program
        // order — submit them first so per-shard FIFO order holds.
        self.flush_staging(pool);
        for (i, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                pool.submit(i, bucket);
            }
        }
    }

    /// Total mass across all shards.
    pub fn total(&self) -> Popularity {
        self.drain_workers();
        (0..self.shards.len()).fold(Popularity::ZERO, |acc, i| acc + self.lock_shard(i).total())
    }

    /// Live nodes across all shards (roots included per shard).
    pub fn len(&self) -> usize {
        self.drain_workers();
        (0..self.shards.len())
            .map(|i| self.lock_shard(i).len())
            .sum()
    }

    /// Whether no shard holds anything beyond its root.
    pub fn is_empty(&self) -> bool {
        self.drain_workers();
        (0..self.shards.len()).all(|i| self.lock_shard(i).is_empty())
    }

    /// Summed work counters of all shards.
    pub fn stats(&self) -> Stats {
        self.drain_workers();
        let mut out = Stats::default();
        for i in 0..self.shards.len() {
            let t = self.lock_shard(i);
            let s = t.stats();
            out.inserts += s.inserts;
            out.hits += s.hits;
            out.misses += s.misses;
            out.chain_steps += s.chain_steps;
            out.descent_hops += s.descent_hops;
            out.joins_created += s.joins_created;
            out.compactions += s.compactions;
            out.evictions += s.evictions;
            out.contractions += s.contractions;
            out.grafted_nodes += s.grafted_nodes;
            out.profile_builds += s.profile_builds;
        }
        out
    }

    /// Runs `f` against one quiesced shard tree (bench/diagnostic use;
    /// replaces the pre-worker-pool `shard()` reference accessor).
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&FlowTree) -> R) -> R {
        self.drain_workers();
        f(&self.lock_shard(i))
    }

    /// Folds every shard into a single tree with the full node budget
    /// via the paper's `merge` operator, leaving the shards untouched.
    /// The result is shape-identical to a tree built unsharded: same
    /// schema, same budget, same wire encoding rules.
    pub fn fold(&self) -> FlowTree {
        self.drain_workers();
        let mut out = FlowTree::new(self.schema, self.cfg);
        for i in 0..self.shards.len() {
            out.merge(&self.lock_shard(i))
                .expect("shards share one schema");
        }
        out
    }

    /// Like [`Self::fold`], but consumes the shards; the single-shard
    /// case hands back its tree without copying. Joins the worker pool
    /// cleanly: queues are drained, threads exit and are joined before
    /// the shard trees are reclaimed.
    pub fn into_tree(mut self) -> FlowTree {
        self.drain_workers();
        // Joining the workers drops their Arc clones, making us the
        // sole owner of every shard tree.
        self.pool = None;
        if self.shards.len() == 1 {
            let arc = self.shards.pop().expect("one shard");
            return Arc::try_unwrap(arc)
                .expect("workers joined, no other owner")
                .into_inner()
                .expect("shard tree lock");
        }
        self.fold()
    }

    /// Validates every shard's structural invariants. (No per-key
    /// routing assertion: shards legitimately hold keys whose own hash
    /// routes elsewhere — join nodes and compaction fold-ups are
    /// *ancestors* of the routed keys, created shard-locally.)
    pub fn validate(&self) {
        self.drain_workers();
        for i in 0..self.shards.len() {
            self.lock_shard(i).validate();
        }
    }
}

impl Clone for ShardedTree {
    /// Clones the quiesced shard trees; the clone starts without a
    /// worker pool and spawns its own on first parallel batch.
    fn clone(&self) -> ShardedTree {
        self.drain_workers();
        ShardedTree {
            shards: (0..self.shards.len())
                .map(|i| Arc::new(Mutex::new(self.lock_shard(i).clone())))
                .collect(),
            schema: self.schema,
            cfg: self.cfg,
            pool: None,
            pin_workers: self.pin_workers,
            staging: (0..self.shards.len())
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> FlowKey {
        s.parse().unwrap()
    }

    fn mixed_batch(n: usize) -> Vec<(FlowKey, Popularity)> {
        (0..n)
            .map(|i| {
                let k = key(&format!(
                    "src=10.{}.{}.{}/32 dst=192.0.2.{}/32 sport={} dport=443 proto=tcp",
                    i % 3,
                    (i / 3) % 6,
                    i % 251,
                    i % 2,
                    40_000 + (i % 20)
                ));
                (k, Popularity::packet(100 + (i as u32 % 400)))
            })
            .collect()
    }

    #[test]
    fn sharded_total_matches_single_tree() {
        let batch = mixed_batch(2_000);
        let schema = Schema::five_feature();
        let mut single = FlowTree::new(schema, Config::with_budget(4_096));
        for (k, p) in &batch {
            single.insert(k, *p);
        }
        for shards in [1usize, 2, 4, 8] {
            let mut st = ShardedTree::new(schema, Config::with_budget(4_096), shards);
            st.par_insert_batch(&batch);
            st.validate();
            assert_eq!(st.total(), single.total(), "{shards} shards conserve mass");
            let folded = st.fold();
            folded.validate();
            assert_eq!(folded.total(), single.total());
        }
    }

    #[test]
    fn sequential_and_parallel_ingest_agree_exactly() {
        let batch = mixed_batch(1_500);
        let schema = Schema::five_feature();
        let mut a = ShardedTree::new(schema, Config::with_budget(2_048), 4);
        let mut b = ShardedTree::new(schema, Config::with_budget(2_048), 4);
        a.insert_batch(&batch);
        b.par_insert_batch(&batch);
        let (fa, fb) = (a.fold(), b.fold());
        assert_eq!(fa.total(), fb.total());
        assert_eq!(fa.len(), fb.len());
        let mut ma: Vec<_> = fa.iter().map(|v| (*v.key, v.comp)).collect();
        let mut mb: Vec<_> = fb.iter().map(|v| (*v.key, v.comp)).collect();
        ma.sort_by_key(|(k, _)| *k);
        mb.sort_by_key(|(k, _)| *k);
        assert_eq!(
            ma, mb,
            "shard-local determinism is independent of threading"
        );
    }

    #[test]
    fn workers_survive_many_batches_and_join_on_into_tree() {
        // Exercise the persistent pool across many submissions (the
        // scoped-thread path this replaced spawned per batch).
        let batch = mixed_batch(900);
        let schema = Schema::five_feature();
        let mut st = ShardedTree::new(schema, Config::with_budget(2_048), 3);
        let mut seq = ShardedTree::new(schema, Config::with_budget(2_048), 3);
        for chunk in batch.chunks(64) {
            st.par_insert_batch(chunk);
            seq.insert_batch(chunk);
        }
        // Reads interleaved with queued work still agree (drain-first).
        assert_eq!(st.total(), seq.total());
        let a = st.into_tree();
        let b = seq.into_tree();
        assert_eq!(a.total(), b.total());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn mixed_single_and_batch_inserts_stay_ordered() {
        let batch = mixed_batch(400);
        let schema = Schema::five_feature();
        let mut st = ShardedTree::new(schema, Config::with_budget(1_024), 4);
        let mut seq = ShardedTree::new(schema, Config::with_budget(1_024), 4);
        for (i, chunk) in batch.chunks(50).enumerate() {
            st.par_insert_batch(chunk);
            seq.insert_batch(chunk);
            let (k, p) = &batch[i];
            st.insert(k, *p);
            seq.insert(k, *p);
        }
        let (fa, fb) = (st.fold(), seq.fold());
        assert_eq!(fa.total(), fb.total());
        assert_eq!(fa.len(), fb.len());
    }

    #[test]
    fn prehashed_batches_agree_with_rehashing_paths() {
        let batch = mixed_batch(1_500);
        let schema = Schema::five_feature();
        for shards in [1usize, 4] {
            let mut a = ShardedTree::new(schema, Config::with_budget(2_048), shards);
            let mut b = ShardedTree::new(schema, Config::with_budget(2_048), shards);
            a.par_insert_batch(&batch);
            let prehashed: Vec<_> = batch
                .iter()
                .map(|(k, p)| {
                    let k = schema.canonicalize(k);
                    (key_hash(&k), k, *p)
                })
                .collect();
            b.par_insert_prehashed_iter(prehashed.into_iter(), batch.len());
            let (fa, fb) = (a.fold(), b.fold());
            assert_eq!(fa.total(), fb.total());
            assert_eq!(fa.len(), fb.len());
            let mut ma: Vec<_> = fa.iter().map(|v| (*v.key, v.comp)).collect();
            let mut mb: Vec<_> = fb.iter().map(|v| (*v.key, v.comp)).collect();
            ma.sort_by_key(|(k, _)| *k);
            mb.sort_by_key(|(k, _)| *k);
            assert_eq!(
                ma, mb,
                "{shards} shards: prehashed routing is a pure refactor"
            );
        }
    }

    #[test]
    fn clone_quiesces_and_detaches_from_the_pool() {
        let batch = mixed_batch(600);
        let schema = Schema::five_feature();
        let mut st = ShardedTree::new(schema, Config::with_budget(2_048), 4);
        st.par_insert_batch(&batch);
        let snap = st.clone();
        // Mutating the original must not leak into the clone.
        st.par_insert_batch(&batch);
        assert_eq!(snap.total().packets * 2, st.total().packets);
    }

    #[test]
    fn into_tree_single_shard_is_free_of_merging() {
        let batch = mixed_batch(500);
        let schema = Schema::five_feature();
        let mut st = ShardedTree::new(schema, Config::with_budget(1_024), 1);
        st.insert_batch(&batch);
        let direct = st.clone().fold();
        let tree = st.into_tree();
        assert_eq!(tree.total(), direct.total());
        assert_eq!(tree.config().node_budget, 1_024);
    }
}
