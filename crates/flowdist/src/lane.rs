//! Multi-lane UDP ingest: N independent listen→decode→pipeline lanes
//! merged into one summary stream at window close.
//!
//! The single-reader loop in [`crate::listen`] serializes every
//! datagram through one thread — one syscall, one decoder, one
//! admission table, one pipeline. At site export rates that reader is
//! the ceiling, not the tree. This module rebuilds the ingest edge so
//! it scales with cores:
//!
//! * **N sockets, one port** — [`crate::sockopt::bind_reuseport`]
//!   binds N `SO_REUSEPORT` sockets to the same address and the kernel
//!   fans exporters across them (hashed by flow, so one exporter's
//!   stream stays on one lane). Where reuseport is unavailable (or
//!   disabled), a single reader thread fans datagrams out to the lanes
//!   over lock-free SPSC rings ([`crate::ring`]), routed by exporter
//!   address hash so per-exporter admission state stays lane-local.
//! * **Batched receive** — every socket is drained through
//!   [`crate::mrecv::BatchReceiver`] (`recvmmsg`, up to 64 datagrams
//!   per syscall, portable fallback included).
//! * **Lane-local hot path** — each lane owns its own
//!   [`IngestPipeline`] (decoder + template caches), its own
//!   [`AdmissionControl`] table, and its own windowed daemon; no lock
//!   is shared between lanes while datagrams flow.
//! * **Merge at the edge of the window, not the packet** — lanes ship
//!   each closed window's tree to a merger thread, which combines the
//!   per-lane trees with the paper's structural
//!   [`FlowTree::merge_many`] once *every* lane's event-time watermark
//!   has passed the window, then encodes and ships one [`Summary`]
//!   frame. Because summaries are canonical encodings of node
//!   multisets, the merged bytes are identical to what a single-lane
//!   daemon would have emitted over the same records (property-pinned
//!   in the test suite).
//! * **Opt-in core pinning** — lanes re-check the shared
//!   [`AdmissionKnobs::pin_cores`] knob every loop iteration and
//!   apply/clear their CPU affinity live, so `pin-cores=0` on the
//!   reload path unpins a running site.
//!
//! Watermark discipline: the merger holds a window until the *minimum*
//! lane watermark closes it (the same `open_windows` horizon the
//! daemon uses), so a slow lane can never have its stragglers shut out
//! by a fast one. A lane only participates in that minimum while the
//! merger is hearing from it, though: with fewer exporters than lanes
//! (the kernel hashes one exporter's stream to one socket, and the
//! fanout reader hashes by exporter IP) some lanes are idle in the
//! steady state, and letting an idle lane pin the minimum at zero
//! would stall emission forever while closed windows buffered without
//! bound. So a lane that has sent no event for
//! [`LaneOptions::idle_lane_ms`] of wall clock is excluded until it
//! speaks again, and when *every* lane has gone idle the highest lane
//! watermark stands in — which is exactly the watermark a single
//! reader would have computed over the same records. The cost is the
//! standard idle-source tradeoff: a lane that wakes after the timeout
//! holding records for an already-emitted window has that window's
//! tree counted and dropped (`merger_stale_windows`, the tree-level
//! analogue of the daemon's late record drops) rather than merged —
//! re-emitting the window would *replace* it at the collector, which
//! is worse.
//!
//! With `lanes == 1` this collapses to the familiar single-reader
//! loop (one lane, pass-through merge) and the emitted frames are
//! byte-identical to [`crate::listen::spawn_udp_ingest`]'s.

use crate::admission::{AdmissionControl, AdmissionKnobs, AdmissionStats};
use crate::daemon::{DaemonConfig, DaemonStats, TransferMode};
use crate::listen::{IngestReport, IngestSnapshot, IngestTelemetry};
use crate::mrecv::BatchReceiver;
use crate::pipeline::{IngestPipeline, PipelineStats};
use crate::ring;
use crate::summary::{Summary, SummaryKind};
use crate::window::WindowId;
use crate::DistError;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use flowmetrics::Histogram;
use flownet::DecoderStats;
use flowtree_core::FlowTree;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Hard cap on lanes (sockets/threads) per listen address.
pub const MAX_LANES: usize = 64;

/// Fanout ring capacity per lane (datagrams), fallback mode only.
const RING_CAPACITY: usize = 1_024;

/// Default [`LaneOptions::idle_lane_ms`]: long enough that a lane
/// merely catching its breath between receive batches is never
/// excluded, short enough that a few-exporter site starts emitting
/// within seconds of boot.
pub const DEFAULT_IDLE_LANE_MS: u64 = 2_000;

/// Tuning for [`spawn_multi_lane_ingest`].
#[derive(Debug, Clone)]
pub struct LaneOptions {
    /// Listen lanes (clamped to `1..=MAX_LANES`). 1 = the classic
    /// single-reader loop.
    pub lanes: usize,
    /// Datagrams per receive syscall (clamped to
    /// `1..=`[`crate::mrecv::MAX_RECV_BATCH`]).
    pub recv_batch: usize,
    /// Try `SO_REUSEPORT` multi-socket mode for `lanes > 1` (Linux);
    /// `false` — or an unsupported platform — selects the portable
    /// single-socket fanout-ring mode.
    pub reuseport: bool,
    /// Force the portable single-datagram receive path even where
    /// `recvmmsg` exists (fallback-matrix tests, CI fallback leg).
    pub force_fallback_recv: bool,
    /// Requested `SO_RCVBUF` per socket (best-effort; achieved size
    /// lands in each lane's gauges). `None` keeps the OS default.
    pub receive_buffer_bytes: Option<usize>,
    /// Live-reloadable admission quotas, open-window budget, and the
    /// `pin-cores` toggle, shared with whoever serves `POST /reload`.
    pub knobs: Arc<AdmissionKnobs>,
    /// Observability hooks (wired to lane 0, whose open-window gauge
    /// and shed events mirror the single-reader loop's).
    pub telemetry: IngestTelemetry,
    /// Observes the datagram count of every receive batch.
    pub batch_hist: Option<Histogram>,
    /// Wall-clock milliseconds after which a lane the merger has not
    /// heard from stops holding back window emission (see the module
    /// docs on watermark discipline). 0 = never exclude: idle lanes
    /// then hold every window open until shutdown.
    pub idle_lane_ms: u64,
}

impl Default for LaneOptions {
    fn default() -> LaneOptions {
        LaneOptions {
            lanes: 1,
            recv_batch: 32,
            reuseport: true,
            force_fallback_recv: false,
            receive_buffer_bytes: None,
            knobs: Arc::default(),
            telemetry: IngestTelemetry::default(),
            batch_hist: None,
            idle_lane_ms: DEFAULT_IDLE_LANE_MS,
        }
    }
}

/// Live counters of one lane, published by its thread after every
/// receive batch (plus `backpressure_waits`, bumped by the fanout
/// reader when this lane's ring is full).
#[derive(Debug, Default)]
pub struct LaneGauges {
    /// Raw datagrams this lane received (admitted or not).
    pub datagrams: AtomicU64,
    /// Export packets decoded successfully.
    pub packets: AtomicU64,
    /// Payloads that failed to decode.
    pub decode_errors: AtomicU64,
    /// Datagrams denied by a per-exporter packet quota.
    pub quota_packet_drops: AtomicU64,
    /// Records denied by a per-exporter record quota.
    pub quota_record_drops: AtomicU64,
    /// Flow records extracted.
    pub records: AtomicU64,
    /// Data records/sets dropped for lack of a template.
    pub records_no_template: AtomicU64,
    /// Templates currently cached by this lane's decoder.
    pub templates: AtomicU64,
    /// Templates evicted (count cap + timeout).
    pub templates_evicted: AtomicU64,
    /// Templates rejected for violating shape bounds.
    pub templates_rejected: AtomicU64,
    /// Window buckets force-flushed to honor the open-window budget.
    pub window_sheds: AtomicU64,
    /// Exporter addresses tracked by this lane's admission table.
    pub exporters: AtomicU64,
    /// Exporter entries evicted to bound the table.
    pub exporters_evicted: AtomicU64,
    /// Records dropped as older than any open window.
    pub late_drops: AtomicU64,
    /// Achieved socket receive buffer (0 = OS default / shared
    /// fanout socket).
    pub recv_buffer_bytes: AtomicU64,
    /// Successful receive batches (syscalls in reuseport mode; ring
    /// bursts in fanout mode). `datagrams / recv_batches` is the mean
    /// batch size.
    pub recv_batches: AtomicU64,
    /// 1 ms waits the fanout reader spent on this lane's full ring.
    pub backpressure_waits: AtomicU64,
    /// Datagrams the fanout reader discarded because this lane's ring
    /// consumer was gone (lane thread exited). Keeps the reader-side
    /// loss observable: these datagrams never reach any lane, so they
    /// are absent from the per-lane accounting identity by design.
    pub dead_drops: AtomicU64,
    /// 1 when the lane thread currently holds a CPU affinity pin.
    pub pinned: AtomicU64,
}

/// One coherent-enough reading of a lane's gauges.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneSnapshot {
    /// Raw datagrams this lane received.
    pub datagrams: u64,
    /// Export packets decoded successfully.
    pub packets: u64,
    /// Payloads that failed to decode.
    pub decode_errors: u64,
    /// Datagrams denied by a per-exporter packet quota.
    pub quota_packet_drops: u64,
    /// Records denied by a per-exporter record quota.
    pub quota_record_drops: u64,
    /// Flow records extracted.
    pub records: u64,
    /// Records dropped as older than any open window.
    pub late_drops: u64,
    /// Successful receive batches.
    pub recv_batches: u64,
    /// 1 ms fanout-reader waits on this lane's full ring.
    pub backpressure_waits: u64,
    /// Datagrams the fanout reader discarded because this lane's ring
    /// consumer was gone.
    pub dead_drops: u64,
    /// Achieved socket receive buffer for this lane's socket.
    pub recv_buffer_bytes: u64,
    /// Whether the lane thread is currently pinned to a core.
    pub pinned: bool,
}

impl LaneGauges {
    fn snapshot(&self) -> LaneSnapshot {
        LaneSnapshot {
            datagrams: self.datagrams.load(Ordering::Relaxed),
            packets: self.packets.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            quota_packet_drops: self.quota_packet_drops.load(Ordering::Relaxed),
            quota_record_drops: self.quota_record_drops.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            late_drops: self.late_drops.load(Ordering::Relaxed),
            recv_batches: self.recv_batches.load(Ordering::Relaxed),
            backpressure_waits: self.backpressure_waits.load(Ordering::Relaxed),
            dead_drops: self.dead_drops.load(Ordering::Relaxed),
            recv_buffer_bytes: self.recv_buffer_bytes.load(Ordering::Relaxed),
            pinned: self.pinned.load(Ordering::Relaxed) != 0,
        }
    }
}

/// Counters the merger thread publishes while running.
#[derive(Debug, Default)]
struct MergerGauges {
    summaries: AtomicU64,
    frames_sent: AtomicU64,
    frames_dropped: AtomicU64,
    waits: AtomicU64,
    /// Straggler window trees dropped because their window was
    /// already emitted past an idle-excluded lane.
    stale_windows: AtomicU64,
}

/// A cloneable read-side view over every lane's gauges plus the
/// merger's — what a stats endpoint holds while the engine runs.
#[derive(Debug, Clone)]
pub struct MultiGaugeView {
    lanes: Arc<Vec<Arc<LaneGauges>>>,
    merger: Arc<MergerGauges>,
}

impl MultiGaugeView {
    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// One lane's counters.
    pub fn lane(&self, i: usize) -> LaneSnapshot {
        self.lanes[i].snapshot()
    }

    /// Straggler window trees the merger dropped because their window
    /// had already been emitted past an idle-excluded lane — the
    /// tree-level analogue of the daemon's late record drops. Zero in
    /// healthy operation.
    pub fn merger_stale_windows(&self) -> u64 {
        self.merger.stale_windows.load(Ordering::Relaxed)
    }

    /// The aggregate view in the same shape the single-reader loop
    /// publishes: lane counters summed, merger counters for the
    /// summary/frame side.
    pub fn snapshot(&self) -> IngestSnapshot {
        let mut s = IngestSnapshot::default();
        for lane in self.lanes.iter() {
            s.datagrams += lane.datagrams.load(Ordering::Relaxed);
            s.packets += lane.packets.load(Ordering::Relaxed);
            s.decode_errors += lane.decode_errors.load(Ordering::Relaxed);
            s.quota_packet_drops += lane.quota_packet_drops.load(Ordering::Relaxed);
            s.quota_record_drops += lane.quota_record_drops.load(Ordering::Relaxed);
            s.records += lane.records.load(Ordering::Relaxed);
            s.records_no_template += lane.records_no_template.load(Ordering::Relaxed);
            s.templates += lane.templates.load(Ordering::Relaxed);
            s.templates_evicted += lane.templates_evicted.load(Ordering::Relaxed);
            s.templates_rejected += lane.templates_rejected.load(Ordering::Relaxed);
            s.window_sheds += lane.window_sheds.load(Ordering::Relaxed);
            s.exporters += lane.exporters.load(Ordering::Relaxed);
            s.exporters_evicted += lane.exporters_evicted.load(Ordering::Relaxed);
            s.late_drops += lane.late_drops.load(Ordering::Relaxed);
            s.recv_buffer_bytes += lane.recv_buffer_bytes.load(Ordering::Relaxed);
            s.backpressure_waits += lane.backpressure_waits.load(Ordering::Relaxed);
        }
        s.backpressure_waits += self.merger.waits.load(Ordering::Relaxed);
        s.summaries = self.merger.summaries.load(Ordering::Relaxed);
        s.frames_sent = self.merger.frames_sent.load(Ordering::Relaxed);
        s.frames_dropped = self.merger.frames_dropped.load(Ordering::Relaxed);
        s
    }
}

/// What one lane thread hands back on shutdown.
#[derive(Debug)]
struct LaneDone {
    datagrams: u64,
    pipeline: PipelineStats,
    decoder: DecoderStats,
    admission: AdmissionStats,
    daemon: DaemonStats,
    error: Option<std::io::Error>,
}

/// What the merger thread hands back on shutdown.
#[derive(Debug)]
struct MergerDone {
    summaries: u64,
    summary_bytes: u64,
    frames_sent: u64,
    frames_dropped: u64,
    waits: u64,
}

/// Lane → merger traffic.
// Clone only because the channel shim's `Sender: Clone` derive
// demands it of the payload; events are never actually cloned.
#[derive(Clone)]
enum LaneEvent {
    /// Lane `lane`'s daemon closed window `start_ms` with this tree.
    /// Boxed: a `FlowTree` dwarfs the watermark variant and events sit
    /// in a channel queue.
    Closed {
        lane: usize,
        start_ms: u64,
        tree: Box<FlowTree>,
    },
    /// Lane `lane`'s event-time watermark advanced to `ts`.
    Watermark { lane: usize, ts: u64 },
}

/// A running multi-lane ingest engine (see [`spawn_multi_lane_ingest`]).
#[derive(Debug)]
pub struct MultiIngestHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    lanes: Vec<std::thread::JoinHandle<LaneDone>>,
    reader: Option<std::thread::JoinHandle<(Option<std::io::Error>, u64)>>,
    merger: std::thread::JoinHandle<MergerDone>,
    view: MultiGaugeView,
    reuseport: bool,
}

impl MultiIngestHandle {
    /// The bound local address (useful with a `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the engine runs in `SO_REUSEPORT` multi-socket mode
    /// (`false`: single socket fanning out over rings, or one lane).
    pub fn is_reuseport(&self) -> bool {
        self.reuseport
    }

    /// The live gauge view (lane counters + aggregate snapshot).
    pub fn view(&self) -> MultiGaugeView {
        self.view.clone()
    }

    /// Stops the engine: every lane drains its socket (or ring),
    /// flushes its pipeline, the merger emits every residual window,
    /// and the aggregated counters come back in the single-loop
    /// [`IngestReport`] shape (lane counters summed; `daemon.summaries`
    /// / `summary_bytes` are the merger's emitted stream).
    pub fn stop(self) -> IngestReport {
        self.stop.store(true, Ordering::Relaxed);
        let mut error = None;
        let mut reader_waits = 0u64;
        if let Some(reader) = self.reader {
            let (err, waits) = reader.join().expect("fanout reader panicked");
            error = err;
            reader_waits = waits;
        }
        let dones: Vec<LaneDone> = self
            .lanes
            .into_iter()
            .map(|h| h.join().expect("lane thread panicked"))
            .collect();
        // Lanes joined → their event senders dropped → the merger's
        // receive loop ends and it emits every residual window.
        let m = self.merger.join().expect("merger thread panicked");
        let mut datagrams = 0u64;
        let mut pipeline = PipelineStats::default();
        let mut decoder = DecoderStats::default();
        let mut admission = AdmissionStats::default();
        let mut daemon = DaemonStats::default();
        for d in dones {
            datagrams += d.datagrams;
            pipeline.packets += d.pipeline.packets;
            pipeline.packets_v5 += d.pipeline.packets_v5;
            pipeline.packets_v9 += d.pipeline.packets_v9;
            pipeline.packets_ipfix += d.pipeline.packets_ipfix;
            pipeline.decode_errors += d.pipeline.decode_errors;
            pipeline.records += d.pipeline.records;
            pipeline.wire_bytes += d.pipeline.wire_bytes;
            pipeline.batches += d.pipeline.batches;
            pipeline.window_sheds += d.pipeline.window_sheds;
            decoder.templates += d.decoder.templates;
            decoder.templates_learned += d.decoder.templates_learned;
            decoder.templates_rejected += d.decoder.templates_rejected;
            decoder.templates_evicted_cap += d.decoder.templates_evicted_cap;
            decoder.templates_evicted_timeout += d.decoder.templates_evicted_timeout;
            decoder.templates_withdrawn += d.decoder.templates_withdrawn;
            decoder.withdrawals_unknown += d.decoder.withdrawals_unknown;
            decoder.records_skipped += d.decoder.records_skipped;
            admission.packet_drops += d.admission.packet_drops;
            admission.record_drops += d.admission.record_drops;
            admission.exporters_evicted += d.admission.exporters_evicted;
            daemon.records += d.daemon.records;
            daemon.raw_bytes += d.daemon.raw_bytes;
            daemon.late_drops += d.daemon.late_drops;
            if error.is_none() {
                error = d.error;
            }
        }
        daemon.summaries = m.summaries;
        daemon.summary_bytes = m.summary_bytes;
        IngestReport {
            datagrams,
            pipeline,
            decoder,
            admission,
            daemon,
            frames_sent: m.frames_sent,
            frames_dropped: m.frames_dropped,
            backpressure_waits: reader_waits + m.waits,
            error,
        }
    }
}

fn epoch_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Which lane an exporter address routes to in fanout mode: a
/// deterministic hash of the source IP, so one exporter's stream —
/// and its admission state and template cache — stays on one lane.
fn lane_of(peer: &SocketAddr, lanes: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    peer.ip().hash(&mut h);
    ((h.finish() as u128 * lanes as u128) >> 64) as usize
}

/// Binds `addr` across `opts.lanes` lanes and spawns the engine:
/// lane threads (each fed by its own `SO_REUSEPORT` socket, or by a
/// fanout ring off one socket), plus a merger thread that combines
/// per-lane window trees and ships encoded [`Summary`] frames through
/// `frames`. `pipeline_for(lane)` supplies each lane's pipeline; all
/// lanes must share one [`DaemonConfig`] with
/// [`TransferMode::Full`] (delta encoding is a stream-global property
/// and belongs downstream of the merge).
pub fn spawn_multi_lane_ingest<F>(
    addr: &str,
    mut pipeline_for: F,
    frames: Sender<Vec<u8>>,
    opts: LaneOptions,
) -> Result<MultiIngestHandle, DistError>
where
    F: FnMut(usize) -> IngestPipeline,
{
    let lanes = opts.lanes.clamp(1, MAX_LANES);
    let mut pipelines: Vec<IngestPipeline> = (0..lanes).map(&mut pipeline_for).collect();
    let cfg = *pipelines[0].daemon().config();
    assert_eq!(
        cfg.transfer,
        TransferMode::Full,
        "multi-lane ingest merges full window trees; delta-encode downstream"
    );

    // Bind: N reuseport sockets when asked and supported, else one
    // socket (fanout rings carry it to the lanes).
    let mut sockets: Vec<UdpSocket> = Vec::new();
    let mut reuseport = false;
    if lanes > 1 && opts.reuseport {
        let target: Option<SocketAddr> = {
            use std::net::ToSocketAddrs;
            addr.to_socket_addrs().ok().and_then(|mut it| it.next())
        };
        if let Some(target) = target {
            if let Some(first) = crate::sockopt::bind_reuseport(target) {
                let bound = first.local_addr().map_err(DistError::Io)?;
                sockets.push(first);
                for _ in 1..lanes {
                    match crate::sockopt::bind_reuseport(bound) {
                        Some(s) => sockets.push(s),
                        None => break,
                    }
                }
                if sockets.len() == lanes {
                    reuseport = true;
                } else {
                    sockets.clear();
                }
            }
        }
    }
    if sockets.is_empty() {
        sockets.push(UdpSocket::bind(addr).map_err(DistError::Io)?);
    }
    let local = sockets[0].local_addr().map_err(DistError::Io)?;

    let lane_gauges: Vec<Arc<LaneGauges>> = (0..lanes).map(|_| Arc::default()).collect();
    for (i, s) in sockets.iter().enumerate() {
        s.set_read_timeout(Some(Duration::from_millis(20)))
            .map_err(DistError::Io)?;
        if let Some(bytes) = opts.receive_buffer_bytes {
            let achieved = crate::sockopt::set_recv_buffer(s, bytes).unwrap_or(0);
            // In fanout mode the single socket's buffer is lane 0's
            // gauge; the other lanes report 0 (no socket of their own).
            lane_gauges[i]
                .recv_buffer_bytes
                .store(achieved as u64, Ordering::Relaxed);
        }
    }

    let merger_gauges = Arc::new(MergerGauges::default());
    let stop = Arc::new(AtomicBool::new(false));
    let (events_tx, events_rx) = unbounded::<LaneEvent>();

    let merger = {
        let frames = frames.clone();
        let stop = Arc::clone(&stop);
        let gauges = Arc::clone(&merger_gauges);
        let idle_lane_ms = opts.idle_lane_ms;
        std::thread::Builder::new()
            .name("lane-merger".into())
            .spawn(move || merger_loop(events_rx, cfg, lanes, idle_lane_ms, frames, stop, gauges))
            .map_err(DistError::Io)?
    };

    let mut lane_handles = Vec::with_capacity(lanes);
    let mut reader = None;
    let recv_batch = opts.recv_batch;
    let make_receiver = move || {
        if opts.force_fallback_recv {
            BatchReceiver::force_fallback(recv_batch)
        } else {
            BatchReceiver::new(recv_batch)
        }
    };

    if reuseport || lanes == 1 {
        for (i, socket) in sockets.into_iter().enumerate() {
            let mut lane = Lane {
                idx: i,
                pipeline: pipelines.remove(0),
                admission: AdmissionControl::new(),
                knobs: Arc::clone(&opts.knobs),
                gauges: Arc::clone(&lane_gauges[i]),
                events: events_tx.clone(),
                telemetry: if i == 0 {
                    opts.telemetry.clone()
                } else {
                    IngestTelemetry::default()
                },
                batch_hist: opts.batch_hist.clone(),
                datagrams: 0,
                wm_sent: 0,
                pinned: false,
                seen_sheds: 0,
            };
            let stop = Arc::clone(&stop);
            let mut recv = make_receiver();
            lane_handles.push(
                std::thread::Builder::new()
                    .name(format!("lane-{i}"))
                    .spawn(move || lane.run_socket(socket, &mut recv, &stop))
                    .map_err(DistError::Io)?,
            );
        }
    } else {
        // Fanout mode: one reader, N rings, N lane threads.
        let mut producers = Vec::with_capacity(lanes);
        for (i, _) in lane_gauges.iter().enumerate() {
            let (tx, rx) = ring::spsc::<(Vec<u8>, SocketAddr)>(RING_CAPACITY);
            producers.push(tx);
            let mut lane = Lane {
                idx: i,
                pipeline: pipelines.remove(0),
                admission: AdmissionControl::new(),
                knobs: Arc::clone(&opts.knobs),
                gauges: Arc::clone(&lane_gauges[i]),
                events: events_tx.clone(),
                telemetry: if i == 0 {
                    opts.telemetry.clone()
                } else {
                    IngestTelemetry::default()
                },
                batch_hist: opts.batch_hist.clone(),
                datagrams: 0,
                wm_sent: 0,
                pinned: false,
                seen_sheds: 0,
            };
            lane_handles.push(
                std::thread::Builder::new()
                    .name(format!("lane-{i}"))
                    .spawn(move || lane.run_ring(rx, recv_batch.max(1)))
                    .map_err(DistError::Io)?,
            );
        }
        let socket = sockets.pop().expect("one fanout socket");
        let stop = Arc::clone(&stop);
        let gauges: Vec<Arc<LaneGauges>> = lane_gauges.clone();
        let mut recv = make_receiver();
        reader = Some(
            std::thread::Builder::new()
                .name("lane-fanout".into())
                .spawn(move || fanout_loop(socket, &mut recv, producers, gauges, &stop))
                .map_err(DistError::Io)?,
        );
    }
    drop(events_tx);

    // `pipelines` must have been fully consumed by lane construction.
    debug_assert!(pipelines.is_empty());

    Ok(MultiIngestHandle {
        addr: local,
        stop,
        lanes: lane_handles,
        reader,
        merger,
        view: MultiGaugeView {
            lanes: Arc::new(lane_gauges),
            merger: merger_gauges,
        },
        reuseport,
    })
}

/// One lane's state, shared by the socket and ring run loops.
struct Lane {
    idx: usize,
    pipeline: IngestPipeline,
    admission: AdmissionControl,
    knobs: Arc<AdmissionKnobs>,
    gauges: Arc<LaneGauges>,
    events: Sender<LaneEvent>,
    telemetry: IngestTelemetry,
    batch_hist: Option<Histogram>,
    datagrams: u64,
    /// Highest daemon watermark already announced to the merger.
    wm_sent: u64,
    pinned: bool,
    seen_sheds: u64,
}

impl Lane {
    /// Reuseport mode: this lane owns `socket` outright.
    fn run_socket(
        &mut self,
        socket: UdpSocket,
        recv: &mut BatchReceiver,
        stop: &AtomicBool,
    ) -> LaneDone {
        let mut error = None;
        'listen: loop {
            let stopping = stop.load(Ordering::Relaxed);
            self.refresh_pinning();
            match recv.recv(&socket) {
                Ok(n) => {
                    let now_ms = epoch_ms();
                    for i in 0..n {
                        let (payload, peer) = recv.datagram(i);
                        self.process_datagram(payload, peer, now_ms);
                    }
                    self.after_batch(n as u64, now_ms);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Socket drained; a raised stop flag can now end
                    // the loop without losing queued datagrams.
                    if stopping {
                        break 'listen;
                    }
                }
                Err(e) => {
                    error = Some(e);
                    break 'listen;
                }
            }
            if stopping {
                // Stop requested while data still flowed: switch to a
                // non-blocking final drain so shutdown stays prompt.
                if socket.set_nonblocking(true).is_err() {
                    break 'listen;
                }
            }
        }
        self.finish(error)
    }

    /// Fanout mode: this lane drains its SPSC ring; the reader owns
    /// the socket. Ends when the reader is gone and the ring is empty.
    fn run_ring(
        &mut self,
        mut rx: ring::Consumer<(Vec<u8>, SocketAddr)>,
        burst_max: usize,
    ) -> LaneDone {
        let mut burst = 0u64;
        loop {
            match rx.try_pop() {
                Some((payload, peer)) => {
                    let now_ms = epoch_ms();
                    self.process_datagram(&payload, peer, now_ms);
                    burst += 1;
                    if burst >= burst_max as u64 {
                        self.after_batch(burst, now_ms);
                        burst = 0;
                    }
                }
                None => {
                    if burst > 0 {
                        self.after_batch(burst, epoch_ms());
                        burst = 0;
                    }
                    if rx.sender_gone() && rx.is_empty() {
                        break;
                    }
                    self.refresh_pinning();
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        self.finish(None)
    }

    /// The per-datagram hot path — identical admission discipline to
    /// the single-reader loop, so the edge identity `datagrams ==
    /// packets + decode_errors + quota_packet_drops` holds per lane.
    fn process_datagram(&mut self, payload: &[u8], peer: SocketAddr, now_ms: u64) {
        self.datagrams += 1;
        let cfg = self.knobs.load();
        self.pipeline
            .set_max_open_windows(self.knobs.max_open_windows() as usize);
        if self.admission.admit_packet(peer.ip(), &cfg, now_ms) {
            if let Some(records) = self.pipeline.decode_packet_at(payload, now_ms) {
                if self
                    .admission
                    .admit_records(peer.ip(), records.len(), &cfg, now_ms)
                {
                    for s in self.pipeline.push_records(&records) {
                        let _ = self.events.send(LaneEvent::Closed {
                            lane: self.idx,
                            start_ms: s.window.start_ms,
                            tree: Box::new(s.tree),
                        });
                    }
                }
            }
        }
    }

    /// Book-keeping after each receive batch: gauges, the batch-size
    /// histogram, the merger watermark, lane-0 telemetry, and the live
    /// pinning knob — re-checked here so a reload propagates on every
    /// burst boundary even when the socket (or ring) never drains.
    fn after_batch(&mut self, batch: u64, now_ms: u64) {
        self.refresh_pinning();
        self.gauges.recv_batches.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = &self.batch_hist {
            h.observe_secs(batch as f64);
        }
        self.publish();
        let wm = self.pipeline.daemon().watermark();
        if wm > self.wm_sent {
            self.wm_sent = wm;
            let _ = self.events.send(LaneEvent::Watermark {
                lane: self.idx,
                ts: wm,
            });
        }
        if let Some(g) = &self.telemetry.open_windows {
            g.set(self.pipeline.open_windows() as i64);
        }
        if let Some(ring) = &self.telemetry.events {
            let sheds = self.pipeline.stats().window_sheds;
            if sheds > self.seen_sheds {
                ring.push(
                    now_ms,
                    "window_shed",
                    format!("buckets={} total={sheds}", sheds - self.seen_sheds),
                );
                self.seen_sheds = sheds;
            }
        }
    }

    /// Applies or clears CPU affinity to track the live `pin-cores`
    /// knob (lane `i` → core `i` modulo online CPUs).
    fn refresh_pinning(&mut self) {
        let want = self.knobs.pin_cores();
        if want != self.pinned {
            let ok = if want {
                crate::sockopt::pin_current_thread(self.idx)
            } else {
                crate::sockopt::unpin_current_thread()
            };
            self.pinned = want && ok;
            self.gauges
                .pinned
                .store(self.pinned as u64, Ordering::Relaxed);
        }
        // Worker pools of future windows follow the same knob.
        self.pipeline.set_pin_workers(want);
    }

    /// Publishes the lane's counters (store semantics — this thread is
    /// the only writer of every field except `backpressure_waits`).
    fn publish(&self) {
        let g = &self.gauges;
        let p = self.pipeline.stats();
        let d = self.pipeline.decoder_stats();
        let dm = self.pipeline.daemon().stats();
        let a = self.admission.stats();
        g.datagrams.store(self.datagrams, Ordering::Relaxed);
        g.packets.store(p.packets, Ordering::Relaxed);
        g.decode_errors.store(p.decode_errors, Ordering::Relaxed);
        g.quota_packet_drops
            .store(a.packet_drops, Ordering::Relaxed);
        g.quota_record_drops
            .store(a.record_drops, Ordering::Relaxed);
        g.records.store(p.records, Ordering::Relaxed);
        g.records_no_template
            .store(d.records_skipped, Ordering::Relaxed);
        g.templates.store(d.templates as u64, Ordering::Relaxed);
        g.templates_evicted.store(
            d.templates_evicted_cap + d.templates_evicted_timeout,
            Ordering::Relaxed,
        );
        g.templates_rejected
            .store(d.templates_rejected, Ordering::Relaxed);
        g.window_sheds.store(p.window_sheds, Ordering::Relaxed);
        g.exporters
            .store(self.admission.exporters() as u64, Ordering::Relaxed);
        g.exporters_evicted
            .store(a.exporters_evicted, Ordering::Relaxed);
        g.late_drops.store(dm.late_drops, Ordering::Relaxed);
    }

    /// Flushes the pipeline, ships residual window trees to the
    /// merger, and returns the lane's counters.
    fn finish(&mut self, error: Option<std::io::Error>) -> LaneDone {
        // `IngestPipeline::finish` consumes the pipeline; swap in a
        // throwaway so `self` stays usable for the final publish.
        let cfg = *self.pipeline.daemon().config();
        let pipeline = std::mem::replace(
            &mut self.pipeline,
            IngestPipeline::new(crate::daemon::SiteDaemon::new(cfg), 1),
        );
        let stats = *pipeline.stats();
        let decoder = pipeline.decoder_stats();
        let (rest, daemon) = pipeline.finish();
        for s in rest {
            let _ = self.events.send(LaneEvent::Closed {
                lane: self.idx,
                start_ms: s.window.start_ms,
                tree: Box::new(s.tree),
            });
        }
        // Final publish so the gauges match the report exactly.
        let g = &self.gauges;
        g.datagrams.store(self.datagrams, Ordering::Relaxed);
        g.packets.store(stats.packets, Ordering::Relaxed);
        g.decode_errors
            .store(stats.decode_errors, Ordering::Relaxed);
        g.records.store(stats.records, Ordering::Relaxed);
        g.late_drops
            .store(daemon.stats().late_drops, Ordering::Relaxed);
        LaneDone {
            datagrams: self.datagrams,
            pipeline: stats,
            decoder,
            admission: self.admission.stats(),
            daemon: *daemon.stats(),
            error,
        }
    }
}

/// Fanout mode's reader: drains the single socket and routes each
/// datagram to its exporter's lane over that lane's SPSC ring. A full
/// ring is backpressure (1 ms waits, counted against the lane), never
/// a silent drop — and when a lane is gone entirely (its thread
/// exited), the discarded datagram is counted in that lane's
/// `dead_drops` gauge so even that loss stays observable.
fn fanout_loop(
    socket: UdpSocket,
    recv: &mut BatchReceiver,
    mut producers: Vec<ring::Producer<(Vec<u8>, SocketAddr)>>,
    gauges: Vec<Arc<LaneGauges>>,
    stop: &AtomicBool,
) -> (Option<std::io::Error>, u64) {
    let lanes = producers.len();
    let mut waits = 0u64;
    let mut error = None;
    'listen: loop {
        let stopping = stop.load(Ordering::Relaxed);
        match recv.recv(&socket) {
            Ok(n) => {
                for i in 0..n {
                    let (payload, peer) = recv.datagram(i);
                    let lane = lane_of(&peer, lanes);
                    let mut item = (payload.to_vec(), peer);
                    loop {
                        match producers[lane].try_push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                if producers[lane].receiver_gone() {
                                    gauges[lane].dead_drops.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                item = back;
                                waits += 1;
                                gauges[lane]
                                    .backpressure_waits
                                    .fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stopping {
                    break 'listen;
                }
            }
            Err(e) => {
                error = Some(e);
                break 'listen;
            }
        }
        if stopping && socket.set_nonblocking(true).is_err() {
            break 'listen;
        }
    }
    // Dropping the producers tells each lane "no more datagrams".
    (error, waits)
}

/// The merger: collects per-lane window trees, emits each window —
/// merged via the paper's structural `merge_many` — once every lane
/// the merger is still hearing from has closed it (see the module
/// docs on idle-lane exclusion), and ships the encoded frames.
fn merger_loop(
    events: Receiver<LaneEvent>,
    cfg: DaemonConfig,
    lanes: usize,
    idle_lane_ms: u64,
    frames: Sender<Vec<u8>>,
    stop: Arc<AtomicBool>,
    gauges: Arc<MergerGauges>,
) -> MergerDone {
    let mut wins: BTreeMap<u64, Vec<FlowTree>> = BTreeMap::new();
    let mut wm = vec![0u64; lanes];
    // Wall clock of the last event heard from each lane; a lane quiet
    // for longer than `idle_lane_ms` stops holding back emission.
    let idle = Duration::from_millis(idle_lane_ms);
    let mut last_ev = vec![std::time::Instant::now(); lanes];
    // Exclusive emission horizon: every window below it has been
    // shipped, so a straggler tree arriving under it can only be
    // counted and dropped (re-emitting would replace the window
    // wholesale at the collector).
    let mut emitted_to = 0u64;
    let mut done = MergerDone {
        summaries: 0,
        summary_bytes: 0,
        frames_sent: 0,
        frames_dropped: 0,
        waits: 0,
    };
    let mut seq = 0u64;

    let horizon = |min_wm: u64| -> u64 {
        let span = cfg.window_ms;
        let current = min_wm / span * span;
        current.saturating_sub(span * (cfg.open_windows as u64 - 1))
    };

    // The same ship-or-drop discipline as the single-reader loop: a
    // full channel is backpressure until stop, then drops are counted.
    let emit = |start_ms: u64, trees: Vec<FlowTree>, done: &mut MergerDone, seq: &mut u64| {
        let mut trees = trees;
        let tree = if trees.len() == 1 {
            trees.pop().expect("one tree")
        } else {
            let mut out = FlowTree::new(cfg.schema, cfg.tree);
            let refs: Vec<&FlowTree> = trees.iter().collect();
            out.merge_many(&refs).expect("lanes share one schema");
            out
        };
        *seq += 1;
        let summary = Summary {
            site: cfg.site,
            window: WindowId {
                start_ms,
                span_ms: cfg.window_ms,
            },
            seq: *seq,
            kind: SummaryKind::Full,
            provenance: None,
            epoch: None,
            tree,
        };
        let mut frame = summary.encode();
        done.summaries += 1;
        done.summary_bytes += frame.len() as u64;
        loop {
            match frames.try_send(frame) {
                Ok(()) => {
                    done.frames_sent += 1;
                    break;
                }
                Err(TrySendError::Disconnected(_)) => {
                    done.frames_dropped += 1;
                    break;
                }
                Err(TrySendError::Full(f)) => {
                    if stop.load(Ordering::Relaxed) {
                        done.frames_dropped += 1;
                        break;
                    }
                    frame = f;
                    done.waits += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        gauges.summaries.store(done.summaries, Ordering::Relaxed);
        gauges
            .frames_sent
            .store(done.frames_sent, Ordering::Relaxed);
        gauges
            .frames_dropped
            .store(done.frames_dropped, Ordering::Relaxed);
        gauges.waits.store(done.waits, Ordering::Relaxed);
    };

    loop {
        // A timeout tick (no event) still falls through to the
        // emission pass below: that is what lets windows close once
        // idle lanes age out even though nothing new arrives.
        let ev = match events.recv_timeout(Duration::from_millis(100)) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match ev {
            Some(LaneEvent::Closed {
                lane,
                start_ms,
                tree,
            }) => {
                last_ev[lane] = std::time::Instant::now();
                if start_ms < emitted_to {
                    gauges.stale_windows.fetch_add(1, Ordering::Relaxed);
                    drop(tree);
                } else {
                    wins.entry(start_ms).or_default().push(*tree);
                }
            }
            Some(LaneEvent::Watermark { lane, ts }) => {
                last_ev[lane] = std::time::Instant::now();
                if ts > wm[lane] {
                    wm[lane] = ts;
                }
            }
            None => {}
        }
        // Effective watermark: minimum over lanes heard from within
        // the idle timeout; with every lane idle, the maximum stands
        // in — exactly the watermark one reader would have computed
        // over the same records, since nothing is in flight anywhere.
        let now = std::time::Instant::now();
        let eff_wm = wm
            .iter()
            .zip(&last_ev)
            .filter(|&(_, t)| idle_lane_ms == 0 || now.duration_since(*t) < idle)
            .map(|(&w, _)| w)
            .min()
            .unwrap_or_else(|| wm.iter().copied().max().unwrap_or(0));
        let h = horizon(eff_wm);
        if h > emitted_to {
            emitted_to = h;
        }
        // Emit below `emitted_to`, not `h`: an idle lane rejoining
        // with a lower watermark can pull `h` back down, but shipped
        // windows stay shipped and buffered ones keep their horizon.
        while let Some((&w, _)) = wins.iter().next() {
            if w >= emitted_to {
                break;
            }
            let trees = wins.remove(&w).expect("window present");
            emit(w, trees, &mut done, &mut seq);
        }
    }
    // Every lane finished (senders dropped): emit residual windows,
    // oldest first — the merger-side analogue of `SiteDaemon::flush`.
    let residual: Vec<u64> = wins.keys().copied().collect();
    for w in residual {
        let trees = wins.remove(&w).expect("window present");
        emit(w, trees, &mut done, &mut seq);
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{DaemonConfig, SiteDaemon};
    use crate::net::export_netflow;
    use crate::Collector;
    use crossbeam::channel;
    use flowkey::Schema;
    use flownet::FlowRecord;
    use flowtree_core::Config;

    fn mk_pipeline(window_ms: u64) -> impl FnMut(usize) -> IngestPipeline {
        move |_lane| {
            let mut cfg = DaemonConfig::new(7);
            cfg.window_ms = window_ms;
            cfg.schema = Schema::five_feature();
            cfg.tree = Config::with_budget(4_096);
            cfg.transfer = TransferMode::Full;
            IngestPipeline::new(SiteDaemon::new(cfg), 64)
        }
    }

    fn record(ts_ms: u64, host: u8, packets: u64) -> FlowRecord {
        let mut r = FlowRecord::v4(
            [10, 7, 0, host],
            [192, 0, 2, 1],
            1234,
            443,
            6,
            packets,
            packets * 100,
        );
        r.first_ms = ts_ms;
        r.last_ms = ts_ms;
        r
    }

    fn run_engine(opts: LaneOptions, senders: usize) -> (IngestReport, Vec<Vec<u8>>, usize) {
        let (tx, rx) = channel::bounded::<Vec<u8>>(256);
        let handle = spawn_multi_lane_ingest("127.0.0.1:0", mk_pipeline(1_000), tx, opts).unwrap();
        let to = handle.local_addr();
        let reuse = handle.is_reuseport() as usize;
        // `senders` exporters, each with its own socket (distinct
        // source ports; under reuseport the kernel spreads them).
        for s in 0..senders {
            let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
            let records: Vec<FlowRecord> = (0..30)
                .map(|i| {
                    record(
                        (i / 10) * 1_000 + 100 + i,
                        (s * 8 + (i % 8) as usize) as u8,
                        2,
                    )
                })
                .collect();
            export_netflow(&sock, to, &records, 10_000).unwrap();
        }
        // Let delivery settle before stopping (loopback is fast, but
        // the reuseport fanout can land on any lane).
        std::thread::sleep(Duration::from_millis(120));
        let report = handle.stop();
        let frames: Vec<Vec<u8>> = rx.try_iter().collect();
        (report, frames, reuse)
    }

    fn check(report: &IngestReport, frames: &[Vec<u8>], senders: u64) {
        assert!(report.error.is_none());
        assert_eq!(report.pipeline.records, senders * 30);
        assert_eq!(report.daemon.records, senders * 30);
        assert_eq!(report.daemon.late_drops, 0);
        // The edge identity, summed over lanes.
        assert_eq!(
            report.datagrams,
            report.pipeline.packets + report.pipeline.decode_errors + report.admission.packet_drops
        );
        assert_eq!(report.frames_dropped, 0);
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(8_192));
        for f in frames {
            collector.apply_bytes(f).unwrap();
        }
        assert_eq!(
            collector.merged(None, 0, u64::MAX).total().packets as u64,
            senders * 60,
            "all mass survives the lane merge"
        );
    }

    #[test]
    fn single_lane_behaves_like_the_classic_loop() {
        let (report, frames, _) = run_engine(LaneOptions::default(), 1);
        check(&report, &frames, 1);
        assert_eq!(report.daemon.summaries, 3);
    }

    #[test]
    fn multi_lane_reuseport_conserves_every_record() {
        let opts = LaneOptions {
            lanes: 4,
            ..LaneOptions::default()
        };
        let (report, frames, _) = run_engine(opts, 4);
        check(&report, &frames, 4);
    }

    #[test]
    fn fanout_ring_mode_conserves_every_record() {
        let opts = LaneOptions {
            lanes: 3,
            reuseport: false,
            ..LaneOptions::default()
        };
        let (report, frames, reuse) = run_engine(opts, 4);
        assert_eq!(reuse, 0, "reuseport disabled selects fanout mode");
        check(&report, &frames, 4);
    }

    #[test]
    fn fanout_with_forced_fallback_recv_conserves_every_record() {
        let opts = LaneOptions {
            lanes: 2,
            reuseport: false,
            force_fallback_recv: true,
            ..LaneOptions::default()
        };
        let (report, frames, _) = run_engine(opts, 3);
        check(&report, &frames, 3);
    }

    #[test]
    fn idle_lanes_do_not_stall_emission() {
        let (tx, rx) = channel::bounded::<Vec<u8>>(64);
        let opts = LaneOptions {
            lanes: 4,
            // Fanout mode hashes by exporter IP: one exporter lands on
            // exactly one lane and the other three stay idle forever —
            // the regression scenario where the minimum watermark used
            // to pin emission at zero until shutdown.
            reuseport: false,
            idle_lane_ms: 100,
            ..LaneOptions::default()
        };
        let handle = spawn_multi_lane_ingest("127.0.0.1:0", mk_pipeline(1_000), tx, opts).unwrap();
        let to = handle.local_addr();
        let view = handle.view();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let mut live_frame = false;
        for round in 0..40u64 {
            let records: Vec<FlowRecord> = (0..5)
                .map(|i| record(round * 1_000 + 100 + i, (i % 8) as u8, 1))
                .collect();
            export_netflow(&sock, to, &records, 10_000).unwrap();
            std::thread::sleep(Duration::from_millis(50));
            if rx.try_recv().is_ok() {
                live_frame = true;
                break;
            }
        }
        assert!(
            live_frame,
            "windows must close while three of four lanes sit idle"
        );
        assert_eq!(view.merger_stale_windows(), 0);
        let report = handle.stop();
        assert!(report.error.is_none());
        assert_eq!(report.daemon.late_drops, 0);
        assert!(report.daemon.summaries >= 1);
    }

    #[test]
    fn gauges_aggregate_across_lanes() {
        let (tx, rx) = channel::bounded::<Vec<u8>>(64);
        let opts = LaneOptions {
            lanes: 2,
            reuseport: false,
            ..LaneOptions::default()
        };
        let handle = spawn_multi_lane_ingest("127.0.0.1:0", mk_pipeline(1_000), tx, opts).unwrap();
        let to = handle.local_addr();
        let view = handle.view();
        assert_eq!(view.lanes(), 2);
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let records: Vec<FlowRecord> = (0..10).map(|i| record(100 + i, i as u8, 1)).collect();
        export_netflow(&sock, to, &records, 10_000).unwrap();
        // Wait until the engine has seen the datagram.
        for _ in 0..100 {
            if view.snapshot().datagrams >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let snap = view.snapshot();
        assert!(snap.datagrams >= 1);
        assert_eq!(
            snap.datagrams,
            view.lane(0).datagrams + view.lane(1).datagrams,
            "aggregate is the lane sum"
        );
        let report = handle.stop();
        assert_eq!(report.pipeline.records, 10);
        drop(rx);
    }

    #[test]
    fn stop_with_no_traffic_is_clean() {
        let (tx, rx) = channel::bounded::<Vec<u8>>(8);
        let opts = LaneOptions {
            lanes: 4,
            ..LaneOptions::default()
        };
        let handle = spawn_multi_lane_ingest("127.0.0.1:0", mk_pipeline(1_000), tx, opts).unwrap();
        let report = handle.stop();
        assert!(report.error.is_none());
        assert_eq!(report.datagrams, 0);
        assert_eq!(report.daemon.summaries, 0);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn full_undrained_channel_does_not_deadlock_stop() {
        let (tx, rx) = channel::bounded::<Vec<u8>>(1);
        let opts = LaneOptions {
            lanes: 2,
            reuseport: false,
            ..LaneOptions::default()
        };
        let handle = spawn_multi_lane_ingest("127.0.0.1:0", mk_pipeline(1_000), tx, opts).unwrap();
        let to = handle.local_addr();
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        let records: Vec<FlowRecord> = (0..5).map(|w| record(w * 1_000 + 100, 1, 1)).collect();
        export_netflow(&sock, to, &records, 10_000).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        let report = handle.stop();
        assert_eq!(
            report.frames_sent + report.frames_dropped,
            report.daemon.summaries,
            "every summary is accounted for"
        );
        drop(rx);
    }

    #[test]
    fn pin_cores_knob_pins_and_unpins_live() {
        let knobs = Arc::new(AdmissionKnobs::default());
        let (tx, _rx) = channel::bounded::<Vec<u8>>(64);
        let opts = LaneOptions {
            lanes: 1,
            knobs: Arc::clone(&knobs),
            ..LaneOptions::default()
        };
        let handle = spawn_multi_lane_ingest("127.0.0.1:0", mk_pipeline(1_000), tx, opts).unwrap();
        let view = handle.view();
        knobs.set_pin_cores(true);
        let want = cfg!(target_os = "linux");
        for _ in 0..100 {
            if view.lane(0).pinned == want {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(view.lane(0).pinned, want);
        knobs.set_pin_cores(false);
        for _ in 0..100 {
            if !view.lane(0).pinned {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!view.lane(0).pinned, "reload-off unpins a live lane");
        handle.stop();
    }
}
