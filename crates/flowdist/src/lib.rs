//! # flowdist — the distributed flow-summarization system
//!
//! The system sketched in the paper's Fig. 1 and future-work section:
//! routers export flows (NetFlow/IPFIX) to per-site **Flowtree
//! daemons**, daemons maintain time-windowed trees and ship compact
//! summaries — or deltas of consecutive summaries — to a central
//! **collector**, which reconstructs, stores, and answers distributed
//! queries across sites and time, and raises **alarms** on significant
//! window-over-window differences.
//!
//! * [`SiteDaemon`] — windowed summarization at one site, with
//!   optional sharded parallel ingest (`DaemonConfig::shards`).
//! * [`ShardedTree`] — fans updates across N per-core Flowtrees keyed
//!   by the flow-key hash and folds them with the paper's §2 `merge`
//!   operator (complementary popularities are additive, so node-wise
//!   merging of shard summaries reconstructs the unsharded summary);
//!   the emitted wire bytes are shape-identical to an unsharded tree.
//!   Parallel batches run on persistent per-shard worker threads with
//!   bounded queues (no per-batch thread spawn); every read drains the
//!   queues first, so folds are byte-identical to sequential ingest.
//! * [`pipeline`] — the streaming ingest loop: raw NetFlow v5/v9/IPFIX
//!   exporter payloads are decoded ([`flownet::ExportDecoder`]),
//!   bucketed per open window by each record's own timestamp, and fed
//!   to the daemon in batches with actual wire-byte accounting.
//! * [`Summary`] — the wire artifact (full or delta), with a validated
//!   codec.
//! * [`Collector`] — storage, delta reconstruction, distributed merge
//!   queries, transfer accounting, and the lifted time+site mega-tree.
//! * [`alarm`] — change detection on diff trees.
//! * [`sim`] — the whole pipeline end-to-end, single-threaded or one
//!   thread per site.
//! * [`store`] — the on-disk summary database (atomic writes,
//!   re-validated loads, retention).
//! * [`net`] — UDP NetFlow ingestion and TCP summary framing over real
//!   sockets.
//! * [`control`] — the reverse channel of the acknowledged export
//!   path: per-frame acks and rebase-requests, version-gated so
//!   pre-handshake peers interoperate unchanged.
//! * [`framing`] — the one copy of the length-prefixed TCP framing
//!   (`read_frame`/`write_frame`/`FramedConn`) every TCP surface in
//!   flowdist *and* flowrelay speaks.
//! * [`admission`] — per-exporter token-bucket quotas over a bounded
//!   exporter table, with live-reloadable knobs shared between the
//!   ingest loop and the ops endpoint.
//! * [`lane`] — the multi-lane ingest edge: N `SO_REUSEPORT`
//!   listen→decode→pipeline lanes (batched `recvmmsg`, lane-local
//!   admission and template caches, opt-in core pinning) merged
//!   lane→site only at window close via the paper's structural
//!   `merge`, so the hot path takes zero cross-lane locks.
//! * [`mrecv`] — batched UDP receive (`recvmmsg`) behind a reusable
//!   buffer arena, with a portable single-datagram fallback.
//! * [`ring`] — the lock-free SPSC ring the portable fallback uses to
//!   fan one socket out to N lanes.
//! * [`faultnet`] — a seeded hostile-exporter generator (template
//!   floods, oversized fields, missing templates, truncation, garbage)
//!   for deterministic fault-injection tests.
//! * [`ops`] — the tiny plaintext HTTP/1.0 health/stats/reload
//!   endpoint every fleet node serves.
//! * [`runtime`] — the site-node runtime: UDP ingest + upstream TCP
//!   forwarder + ops endpoint behind one `start`/`drain` handle, so a
//!   launcher boots a site from a spec line.
//! * [`spill`] — disk-backed queue of unacked export frames
//!   (append-only CRC-checked segments with an acked-floor ledger), so
//!   pending exports survive process death.

// `deny` rather than `forbid`: the exceptions are the scoped
// `#[allow(unsafe_code)]` seams in `sockopt` (raw setsockopt /
// getsockopt / SO_REUSEPORT bind / sched_setaffinity — std has no
// safe API for any of them), `mrecv` (the batched `recvmmsg(2)`
// syscall), and `ring` (the SPSC slot cells whose soundness the
// split Producer/Consumer types enforce).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod alarm;
pub mod collector;
pub mod control;
pub mod daemon;
pub mod faultnet;
pub mod framing;
pub mod lane;
pub mod listen;
pub mod mrecv;
pub mod net;
pub mod ops;
pub mod pipeline;
pub mod ring;
pub mod runtime;
pub mod shard;
pub mod sim;
pub mod sockopt;
pub mod spill;
pub mod store;
pub mod summary;
pub mod window;
mod worker;

pub use admission::{AdmissionConfig, AdmissionControl, AdmissionKnobs, AdmissionStats};
pub use alarm::{AlarmConfig, AlarmEvent, Direction};
pub use collector::{Collector, TransferLedger, ViewCacheStats};
pub use control::{ControlFrame, SlotPos, FEATURE_ACKS};
pub use daemon::{DaemonConfig, DaemonStats, SiteDaemon, TransferMode};
pub use framing::{FramedConn, MAX_FRAME};
pub use lane::{LaneOptions, LaneSnapshot, MultiIngestHandle};
pub use listen::{
    spawn_udp_ingest, spawn_udp_ingest_with, IngestGauges, IngestOptions, IngestReport,
    IngestSnapshot, UdpIngestHandle,
};
pub use mrecv::{BatchReceiver, MAX_RECV_BATCH};
pub use pipeline::{IngestPipeline, PipelineStats};
pub use runtime::{SiteDrainReport, SiteNodeConfig, SiteRuntime};
pub use shard::ShardedTree;
pub use sim::{SimConfig, SimReport, SiteRun};
pub use spill::{FsyncPolicy, SpillConfig, SpillQueue, SpillStats};
pub use store::{LoadReport, SummaryStore};
pub use summary::{EpochHeader, Summary, SummaryKind};
pub use window::WindowId;

use flowtree_core::CodecError;

/// Errors of the distributed layer.
#[derive(Debug)]
pub enum DistError {
    /// A frame failed structural validation.
    BadFrame(&'static str),
    /// The inner tree failed to decode.
    Codec(CodecError),
    /// Summary schema does not match the collector's schema.
    SchemaMismatch,
    /// A delta arrived with no reconstructed base window for its site.
    MissingDeltaBase {
        /// The site whose base is missing.
        site: u16,
    },
    /// A version-3 frame's epoch handshake failed: a delta declared a
    /// base epoch the collector does not hold for that `(window,
    /// exporter)` slot, or a full re-export did not advance the stored
    /// epoch — an out-of-order or orphaned increment, rejected so it
    /// can never compose onto the wrong base.
    EpochMismatch {
        /// The exporter whose frame was rejected.
        site: u16,
        /// The epoch stored for the slot (0 = none / pre-epoch frame).
        have: u64,
        /// The epoch the frame demanded (a delta's declared base, or a
        /// full frame's non-advancing epoch).
        got: u64,
    },
    /// Socket-level failure.
    Io(std::io::Error),
}

impl From<CodecError> for DistError {
    fn from(e: CodecError) -> Self {
        DistError::Codec(e)
    }
}

impl core::fmt::Display for DistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DistError::BadFrame(w) => write!(f, "bad frame: {w}"),
            DistError::Codec(e) => write!(f, "tree codec: {e}"),
            DistError::SchemaMismatch => f.write_str("schema mismatch"),
            DistError::MissingDeltaBase { site } => {
                write!(f, "delta without base window for site {site}")
            }
            DistError::EpochMismatch { site, have, got } => {
                write!(
                    f,
                    "epoch handshake failed for site {site}: stored {have}, frame demanded {got}"
                )
            }
            DistError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for DistError {}
