//! The streaming ingest pipeline: raw exporter payloads → decoded flow
//! records → per-window batches → [`SiteDaemon`].
//!
//! This is the daemon-side loop of the paper's Fig. 1 deployment
//! ("each router exports its data to a close-by Flowtree daemon"):
//! routers push NetFlow v5/v9/IPFIX packets; the pipeline decodes them
//! through one [`flownet::ExportDecoder`] (template caches included),
//! stamps every record with **its own** event time, canonicalizes and
//! hashes each flow key exactly once, buckets records by open window,
//! and feeds the daemon in batches through
//! [`SiteDaemon::ingest_prehashed_batch`] instead of per-record calls —
//! so the sharded worker pool sees real batches routed by the carried
//! hash and neither per-record call overhead nor flush-time re-hashing
//! survives on the hot path.
//!
//! Window correctness: buckets flush **oldest window first**, and a
//! bucket reaching the batch threshold flushes every older bucket
//! ahead of itself. The daemon's watermark therefore never advances
//! past records still buffered in the pipeline, and a record near a
//! window boundary lands in the window its own timestamp names — not
//! the window of whichever packet it happened to share a batch with.
//!
//! Accounting: the pipeline sees the wire, so it reports **actual**
//! export-packet bytes per format to the daemon
//! ([`SiteDaemon::note_raw_bytes`]) rather than the NetFlow
//! v5-equivalent estimate used by pre-decoded ingest paths.

use crate::daemon::SiteDaemon;
use crate::summary::Summary;
use crate::window::WindowId;
use flowkey::{key_hash, FlowKey};
use flowmetrics::{Histogram, Stopwatch};
use flownet::{DecoderLimits, DecoderStats, ExportDecoder, ExportFormat, FlowRecord};
use flowtree_core::Popularity;
use std::collections::BTreeMap;

/// Default per-window batch size before a flush to the daemon.
pub const DEFAULT_BATCH: usize = 4_096;

/// Hard cap on total buffered records, in units of the batch size:
/// when `buffered() >= batch × MAX_BUFFERED_BATCHES`, everything
/// flushes to the daemon regardless of bucket fill. An exporter with a
/// broken clock (or a hostile one) scattering timestamps across many
/// distinct old windows would otherwise grow one under-filled bucket
/// per window without ever tripping the size or cadence triggers.
pub const MAX_BUFFERED_BATCHES: usize = 4;

/// Counters the pipeline keeps about its own work.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Export packets decoded successfully.
    pub packets: u64,
    /// NetFlow v5 packets among them.
    pub packets_v5: u64,
    /// NetFlow v9 packets among them.
    pub packets_v9: u64,
    /// IPFIX messages among them.
    pub packets_ipfix: u64,
    /// Payloads that failed to decode (malformed or unknown version).
    pub decode_errors: u64,
    /// Flow records extracted from decoded packets.
    pub records: u64,
    /// Actual on-the-wire export bytes of decoded packets.
    pub wire_bytes: u64,
    /// Batches handed to the daemon.
    pub batches: u64,
    /// Under-filled window buckets force-flushed (oldest first) to
    /// honor the open-window budget under memory pressure.
    pub window_sheds: u64,
}

/// Streaming decode→bucket→batch front end for one [`SiteDaemon`].
#[derive(Debug)]
pub struct IngestPipeline {
    daemon: SiteDaemon,
    decoder: ExportDecoder,
    batch: usize,
    /// Per open window: records stamped with their own event time and
    /// carrying their canonicalized key's hash — computed exactly once
    /// here at push time, so flush-time shard routing re-hashes
    /// nothing.
    pending: BTreeMap<u64, Vec<(u64, u64, FlowKey, Popularity)>>,
    /// Start of the newest window any record has reached.
    newest_window: u64,
    /// Max distinct open window buckets (0 = unbounded); exceeding it
    /// sheds the oldest bucket to the daemon.
    max_open_windows: usize,
    stats: PipelineStats,
    /// Per-packet decode latency, when the owner wired a registry.
    decode_hist: Option<Histogram>,
    /// Per-batch flush latency (one `ingest_stamped_batch` call).
    flush_hist: Option<Histogram>,
}

impl IngestPipeline {
    /// Wraps `daemon` with a streaming front end flushing `batch`
    /// records per window bucket (clamped to ≥ 1), with default
    /// [`DecoderLimits`].
    pub fn new(daemon: SiteDaemon, batch: usize) -> IngestPipeline {
        IngestPipeline::with_limits(daemon, batch, DecoderLimits::default())
    }

    /// Like [`IngestPipeline::new`] with explicit decoder hardening
    /// limits for the template caches.
    pub fn with_limits(daemon: SiteDaemon, batch: usize, limits: DecoderLimits) -> IngestPipeline {
        IngestPipeline {
            daemon,
            decoder: ExportDecoder::with_limits(limits),
            batch: batch.max(1),
            pending: BTreeMap::new(),
            newest_window: 0,
            max_open_windows: 0,
            stats: PipelineStats::default(),
            decode_hist: None,
            flush_hist: None,
        }
    }

    /// Attaches hot-path latency histograms: `decode` observes each
    /// export-packet decode, `flush` each batch handed to the daemon.
    /// Timing costs one `Instant` pair per packet/batch and is
    /// compiled out entirely without the `hot-timers` feature.
    pub fn set_latency_instruments(&mut self, decode: Histogram, flush: Histogram) {
        self.decode_hist = Some(decode);
        self.flush_hist = Some(flush);
    }

    /// The wrapped daemon (stats, open windows).
    pub fn daemon(&self) -> &SiteDaemon {
        &self.daemon
    }

    /// Pipeline-side work counters.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// The decoder's hardening counters (template cache activity,
    /// records dropped for lack of a template).
    pub fn decoder_stats(&self) -> DecoderStats {
        self.decoder.stats()
    }

    /// Toggles core pinning for the daemon's shard worker pools (the
    /// `pin-cores` knob's live-reload path; applies from the next
    /// window's pool on).
    pub fn set_pin_workers(&mut self, pin: bool) {
        self.daemon.set_pin_workers(pin);
    }

    /// Sets the open-window budget: more than `windows` distinct
    /// buffered window buckets sheds the oldest to the daemon
    /// (0 = unbounded). Live-reloadable; takes effect on the next
    /// record.
    pub fn set_max_open_windows(&mut self, windows: usize) {
        self.max_open_windows = windows;
    }

    /// Records currently buffered (not yet handed to the daemon).
    pub fn buffered(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Distinct window buckets currently open in the pipeline.
    pub fn open_windows(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one raw exporter payload (NetFlow v5/v9 or IPFIX,
    /// auto-detected; template caches persist across packets). Returns
    /// summaries of any windows that closed as a consequence. Malformed
    /// payloads are counted, not fatal — the loop must survive router
    /// reboots and hostile probes.
    pub fn push_packet(&mut self, payload: &[u8]) -> Vec<Summary> {
        match self.decode_packet_at(payload, 0) {
            Some(records) => self.push_records(&records),
            None => Vec::new(),
        }
    }

    /// Decode-only half of [`IngestPipeline::push_packet`]: counts the
    /// packet (or the decode error) and its wire bytes, advances the
    /// template caches' clock to `now_ms`, and hands the records back
    /// **without** ingesting them — so a caller can apply per-exporter
    /// admission control between decode and
    /// [`IngestPipeline::push_records`]. `None` means the payload was
    /// malformed (already counted).
    pub fn decode_packet_at(&mut self, payload: &[u8], now_ms: u64) -> Option<Vec<FlowRecord>> {
        let sw = self.decode_hist.as_ref().map(|_| Stopwatch::start());
        let decoded = flownet::decode_export_packet_at(&mut self.decoder, payload, now_ms);
        if let (Some(sw), Some(h)) = (sw, &self.decode_hist) {
            sw.observe(h);
        }
        match decoded {
            Ok((format, records)) => {
                self.stats.packets += 1;
                match format {
                    ExportFormat::NetflowV5 => self.stats.packets_v5 += 1,
                    ExportFormat::NetflowV9 => self.stats.packets_v9 += 1,
                    ExportFormat::Ipfix => self.stats.packets_ipfix += 1,
                }
                self.stats.wire_bytes += payload.len() as u64;
                self.daemon.note_raw_bytes(payload.len() as u64);
                Some(records)
            }
            Err(_) => {
                self.stats.decode_errors += 1;
                None
            }
        }
    }

    /// Feeds already-decoded records (e.g. from a socket listener that
    /// decodes in place), bucketing each by its own end timestamp.
    ///
    /// Three triggers hand buckets to the daemon: a bucket reaching
    /// the batch threshold; event time entering a **new** window (every
    /// bucket older than the newest window then flushes even if
    /// under-filled, so a low-rate stream still emits summaries on
    /// window cadence); and total buffering hitting the
    /// [`MAX_BUFFERED_BATCHES`] hard cap, which flushes everything —
    /// the daemon then applies its own late-drop policy — so buffered
    /// memory stays bounded even against timestamps scattered across
    /// arbitrarily many stale windows.
    pub fn push_records(&mut self, records: &[FlowRecord]) -> Vec<Summary> {
        let mut out = Vec::new();
        let span = self.daemon.config().window_ms;
        let mut flush_up_to: Option<u64> = None;
        let raise = |w: u64, flush_up_to: &mut Option<u64>| {
            *flush_up_to = Some(flush_up_to.map_or(w, |have: u64| have.max(w)));
        };
        let schema = self.daemon.config().schema;
        for r in records {
            self.stats.records += 1;
            let ts = r.last_ms;
            let start_ms = WindowId::containing(ts, span).start_ms;
            if start_ms > self.newest_window {
                // Event time crossed into a new window: everything
                // older can only gather stragglers now — flush it.
                if self.newest_window > 0 || !self.pending.is_empty() {
                    raise(self.newest_window, &mut flush_up_to);
                }
                self.newest_window = start_ms;
            }
            // Canonicalize + hash once, here; the hash rides with the
            // record so the daemon's shard router and the tree index
            // both reuse it.
            let key = schema.canonicalize(&r.flow_key());
            let hash = key_hash(&key);
            let bucket = self.pending.entry(start_ms).or_default();
            bucket.push((ts, hash, key, Popularity::flow(r.packets, r.bytes)));
            if bucket.len() >= self.batch {
                raise(start_ms, &mut flush_up_to);
            }
        }
        if let Some(newest) = flush_up_to {
            self.flush_through(newest, &mut out);
        }
        if self.buffered() >= self.batch.saturating_mul(MAX_BUFFERED_BATCHES) {
            self.flush_through(u64::MAX, &mut out);
        }
        // Open-window budget: a hostile clock scattering records over
        // many distinct windows grows one bucket per window; past the
        // budget, shed the oldest bucket (the daemon applies its own
        // late-drop policy) so bucket count — not just record count —
        // stays bounded.
        while self.max_open_windows > 0 && self.pending.len() > self.max_open_windows {
            let oldest = *self.pending.keys().next().expect("non-empty");
            let items = self.pending.remove(&oldest).expect("bucket present");
            self.stats.batches += 1;
            self.stats.window_sheds += 1;
            self.ingest_batch(&items, &mut out);
        }
        out
    }

    /// Hands every buffered bucket to the daemon, oldest window first,
    /// regardless of fill level. Does not close windows beyond what the
    /// advancing watermark closes on its own.
    pub fn flush_batches(&mut self) -> Vec<Summary> {
        let mut out = Vec::new();
        self.flush_through(u64::MAX, &mut out);
        out
    }

    /// Flushes all buffered batches, closes every open window, and
    /// hands the daemon back. Oldest windows flush and close first.
    pub fn finish(mut self) -> (Vec<Summary>, SiteDaemon) {
        let mut out = self.flush_batches();
        out.extend(self.daemon.flush());
        (out, self.daemon)
    }

    /// Flushes buckets for every window ≤ `newest`, oldest first —
    /// older stragglers always reach the daemon before a newer batch
    /// can advance the watermark over them.
    fn flush_through(&mut self, newest: u64, out: &mut Vec<Summary>) {
        let starts: Vec<u64> = self
            .pending
            .range(..=newest)
            .map(|(start, _)| *start)
            .collect();
        for start in starts {
            let items = self.pending.remove(&start).expect("bucket present");
            self.stats.batches += 1;
            self.ingest_batch(&items, out);
        }
    }

    /// One timed batch handed to the daemon (prehashed fast path).
    fn ingest_batch(&mut self, items: &[(u64, u64, FlowKey, Popularity)], out: &mut Vec<Summary>) {
        let sw = self.flush_hist.as_ref().map(|_| Stopwatch::start());
        out.extend(self.daemon.ingest_prehashed_batch(items));
        if let (Some(sw), Some(h)) = (sw, &self.flush_hist) {
            sw.observe(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{DaemonConfig, TransferMode};
    use flowtree_core::Config;

    fn pipeline(window_ms: u64, batch: usize, shards: usize) -> IngestPipeline {
        let mut cfg = DaemonConfig::new(3);
        cfg.window_ms = window_ms;
        cfg.transfer = TransferMode::Full;
        cfg.tree = Config::with_budget(512);
        cfg.shards = shards;
        IngestPipeline::new(SiteDaemon::new(cfg), batch)
    }

    fn record(ts_ms: u64, host: u8, packets: u64) -> FlowRecord {
        let mut r = FlowRecord::v4(
            [10, 0, 0, host],
            [192, 0, 2, 1],
            1234,
            443,
            6,
            packets,
            packets * 100,
        );
        r.first_ms = ts_ms.saturating_sub(5);
        r.last_ms = ts_ms;
        r
    }

    #[test]
    fn v5_packets_flow_end_to_end() {
        let mut p = pipeline(1_000, 8, 2);
        let records: Vec<FlowRecord> = (0..20).map(|i| record(100 + i * 10, i as u8, 2)).collect();
        for chunk in records.chunks(5) {
            let pkt = flownet::netflow5::encode(chunk, 1_000, 0);
            assert!(p.push_packet(&pkt).is_empty());
        }
        assert_eq!(p.stats().packets_v5, 4);
        assert_eq!(p.stats().records, 20);
        assert!(p.stats().wire_bytes > 0);
        let (summaries, daemon) = p.finish();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].tree.total().packets, 40);
        assert_eq!(daemon.stats().records, 20);
        // Actual v5 wire bytes: 4 packets × (24 header + 5 × 48).
        assert_eq!(daemon.stats().raw_bytes, 4 * (24 + 5 * 48));
    }

    #[test]
    fn records_near_a_boundary_land_in_their_own_windows() {
        let mut p = pipeline(1_000, 64, 1);
        // One v5 packet whose records straddle the window boundary —
        // the single-stamp batch path misattributed exactly this case.
        let records = vec![record(950, 1, 3), record(1_050, 2, 5)];
        let pkt = flownet::netflow5::encode(&records, 2_000, 0);
        p.push_packet(&pkt);
        let (summaries, daemon) = p.finish();
        assert_eq!(daemon.stats().late_drops, 0);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].window.start_ms, 0);
        assert_eq!(summaries[0].tree.total().packets, 3);
        assert_eq!(summaries[1].window.start_ms, 1_000);
        assert_eq!(summaries[1].tree.total().packets, 5);
    }

    #[test]
    fn full_buckets_flush_older_stragglers_first() {
        let mut p = pipeline(1_000, 4, 1);
        // A straggler in window 0, then enough window-1 records to trip
        // the batch threshold: the straggler must reach the daemon
        // before window 1's batch advances the watermark.
        let mut records = vec![record(900, 9, 1)];
        records.extend((0..4).map(|i| record(1_100 + i, i as u8, 1)));
        p.push_records(&records);
        assert_eq!(p.buffered(), 0, "both buckets flushed");
        assert!(p.stats().batches >= 2);
        let (summaries, daemon) = p.finish();
        assert_eq!(daemon.stats().late_drops, 0);
        let total: i64 = summaries.iter().map(|s| s.tree.total().packets).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn low_rate_streams_flush_on_window_cadence() {
        // Batch threshold far above the rate: flushing must ride the
        // window cadence instead, keeping buffered memory bounded and
        // summaries coming.
        let mut p = pipeline(1_000, 4_096, 1);
        let mut closed = Vec::new();
        for w in 0u64..5 {
            for i in 0..3u64 {
                closed.extend(p.push_records(&[record(w * 1_000 + 100 + i, w as u8, 1)]));
            }
        }
        assert_eq!(p.buffered(), 3, "only the newest window still buffers");
        assert!(p.stats().batches >= 4, "each window advance flushed");
        assert!(
            !closed.is_empty(),
            "summaries emitted mid-stream, not only at finish"
        );
        let (rest, daemon) = p.finish();
        closed.extend(rest);
        assert_eq!(daemon.stats().records, 15);
        assert_eq!(daemon.stats().late_drops, 0);
        let total: i64 = closed.iter().map(|s| s.tree.total().packets).sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn malformed_payloads_are_survived_and_counted() {
        let mut p = pipeline(1_000, 8, 1);
        assert!(p.push_packet(b"definitely not netflow").is_empty());
        assert!(p.push_packet(&[]).is_empty());
        assert_eq!(p.stats().decode_errors, 2);
        assert_eq!(p.stats().packets, 0);
        let pkt = flownet::netflow5::encode(&[record(10, 1, 1)], 100, 0);
        p.push_packet(&pkt);
        let (_, daemon) = p.finish();
        assert_eq!(daemon.stats().records, 1);
    }

    #[test]
    fn scattered_stale_timestamps_cannot_grow_the_buffer_unboundedly() {
        let mut p = pipeline(1_000, 8, 1);
        // Anchor the newest window far ahead of the stale records.
        p.push_records(&[record(1_000_000, 1, 1)]);
        // A broken-clock exporter: every record in a distinct stale
        // window, never filling a bucket, never advancing the newest
        // window — only the hard cap can flush these.
        for i in 0..200u64 {
            p.push_records(&[record(i * 1_000 + 5, 2, 1)]);
            assert!(
                p.buffered() <= 8 * MAX_BUFFERED_BATCHES,
                "hard cap bounds buffering"
            );
        }
        let (_, daemon) = p.finish();
        assert_eq!(
            daemon.stats().records,
            201,
            "every record reached the daemon"
        );
        assert!(
            daemon.stats().late_drops > 0,
            "stale records are dropped by daemon policy, not buffered forever"
        );
    }

    #[test]
    fn mixed_dialects_share_one_pipeline() {
        let mut p = pipeline(1_000, 128, 2);
        let recs: Vec<FlowRecord> = (0..6).map(|i| record(200 + i, i as u8, 1)).collect();
        p.push_packet(&flownet::netflow5::encode(&recs[..2], 500, 0));
        p.push_packet(&flownet::netflow9::encode(&recs[2..4], 500, 1, 7));
        p.push_packet(&flownet::ipfix::encode_message(&recs[4..], 1, 2, 7, true));
        let s = p.stats();
        assert_eq!((s.packets_v5, s.packets_v9, s.packets_ipfix), (1, 1, 1));
        assert_eq!(s.records, 6);
        let (summaries, _) = p.finish();
        let total: i64 = summaries.iter().map(|s| s.tree.total().packets).sum();
        assert_eq!(total, 6);
    }
}
