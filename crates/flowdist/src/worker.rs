//! Persistent per-shard ingest workers.
//!
//! PR 1's `ShardedTree::par_insert_batch` spawned one scoped OS thread
//! per shard *per batch*; at daemon batch rates (thousands of batches
//! per window) the spawn/join cost dominates. A [`WorkerPool`] instead
//! keeps one long-lived thread per shard, fed through a bounded
//! per-shard queue of pre-hashed buckets. Each worker owns exclusive
//! responsibility for one shard tree (shared as `Arc<Mutex<FlowTree>>`
//! so readers can fold after a drain), applies buckets strictly in
//! submission order, and acknowledges barriers only after every earlier
//! bucket has been applied.
//!
//! Determinism: per shard there is exactly one consumer draining a FIFO
//! queue, so buckets land in submission order — the same order the
//! sequential path applies them — and `fold`/`into_tree` after a
//! [`WorkerPool::drain`] is byte-identical to sequential ingest. The
//! bounded queue gives backpressure instead of unbounded buffering when
//! producers outrun the shards.

use crossbeam::channel::{bounded, Receiver, Sender};
use flowkey::FlowKey;
use flowtree_core::{FlowTree, Popularity};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One pre-hashed, shard-routed slice of a batch.
pub(crate) type Bucket = Vec<(u64, FlowKey, Popularity)>;

/// Buckets a shard queue may hold before submitters block
/// (backpressure, not unbounded memory). Deep enough that a producer
/// briefly outrunning a shard does not rendezvous-stall on every
/// submit — the 4-deep queue this replaces showed up directly in the
/// BENCH_ingest.json shard-degradation rows — while still bounding
/// buffered buckets per shard to a few batches.
const QUEUE_DEPTH: usize = 16;

#[derive(Debug)]
enum Job {
    /// Apply this bucket to the shard tree.
    Insert(Bucket),
    /// Acknowledge once every job submitted before this one is applied.
    Barrier(Sender<()>),
}

/// A pool of persistent shard workers: thread `i` drains the queue for
/// shard `i` into its tree.
pub(crate) struct WorkerPool {
    queues: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns one worker per tree. Workers run until the pool is
    /// dropped; dropping joins them after their queues empty. With
    /// `pin` set, worker `i` pins itself to core `i` (modulo online
    /// CPUs) — best-effort, a failed affinity call leaves the worker
    /// floating.
    pub(crate) fn spawn(trees: &[Arc<Mutex<FlowTree>>], pin: bool) -> WorkerPool {
        let mut queues = Vec::with_capacity(trees.len());
        let mut handles = Vec::with_capacity(trees.len());
        for (i, tree) in trees.iter().enumerate() {
            let (tx, rx) = bounded::<Job>(QUEUE_DEPTH);
            let tree = Arc::clone(tree);
            handles.push(std::thread::spawn(move || {
                if pin {
                    crate::sockopt::pin_current_thread(i);
                }
                worker_loop(&tree, &rx)
            }));
            queues.push(tx);
        }
        WorkerPool { queues, handles }
    }

    /// Queues `bucket` for shard `shard`; blocks when that shard's
    /// queue is full.
    pub(crate) fn submit(&self, shard: usize, bucket: Bucket) {
        self.queues[shard]
            .send(Job::Insert(bucket))
            .expect("shard worker alive");
    }

    /// Blocks until every bucket queued so far — on every shard — has
    /// been applied. After this returns, reading the shard trees sees
    /// exactly the sequential-ingest state.
    pub(crate) fn drain(&self) {
        let (ack_tx, ack_rx) = bounded::<()>(self.queues.len());
        for q in &self.queues {
            q.send(Job::Barrier(ack_tx.clone()))
                .expect("shard worker alive");
        }
        drop(ack_tx);
        for _ in 0..self.queues.len() {
            ack_rx.recv().expect("shard worker acknowledges barrier");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the queues ends each worker loop after it finishes
        // the buckets already queued; then join for a clean shutdown.
        self.queues.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl core::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

fn worker_loop(tree: &Mutex<FlowTree>, rx: &Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Insert(mut bucket) => {
                let mut t = tree.lock().expect("shard tree lock");
                t.insert_batch_prehashed(&mut bucket);
                // Opportunistically coalesce: apply whatever else is
                // already queued under the same lock acquisition.
                // FIFO order is preserved, so this changes nothing
                // about the result — only the lock traffic.
                loop {
                    match rx.try_recv() {
                        Ok(Job::Insert(mut next)) => t.insert_batch_prehashed(&mut next),
                        Ok(Job::Barrier(ack)) => {
                            // Everything before it has been applied;
                            // the ack channel is sized to never block.
                            let _ = ack.send(());
                        }
                        // Empty or Disconnected: back to blocking recv,
                        // which also settles shutdown.
                        Err(_) => break,
                    }
                }
            }
            Job::Barrier(ack) => {
                // FIFO queue + single consumer: everything submitted
                // before this barrier has been applied already.
                let _ = ack.send(());
            }
        }
    }
}
