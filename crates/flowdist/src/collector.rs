//! The central collector ("database" in Fig. 1).
//!
//! Receives summaries from every site, reconstructs per-(site, window)
//! Flowtrees (applying deltas to the previous window), accounts transfer
//! volume, and serves the distributed queries: merge across any set of
//! sites and any time range, pattern estimation, and the lifted
//! time+site mega-tree for single-structure drill-down.

use crate::summary::{Summary, SummaryKind};
use crate::window::WindowId;
use crate::DistError;
use flowkey::{FlowKey, Schema, Site, TimeBucket};
use flowtree_core::{Config, FlowTree, PopEst, Popularity};
use std::collections::BTreeMap;

/// Transfer-volume bookkeeping — the evidence for the paper's
/// storage/transfer-reduction claims.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransferLedger {
    /// Summary frames received.
    pub summaries: u64,
    /// Bytes of full summaries received.
    pub full_bytes: u64,
    /// Bytes of delta summaries received.
    pub delta_bytes: u64,
    /// Frames rejected (bad frames, schema mismatch, missing base…).
    pub rejected: u64,
}

impl TransferLedger {
    /// All summary bytes.
    pub fn total_bytes(&self) -> u64 {
        self.full_bytes + self.delta_bytes
    }
}

/// The collector.
#[derive(Debug)]
pub struct Collector {
    schema: Schema,
    tree_cfg: Config,
    /// (window start, site) → reconstructed tree.
    windows: BTreeMap<(u64, u16), FlowTree>,
    /// Per-site: last reconstructed window (base for deltas) and seq.
    last: BTreeMap<u16, (u64, u64)>,
    ledger: TransferLedger,
}

impl Collector {
    /// Creates an empty collector for one schema.
    pub fn new(schema: Schema, tree_cfg: Config) -> Collector {
        Collector {
            schema,
            tree_cfg,
            windows: BTreeMap::new(),
            last: BTreeMap::new(),
            ledger: TransferLedger::default(),
        }
    }

    /// Transfer bookkeeping.
    pub fn ledger(&self) -> &TransferLedger {
        &self.ledger
    }

    /// Stored (window, site) count.
    pub fn stored_windows(&self) -> usize {
        self.windows.len()
    }

    /// The sites seen so far.
    pub fn sites(&self) -> Vec<u16> {
        let mut s: Vec<u16> = self.windows.keys().map(|(_, site)| *site).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Decodes and applies one summary frame from the wire.
    pub fn apply_bytes(&mut self, bytes: &[u8]) -> Result<(), DistError> {
        let summary = match Summary::decode(bytes, self.tree_cfg) {
            Ok(s) => s,
            Err(e) => {
                self.ledger.rejected += 1;
                return Err(e);
            }
        };
        let n = bytes.len() as u64;
        match self.apply(summary) {
            Ok(kind) => {
                self.ledger.summaries += 1;
                match kind {
                    SummaryKind::Full => self.ledger.full_bytes += n,
                    SummaryKind::Delta => self.ledger.delta_bytes += n,
                }
                Ok(())
            }
            Err(e) => {
                self.ledger.rejected += 1;
                Err(e)
            }
        }
    }

    /// Applies an already-decoded summary; returns its kind.
    pub fn apply(&mut self, summary: Summary) -> Result<SummaryKind, DistError> {
        if *summary.tree.schema() != self.schema {
            return Err(DistError::SchemaMismatch);
        }
        let kind = summary.kind;
        let tree = match kind {
            SummaryKind::Full => summary.tree,
            SummaryKind::Delta => {
                // A delta is defined against the site's *immediately
                // preceding* summary. Verify continuity (sequence number
                // must be consecutive) — applying a delta onto the wrong
                // base would silently corrupt the reconstruction.
                let Some(&(base_start, base_seq)) = self.last.get(&summary.site) else {
                    return Err(DistError::MissingDeltaBase { site: summary.site });
                };
                if summary.seq != base_seq + 1 {
                    return Err(DistError::MissingDeltaBase { site: summary.site });
                }
                let base = self
                    .windows
                    .get(&(base_start, summary.site))
                    .ok_or(DistError::MissingDeltaBase { site: summary.site })?;
                let mut rebuilt = base.clone();
                rebuilt
                    .merge(&summary.tree)
                    .map_err(|_| DistError::SchemaMismatch)?;
                rebuilt.prune_zeros();
                rebuilt
            }
        };
        self.last
            .insert(summary.site, (summary.window.start_ms, summary.seq));
        self.windows
            .insert((summary.window.start_ms, summary.site), tree);
        Ok(kind)
    }

    /// Tree for one (window, site), if stored.
    pub fn window_tree(&self, window_start_ms: u64, site: u16) -> Option<&FlowTree> {
        self.windows.get(&(window_start_ms, site))
    }

    /// All stored `(window start ms, site)` pairs, in time order.
    pub fn window_keys(&self) -> Vec<(u64, u16)> {
        self.windows.keys().copied().collect()
    }

    /// Merges every stored tree matching the site set and time range —
    /// the paper's distributed `merge` in action. `sites = None` means
    /// all sites; the range is `[from_ms, to_ms)`.
    pub fn merged(&self, sites: Option<&[u16]>, from_ms: u64, to_ms: u64) -> FlowTree {
        let mut out = FlowTree::new(self.schema, self.tree_cfg);
        for ((start, site), tree) in &self.windows {
            if *start < from_ms || *start >= to_ms {
                continue;
            }
            if let Some(wanted) = sites {
                if !wanted.contains(site) {
                    continue;
                }
            }
            out.merge(tree).expect("uniform schema in collector");
        }
        out
    }

    /// Estimates a pattern over a site set and time range.
    pub fn query(
        &self,
        pattern: &FlowKey,
        sites: Option<&[u16]>,
        from_ms: u64,
        to_ms: u64,
    ) -> PopEst {
        let mut acc = PopEst::ZERO;
        for ((start, site), tree) in &self.windows {
            if *start < from_ms || *start >= to_ms {
                continue;
            }
            if let Some(wanted) = sites {
                if !wanted.contains(site) {
                    continue;
                }
            }
            acc += tree.estimate_pattern(pattern);
        }
        acc
    }

    /// Builds the **lifted mega-tree**: every stored mass re-keyed with
    /// its site and (dyadic) time bucket under the extended schema, so a
    /// single Flowtree answers cross-site cross-time drill-downs — the
    /// paper's "extends Flowtree by adding two features, namely time and
    /// monitor location".
    pub fn lifted(&self, budget: usize) -> FlowTree {
        let mut out = FlowTree::new(Schema::extended(), Config::with_budget(budget));
        for ((start, site), tree) in &self.windows {
            // The finest dyadic bucket fully containing the window.
            let span_s = (tree_window_span(tree, self).max(1000) / 1000).max(1);
            let level = 64 - u64::leading_zeros(span_s.next_power_of_two()) as u8 - 1;
            let time = TimeBucket::new(start / 1000, level.min(TimeBucket::MAX_LEVEL))
                .unwrap_or(TimeBucket::ANY);
            for v in tree.iter() {
                if v.comp.is_zero() {
                    continue;
                }
                let key = v.key.with_site(Site::Is(*site)).with_time(time);
                out.insert(&key, v.comp);
            }
        }
        out
    }

    /// Total mass stored across all windows/sites.
    pub fn total(&self) -> Popularity {
        self.windows.values().map(|t| t.total()).sum()
    }

    /// Sweeps one site's stored windows in time order and reports the
    /// significant window-over-window changes (the future-work
    /// "alarming when there are significant differences"). Returns
    /// `(window that changed, events)` pairs; windows missing from the
    /// store are skipped, so a lost summary never mis-attributes a
    /// change to the wrong pair.
    pub fn alarms(
        &self,
        site: u16,
        cfg: &crate::alarm::AlarmConfig,
    ) -> Vec<(WindowId, Vec<crate::alarm::AlarmEvent>)> {
        let mut windows: Vec<(u64, &FlowTree)> = self
            .windows
            .iter()
            .filter(|((_, s), _)| *s == site)
            .map(|((start, _), tree)| (*start, tree))
            .collect();
        windows.sort_by_key(|(start, _)| *start);
        let mut out = Vec::new();
        for pair in windows.windows(2) {
            let (prev_start, prev) = pair[0];
            let (cur_start, cur) = pair[1];
            // Only adjacent windows are comparable.
            let span = cur_start - prev_start;
            let events = crate::alarm::detect(prev, cur, cfg);
            if !events.is_empty() {
                out.push((
                    WindowId {
                        start_ms: cur_start,
                        span_ms: span,
                    },
                    events,
                ));
            }
        }
        out
    }
}

/// Window span lookup helper: spans are uniform per deployment; derive
/// from stored keys when possible (fallback 300 000 ms).
fn tree_window_span(_tree: &FlowTree, c: &Collector) -> u64 {
    // All windows share one span in this system; read it from any key.
    c.windows
        .keys()
        .zip(c.windows.keys().skip(1))
        .find(|((a, _), (b, _))| a != b)
        .map(|((a, _), (b, _))| b - a)
        .unwrap_or(300_000)
}

/// Convenience: the window id for a timestamp under a span.
pub fn window_of(ts_ms: u64, span_ms: u64) -> WindowId {
    WindowId::containing(ts_ms, span_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{DaemonConfig, SiteDaemon, TransferMode};
    use flownet::FlowRecord;

    fn record(ts_ms: u64, site_octet: u8, host: u8, packets: u64) -> FlowRecord {
        let mut r = FlowRecord::v4(
            [10, site_octet, 0, host],
            [192, 0, 2, 1],
            2000,
            443,
            6,
            packets,
            packets * 500,
        );
        r.first_ms = ts_ms;
        r.last_ms = ts_ms;
        r
    }

    fn site_daemon(site: u16, transfer: TransferMode) -> SiteDaemon {
        let mut cfg = DaemonConfig::new(site);
        cfg.window_ms = 1000;
        cfg.tree = Config::with_budget(256);
        cfg.schema = Schema::five_feature();
        cfg.transfer = transfer;
        SiteDaemon::new(cfg)
    }

    fn feed(collector: &mut Collector, summaries: Vec<Summary>) {
        for s in summaries {
            let bytes = s.encode();
            collector.apply_bytes(&bytes).expect("valid summary");
        }
    }

    #[test]
    fn collects_and_merges_across_sites_and_windows() {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(1024));
        for site in 0..3u16 {
            let mut d = site_daemon(site, TransferMode::Full);
            let mut summaries = Vec::new();
            for w in 0..4u64 {
                for h in 0..5u8 {
                    summaries.extend(d.ingest_record(&record(
                        w * 1000 + 100 + h as u64,
                        site as u8,
                        h,
                        2,
                    )));
                }
            }
            summaries.extend(d.flush());
            feed(&mut collector, summaries);
        }
        assert_eq!(collector.sites(), vec![0, 1, 2]);
        assert_eq!(collector.stored_windows(), 12);
        // Everything: 3 sites × 4 windows × 5 hosts × 2 packets.
        let all = collector.merged(None, 0, u64::MAX);
        assert_eq!(all.total().packets, 120);
        // One site, two windows.
        let some = collector.merged(Some(&[1]), 1000, 3000);
        assert_eq!(some.total().packets, 20);
        // Pattern query across sites: traffic from 10.2.0.0/16 (site 2).
        let est = collector.query(&"src=10.2.0.0/16".parse().unwrap(), None, 0, u64::MAX);
        assert!((est.packets - 40.0).abs() < 1e-6);
    }

    #[test]
    fn delta_pipeline_reconstructs_identically() {
        // Run the same input through Full and Delta pipelines; the
        // reconstructed trees must agree on every window.
        let runs: Vec<Collector> = [TransferMode::Full, TransferMode::Delta]
            .into_iter()
            .map(|mode| {
                let mut collector =
                    Collector::new(Schema::five_feature(), Config::with_budget(1024));
                let mut d = site_daemon(9, mode);
                let mut summaries = Vec::new();
                for w in 0..5u64 {
                    for h in 0..8u8 {
                        if !(h as u64 + w).is_multiple_of(3) {
                            summaries.extend(d.ingest_record(&record(
                                w * 1000 + 50 + h as u64,
                                9,
                                h,
                                1 + w,
                            )));
                        }
                    }
                }
                summaries.extend(d.flush());
                feed(&mut collector, summaries);
                collector
            })
            .collect();
        let (full, delta) = (&runs[0], &runs[1]);
        assert_eq!(full.stored_windows(), delta.stored_windows());
        for ((start, site), ftree) in &full.windows {
            let dtree = delta.windows.get(&(*start, *site)).expect("same windows");
            assert_eq!(ftree.total(), dtree.total(), "window {start}");
            for v in ftree.iter() {
                assert_eq!(
                    dtree.subtree_popularity(v.key),
                    ftree.subtree_popularity(v.key),
                    "window {start} at {}",
                    v.key
                );
            }
        }
        // Deltas were actually used. (Whether deltas are *cheaper*
        // depends on window similarity — see the sim test with a
        // periodic trace and the E9 churn-sweep benchmark.)
        assert!(delta.ledger().delta_bytes > 0);
    }

    #[test]
    fn delta_without_base_is_rejected() {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(256));
        let mut d = site_daemon(4, TransferMode::Delta);
        d.ingest_record(&record(100, 4, 1, 1));
        d.ingest_record(&record(1100, 4, 2, 1));
        let summaries = d.flush();
        assert_eq!(summaries[1].kind, SummaryKind::Delta);
        // Apply the delta first (out of order): must fail cleanly.
        let err = collector.apply_bytes(&summaries[1].encode());
        assert!(matches!(err, Err(DistError::MissingDeltaBase { site: 4 })));
        assert_eq!(collector.ledger().rejected, 1);
        // Full then delta works.
        collector.apply_bytes(&summaries[0].encode()).unwrap();
        collector.apply_bytes(&summaries[1].encode()).unwrap();
        assert_eq!(collector.stored_windows(), 2);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut collector = Collector::new(Schema::two_feature(), Config::with_budget(256));
        let mut d = site_daemon(1, TransferMode::Full);
        d.ingest_record(&record(100, 1, 1, 1));
        let s = d.flush().remove(0);
        assert!(matches!(
            collector.apply_bytes(&s.encode()),
            Err(DistError::SchemaMismatch)
        ));
    }

    #[test]
    fn lifted_tree_answers_per_site_questions() {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(1024));
        for site in 0..2u16 {
            let mut d = site_daemon(site, TransferMode::Full);
            for h in 0..4u8 {
                d.ingest_record(&record(500, site as u8, h, 3));
            }
            feed(&mut collector, d.flush());
        }
        let mega = collector.lifted(100_000);
        assert_eq!(mega.total().packets, 24);
        // Drill down to one site inside the single mega structure.
        let site1: FlowKey = "site=1".parse().unwrap();
        let est = mega.estimate_pattern(&site1);
        assert!((est.packets - 12.0).abs() < 1e-6, "{}", est.packets);
        // Site+prefix combination.
        let combo: FlowKey = "src=10.1.0.0/16 site=1".parse().unwrap();
        assert!((mega.estimate_pattern(&combo).packets - 12.0).abs() < 1e-6);
        let cross: FlowKey = "src=10.0.0.0/16 site=1".parse().unwrap();
        assert!(mega.estimate_pattern(&cross).packets < 1.0);
    }

    #[test]
    fn corrupt_frames_are_counted() {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(256));
        assert!(collector.apply_bytes(b"garbage").is_err());
        assert_eq!(collector.ledger().rejected, 1);
        assert_eq!(collector.stored_windows(), 0);
    }
}

#[cfg(test)]
mod alarm_sweep_tests {
    use super::*;
    use crate::alarm::AlarmConfig;
    use crate::daemon::{DaemonConfig, SiteDaemon, TransferMode};
    use flowkey::Schema;
    use flownet::FlowRecord;

    #[test]
    fn collector_alarm_sweep_localizes_the_changed_window() {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(512));
        let mut cfg = DaemonConfig::new(0);
        cfg.window_ms = 1_000;
        cfg.tree = Config::with_budget(512);
        cfg.transfer = TransferMode::Full;
        let mut d = SiteDaemon::new(cfg);
        let mut summaries = Vec::new();
        // Four quiet windows, then one with a 50 k-packet spike.
        for w in 0..5u64 {
            for h in 0..4u8 {
                let mut r =
                    FlowRecord::v4([10, 0, 0, h], [192, 0, 2, 1], 1000, 443, 6, 5_000, 500_000);
                r.first_ms = w * 1_000 + 10 + h as u64;
                r.last_ms = r.first_ms;
                summaries.extend(d.ingest_record(&r));
            }
            if w == 3 {
                let mut atk = FlowRecord::v4(
                    [66, 6, 6, 6],
                    [192, 0, 2, 1],
                    4444,
                    443,
                    6,
                    50_000,
                    5_000_000,
                );
                atk.first_ms = w * 1_000 + 500;
                atk.last_ms = atk.first_ms;
                summaries.extend(d.ingest_record(&atk));
            }
        }
        summaries.extend(d.flush());
        for s in summaries {
            collector.apply_bytes(&s.encode()).unwrap();
        }
        let alarms = collector.alarms(0, &AlarmConfig::default());
        // Exactly two alarm points: the spike appearing (window 3) and
        // disappearing (window 4).
        assert_eq!(alarms.len(), 2, "{alarms:?}");
        assert_eq!(alarms[0].0.start_ms, 3_000);
        assert_eq!(alarms[1].0.start_ms, 4_000);
        assert!(matches!(
            alarms[0].1[0].direction,
            crate::alarm::Direction::Up
        ));
        assert!(matches!(
            alarms[1].1[0].direction,
            crate::alarm::Direction::Down
        ));
        let atk_pattern = "src=66.6.6.6/32".parse().unwrap();
        assert!(alarms[0].1[0].key.overlaps(&atk_pattern));
    }

    #[test]
    fn alarm_sweep_on_unknown_site_is_empty() {
        let collector = Collector::new(Schema::five_feature(), Config::with_budget(512));
        assert!(collector.alarms(9, &AlarmConfig::default()).is_empty());
    }
}
