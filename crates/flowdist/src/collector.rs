//! The central collector ("database" in Fig. 1).
//!
//! Receives summaries from every site, reconstructs per-(site, window)
//! Flowtrees (applying deltas to the previous window), accounts transfer
//! volume, and serves the distributed queries: merge across any set of
//! sites and any time range, pattern estimation, and the lifted
//! time+site mega-tree for single-structure drill-down.
//!
//! ## Merged-view cache
//!
//! Range merges are the collector's hot read path — every
//! `flowquery::QueryEngine::run` that ranks, drills, or extracts heavy
//! hitters evaluates against one merged tree. [`Collector::merged_view`]
//! therefore caches merged trees keyed by the **normalized** scope
//! (sorted site set + `[from_ms, to_ms)` range) and keeps them fresh
//! incrementally. The invalidation rules:
//!
//! * A **new** `(window, site)` pair entering a cached scope does *not*
//!   invalidate the view: the next `merged_view` call merges just the
//!   newly applied summaries into the cached tree (one structural
//!   [`FlowTree::merge_many`] over the missing pairs).
//! * **Replacing** a stored pair (a site re-sends a window) or
//!   **evicting** pairs ([`Collector::evict_windows_before`]) bumps the
//!   collector epoch, which invalidates *every* cached view; the next
//!   query rebuilds its view from the stored trees.
//! * Cache **memory** is bounded by the total number of tree *nodes*
//!   held across entries ([`Collector::set_view_node_budget`], default
//!   [`DEFAULT_VIEW_NODE_BUDGET`]) — not primarily by entry count,
//!   since one thousand-window view dwarfs a hundred small ones.
//!   Least-recently-used entries are dropped until the total fits; a
//!   single view larger than the whole budget is not cached at all;
//!   and a secondary [`VIEW_CACHE_MAX_ENTRIES`] cap bounds per-entry
//!   overhead against floods of tiny distinct scopes.
//!   [`Collector::view_cache_stats`] exposes the budget and the
//!   hit/extend/rebuild/eviction counters.
//!
//! Views are handed out as `Arc<FlowTree>` snapshots: a query keeps
//! reading its snapshot even if the cache refreshes behind it (the
//! refresh copies on write). With a node budget in play, an
//! incrementally extended view can compact at different points than a
//! from-scratch rebuild — totals are conserved either way, exactly as
//! for any merge order.

use crate::summary::{Summary, SummaryKind};
use crate::window::WindowId;
use crate::DistError;
use flowkey::{FlowKey, Schema, Site, TimeBucket};
use flowtree_core::{Config, FlowTree, PopEst, Popularity};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// Transfer-volume bookkeeping — the evidence for the paper's
/// storage/transfer-reduction claims.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransferLedger {
    /// Summary frames received.
    pub summaries: u64,
    /// Bytes of full summaries received.
    pub full_bytes: u64,
    /// Bytes of delta summaries received.
    pub delta_bytes: u64,
    /// Frames rejected (bad frames, schema mismatch, missing base…).
    pub rejected: u64,
}

impl TransferLedger {
    /// All summary bytes.
    pub fn total_bytes(&self) -> u64 {
        self.full_bytes + self.delta_bytes
    }
}

/// Default bound on the **total tree nodes** held by cached merged
/// views across all entries (≈ 100 B per node ⇒ on the order of
/// 100 MiB of cached views).
pub const DEFAULT_VIEW_NODE_BUDGET: usize = 1 << 20;

/// Hard cap on cached-view **entries**, independent of the node
/// budget: per-entry overhead (keys, applied-pair lists, map slots)
/// is invisible to the node count, so a client sweeping many tiny
/// scopes (every distinct time range is its own entry) must not
/// accumulate unbounded entries under the node budget.
pub const VIEW_CACHE_MAX_ENTRIES: usize = 64;

/// Observable state of the merged-view cache (see the module docs for
/// the caching rules it reflects).
#[derive(Debug, Clone, Copy, Default)]
pub struct ViewCacheStats {
    /// Views currently cached.
    pub entries: usize,
    /// Total live tree nodes across cached views.
    pub cached_nodes: usize,
    /// The node budget those views are bounded by.
    pub node_budget: usize,
    /// Queries answered from a cached view as-is.
    pub hits: u64,
    /// Cached views extended incrementally with new windows.
    pub extends: u64,
    /// Cached views extended **in place** by an incoming version-3
    /// delta frame (the stored window grew; views that had merged it
    /// absorb the same delta instead of being invalidated).
    pub delta_extends: u64,
    /// Views built (first use or after invalidation).
    pub rebuilds: u64,
    /// Entries dropped to fit the node budget or the entry cap.
    pub evictions: u64,
}

/// Cache key: a normalized query scope.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ViewKey {
    /// Sorted, deduplicated site filter (`None` = all sites).
    sites: Option<Vec<u16>>,
    from_ms: u64,
    to_ms: u64,
}

/// One cached merged view (see the module docs for invalidation rules).
#[derive(Debug)]
struct ViewEntry {
    tree: Arc<FlowTree>,
    /// The (window start, site) pairs merged into `tree`, sorted.
    applied: Vec<(u64, u16)>,
    /// Collector epoch the entry was built under.
    epoch: u64,
    /// LRU clock of the last hit.
    touch: u64,
}

#[derive(Debug, Default)]
struct ViewCache {
    entries: HashMap<ViewKey, ViewEntry>,
    clock: u64,
    hits: u64,
    extends: u64,
    delta_extends: u64,
    rebuilds: u64,
    evictions: u64,
}

impl ViewCache {
    fn cached_nodes(&self) -> usize {
        self.entries.values().map(|e| e.tree.len()).sum()
    }

    /// Drops least-recently-used entries until both limits hold: the
    /// cached node total fits `budget` and the entry count fits
    /// [`VIEW_CACHE_MAX_ENTRIES`]. The just-touched entry (`keep`)
    /// goes last — and goes too if it alone exceeds the budget.
    fn enforce_budget(&mut self, budget: usize, keep: Option<&ViewKey>) {
        while self.entries.len() > VIEW_CACHE_MAX_ENTRIES
            || (!self.entries.is_empty() && self.cached_nodes() > budget)
        {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| keep.is_none_or(|kept| *k != kept))
                .min_by_key(|(_, e)| e.touch)
                .map(|(k, _)| k.clone())
                .or_else(|| keep.cloned());
            let Some(victim) = victim else {
                break;
            };
            self.entries.remove(&victim);
            self.evictions += 1;
        }
    }
}

/// What the epoch ledger records per stored `(window, exporter)` slot:
/// the content epoch a version-3 stream has advanced it to, and the
/// per-window site-set provenance the last frame declared.
#[derive(Debug, Clone)]
struct WindowMeta {
    /// Content epoch (0 for pre-epoch v1/v2 frames).
    epoch: u64,
    /// Sequence number of the frame that last stored the slot — what a
    /// crash-safe snapshot needs to reconstruct an equivalent frame.
    seq: u64,
    /// Declared provenance (`None` for plain site frames, which cover
    /// exactly their own site).
    provenance: Option<Vec<u16>>,
}

/// The collector.
#[derive(Debug)]
pub struct Collector {
    schema: Schema,
    tree_cfg: Config,
    /// (window start, site) → reconstructed tree.
    windows: BTreeMap<(u64, u16), FlowTree>,
    /// The epoch ledger: per stored slot, the content epoch and the
    /// per-window provenance (see [`WindowMeta`]). Gate for version-3
    /// increments: a delta only applies when its declared base equals
    /// the stored epoch, a full only when it strictly advances it.
    meta: BTreeMap<(u64, u16), WindowMeta>,
    /// Per-site: last reconstructed window (base for deltas) and seq.
    last: BTreeMap<u16, (u64, u64)>,
    ledger: TransferLedger,
    /// Bumped whenever a stored window is replaced or evicted — the
    /// events that invalidate cached merged views wholesale.
    epoch: u64,
    /// Total cached-view nodes allowed (see the module docs).
    view_node_budget: usize,
    /// Merged-view cache (interior mutability: queries take `&self`).
    views: Mutex<ViewCache>,
}

impl Collector {
    /// Creates an empty collector for one schema.
    pub fn new(schema: Schema, tree_cfg: Config) -> Collector {
        Collector {
            schema,
            tree_cfg,
            windows: BTreeMap::new(),
            meta: BTreeMap::new(),
            last: BTreeMap::new(),
            ledger: TransferLedger::default(),
            epoch: 0,
            view_node_budget: DEFAULT_VIEW_NODE_BUDGET,
            views: Mutex::new(ViewCache::default()),
        }
    }

    /// Transfer bookkeeping.
    pub fn ledger(&self) -> &TransferLedger {
        &self.ledger
    }

    /// Bounds the merged-view cache to `nodes` total cached tree nodes
    /// (existing entries are trimmed immediately).
    pub fn set_view_node_budget(&mut self, nodes: usize) {
        self.view_node_budget = nodes;
        self.views
            .lock()
            .expect("view cache lock")
            .enforce_budget(nodes, None);
    }

    /// A snapshot of the merged-view cache counters and its budget.
    pub fn view_cache_stats(&self) -> ViewCacheStats {
        let cache = self.views.lock().expect("view cache lock");
        ViewCacheStats {
            entries: cache.entries.len(),
            cached_nodes: cache.cached_nodes(),
            node_budget: self.view_node_budget,
            hits: cache.hits,
            extends: cache.extends,
            delta_extends: cache.delta_extends,
            rebuilds: cache.rebuilds,
            evictions: cache.evictions,
        }
    }

    /// Stored (window, site) count.
    pub fn stored_windows(&self) -> usize {
        self.windows.len()
    }

    /// The sites seen so far.
    pub fn sites(&self) -> Vec<u16> {
        let mut s: Vec<u16> = self.windows.keys().map(|(_, site)| *site).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Decodes and applies one summary frame from the wire.
    pub fn apply_bytes(&mut self, bytes: &[u8]) -> Result<(), DistError> {
        let summary = match Summary::decode(bytes, self.tree_cfg) {
            Ok(s) => s,
            Err(e) => {
                self.ledger.rejected += 1;
                return Err(e);
            }
        };
        let n = bytes.len() as u64;
        match self.apply(summary) {
            Ok(kind) => {
                self.ledger.summaries += 1;
                match kind {
                    SummaryKind::Full => self.ledger.full_bytes += n,
                    SummaryKind::Delta => self.ledger.delta_bytes += n,
                }
                Ok(())
            }
            Err(e) => {
                self.ledger.rejected += 1;
                Err(e)
            }
        }
    }

    /// Applies an already-decoded summary; returns its kind.
    ///
    /// Version-3 frames run the **epoch handshake** first: a `Full`
    /// frame must strictly advance the slot's stored epoch (replacing
    /// the window wholesale, invalidating cached views exactly as any
    /// replacement does); a `Delta` frame must declare the stored
    /// epoch as its base, and then applies by **structural merge onto
    /// the stored tree in place** — cached views that had merged the
    /// old tree absorb the same delta instead of being invalidated.
    /// Any other pairing is an out-of-order or orphaned increment and
    /// is rejected with [`DistError::EpochMismatch`].
    pub fn apply(&mut self, summary: Summary) -> Result<SummaryKind, DistError> {
        if *summary.tree.schema() != self.schema {
            return Err(DistError::SchemaMismatch);
        }
        if summary.epoch.is_some() {
            return self.apply_incremental(summary);
        }
        let kind = summary.kind;
        let tree = match kind {
            SummaryKind::Full => summary.tree,
            SummaryKind::Delta => {
                // A delta is defined against the site's *immediately
                // preceding* summary. Verify continuity (sequence number
                // must be consecutive) — applying a delta onto the wrong
                // base would silently corrupt the reconstruction.
                let Some(&(base_start, base_seq)) = self.last.get(&summary.site) else {
                    return Err(DistError::MissingDeltaBase { site: summary.site });
                };
                if summary.seq != base_seq + 1 {
                    return Err(DistError::MissingDeltaBase { site: summary.site });
                }
                let base = self
                    .windows
                    .get(&(base_start, summary.site))
                    .ok_or(DistError::MissingDeltaBase { site: summary.site })?;
                let mut rebuilt = base.clone();
                rebuilt
                    .merge(&summary.tree)
                    .map_err(|_| DistError::SchemaMismatch)?;
                rebuilt.prune_zeros();
                rebuilt
            }
        };
        self.last
            .insert(summary.site, (summary.window.start_ms, summary.seq));
        let slot = (summary.window.start_ms, summary.site);
        self.meta.insert(
            slot,
            WindowMeta {
                epoch: 0,
                seq: summary.seq,
                provenance: summary.provenance,
            },
        );
        if self.windows.insert(slot, tree).is_some() {
            // A stored window was replaced: cached views that merged
            // the old tree are stale beyond repair — invalidate all.
            self.invalidate_views();
        }
        Ok(kind)
    }

    /// The version-3 half of [`Collector::apply`]: epoch-gated full
    /// replacement or in-place delta merge (see `apply`'s docs).
    fn apply_incremental(&mut self, summary: Summary) -> Result<SummaryKind, DistError> {
        let eh = summary.epoch.expect("caller checked");
        let kind = summary.kind;
        let slot = (summary.window.start_ms, summary.site);
        let have = self.meta.get(&slot).map_or(0, |m| m.epoch);
        match kind {
            SummaryKind::Full => {
                if self.windows.contains_key(&slot) && eh.epoch <= have {
                    return Err(DistError::EpochMismatch {
                        site: summary.site,
                        have,
                        got: eh.epoch,
                    });
                }
                if self.windows.insert(slot, summary.tree).is_some() {
                    self.invalidate_views();
                }
            }
            SummaryKind::Delta => {
                let base = eh
                    .base
                    .ok_or(DistError::BadFrame("v3 delta without base epoch"))?;
                if base == 0 {
                    // Decode already rejects this on the wire; guard
                    // the in-process path too — epoch 0 is the
                    // pre-epoch marker, never a pinned base, so a
                    // base-0 delta would merge onto a v1/v2-stored
                    // tree the exporter never saw.
                    return Err(DistError::BadFrame("zero delta base epoch"));
                }
                let Some(stored) = self.windows.get_mut(&slot) else {
                    return Err(DistError::MissingDeltaBase { site: summary.site });
                };
                if have != base {
                    return Err(DistError::EpochMismatch {
                        site: summary.site,
                        have,
                        got: base,
                    });
                }
                stored
                    .merge(&summary.tree)
                    .map_err(|_| DistError::SchemaMismatch)?;
                stored.prune_zeros();
                self.extend_views_with_delta(slot, &summary.tree);
            }
        }
        self.meta.insert(
            slot,
            WindowMeta {
                epoch: eh.epoch,
                seq: summary.seq,
                provenance: summary.provenance,
            },
        );
        self.last
            .insert(summary.site, (summary.window.start_ms, summary.seq));
        Ok(kind)
    }

    /// Merges an applied version-3 delta into every current cached
    /// view that had already merged the slot's stored tree, so the
    /// increment costs one small merge per affected view instead of a
    /// wholesale invalidation.
    fn extend_views_with_delta(&self, slot: (u64, u16), delta: &FlowTree) {
        let mut cache = self.views.lock().expect("view cache lock");
        let cache = &mut *cache;
        let mut touched = 0u64;
        for e in cache.entries.values_mut() {
            if e.epoch == self.epoch && e.applied.binary_search(&slot).is_ok() {
                let tree = Arc::make_mut(&mut e.tree);
                tree.merge(delta).expect("uniform schema in collector");
                tree.prune_zeros();
                touched += 1;
            }
        }
        if touched > 0 {
            cache.delta_extends += touched;
            cache.enforce_budget(self.view_node_budget, None);
        }
    }

    /// Drops every stored window starting before `cutoff_ms`
    /// (retention), returning how many were evicted. Eviction
    /// invalidates all cached merged views (epoch bump).
    pub fn evict_windows_before(&mut self, cutoff_ms: u64) -> usize {
        let keep = self.windows.split_off(&(cutoff_ms, u16::MIN));
        let dropped = std::mem::replace(&mut self.windows, keep).len();
        let meta_keep = self.meta.split_off(&(cutoff_ms, u16::MIN));
        self.meta = meta_keep;
        if dropped > 0 {
            self.invalidate_views();
        }
        dropped
    }

    /// Bumps the epoch and drops every cached view eagerly — they are
    /// all stale, and holding them until the same scopes happen to be
    /// re-queried would pin up to a full node budget of merged trees.
    fn invalidate_views(&mut self) {
        self.epoch += 1;
        self.views.lock().expect("view cache lock").entries.clear();
    }

    /// Tree for one (window, site), if stored.
    pub fn window_tree(&self, window_start_ms: u64, site: u16) -> Option<&FlowTree> {
        self.windows.get(&(window_start_ms, site))
    }

    /// All stored `(window start ms, site)` pairs, in time order.
    pub fn window_keys(&self) -> Vec<(u64, u16)> {
        self.windows.keys().copied().collect()
    }

    /// The content epoch of one stored `(window, exporter)` slot (0 =
    /// not stored, or stored by a pre-epoch v1/v2 frame).
    pub fn window_epoch(&self, window_start_ms: u64, site: u16) -> u64 {
        self.meta
            .get(&(window_start_ms, site))
            .map_or(0, |m| m.epoch)
    }

    /// The sequence number of the frame that last stored one slot
    /// (0 = slot absent). With [`Collector::window_epoch`] and
    /// [`Collector::window_provenance`] this is everything a snapshot
    /// needs to reconstruct a frame that restores the slot exactly.
    pub fn window_seq(&self, window_start_ms: u64, site: u16) -> u64 {
        self.meta.get(&(window_start_ms, site)).map_or(0, |m| m.seq)
    }

    /// The per-exporter delta-chain positions: `(site, last window
    /// start ms, last seq)` for every exporter that has applied a
    /// frame. Snapshot state for crash-safe restart — replaying stored
    /// slots in time order approximates this, but only the recorded
    /// positions restore v1 delta-chain continuity exactly.
    pub fn positions(&self) -> Vec<(u16, u64, u64)> {
        self.last
            .iter()
            .map(|(site, (start, seq))| (*site, *start, *seq))
            .collect()
    }

    /// Restores one exporter's delta-chain position (see
    /// [`Collector::positions`]). Used by snapshot recovery after the
    /// stored slots themselves have been re-applied.
    pub fn restore_position(&mut self, site: u16, window_start_ms: u64, seq: u64) {
        self.last.insert(site, (window_start_ms, seq));
    }

    /// The declared per-window provenance of one stored slot: the real
    /// sites folded into that window under that key. `None` when the
    /// slot is absent or was stored by a plain site frame (which covers
    /// exactly its own site).
    pub fn window_provenance(&self, window_start_ms: u64, site: u16) -> Option<&[u16]> {
        self.meta
            .get(&(window_start_ms, site))
            .and_then(|m| m.provenance.as_deref())
    }

    /// The real sites actually folded into one window, across every
    /// stored key: per-slot provenance where declared, the key itself
    /// for plain site frames. This is **per-window truth** — a site
    /// that reported other windows but not this one is absent.
    pub fn window_coverage(&self, window_start_ms: u64) -> BTreeSet<u16> {
        let mut out = BTreeSet::new();
        for (_, site) in self
            .windows
            .range((window_start_ms, u16::MIN)..=(window_start_ms, u16::MAX))
            .map(|(k, _)| *k)
        {
            match self.window_provenance(window_start_ms, site) {
                Some(p) => out.extend(p.iter().copied()),
                None => {
                    out.insert(site);
                }
            }
        }
        out
    }

    /// The stored trees matching a normalized scope, in key order. The
    /// time range selects via the `BTreeMap` range (no full scan) and
    /// the site filter binary-searches the pre-sorted `wanted` list —
    /// not an `O(sites)` scan per stored window.
    fn scoped<'a>(
        &'a self,
        wanted: Option<&'a [u16]>,
        from_ms: u64,
        to_ms: u64,
    ) -> impl Iterator<Item = ((u64, u16), &'a FlowTree)> {
        let (lo, hi) = if from_ms < to_ms {
            ((from_ms, u16::MIN), (to_ms, u16::MIN))
        } else {
            ((0, 0), (0, 0))
        };
        self.windows
            .range(lo..hi)
            .filter(move |((_, site), _)| wanted.is_none_or(|w| w.binary_search(site).is_ok()))
            .map(|(k, t)| (*k, t))
    }

    /// Merges every stored tree matching the site set and time range —
    /// the paper's distributed `merge` in action, executed as **one**
    /// k-way structural [`FlowTree::merge_many`] pass instead of one
    /// element-wise merge per window. `sites = None` means all sites;
    /// the range is `[from_ms, to_ms)`. Uncached; repeated queries over
    /// a stable scope should prefer [`Collector::merged_view`].
    pub fn merged(&self, sites: Option<&[u16]>, from_ms: u64, to_ms: u64) -> FlowTree {
        let wanted = normalize_sites(sites);
        let trees: Vec<&FlowTree> = self
            .scoped(wanted.as_deref(), from_ms, to_ms)
            .map(|(_, t)| t)
            .collect();
        let mut out = FlowTree::new(self.schema, self.tree_cfg);
        out.merge_many(&trees).expect("uniform schema in collector");
        out
    }

    /// The cached merged view for a scope: builds it with one k-way
    /// merge on first use, extends it incrementally with newly applied
    /// summaries on later calls, and rebuilds after an invalidation
    /// (see the module docs for the exact rules). The returned `Arc` is
    /// a consistent snapshot — later cache refreshes never mutate it.
    pub fn merged_view(&self, sites: Option<&[u16]>, from_ms: u64, to_ms: u64) -> Arc<FlowTree> {
        let wanted = normalize_sites(sites);
        let in_scope: Vec<(u64, u16)> = self
            .scoped(wanted.as_deref(), from_ms, to_ms)
            .map(|(k, _)| k)
            .collect();
        let key = ViewKey {
            sites: wanted,
            from_ms,
            to_ms,
        };
        let mut cache = self.views.lock().expect("view cache lock");
        cache.clock += 1;
        let clock = cache.clock;
        if let Some(e) = cache.entries.get_mut(&key) {
            let missing = if e.epoch == self.epoch {
                missing_pairs(&e.applied, &in_scope)
            } else {
                None
            };
            if let Some(missing) = missing {
                let extended = !missing.is_empty();
                if extended {
                    let add: Vec<&FlowTree> = missing
                        .iter()
                        .map(|p| self.windows.get(p).expect("scoped pair is stored"))
                        .collect();
                    Arc::make_mut(&mut e.tree)
                        .merge_many(&add)
                        .expect("uniform schema in collector");
                    e.applied = in_scope;
                }
                e.touch = clock;
                let out = Arc::clone(&e.tree);
                if extended {
                    cache.extends += 1;
                } else {
                    cache.hits += 1;
                }
                cache.enforce_budget(self.view_node_budget, Some(&key));
                return out;
            }
            cache.entries.remove(&key);
        }
        let mut tree = FlowTree::new(self.schema, self.tree_cfg);
        let trees: Vec<&FlowTree> = in_scope
            .iter()
            .map(|p| self.windows.get(p).expect("scoped pair is stored"))
            .collect();
        tree.merge_many(&trees)
            .expect("uniform schema in collector");
        let arc = Arc::new(tree);
        cache.rebuilds += 1;
        cache.entries.insert(
            key.clone(),
            ViewEntry {
                tree: Arc::clone(&arc),
                applied: in_scope,
                epoch: self.epoch,
                touch: clock,
            },
        );
        cache.enforce_budget(self.view_node_budget, Some(&key));
        arc
    }

    /// Estimates a pattern over a site set and time range by summing
    /// per-window estimates (window trees compacted independently keep
    /// their own error bounds, so this is not the same number as an
    /// estimate on the merged view under budget pressure).
    pub fn query(
        &self,
        pattern: &FlowKey,
        sites: Option<&[u16]>,
        from_ms: u64,
        to_ms: u64,
    ) -> PopEst {
        let wanted = normalize_sites(sites);
        let mut acc = PopEst::ZERO;
        for (_, tree) in self.scoped(wanted.as_deref(), from_ms, to_ms) {
            acc += tree.estimate_pattern(pattern);
        }
        acc
    }

    /// Builds the **lifted mega-tree**: every stored mass re-keyed with
    /// its site and (dyadic) time bucket under the extended schema, so a
    /// single Flowtree answers cross-site cross-time drill-downs — the
    /// paper's "extends Flowtree by adding two features, namely time and
    /// monitor location".
    pub fn lifted(&self, budget: usize) -> FlowTree {
        // One extended-schema tree per stored window (re-keying its
        // masses with site and dyadic time bucket), folded into the
        // mega-tree with chunked k-way structural merges — instead of
        // pushing every node of every window through the mega-tree's
        // insert path. Chunking (merge + compact every
        // [`Self::LIFT_CHUNK`] windows) keeps peak memory near
        // `budget` plus one chunk, not the sum of all stored windows.
        let schema = Schema::extended();
        let mut out = FlowTree::new(schema, Config::with_budget(budget));
        let mut parts: Vec<FlowTree> = Vec::new();
        let fold = |out: &mut FlowTree, parts: &mut Vec<FlowTree>| {
            let refs: Vec<&FlowTree> = parts.iter().collect();
            out.merge_many(&refs).expect("uniform schema");
            parts.clear();
        };
        for ((start, site), tree) in &self.windows {
            // The finest dyadic bucket fully containing the window.
            let span_s = (tree_window_span(tree, self).max(1000) / 1000).max(1);
            let level = 64 - u64::leading_zeros(span_s.next_power_of_two()) as u8 - 1;
            let time = TimeBucket::new(start / 1000, level.min(TimeBucket::MAX_LEVEL))
                .unwrap_or(TimeBucket::ANY);
            parts.push(FlowTree::from_masses(
                schema,
                Config::with_budget(usize::MAX),
                tree.iter()
                    .filter(|v| !v.comp.is_zero())
                    .map(|v| (v.key.with_site(Site::Is(*site)).with_time(time), v.comp)),
            ));
            if parts.len() >= Self::LIFT_CHUNK {
                fold(&mut out, &mut parts);
            }
        }
        if !parts.is_empty() {
            fold(&mut out, &mut parts);
        }
        out
    }

    /// Windows folded per k-way merge while lifting: large enough to
    /// amortize the pass, small enough to bound transient memory.
    const LIFT_CHUNK: usize = 16;

    /// Total mass stored across all windows/sites.
    pub fn total(&self) -> Popularity {
        self.windows.values().map(|t| t.total()).sum()
    }

    /// Sweeps one site's stored windows in time order and reports the
    /// significant window-over-window changes (the future-work
    /// "alarming when there are significant differences"). Returns
    /// `(window that changed, events)` pairs; windows missing from the
    /// store are skipped, so a lost summary never mis-attributes a
    /// change to the wrong pair.
    pub fn alarms(
        &self,
        site: u16,
        cfg: &crate::alarm::AlarmConfig,
    ) -> Vec<(WindowId, Vec<crate::alarm::AlarmEvent>)> {
        let mut windows: Vec<(u64, &FlowTree)> = self
            .windows
            .iter()
            .filter(|((_, s), _)| *s == site)
            .map(|((start, _), tree)| (*start, tree))
            .collect();
        windows.sort_by_key(|(start, _)| *start);
        let mut out = Vec::new();
        for pair in windows.windows(2) {
            let (prev_start, prev) = pair[0];
            let (cur_start, cur) = pair[1];
            // Only adjacent windows are comparable.
            let span = cur_start - prev_start;
            let events = crate::alarm::detect(prev, cur, cfg);
            if !events.is_empty() {
                out.push((
                    WindowId {
                        start_ms: cur_start,
                        span_ms: span,
                    },
                    events,
                ));
            }
        }
        out
    }
}

/// Window span lookup helper: spans are uniform per deployment; derive
/// from stored keys when possible (fallback 300 000 ms).
fn tree_window_span(_tree: &FlowTree, c: &Collector) -> u64 {
    // All windows share one span in this system; read it from any key.
    c.windows
        .keys()
        .zip(c.windows.keys().skip(1))
        .find(|((a, _), (b, _))| a != b)
        .map(|((a, _), (b, _))| b - a)
        .unwrap_or(300_000)
}

/// Convenience: the window id for a timestamp under a span.
pub fn window_of(ts_ms: u64, span_ms: u64) -> WindowId {
    WindowId::containing(ts_ms, span_ms)
}

/// Sorts and deduplicates a site filter so scope keys normalize and
/// membership tests binary-search.
fn normalize_sites(sites: Option<&[u16]>) -> Option<Vec<u16>> {
    sites.map(|s| {
        let mut v = s.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// With `applied ⊆ scope` (both sorted ascending), the scope pairs not
/// yet applied; `None` if some applied pair left the scope (a cached
/// view that can only be rebuilt, not extended).
fn missing_pairs(applied: &[(u64, u16)], scope: &[(u64, u16)]) -> Option<Vec<(u64, u16)>> {
    let mut missing = Vec::new();
    let mut ai = applied.iter().peekable();
    for p in scope {
        match ai.peek() {
            Some(&&a) if a == *p => {
                ai.next();
            }
            Some(&&a) if a < *p => return None,
            _ => missing.push(*p),
        }
    }
    if ai.next().is_some() {
        return None;
    }
    Some(missing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{DaemonConfig, SiteDaemon, TransferMode};
    use flownet::FlowRecord;

    fn record(ts_ms: u64, site_octet: u8, host: u8, packets: u64) -> FlowRecord {
        let mut r = FlowRecord::v4(
            [10, site_octet, 0, host],
            [192, 0, 2, 1],
            2000,
            443,
            6,
            packets,
            packets * 500,
        );
        r.first_ms = ts_ms;
        r.last_ms = ts_ms;
        r
    }

    fn site_daemon(site: u16, transfer: TransferMode) -> SiteDaemon {
        let mut cfg = DaemonConfig::new(site);
        cfg.window_ms = 1000;
        cfg.tree = Config::with_budget(256);
        cfg.schema = Schema::five_feature();
        cfg.transfer = transfer;
        SiteDaemon::new(cfg)
    }

    fn feed(collector: &mut Collector, summaries: Vec<Summary>) {
        for s in summaries {
            let bytes = s.encode();
            collector.apply_bytes(&bytes).expect("valid summary");
        }
    }

    #[test]
    fn collects_and_merges_across_sites_and_windows() {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(1024));
        for site in 0..3u16 {
            let mut d = site_daemon(site, TransferMode::Full);
            let mut summaries = Vec::new();
            for w in 0..4u64 {
                for h in 0..5u8 {
                    summaries.extend(d.ingest_record(&record(
                        w * 1000 + 100 + h as u64,
                        site as u8,
                        h,
                        2,
                    )));
                }
            }
            summaries.extend(d.flush());
            feed(&mut collector, summaries);
        }
        assert_eq!(collector.sites(), vec![0, 1, 2]);
        assert_eq!(collector.stored_windows(), 12);
        // Everything: 3 sites × 4 windows × 5 hosts × 2 packets.
        let all = collector.merged(None, 0, u64::MAX);
        assert_eq!(all.total().packets, 120);
        // One site, two windows.
        let some = collector.merged(Some(&[1]), 1000, 3000);
        assert_eq!(some.total().packets, 20);
        // Pattern query across sites: traffic from 10.2.0.0/16 (site 2).
        let est = collector.query(&"src=10.2.0.0/16".parse().unwrap(), None, 0, u64::MAX);
        assert!((est.packets - 40.0).abs() < 1e-6);
    }

    #[test]
    fn delta_pipeline_reconstructs_identically() {
        // Run the same input through Full and Delta pipelines; the
        // reconstructed trees must agree on every window.
        let runs: Vec<Collector> = [TransferMode::Full, TransferMode::Delta]
            .into_iter()
            .map(|mode| {
                let mut collector =
                    Collector::new(Schema::five_feature(), Config::with_budget(1024));
                let mut d = site_daemon(9, mode);
                let mut summaries = Vec::new();
                for w in 0..5u64 {
                    for h in 0..8u8 {
                        if !(h as u64 + w).is_multiple_of(3) {
                            summaries.extend(d.ingest_record(&record(
                                w * 1000 + 50 + h as u64,
                                9,
                                h,
                                1 + w,
                            )));
                        }
                    }
                }
                summaries.extend(d.flush());
                feed(&mut collector, summaries);
                collector
            })
            .collect();
        let (full, delta) = (&runs[0], &runs[1]);
        assert_eq!(full.stored_windows(), delta.stored_windows());
        for ((start, site), ftree) in &full.windows {
            let dtree = delta.windows.get(&(*start, *site)).expect("same windows");
            assert_eq!(ftree.total(), dtree.total(), "window {start}");
            for v in ftree.iter() {
                assert_eq!(
                    dtree.subtree_popularity(v.key),
                    ftree.subtree_popularity(v.key),
                    "window {start} at {}",
                    v.key
                );
            }
        }
        // Deltas were actually used. (Whether deltas are *cheaper*
        // depends on window similarity — see the sim test with a
        // periodic trace and the E9 churn-sweep benchmark.)
        assert!(delta.ledger().delta_bytes > 0);
    }

    #[test]
    fn delta_without_base_is_rejected() {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(256));
        let mut d = site_daemon(4, TransferMode::Delta);
        d.ingest_record(&record(100, 4, 1, 1));
        d.ingest_record(&record(1100, 4, 2, 1));
        let summaries = d.flush();
        assert_eq!(summaries[1].kind, SummaryKind::Delta);
        // Apply the delta first (out of order): must fail cleanly.
        let err = collector.apply_bytes(&summaries[1].encode());
        assert!(matches!(err, Err(DistError::MissingDeltaBase { site: 4 })));
        assert_eq!(collector.ledger().rejected, 1);
        // Full then delta works.
        collector.apply_bytes(&summaries[0].encode()).unwrap();
        collector.apply_bytes(&summaries[1].encode()).unwrap();
        assert_eq!(collector.stored_windows(), 2);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut collector = Collector::new(Schema::two_feature(), Config::with_budget(256));
        let mut d = site_daemon(1, TransferMode::Full);
        d.ingest_record(&record(100, 1, 1, 1));
        let s = d.flush().remove(0);
        assert!(matches!(
            collector.apply_bytes(&s.encode()),
            Err(DistError::SchemaMismatch)
        ));
    }

    #[test]
    fn lifted_tree_answers_per_site_questions() {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(1024));
        for site in 0..2u16 {
            let mut d = site_daemon(site, TransferMode::Full);
            for h in 0..4u8 {
                d.ingest_record(&record(500, site as u8, h, 3));
            }
            feed(&mut collector, d.flush());
        }
        let mega = collector.lifted(100_000);
        assert_eq!(mega.total().packets, 24);
        // Drill down to one site inside the single mega structure.
        let site1: FlowKey = "site=1".parse().unwrap();
        let est = mega.estimate_pattern(&site1);
        assert!((est.packets - 12.0).abs() < 1e-6, "{}", est.packets);
        // Site+prefix combination.
        let combo: FlowKey = "src=10.1.0.0/16 site=1".parse().unwrap();
        assert!((mega.estimate_pattern(&combo).packets - 12.0).abs() < 1e-6);
        let cross: FlowKey = "src=10.0.0.0/16 site=1".parse().unwrap();
        assert!(mega.estimate_pattern(&cross).packets < 1.0);
    }

    #[test]
    fn corrupt_frames_are_counted() {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(256));
        assert!(collector.apply_bytes(b"garbage").is_err());
        assert_eq!(collector.ledger().rejected, 1);
        assert_eq!(collector.stored_windows(), 0);
    }
}

#[cfg(test)]
mod alarm_sweep_tests {
    use super::*;
    use crate::alarm::AlarmConfig;
    use crate::daemon::{DaemonConfig, SiteDaemon, TransferMode};
    use flowkey::Schema;
    use flownet::FlowRecord;

    #[test]
    fn collector_alarm_sweep_localizes_the_changed_window() {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(512));
        let mut cfg = DaemonConfig::new(0);
        cfg.window_ms = 1_000;
        cfg.tree = Config::with_budget(512);
        cfg.transfer = TransferMode::Full;
        let mut d = SiteDaemon::new(cfg);
        let mut summaries = Vec::new();
        // Four quiet windows, then one with a 50 k-packet spike.
        for w in 0..5u64 {
            for h in 0..4u8 {
                let mut r =
                    FlowRecord::v4([10, 0, 0, h], [192, 0, 2, 1], 1000, 443, 6, 5_000, 500_000);
                r.first_ms = w * 1_000 + 10 + h as u64;
                r.last_ms = r.first_ms;
                summaries.extend(d.ingest_record(&r));
            }
            if w == 3 {
                let mut atk = FlowRecord::v4(
                    [66, 6, 6, 6],
                    [192, 0, 2, 1],
                    4444,
                    443,
                    6,
                    50_000,
                    5_000_000,
                );
                atk.first_ms = w * 1_000 + 500;
                atk.last_ms = atk.first_ms;
                summaries.extend(d.ingest_record(&atk));
            }
        }
        summaries.extend(d.flush());
        for s in summaries {
            collector.apply_bytes(&s.encode()).unwrap();
        }
        let alarms = collector.alarms(0, &AlarmConfig::default());
        // Exactly two alarm points: the spike appearing (window 3) and
        // disappearing (window 4).
        assert_eq!(alarms.len(), 2, "{alarms:?}");
        assert_eq!(alarms[0].0.start_ms, 3_000);
        assert_eq!(alarms[1].0.start_ms, 4_000);
        assert!(matches!(
            alarms[0].1[0].direction,
            crate::alarm::Direction::Up
        ));
        assert!(matches!(
            alarms[1].1[0].direction,
            crate::alarm::Direction::Down
        ));
        let atk_pattern = "src=66.6.6.6/32".parse().unwrap();
        assert!(alarms[0].1[0].key.overlaps(&atk_pattern));
    }

    #[test]
    fn alarm_sweep_on_unknown_site_is_empty() {
        let collector = Collector::new(Schema::five_feature(), Config::with_budget(512));
        assert!(collector.alarms(9, &AlarmConfig::default()).is_empty());
    }
}
