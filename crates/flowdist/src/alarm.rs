//! Window-over-window alarming.
//!
//! The paper's future-work system "enables … alarming when there are
//! significant differences". The engine diffs consecutive window trees
//! and reports the **most specific** generalized flows whose traffic
//! changed by more than a threshold — drill-down localization for free,
//! because the diff is itself a Flowtree.

use flowkey::FlowKey;
use flowtree_core::{FlowTree, Metric, Popularity};

/// Alarm thresholds.
#[derive(Debug, Clone, Copy)]
pub struct AlarmConfig {
    /// Minimum |change| as a fraction of the previous window's total
    /// (e.g. 0.1 = a 10 % swing).
    pub min_fraction: f64,
    /// Absolute floor on |change| in packets, so quiet links do not
    /// alarm on noise.
    pub min_packets: i64,
    /// At most this many events per window pair.
    pub max_events: usize,
}

impl Default for AlarmConfig {
    fn default() -> Self {
        AlarmConfig {
            min_fraction: 0.1,
            min_packets: 1_000,
            max_events: 16,
        }
    }
}

/// Direction of a change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Traffic increased.
    Up,
    /// Traffic decreased.
    Down,
}

/// One significant change.
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmEvent {
    /// The most specific generalized flow localizing the change.
    pub key: FlowKey,
    /// The signed change (current − previous).
    pub delta: Popularity,
    /// Up or down.
    pub direction: Direction,
}

/// Diffs two window trees and reports the most specific significant
/// changes (nodes above threshold with no above-threshold descendant).
pub fn detect(prev: &FlowTree, current: &FlowTree, cfg: &AlarmConfig) -> Vec<AlarmEvent> {
    let Ok(diff) = FlowTree::diffed(current, prev) else {
        return Vec::new();
    };
    let base = prev.total().get(Metric::Packets).max(0) as f64;
    let threshold = ((cfg.min_fraction * base) as i64).max(cfg.min_packets);

    // Subtree change per node, then keep candidates whose children are
    // all below threshold (deepest localization).
    let mut events: Vec<AlarmEvent> = Vec::new();
    let views: Vec<(FlowKey, Popularity)> = diff
        .iter()
        .map(|v| (*v.key, diff.subtree_popularity(v.key).expect("retained")))
        .collect();
    for (key, sub) in &views {
        if sub.packets.abs() < threshold {
            continue;
        }
        let has_hot_child = views.iter().any(|(other, osub)| {
            other != key && key.contains(other) && osub.packets.abs() >= threshold
        });
        if has_hot_child {
            continue;
        }
        events.push(AlarmEvent {
            key: *key,
            delta: *sub,
            direction: if sub.packets >= 0 {
                Direction::Up
            } else {
                Direction::Down
            },
        });
    }
    events.sort_by_key(|e| std::cmp::Reverse(e.delta.packets.abs()));
    events.truncate(cfg.max_events);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkey::Schema;
    use flowtree_core::Config;

    fn key(s: &str) -> FlowKey {
        s.parse().unwrap()
    }

    fn tree(entries: &[(&str, i64)]) -> FlowTree {
        let mut t = FlowTree::new(Schema::two_feature(), Config::with_budget(512));
        for (k, p) in entries {
            t.insert(&key(k), Popularity::new(*p, p * 100, 1));
        }
        t
    }

    #[test]
    fn no_alarm_when_windows_match() {
        let a = tree(&[("src=10.0.0.1/32", 5_000), ("src=10.0.0.2/32", 3_000)]);
        let b = a.clone();
        assert!(detect(&a, &b, &AlarmConfig::default()).is_empty());
    }

    #[test]
    fn detects_and_localizes_a_spike() {
        let prev = tree(&[("src=10.0.0.1/32", 5_000), ("src=10.0.0.2/32", 3_000)]);
        let cur = tree(&[
            ("src=10.0.0.1/32", 5_000),
            ("src=10.0.0.2/32", 3_000),
            ("src=6.6.6.6/32 dst=192.0.2.1/32", 50_000), // attack
        ]);
        let events = detect(&prev, &cur, &AlarmConfig::default());
        assert!(!events.is_empty());
        assert_eq!(events[0].direction, Direction::Up);
        assert_eq!(events[0].delta.packets, 50_000);
        assert!(
            events[0]
                .key
                .contains(&key("src=6.6.6.6/32 dst=192.0.2.1/32")),
            "localized at {}",
            events[0].key
        );
        // The localization must be specific, not the root.
        assert!(!events[0].key.is_root());
    }

    #[test]
    fn detects_traffic_drops() {
        let prev = tree(&[("src=10.0.0.1/32", 80_000)]);
        let cur = tree(&[("src=10.0.0.1/32", 10_000)]);
        let events = detect(&prev, &cur, &AlarmConfig::default());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].direction, Direction::Down);
        assert_eq!(events[0].delta.packets, -70_000);
    }

    #[test]
    fn absolute_floor_suppresses_noise() {
        let prev = tree(&[("src=10.0.0.1/32", 10)]);
        let cur = tree(&[("src=10.0.0.1/32", 30)]);
        // 200 % up but only 20 packets — below the absolute floor.
        assert!(detect(&prev, &cur, &AlarmConfig::default()).is_empty());
    }

    #[test]
    fn event_count_is_capped() {
        let prev = tree(&[]);
        let entries: Vec<(String, i64)> = (0..50)
            .map(|i| (format!("src=10.9.{i}.1/32"), 5_000i64))
            .collect();
        let mut cur = FlowTree::new(Schema::two_feature(), Config::with_budget(512));
        for (k, p) in &entries {
            cur.insert(&key(k), Popularity::new(*p, 0, 0));
        }
        let cfg = AlarmConfig {
            max_events: 5,
            ..AlarmConfig::default()
        };
        let events = detect(&prev, &cur, &cfg);
        assert_eq!(events.len(), 5);
    }
}
