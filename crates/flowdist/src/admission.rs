//! Per-exporter admission control for the ingest edge.
//!
//! A public-facing collector cannot let one misbehaving router starve
//! the rest: [`AdmissionControl`] keeps an integer token bucket per
//! exporter source address — one bucket for packets (spent before the
//! payload is even decoded) and one for records (spent after decode,
//! all-or-nothing per packet so accounting stays exact) — plus a
//! bounded exporter table that evicts the longest-idle source when a
//! spoofed-address flood tries to grow it.
//!
//! Everything is integer arithmetic in milli-tokens over a
//! caller-injected clock, so hostile bursts replay deterministically
//! in tests. Live reload reaches the ingest thread through
//! [`AdmissionKnobs`] — a shared block of atomics the ops endpoint
//! writes and the loop reads per datagram.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-exporter quota configuration. A rate of 0 disables that quota;
/// `max_exporters` of 0 leaves the table unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Sustained packets/second allowed per exporter (0 = unlimited).
    pub packet_rate: u64,
    /// Packet bucket depth; 0 means twice the rate.
    pub packet_burst: u64,
    /// Sustained records/second allowed per exporter (0 = unlimited).
    pub record_rate: u64,
    /// Record bucket depth; 0 means twice the rate.
    pub record_burst: u64,
    /// Max tracked exporter addresses (0 = unbounded); the
    /// longest-idle exporter is evicted to admit a new one.
    pub max_exporters: usize,
}

impl Default for AdmissionConfig {
    /// Quotas off, table bounded — state stays finite even when no
    /// rate limiting was asked for.
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            packet_rate: 0,
            packet_burst: 0,
            record_rate: 0,
            record_burst: 0,
            max_exporters: 4_096,
        }
    }
}

/// Live-reloadable admission knobs: the ops endpoint stores, the
/// ingest loop loads per datagram. Also carries the pipeline's
/// open-window budget so one reload grammar covers the whole edge.
#[derive(Debug, Default)]
pub struct AdmissionKnobs {
    packet_rate: AtomicU64,
    packet_burst: AtomicU64,
    record_rate: AtomicU64,
    record_burst: AtomicU64,
    max_exporters: AtomicU64,
    max_open_windows: AtomicU64,
    /// Core pinning for listen lanes and shard workers (0 = off).
    /// Lanes re-check per loop iteration, so `pin-cores=0` on the
    /// reload path unpins live threads.
    pin_cores: AtomicU64,
}

impl AdmissionKnobs {
    /// Knobs initialized from `cfg` plus the pipeline's open-window
    /// budget (0 = unbounded).
    pub fn new(cfg: AdmissionConfig, max_open_windows: u64) -> AdmissionKnobs {
        let knobs = AdmissionKnobs::default();
        knobs.store(cfg);
        knobs.set_max_open_windows(max_open_windows);
        knobs
    }

    /// One coherent-enough read of the quota knobs (each is atomic;
    /// they only change on reload).
    pub fn load(&self) -> AdmissionConfig {
        AdmissionConfig {
            packet_rate: self.packet_rate.load(Ordering::Relaxed),
            packet_burst: self.packet_burst.load(Ordering::Relaxed),
            record_rate: self.record_rate.load(Ordering::Relaxed),
            record_burst: self.record_burst.load(Ordering::Relaxed),
            max_exporters: self.max_exporters.load(Ordering::Relaxed) as usize,
        }
    }

    /// Replaces the quota knobs (reload path).
    pub fn store(&self, cfg: AdmissionConfig) {
        self.packet_rate.store(cfg.packet_rate, Ordering::Relaxed);
        self.packet_burst.store(cfg.packet_burst, Ordering::Relaxed);
        self.record_rate.store(cfg.record_rate, Ordering::Relaxed);
        self.record_burst.store(cfg.record_burst, Ordering::Relaxed);
        self.max_exporters
            .store(cfg.max_exporters as u64, Ordering::Relaxed);
    }

    /// The pipeline's open-window budget (0 = unbounded).
    pub fn max_open_windows(&self) -> u64 {
        self.max_open_windows.load(Ordering::Relaxed)
    }

    /// Sets the open-window budget (reload path).
    pub fn set_max_open_windows(&self, windows: u64) {
        self.max_open_windows.store(windows, Ordering::Relaxed);
    }

    /// Whether listen lanes and shard workers should pin to cores.
    pub fn pin_cores(&self) -> bool {
        self.pin_cores.load(Ordering::Relaxed) != 0
    }

    /// Toggles core pinning (reload path; lanes apply or clear their
    /// affinity on the next loop iteration).
    pub fn set_pin_cores(&self, pin: bool) {
        self.pin_cores.store(pin as u64, Ordering::Relaxed);
    }
}

/// What admission control dropped or evicted (monotonic counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Datagrams denied by a packet quota (dropped before decode).
    pub packet_drops: u64,
    /// Records denied by a record quota (whole packets' worth).
    pub record_drops: u64,
    /// Exporter entries evicted to bound the table.
    pub exporters_evicted: u64,
}

#[derive(Debug)]
struct Exporter {
    /// Milli-tokens: 1000 = one packet / one record.
    packet_mtok: u64,
    record_mtok: u64,
    /// When the buckets were last refilled.
    refill_ms: u64,
    /// Last time this exporter sent anything (eviction order).
    seen_ms: u64,
}

/// Per-source token buckets over a bounded exporter table.
#[derive(Debug, Default)]
pub struct AdmissionControl {
    table: HashMap<IpAddr, Exporter>,
    stats: AdmissionStats,
}

fn burst_mtok(rate: u64, burst: u64) -> u64 {
    let depth = if burst > 0 {
        burst
    } else {
        rate.saturating_mul(2)
    };
    depth.max(1).saturating_mul(1_000)
}

impl AdmissionControl {
    /// An empty exporter table.
    pub fn new() -> AdmissionControl {
        AdmissionControl::default()
    }

    /// Tracked exporter addresses.
    pub fn exporters(&self) -> usize {
        self.table.len()
    }

    /// Drop/eviction counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Charges one packet from `src`'s packet bucket. `false` means
    /// the datagram must be dropped (and is already counted).
    pub fn admit_packet(&mut self, src: IpAddr, cfg: &AdmissionConfig, now_ms: u64) -> bool {
        self.touch(src, cfg, now_ms);
        if cfg.packet_rate == 0 {
            return true;
        }
        let e = self.table.get_mut(&src).expect("touched above");
        if e.packet_mtok >= 1_000 {
            e.packet_mtok -= 1_000;
            true
        } else {
            self.stats.packet_drops += 1;
            false
        }
    }

    /// Charges `records` records from `src`'s record bucket,
    /// all-or-nothing: a packet's records are admitted together or
    /// dropped together, so drop counters stay in record units.
    pub fn admit_records(
        &mut self,
        src: IpAddr,
        records: usize,
        cfg: &AdmissionConfig,
        now_ms: u64,
    ) -> bool {
        if cfg.record_rate == 0 || records == 0 {
            return true;
        }
        self.touch(src, cfg, now_ms);
        let need = (records as u64).saturating_mul(1_000);
        let e = self.table.get_mut(&src).expect("touched above");
        if e.record_mtok >= need {
            e.record_mtok -= need;
            true
        } else {
            self.stats.record_drops += records as u64;
            false
        }
    }

    /// Ensures `src` is tracked with refilled buckets, evicting the
    /// longest-idle exporter if the table is at its bound.
    fn touch(&mut self, src: IpAddr, cfg: &AdmissionConfig, now_ms: u64) {
        if let Some(e) = self.table.get_mut(&src) {
            let elapsed = now_ms.saturating_sub(e.refill_ms);
            if elapsed > 0 {
                // rate tokens/sec == rate milli-tokens per ms.
                e.packet_mtok = e
                    .packet_mtok
                    .saturating_add(cfg.packet_rate.saturating_mul(elapsed))
                    .min(burst_mtok(cfg.packet_rate, cfg.packet_burst));
                e.record_mtok = e
                    .record_mtok
                    .saturating_add(cfg.record_rate.saturating_mul(elapsed))
                    .min(burst_mtok(cfg.record_rate, cfg.record_burst));
                e.refill_ms = now_ms;
            }
            e.seen_ms = now_ms.max(e.seen_ms);
            return;
        }
        if cfg.max_exporters > 0 && self.table.len() >= cfg.max_exporters {
            // O(n) idle scan: only reached at the bound, n stays ≤ it.
            if let Some(idle) = self
                .table
                .iter()
                .min_by_key(|(_, e)| e.seen_ms)
                .map(|(ip, _)| *ip)
            {
                self.table.remove(&idle);
                self.stats.exporters_evicted += 1;
            }
        }
        // New exporters start with full buckets (a first burst is
        // legitimate — quotas bite on sustained excess).
        self.table.insert(
            src,
            Exporter {
                packet_mtok: burst_mtok(cfg.packet_rate, cfg.packet_burst),
                record_mtok: burst_mtok(cfg.record_rate, cfg.record_burst),
                refill_ms: now_ms,
                seen_ms: now_ms,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn zero_rates_admit_everything_but_bound_the_table() {
        let cfg = AdmissionConfig {
            max_exporters: 3,
            ..AdmissionConfig::default()
        };
        let mut ac = AdmissionControl::new();
        for i in 0..50u8 {
            assert!(ac.admit_packet(ip(i), &cfg, i as u64));
            assert!(ac.admit_records(ip(i), 100, &cfg, i as u64));
        }
        assert_eq!(ac.exporters(), 3);
        assert_eq!(ac.stats().exporters_evicted, 47);
        assert_eq!(ac.stats().packet_drops, 0);
        assert_eq!(ac.stats().record_drops, 0);
    }

    #[test]
    fn packet_bucket_enforces_rate_and_burst_deterministically() {
        let cfg = AdmissionConfig {
            packet_rate: 10,
            packet_burst: 5,
            ..AdmissionConfig::default()
        };
        let mut ac = AdmissionControl::new();
        // Burst of 5 admitted instantly, the 6th dropped.
        let admitted = (0..6).filter(|_| ac.admit_packet(ip(1), &cfg, 0)).count();
        assert_eq!(admitted, 5);
        assert_eq!(ac.stats().packet_drops, 1);
        // 100 ms at 10/s refills exactly one token.
        assert!(ac.admit_packet(ip(1), &cfg, 100));
        assert!(!ac.admit_packet(ip(1), &cfg, 100));
        // A different exporter has its own bucket.
        assert!(ac.admit_packet(ip(2), &cfg, 100));
    }

    #[test]
    fn record_bucket_is_all_or_nothing_per_packet() {
        let cfg = AdmissionConfig {
            record_rate: 10,
            record_burst: 10,
            ..AdmissionConfig::default()
        };
        let mut ac = AdmissionControl::new();
        assert!(ac.admit_records(ip(1), 8, &cfg, 0));
        // 3 more don't fit in the remaining 2: the whole packet drops
        // and the bucket is not partially drained.
        assert!(!ac.admit_records(ip(1), 3, &cfg, 0));
        assert_eq!(ac.stats().record_drops, 3);
        assert!(ac.admit_records(ip(1), 2, &cfg, 0));
    }

    #[test]
    fn eviction_prefers_the_longest_idle_exporter() {
        let cfg = AdmissionConfig {
            max_exporters: 2,
            ..AdmissionConfig::default()
        };
        let mut ac = AdmissionControl::new();
        ac.admit_packet(ip(1), &cfg, 0);
        ac.admit_packet(ip(2), &cfg, 10);
        ac.admit_packet(ip(1), &cfg, 20); // 1 is now fresher than 2
        ac.admit_packet(ip(3), &cfg, 30); // evicts 2
        assert_eq!(ac.exporters(), 2);
        assert!(ac.table.contains_key(&ip(1)));
        assert!(ac.table.contains_key(&ip(3)));
    }

    #[test]
    fn knobs_roundtrip_for_live_reload() {
        let cfg = AdmissionConfig {
            packet_rate: 7,
            packet_burst: 9,
            record_rate: 11,
            record_burst: 13,
            max_exporters: 17,
        };
        let knobs = AdmissionKnobs::new(cfg, 23);
        assert_eq!(knobs.load(), cfg);
        assert_eq!(knobs.max_open_windows(), 23);
        knobs.set_max_open_windows(5);
        let mut next = cfg;
        next.packet_rate = 1;
        knobs.store(next);
        assert_eq!(knobs.load().packet_rate, 1);
        assert_eq!(knobs.max_open_windows(), 5);
    }
}
