//! Control frames of the acknowledged export path.
//!
//! Summary frames ([`crate::summary`]) carry data downstream→upstream;
//! control frames are the **reverse channel** that makes the export
//! path reliably delivered instead of fire-and-forget. They share the
//! length-prefixed TCP framing ([`crate::net`]) with summaries but use
//! their own magic, so either end can classify a frame from its first
//! four bytes ([`is_control`]) — a pre-handshake (v1–v3) peer that
//! receives one simply rejects it as a malformed summary and keeps
//! going, which is exactly the version gating the tier relies on.
//!
//! Frame layout (after the 4-byte magic):
//!
//! ```text
//! magic    4  "FCTL"
//! version  1  = 1
//! type     1  0 = hello, 1 = ack, 2 = rebase-request
//! hello:      features varint (bit 0 = per-frame acks)
//! ack:        exporter u16 BE, start varint, span varint, epoch varint
//! rebase:     exporter u16 BE, start varint, span varint, have varint
//! ```
//!
//! * **Hello** — capability announcement. A shipper sends one right
//!   after connecting; a capable receiver replies with its own Hello
//!   and thereafter answers every summary frame. No reply within the
//!   shipper's handshake window means a legacy peer: the shipper falls
//!   back to fire-and-forget exactly as before this protocol existed.
//! * **Ack** — the receiver's applied position for one `(window,
//!   exporter)` slot: the content epoch its ledger now holds (`0` when
//!   the slot was stored by a pre-epoch v1/v2 frame). Sent for applied
//!   frames *and* for idempotently deduplicated replays, so an
//!   at-least-once sender always converges.
//! * **RebaseRequest** — the receiver detected that a delta's declared
//!   base epoch is ahead of its ledger (it lost state: restart,
//!   shorter retention). `have` is what it actually holds (`0` =
//!   nothing). The sender answers by rewinding the window
//!   (`flowrelay::Relay::request_rebase`) so the next drain ships a
//!   full rebasing frame — upstream state loss heals immediately
//!   instead of orphaning the delta chain.

use crate::DistError;
use flowkey::pack::{read_varint, varint_len, write_varint};

/// Frame magic for control frames.
pub const CONTROL_MAGIC: [u8; 4] = *b"FCTL";
/// Control frame version.
pub const CONTROL_VERSION: u8 = 1;
/// Hello feature bit: the peer acknowledges every summary frame and
/// emits rebase-requests on epoch gaps.
pub const FEATURE_ACKS: u64 = 1;

/// One `(window, exporter)` position in a receiver's epoch ledger —
/// the payload of both [`ControlFrame::Ack`] and
/// [`ControlFrame::RebaseRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotPos {
    /// The acknowledged window's start (ms).
    pub window_start_ms: u64,
    /// The window span (ms); must match the data stream's span.
    pub span_ms: u64,
    /// The exporter id the summary frames carry in their `site` field.
    pub exporter: u16,
    /// For an ack: the content epoch the receiver's ledger holds after
    /// applying (0 = stored by a pre-epoch v1/v2 frame). For a
    /// rebase-request: the epoch the receiver still holds (0 = slot
    /// unknown — the delta's whole chain is gone).
    pub epoch: u64,
}

/// A decoded control frame (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFrame {
    /// Capability announcement; opens (and answers) the handshake.
    Hello {
        /// Feature bit set ([`FEATURE_ACKS`] is the only defined bit;
        /// unknown bits are ignored, never fatal).
        features: u64,
    },
    /// The receiver applied (or idempotently deduplicated) a summary
    /// frame; its ledger for the slot now stands at `epoch`.
    Ack(SlotPos),
    /// The receiver cannot apply a delta for this slot — its ledger is
    /// behind the delta's declared base. The sender should rewind the
    /// window and re-export a full rebasing frame.
    RebaseRequest(SlotPos),
}

/// Whether a frame's first bytes carry the control magic — the cheap
/// classifier both ends run before attempting a full decode.
pub fn is_control(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == CONTROL_MAGIC
}

const TYPE_HELLO: u8 = 0;
const TYPE_ACK: u8 = 1;
const TYPE_REBASE: u8 = 2;

impl ControlFrame {
    /// Encodes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_size());
        out.extend_from_slice(&CONTROL_MAGIC);
        out.push(CONTROL_VERSION);
        match self {
            ControlFrame::Hello { features } => {
                out.push(TYPE_HELLO);
                write_varint(&mut out, *features);
            }
            ControlFrame::Ack(slot) => {
                out.push(TYPE_ACK);
                encode_slot(&mut out, slot);
            }
            ControlFrame::RebaseRequest(slot) => {
                out.push(TYPE_REBASE);
                encode_slot(&mut out, slot);
            }
        }
        out
    }

    /// The exact byte length [`ControlFrame::encode`] produces.
    pub fn encoded_size(&self) -> usize {
        6 + match self {
            ControlFrame::Hello { features } => varint_len(*features),
            ControlFrame::Ack(s) | ControlFrame::RebaseRequest(s) => {
                2 + varint_len(s.window_start_ms) + varint_len(s.span_ms) + varint_len(s.epoch)
            }
        }
    }

    /// Decodes and validates a control frame (untrusted network
    /// input): exact length, known version and type, nonzero span,
    /// aligned window, no trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<ControlFrame, DistError> {
        if bytes.len() < 6 {
            return Err(DistError::BadFrame("short control frame"));
        }
        if bytes[..4] != CONTROL_MAGIC {
            return Err(DistError::BadFrame("control magic"));
        }
        if bytes[4] != CONTROL_VERSION {
            return Err(DistError::BadFrame("control version"));
        }
        let typ = bytes[5];
        let mut pos = 6usize;
        fn next(bytes: &[u8], pos: &mut usize) -> Result<u64, DistError> {
            let (v, n) =
                read_varint(&bytes[*pos..]).map_err(|_| DistError::BadFrame("control varint"))?;
            *pos += n;
            Ok(v)
        }
        let frame = match typ {
            TYPE_HELLO => ControlFrame::Hello {
                features: next(bytes, &mut pos)?,
            },
            TYPE_ACK | TYPE_REBASE => {
                let end = pos
                    .checked_add(2)
                    .filter(|&e| e <= bytes.len())
                    .ok_or(DistError::BadFrame("truncated control frame"))?;
                let exporter = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]);
                pos = end;
                let window_start_ms = next(bytes, &mut pos)?;
                let span_ms = next(bytes, &mut pos)?;
                let epoch = next(bytes, &mut pos)?;
                if span_ms == 0 {
                    return Err(DistError::BadFrame("zero control span"));
                }
                if window_start_ms % span_ms != 0 {
                    return Err(DistError::BadFrame("unaligned control window"));
                }
                let slot = SlotPos {
                    window_start_ms,
                    span_ms,
                    exporter,
                    epoch,
                };
                if typ == TYPE_ACK {
                    ControlFrame::Ack(slot)
                } else {
                    ControlFrame::RebaseRequest(slot)
                }
            }
            _ => return Err(DistError::BadFrame("control type")),
        };
        if pos != bytes.len() {
            return Err(DistError::BadFrame("trailing control bytes"));
        }
        Ok(frame)
    }
}

fn encode_slot(out: &mut Vec<u8>, slot: &SlotPos) {
    out.extend_from_slice(&slot.exporter.to_be_bytes());
    write_varint(out, slot.window_start_ms);
    write_varint(out, slot.span_ms);
    write_varint(out, slot.epoch);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(epoch: u64) -> SlotPos {
        SlotPos {
            window_start_ms: 1_700_000_100_000,
            span_ms: 1_000,
            exporter: 1_000,
            epoch,
        }
    }

    #[test]
    fn all_frame_types_roundtrip() {
        for f in [
            ControlFrame::Hello {
                features: FEATURE_ACKS,
            },
            ControlFrame::Hello { features: 0 },
            ControlFrame::Ack(slot(0)),
            ControlFrame::Ack(slot(u64::MAX)),
            ControlFrame::RebaseRequest(slot(7)),
        ] {
            let bytes = f.encode();
            assert!(is_control(&bytes));
            assert_eq!(bytes.len(), f.encoded_size());
            assert_eq!(ControlFrame::decode(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn summary_frames_are_not_control() {
        assert!(!is_control(b"FSUM...."));
        assert!(!is_control(b""));
        assert!(!is_control(b"FCT"));
    }

    #[test]
    fn hostile_control_frames_are_rejected() {
        let good = ControlFrame::Ack(slot(9)).encode();
        // Truncation at every prefix.
        for cut in 0..good.len() {
            assert!(ControlFrame::decode(&good[..cut]).is_err(), "cut {cut}");
        }
        // Trailing bytes.
        let mut long = good.clone();
        long.push(0);
        assert!(ControlFrame::decode(&long).is_err());
        // Bad magic / version / type.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(ControlFrame::decode(&bad).is_err());
        let mut bad = good.clone();
        bad[4] = 9;
        assert!(ControlFrame::decode(&bad).is_err());
        let mut bad = good.clone();
        bad[5] = 7;
        assert!(ControlFrame::decode(&bad).is_err());
        // Zero span: encode one by hand.
        let zero_span = ControlFrame::Ack(SlotPos {
            window_start_ms: 0,
            span_ms: 1,
            exporter: 3,
            epoch: 1,
        })
        .encode();
        let mut bad = zero_span.clone();
        // span varint is the second-to-last byte (start=0, span=1, epoch=1).
        let n = bad.len();
        bad[n - 2] = 0;
        assert!(matches!(
            ControlFrame::decode(&bad),
            Err(DistError::BadFrame("zero control span"))
        ));
        // Unaligned window: start 1 under span 1000.
        let mut unaligned = ControlFrame::Ack(SlotPos {
            window_start_ms: 0,
            span_ms: 100,
            exporter: 3,
            epoch: 1,
        })
        .encode();
        let n = unaligned.len();
        unaligned[n - 3] = 1; // start varint (single byte 0 → 1)
        assert!(matches!(
            ControlFrame::decode(&unaligned),
            Err(DistError::BadFrame("unaligned control window"))
        ));
    }

    #[test]
    fn unknown_feature_bits_survive_roundtrip() {
        let f = ControlFrame::Hello {
            features: FEATURE_ACKS | (1 << 17),
        };
        let back = ControlFrame::decode(&f.encode()).unwrap();
        assert_eq!(back, f);
    }
}
