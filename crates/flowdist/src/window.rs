//! Time windows.
//!
//! The distributed system slices time into fixed windows; each site
//! keeps one Flowtree per open window and emits a summary when a window
//! closes. Windows are aligned to multiples of their span so every site
//! agrees on boundaries without coordination.

/// One time window `[start_ms, start_ms + span_ms)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowId {
    /// Window start, epoch milliseconds (multiple of `span_ms`).
    pub start_ms: u64,
    /// Window length in milliseconds.
    pub span_ms: u64,
}

impl WindowId {
    /// The window containing `ts_ms` for the given span.
    pub fn containing(ts_ms: u64, span_ms: u64) -> WindowId {
        let span = span_ms.max(1);
        WindowId {
            start_ms: ts_ms / span * span,
            span_ms: span,
        }
    }

    /// Exclusive end of the window.
    pub fn end_ms(&self) -> u64 {
        self.start_ms + self.span_ms
    }

    /// Whether `ts_ms` falls inside.
    pub fn contains(&self, ts_ms: u64) -> bool {
        (self.start_ms..self.end_ms()).contains(&ts_ms)
    }

    /// The window immediately after this one.
    pub fn next(&self) -> WindowId {
        WindowId {
            start_ms: self.end_ms(),
            span_ms: self.span_ms,
        }
    }
}

impl core::fmt::Display for WindowId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}..{})ms", self.start_ms, self.end_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containing_aligns_to_span() {
        let w = WindowId::containing(1_234_567, 300_000);
        assert_eq!(w.start_ms, 1_200_000);
        assert!(w.contains(1_234_567));
        assert!(!w.contains(w.end_ms()));
        assert!(w.contains(w.start_ms));
    }

    #[test]
    fn next_is_adjacent() {
        let w = WindowId::containing(0, 60_000);
        let n = w.next();
        assert_eq!(n.start_ms, 60_000);
        assert_eq!(n.span_ms, 60_000);
    }

    #[test]
    fn all_sites_agree_on_boundaries() {
        for ts in [0u64, 1, 299_999, 300_000, 300_001, 599_999] {
            let w = WindowId::containing(ts, 300_000);
            assert_eq!(w.start_ms % 300_000, 0);
        }
    }

    #[test]
    fn zero_span_is_clamped() {
        let w = WindowId::containing(500, 0);
        assert_eq!(w.span_ms, 1);
        assert_eq!(w.start_ms, 500);
    }
}
