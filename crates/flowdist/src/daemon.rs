//! The per-site Flowtree daemon.
//!
//! Fig. 1 of the paper: "each router exports its data to a close-by
//! Flowtree daemon … to continuously construct summaries of the active
//! flows". A [`SiteDaemon`] ingests flow records (or per-packet masses),
//! maintains one Flowtree per open time window, and emits a [`Summary`]
//! whenever the event-time watermark closes a window — in full or as a
//! delta against the previous window to cut transfer volume.

use crate::shard::ShardedTree;
use crate::summary::{Summary, SummaryKind};
use crate::window::WindowId;
use flowkey::Schema;
use flownet::FlowRecord;
use flowtree_core::{Config, FlowTree, Popularity};
use std::collections::BTreeMap;

/// Full-vs-delta transfer policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferMode {
    /// Ship each window's complete tree.
    #[default]
    Full,
    /// Ship the first window in full, then per-window deltas.
    Delta,
}

/// Daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct DaemonConfig {
    /// This site's id.
    pub site: u16,
    /// Window span in milliseconds (the paper's drill-down granularity).
    pub window_ms: u64,
    /// Flow schema of the site trees.
    pub schema: Schema,
    /// Tree budget/policies.
    pub tree: Config,
    /// Transfer policy.
    pub transfer: TransferMode,
    /// Windows kept open to absorb event-time disorder before a window
    /// is considered closed (≥ 1).
    pub open_windows: usize,
    /// Ingest shards per open window (≥ 1). Each window's tree is a
    /// [`ShardedTree`] fanning updates across this many independent
    /// per-core trees (budget split evenly); window close folds the
    /// shards with the paper's `merge`, so emitted [`Summary`] bytes
    /// have exactly the shape of an unsharded daemon's.
    pub shards: usize,
}

impl DaemonConfig {
    /// A sensible default: 5-minute windows, paper-size trees,
    /// unsharded ingest.
    pub fn new(site: u16) -> DaemonConfig {
        DaemonConfig {
            site,
            window_ms: 300_000,
            schema: Schema::five_feature(),
            tree: Config::paper(),
            transfer: TransferMode::Full,
            open_windows: 2,
            shards: 1,
        }
    }

    /// Builder-style setter for the shard count.
    pub fn with_shards(mut self, shards: usize) -> DaemonConfig {
        self.shards = shards.max(1);
        self
    }
}

/// Counters the daemon keeps about its own work.
#[derive(Debug, Clone, Copy, Default)]
pub struct DaemonStats {
    /// Flow records ingested.
    pub records: u64,
    /// Raw ingest volume (bytes of NetFlow v5 records equivalent).
    pub raw_bytes: u64,
    /// Summaries emitted.
    pub summaries: u64,
    /// Total encoded summary bytes emitted.
    pub summary_bytes: u64,
    /// Records dropped because they were older than any open window.
    pub late_drops: u64,
}

/// The per-site summarization daemon.
#[derive(Debug)]
pub struct SiteDaemon {
    cfg: DaemonConfig,
    open: BTreeMap<u64, ShardedTree>,
    /// Last *emitted* window tree, base for delta encoding.
    last_emitted: Option<(u64, FlowTree)>,
    watermark_ms: u64,
    seq: u64,
    stats: DaemonStats,
}

impl SiteDaemon {
    /// Creates an idle daemon.
    pub fn new(cfg: DaemonConfig) -> SiteDaemon {
        assert!(cfg.open_windows >= 1, "need at least one open window");
        SiteDaemon {
            cfg,
            open: BTreeMap::new(),
            last_emitted: None,
            watermark_ms: 0,
            seq: 0,
            stats: DaemonStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    /// Work counters.
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }

    /// Currently open windows (oldest first).
    pub fn open_windows(&self) -> Vec<WindowId> {
        self.open
            .keys()
            .map(|&start_ms| WindowId {
                start_ms,
                span_ms: self.cfg.window_ms,
            })
            .collect()
    }

    /// Ingests one flow record; returns summaries of any windows that
    /// closed as a consequence of the advancing event time.
    pub fn ingest_record(&mut self, r: &FlowRecord) -> Vec<Summary> {
        self.stats.records += 1;
        self.stats.raw_bytes += flownet::netflow5::RECORD_LEN as u64;
        let key = r.flow_key();
        let pop = Popularity::flow(r.packets, r.bytes);
        self.ingest_mass(r.last_ms, &key, pop)
    }

    /// Ingests pre-keyed mass at an event time (per-packet path).
    pub fn ingest_mass(
        &mut self,
        ts_ms: u64,
        key: &flowkey::FlowKey,
        pop: Popularity,
    ) -> Vec<Summary> {
        let window = WindowId::containing(ts_ms, self.cfg.window_ms);
        let out = self.advance_watermark(ts_ms);
        // Late data: older than every open window → dropped (counted).
        let oldest_open = self.oldest_allowed();
        if window.start_ms < oldest_open {
            self.stats.late_drops += 1;
            return out;
        }
        let tree = self
            .open
            .entry(window.start_ms)
            .or_insert_with(|| ShardedTree::new(self.cfg.schema, self.cfg.tree, self.cfg.shards));
        tree.insert(key, pop);
        out
    }

    /// Ingests a batch of pre-keyed masses stamped with one event time,
    /// fanning the batch across the window's ingest shards in parallel
    /// when `DaemonConfig::shards > 1`. Returns summaries of any
    /// windows the advancing event time closed.
    pub fn ingest_mass_batch(
        &mut self,
        ts_ms: u64,
        batch: &[(flowkey::FlowKey, Popularity)],
    ) -> Vec<Summary> {
        let window = WindowId::containing(ts_ms, self.cfg.window_ms);
        let out = self.advance_watermark(ts_ms);
        let oldest_open = self.oldest_allowed();
        if window.start_ms < oldest_open {
            self.stats.late_drops += batch.len() as u64;
            return out;
        }
        let tree = self
            .open
            .entry(window.start_ms)
            .or_insert_with(|| ShardedTree::new(self.cfg.schema, self.cfg.tree, self.cfg.shards));
        tree.par_insert_batch(batch);
        out
    }

    /// Advances event time, closing windows that fell behind the
    /// allowed-open range.
    pub fn advance_watermark(&mut self, ts_ms: u64) -> Vec<Summary> {
        if ts_ms <= self.watermark_ms {
            return Vec::new();
        }
        self.watermark_ms = ts_ms;
        let oldest_allowed = self.oldest_allowed();
        let to_close: Vec<u64> = self
            .open
            .keys()
            .copied()
            .filter(|&s| s < oldest_allowed)
            .collect();
        to_close.into_iter().map(|s| self.close_window(s)).collect()
    }

    fn oldest_allowed(&self) -> u64 {
        let span = self.cfg.window_ms;
        let current = self.watermark_ms / span * span;
        current.saturating_sub(span * (self.cfg.open_windows as u64 - 1))
    }

    /// Closes every open window (shutdown / end of trace), oldest first.
    pub fn flush(&mut self) -> Vec<Summary> {
        let starts: Vec<u64> = self.open.keys().copied().collect();
        starts.into_iter().map(|s| self.close_window(s)).collect()
    }

    fn close_window(&mut self, start_ms: u64) -> Summary {
        // Fold the window's ingest shards into one tree via the
        // paper's `merge`; with `shards == 1` this is a move.
        let tree = self
            .open
            .remove(&start_ms)
            .expect("window open")
            .into_tree();
        let window = WindowId {
            start_ms,
            span_ms: self.cfg.window_ms,
        };
        let (kind, wire_tree) = match (self.cfg.transfer, &self.last_emitted) {
            (TransferMode::Delta, Some((_, prev))) => {
                let delta = FlowTree::diffed(&tree, prev).expect("same schema within one daemon");
                (SummaryKind::Delta, delta)
            }
            _ => (SummaryKind::Full, tree.clone()),
        };
        if self.cfg.transfer == TransferMode::Delta {
            self.last_emitted = Some((start_ms, tree));
        }
        self.seq += 1;
        let summary = Summary {
            site: self.cfg.site,
            window,
            seq: self.seq,
            kind,
            tree: wire_tree,
        };
        self.stats.summaries += 1;
        self.stats.summary_bytes += summary.encode().len() as u64;
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkey::FlowKey;

    fn record(ts_ms: u64, host: u8, packets: u64) -> FlowRecord {
        let mut r = FlowRecord::v4(
            [10, 0, 0, host],
            [192, 0, 2, 1],
            1234,
            443,
            6,
            packets,
            packets * 100,
        );
        r.first_ms = ts_ms.saturating_sub(10);
        r.last_ms = ts_ms;
        r
    }

    fn daemon(window_ms: u64, transfer: TransferMode) -> SiteDaemon {
        let mut cfg = DaemonConfig::new(1);
        cfg.window_ms = window_ms;
        cfg.transfer = transfer;
        cfg.tree = Config::with_budget(512);
        SiteDaemon::new(cfg)
    }

    #[test]
    fn windows_close_as_time_advances() {
        let mut d = daemon(1000, TransferMode::Full);
        assert!(d.ingest_record(&record(100, 1, 5)).is_empty());
        assert!(d.ingest_record(&record(900, 2, 3)).is_empty());
        // Jump two windows ahead: window [0,1000) must close.
        let out = d.ingest_record(&record(2500, 3, 1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].window.start_ms, 0);
        assert_eq!(out[0].kind, SummaryKind::Full);
        assert_eq!(out[0].tree.total().packets, 8);
        assert_eq!(out[0].seq, 1);
    }

    #[test]
    fn flush_emits_all_open_windows_in_order() {
        let mut d = daemon(1000, TransferMode::Full);
        d.ingest_record(&record(500, 1, 1));
        d.ingest_record(&record(1500, 2, 2));
        let out = d.flush();
        assert_eq!(out.len(), 2);
        assert!(out[0].window.start_ms < out[1].window.start_ms);
        assert_eq!(d.open_windows().len(), 0);
    }

    #[test]
    fn out_of_order_within_open_range_is_absorbed() {
        let mut d = daemon(1000, TransferMode::Full);
        d.ingest_record(&record(1100, 1, 1)); // window 1
        d.ingest_record(&record(900, 2, 1)); // window 0, still open
        assert_eq!(d.open_windows().len(), 2);
        assert_eq!(d.stats().late_drops, 0);
        let all = d.flush();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn too_late_records_are_dropped_and_counted() {
        let mut d = daemon(1000, TransferMode::Full);
        d.ingest_record(&record(5000, 1, 1));
        let out = d.ingest_record(&record(100, 2, 1)); // hopelessly late
        assert!(out.is_empty());
        assert_eq!(d.stats().late_drops, 1);
        // The late record must not have contaminated any window.
        let all = d.flush();
        let total: i64 = all.iter().map(|s| s.tree.total().packets).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn delta_mode_emits_full_then_deltas_that_reconstruct() {
        let mut d = daemon(1000, TransferMode::Delta);
        // Window 0: hosts 1,2. Window 1: hosts 2,3 (overlap on 2).
        d.ingest_record(&record(100, 1, 5));
        d.ingest_record(&record(200, 2, 7));
        d.ingest_record(&record(1100, 2, 7));
        d.ingest_record(&record(1200, 3, 9));
        let out = d.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].kind, SummaryKind::Full);
        assert_eq!(out[1].kind, SummaryKind::Delta);
        // Reconstruct window 1 = window 0 + delta.
        let mut w1 = out[0].tree.clone();
        w1.merge(&out[1].tree).unwrap();
        w1.prune_zeros();
        assert_eq!(w1.total().packets, 16);
        let k: FlowKey = "src=10.0.0.3/32 dst=192.0.2.1/32 sport=1234 dport=443 proto=tcp"
            .parse()
            .unwrap();
        assert_eq!(
            w1.subtree_popularity(&k).map(|p| p.packets),
            Some(9),
            "host 3 appears after reconstruction"
        );
        let gone: FlowKey = "src=10.0.0.1/32 dst=192.0.2.1/32 sport=1234 dport=443 proto=tcp"
            .parse()
            .unwrap();
        assert!(
            w1.subtree_popularity(&gone).map(|p| p.packets).unwrap_or(0) == 0,
            "host 1 cancels out in window 1"
        );
    }

    #[test]
    fn stats_account_bytes() {
        let mut d = daemon(1000, TransferMode::Full);
        for i in 0..100 {
            d.ingest_record(&record(i * 20, (i % 10) as u8, 1));
        }
        let _ = d.flush();
        let s = d.stats();
        assert_eq!(s.records, 100);
        assert_eq!(s.raw_bytes, 100 * 48);
        assert!(s.summaries >= 1);
        assert!(s.summary_bytes > 0);
    }
}
