//! The per-site Flowtree daemon.
//!
//! Fig. 1 of the paper: "each router exports its data to a close-by
//! Flowtree daemon … to continuously construct summaries of the active
//! flows". A [`SiteDaemon`] ingests flow records (or per-packet masses),
//! maintains one Flowtree per open time window, and emits a [`Summary`]
//! whenever the event-time watermark closes a window — in full or as a
//! delta against the previous window to cut transfer volume.

use crate::shard::ShardedTree;
use crate::summary::{Summary, SummaryKind};
use crate::window::WindowId;
use flowkey::Schema;
use flownet::FlowRecord;
use flowtree_core::{Config, FlowTree, Popularity};
use std::collections::BTreeMap;

/// Full-vs-delta transfer policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferMode {
    /// Ship each window's complete tree.
    #[default]
    Full,
    /// Ship the first window in full, then per-window deltas.
    Delta,
}

/// Daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct DaemonConfig {
    /// This site's id.
    pub site: u16,
    /// Window span in milliseconds (the paper's drill-down granularity).
    pub window_ms: u64,
    /// Flow schema of the site trees.
    pub schema: Schema,
    /// Tree budget/policies.
    pub tree: Config,
    /// Transfer policy.
    pub transfer: TransferMode,
    /// Windows kept open to absorb event-time disorder before a window
    /// is considered closed (≥ 1).
    pub open_windows: usize,
    /// Ingest shards per open window (≥ 1). Each window's tree is a
    /// [`ShardedTree`] fanning updates across this many independent
    /// per-core trees (budget split evenly); window close folds the
    /// shards with the paper's `merge`, so emitted [`Summary`] bytes
    /// have exactly the shape of an unsharded daemon's.
    pub shards: usize,
    /// Pin shard worker threads to cores (opt-in, best-effort, Linux
    /// only). Applies to worker pools spawned after the flag is set —
    /// i.e. from the next window on, when toggled live.
    pub pin_cores: bool,
}

impl DaemonConfig {
    /// A sensible default: 5-minute windows, paper-size trees,
    /// unsharded ingest.
    pub fn new(site: u16) -> DaemonConfig {
        DaemonConfig {
            site,
            window_ms: 300_000,
            schema: Schema::five_feature(),
            tree: Config::paper(),
            transfer: TransferMode::Full,
            open_windows: 2,
            shards: 1,
            pin_cores: false,
        }
    }

    /// Builder-style setter for the shard count.
    pub fn with_shards(mut self, shards: usize) -> DaemonConfig {
        self.shards = shards.max(1);
        self
    }
}

/// Counters the daemon keeps about its own work.
#[derive(Debug, Clone, Copy, Default)]
pub struct DaemonStats {
    /// Flow records ingested.
    pub records: u64,
    /// Raw ingest volume in bytes. Paths that see the wire (the
    /// streaming [`crate::pipeline`]) account actual export-packet
    /// bytes per format via [`SiteDaemon::note_raw_bytes`]; paths fed
    /// pre-decoded records count NetFlow v5 record equivalents
    /// ([`flownet::netflow5::RECORD_LEN`] per record).
    pub raw_bytes: u64,
    /// Summaries emitted.
    pub summaries: u64,
    /// Total encoded summary bytes emitted.
    pub summary_bytes: u64,
    /// Records dropped because they were older than any open window.
    pub late_drops: u64,
}

/// The per-site summarization daemon.
#[derive(Debug)]
pub struct SiteDaemon {
    cfg: DaemonConfig,
    open: BTreeMap<u64, ShardedTree>,
    /// Last *emitted* window tree, base for delta encoding.
    last_emitted: Option<(u64, FlowTree)>,
    watermark_ms: u64,
    seq: u64,
    stats: DaemonStats,
}

impl SiteDaemon {
    /// Creates an idle daemon.
    pub fn new(cfg: DaemonConfig) -> SiteDaemon {
        assert!(cfg.open_windows >= 1, "need at least one open window");
        SiteDaemon {
            cfg,
            open: BTreeMap::new(),
            last_emitted: None,
            watermark_ms: 0,
            seq: 0,
            stats: DaemonStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    /// Work counters.
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }

    /// Current event-time watermark (ms) — the newest record timestamp
    /// this daemon has seen.
    pub fn watermark(&self) -> u64 {
        self.watermark_ms
    }

    /// Toggles core pinning for shard worker pools spawned from now on
    /// (live-reload path of the `pin-cores` knob; pools already running
    /// keep their affinity until their window closes).
    pub fn set_pin_workers(&mut self, pin: bool) {
        self.cfg.pin_cores = pin;
    }

    /// A fresh sharded tree for one window, honoring the pinning knob.
    /// Associated (not `&self`) so `open.entry(..).or_insert_with` can
    /// call it while `self.open` is borrowed.
    fn window_tree(cfg: &DaemonConfig) -> ShardedTree {
        let mut t = ShardedTree::new(cfg.schema, cfg.tree, cfg.shards);
        t.set_pin_workers(cfg.pin_cores);
        t
    }

    /// Currently open windows (oldest first).
    pub fn open_windows(&self) -> Vec<WindowId> {
        self.open
            .keys()
            .map(|&start_ms| WindowId {
                start_ms,
                span_ms: self.cfg.window_ms,
            })
            .collect()
    }

    /// Ingests one flow record; returns summaries of any windows that
    /// closed as a consequence of the advancing event time.
    pub fn ingest_record(&mut self, r: &FlowRecord) -> Vec<Summary> {
        self.stats.records += 1;
        self.stats.raw_bytes += flownet::netflow5::RECORD_LEN as u64;
        let key = r.flow_key();
        let pop = Popularity::flow(r.packets, r.bytes);
        self.ingest_mass(r.last_ms, &key, pop)
    }

    /// Ingests pre-keyed mass at an event time (per-packet path).
    pub fn ingest_mass(
        &mut self,
        ts_ms: u64,
        key: &flowkey::FlowKey,
        pop: Popularity,
    ) -> Vec<Summary> {
        let window = WindowId::containing(ts_ms, self.cfg.window_ms);
        let out = self.advance_watermark(ts_ms);
        // Late data: older than every open window → dropped (counted).
        let oldest_open = self.oldest_allowed();
        if window.start_ms < oldest_open {
            self.stats.late_drops += 1;
            return out;
        }
        let tree = self
            .open
            .entry(window.start_ms)
            .or_insert_with(|| Self::window_tree(&self.cfg));
        tree.insert(key, pop);
        out
    }

    /// Ingests a batch of pre-keyed masses that genuinely share one
    /// event time, fanning the batch across the window's ingest shards
    /// in parallel when `DaemonConfig::shards > 1`. Returns summaries
    /// of any windows the advancing event time closed.
    ///
    /// Every item is attributed to the window containing `ts_ms` — for
    /// batches whose records carry their own timestamps (which may
    /// straddle a window boundary), use [`Self::ingest_stamped_batch`]
    /// so each item lands in its own window.
    pub fn ingest_mass_batch(
        &mut self,
        ts_ms: u64,
        batch: &[(flowkey::FlowKey, Popularity)],
    ) -> Vec<Summary> {
        self.stats.records += batch.len() as u64;
        self.stats.raw_bytes += batch.len() as u64 * flownet::netflow5::RECORD_LEN as u64;
        let window = WindowId::containing(ts_ms, self.cfg.window_ms);
        let out = self.advance_watermark(ts_ms);
        let oldest_open = self.oldest_allowed();
        if window.start_ms < oldest_open {
            self.stats.late_drops += batch.len() as u64;
            return out;
        }
        let tree = self
            .open
            .entry(window.start_ms)
            .or_insert_with(|| Self::window_tree(&self.cfg));
        tree.par_insert_batch(batch);
        out
    }

    /// Ingests a batch of `(event_time_ms, key, mass)` items, routing
    /// **each item to the window containing its own timestamp** — the
    /// batch may span window boundaries freely (the streaming
    /// [`crate::pipeline`] feeds the daemon through this). Items land
    /// in their windows *before* the watermark advances to the batch's
    /// newest timestamp, so an item whose window was open on arrival is
    /// never closed out from under its own batch: it is included in the
    /// summary this call may emit. Only items already older than every
    /// open window at call time are dropped (and counted). Returns
    /// summaries of any windows the advancing event time closed.
    ///
    /// Counts `records` but not `raw_bytes`: callers that saw the wire
    /// report actual bytes via [`Self::note_raw_bytes`]; others may add
    /// a [`flownet::netflow5::RECORD_LEN`]-per-record equivalent.
    pub fn ingest_stamped_batch(
        &mut self,
        items: &[(u64, flowkey::FlowKey, Popularity)],
    ) -> Vec<Summary> {
        if items.is_empty() {
            return Vec::new();
        }
        let span = self.cfg.window_ms;
        let (mut max_ts, mut w_min, mut w_max) = (0u64, u64::MAX, 0u64);
        for (ts, _, _) in items {
            max_ts = max_ts.max(*ts);
            let w = WindowId::containing(*ts, span).start_ms;
            w_min = w_min.min(w);
            w_max = w_max.max(w);
        }
        self.stats.records += items.len() as u64;
        // Lateness is judged against the horizon as of arrival; the
        // batch's own newest timestamp must not retro-drop its peers.
        let oldest_open = self.oldest_allowed();
        if w_min == w_max {
            // The common shape — the pipeline sends window-bucketed
            // batches — feeds the shards straight from the input slice.
            if w_max < oldest_open {
                self.stats.late_drops += items.len() as u64;
            } else {
                let tree = self
                    .open
                    .entry(w_max)
                    .or_insert_with(|| Self::window_tree(&self.cfg));
                tree.par_insert_iter(items.iter().map(|(_, k, p)| (k, *p)), items.len());
            }
            return self.advance_watermark(max_ts);
        }
        let mut per_window: BTreeMap<u64, Vec<(flowkey::FlowKey, Popularity)>> = BTreeMap::new();
        for (ts, key, pop) in items {
            let window = WindowId::containing(*ts, span);
            if window.start_ms < oldest_open {
                self.stats.late_drops += 1;
            } else {
                per_window
                    .entry(window.start_ms)
                    .or_default()
                    .push((*key, *pop));
            }
        }
        for (start_ms, batch) in per_window {
            let tree = self
                .open
                .entry(start_ms)
                .or_insert_with(|| Self::window_tree(&self.cfg));
            tree.par_insert_batch(&batch);
        }
        self.advance_watermark(max_ts)
    }

    /// [`Self::ingest_stamped_batch`] for items whose keys are
    /// **already canonicalized and hashed** — each item carries
    /// `(event_time_ms, key_hash, key, mass)`. The streaming pipeline
    /// hashes every record exactly once at decode time and this path
    /// routes shards by that carried hash, so flush time does zero
    /// re-canonicalizing and re-hashing. Semantics (window routing,
    /// lateness, watermark, counters) are identical to the stamped
    /// path.
    pub fn ingest_prehashed_batch(
        &mut self,
        items: &[(u64, u64, flowkey::FlowKey, Popularity)],
    ) -> Vec<Summary> {
        if items.is_empty() {
            return Vec::new();
        }
        let span = self.cfg.window_ms;
        let (mut max_ts, mut w_min, mut w_max) = (0u64, u64::MAX, 0u64);
        for (ts, _, _, _) in items {
            max_ts = max_ts.max(*ts);
            let w = WindowId::containing(*ts, span).start_ms;
            w_min = w_min.min(w);
            w_max = w_max.max(w);
        }
        self.stats.records += items.len() as u64;
        // Lateness is judged against the horizon as of arrival; the
        // batch's own newest timestamp must not retro-drop its peers.
        let oldest_open = self.oldest_allowed();
        if w_min == w_max {
            // The common shape — the pipeline sends window-bucketed
            // batches — feeds the shards straight from the input slice.
            if w_max < oldest_open {
                self.stats.late_drops += items.len() as u64;
            } else {
                let tree = self
                    .open
                    .entry(w_max)
                    .or_insert_with(|| Self::window_tree(&self.cfg));
                tree.par_insert_prehashed_iter(
                    items.iter().map(|(_, h, k, p)| (*h, *k, *p)),
                    items.len(),
                );
            }
            return self.advance_watermark(max_ts);
        }
        let mut per_window: BTreeMap<u64, Vec<(u64, flowkey::FlowKey, Popularity)>> =
            BTreeMap::new();
        for (ts, hash, key, pop) in items {
            let window = WindowId::containing(*ts, span);
            if window.start_ms < oldest_open {
                self.stats.late_drops += 1;
            } else {
                per_window
                    .entry(window.start_ms)
                    .or_default()
                    .push((*hash, *key, *pop));
            }
        }
        for (start_ms, batch) in per_window {
            let len = batch.len();
            let tree = self
                .open
                .entry(start_ms)
                .or_insert_with(|| Self::window_tree(&self.cfg));
            tree.par_insert_prehashed_iter(batch.into_iter(), len);
        }
        self.advance_watermark(max_ts)
    }

    /// Attributes raw on-the-wire ingest volume (actual export-packet
    /// bytes, any format) to this daemon's [`DaemonStats::raw_bytes`].
    pub fn note_raw_bytes(&mut self, bytes: u64) {
        self.stats.raw_bytes += bytes;
    }

    /// Advances event time, closing windows that fell behind the
    /// allowed-open range.
    pub fn advance_watermark(&mut self, ts_ms: u64) -> Vec<Summary> {
        if ts_ms <= self.watermark_ms {
            return Vec::new();
        }
        self.watermark_ms = ts_ms;
        let oldest_allowed = self.oldest_allowed();
        let to_close: Vec<u64> = self
            .open
            .keys()
            .copied()
            .filter(|&s| s < oldest_allowed)
            .collect();
        to_close.into_iter().map(|s| self.close_window(s)).collect()
    }

    fn oldest_allowed(&self) -> u64 {
        let span = self.cfg.window_ms;
        let current = self.watermark_ms / span * span;
        current.saturating_sub(span * (self.cfg.open_windows as u64 - 1))
    }

    /// Closes every open window (shutdown / end of trace), oldest first.
    pub fn flush(&mut self) -> Vec<Summary> {
        let starts: Vec<u64> = self.open.keys().copied().collect();
        starts.into_iter().map(|s| self.close_window(s)).collect()
    }

    fn close_window(&mut self, start_ms: u64) -> Summary {
        // Fold the window's ingest shards into one tree via the
        // paper's `merge`; with `shards == 1` this is a move.
        let tree = self
            .open
            .remove(&start_ms)
            .expect("window open")
            .into_tree();
        let window = WindowId {
            start_ms,
            span_ms: self.cfg.window_ms,
        };
        // Full mode moves the tree into the summary (the old path
        // cloned every window's tree just to keep a value it then
        // dropped); delta mode is the only one that must retain it as
        // the next delta's base.
        let (kind, wire_tree) = match self.cfg.transfer {
            TransferMode::Delta => {
                let wire = match &self.last_emitted {
                    Some((_, prev)) => (
                        SummaryKind::Delta,
                        FlowTree::diffed(&tree, prev).expect("same schema within one daemon"),
                    ),
                    None => (SummaryKind::Full, tree.clone()),
                };
                self.last_emitted = Some((start_ms, tree));
                wire
            }
            TransferMode::Full => (SummaryKind::Full, tree),
        };
        self.seq += 1;
        let summary = Summary {
            site: self.cfg.site,
            window,
            seq: self.seq,
            kind,
            provenance: None,
            epoch: None,
            tree: wire_tree,
        };
        self.stats.summaries += 1;
        // Exact arithmetic size — no throwaway encode on the close path.
        self.stats.summary_bytes += summary.encoded_size() as u64;
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkey::FlowKey;

    fn record(ts_ms: u64, host: u8, packets: u64) -> FlowRecord {
        let mut r = FlowRecord::v4(
            [10, 0, 0, host],
            [192, 0, 2, 1],
            1234,
            443,
            6,
            packets,
            packets * 100,
        );
        r.first_ms = ts_ms.saturating_sub(10);
        r.last_ms = ts_ms;
        r
    }

    fn daemon(window_ms: u64, transfer: TransferMode) -> SiteDaemon {
        let mut cfg = DaemonConfig::new(1);
        cfg.window_ms = window_ms;
        cfg.transfer = transfer;
        cfg.tree = Config::with_budget(512);
        SiteDaemon::new(cfg)
    }

    #[test]
    fn windows_close_as_time_advances() {
        let mut d = daemon(1000, TransferMode::Full);
        assert!(d.ingest_record(&record(100, 1, 5)).is_empty());
        assert!(d.ingest_record(&record(900, 2, 3)).is_empty());
        // Jump two windows ahead: window [0,1000) must close.
        let out = d.ingest_record(&record(2500, 3, 1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].window.start_ms, 0);
        assert_eq!(out[0].kind, SummaryKind::Full);
        assert_eq!(out[0].tree.total().packets, 8);
        assert_eq!(out[0].seq, 1);
    }

    #[test]
    fn flush_emits_all_open_windows_in_order() {
        let mut d = daemon(1000, TransferMode::Full);
        d.ingest_record(&record(500, 1, 1));
        d.ingest_record(&record(1500, 2, 2));
        let out = d.flush();
        assert_eq!(out.len(), 2);
        assert!(out[0].window.start_ms < out[1].window.start_ms);
        assert_eq!(d.open_windows().len(), 0);
    }

    #[test]
    fn out_of_order_within_open_range_is_absorbed() {
        let mut d = daemon(1000, TransferMode::Full);
        d.ingest_record(&record(1100, 1, 1)); // window 1
        d.ingest_record(&record(900, 2, 1)); // window 0, still open
        assert_eq!(d.open_windows().len(), 2);
        assert_eq!(d.stats().late_drops, 0);
        let all = d.flush();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn too_late_records_are_dropped_and_counted() {
        let mut d = daemon(1000, TransferMode::Full);
        d.ingest_record(&record(5000, 1, 1));
        let out = d.ingest_record(&record(100, 2, 1)); // hopelessly late
        assert!(out.is_empty());
        assert_eq!(d.stats().late_drops, 1);
        // The late record must not have contaminated any window.
        let all = d.flush();
        let total: i64 = all.iter().map(|s| s.tree.total().packets).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn delta_mode_emits_full_then_deltas_that_reconstruct() {
        let mut d = daemon(1000, TransferMode::Delta);
        // Window 0: hosts 1,2. Window 1: hosts 2,3 (overlap on 2).
        d.ingest_record(&record(100, 1, 5));
        d.ingest_record(&record(200, 2, 7));
        d.ingest_record(&record(1100, 2, 7));
        d.ingest_record(&record(1200, 3, 9));
        let out = d.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].kind, SummaryKind::Full);
        assert_eq!(out[1].kind, SummaryKind::Delta);
        // Reconstruct window 1 = window 0 + delta.
        let mut w1 = out[0].tree.clone();
        w1.merge(&out[1].tree).unwrap();
        w1.prune_zeros();
        assert_eq!(w1.total().packets, 16);
        let k: FlowKey = "src=10.0.0.3/32 dst=192.0.2.1/32 sport=1234 dport=443 proto=tcp"
            .parse()
            .unwrap();
        assert_eq!(
            w1.subtree_popularity(&k).map(|p| p.packets),
            Some(9),
            "host 3 appears after reconstruction"
        );
        let gone: FlowKey = "src=10.0.0.1/32 dst=192.0.2.1/32 sport=1234 dport=443 proto=tcp"
            .parse()
            .unwrap();
        assert!(
            w1.subtree_popularity(&gone).map(|p| p.packets).unwrap_or(0) == 0,
            "host 1 cancels out in window 1"
        );
    }

    fn mass(host: u8, packets: i64) -> (FlowKey, Popularity) {
        let k: FlowKey =
            format!("src=10.0.0.{host}/32 dst=192.0.2.1/32 sport=1234 dport=443 proto=tcp")
                .parse()
                .unwrap();
        (k, Popularity::new(packets, packets * 100, 1))
    }

    #[test]
    fn mass_batch_is_counted_like_the_record_path() {
        let mut d = daemon(1000, TransferMode::Full);
        let batch: Vec<_> = (0..10).map(|i| mass(i, 2)).collect();
        d.ingest_mass_batch(500, &batch);
        assert_eq!(d.stats().records, 10);
        assert_eq!(d.stats().raw_bytes, 10 * 48);
        // A dropped-late batch still counts as ingested records.
        d.ingest_mass_batch(9_500, &batch);
        d.ingest_mass_batch(100, &batch[..3]);
        assert_eq!(d.stats().records, 23);
        assert_eq!(d.stats().late_drops, 3);
    }

    #[test]
    fn stamped_batch_routes_each_item_to_its_own_window() {
        let mut cfg = DaemonConfig::new(1);
        cfg.window_ms = 1000;
        cfg.tree = Config::with_budget(512);
        cfg.open_windows = 3;
        let mut d = SiteDaemon::new(cfg);
        let (k1, p1) = mass(1, 5);
        let (k2, p2) = mass(2, 7);
        let (k3, p3) = mass(3, 9);
        // One batch straddling two boundaries: windows 0, 1, and 2 —
        // all still open, so nothing may be misattributed or dropped.
        let out = d.ingest_stamped_batch(&[(900, k1, p1), (1_100, k2, p2), (2_050, k3, p3)]);
        assert!(out.is_empty(), "all three windows remain open");
        assert_eq!(d.open_windows().len(), 3);
        assert_eq!(d.stats().records, 3);
        assert_eq!(d.stats().late_drops, 0);
        let all = d.flush();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].window.start_ms, 0);
        assert_eq!(all[0].tree.total().packets, 5);
        assert_eq!(all[1].tree.total().packets, 7);
        assert_eq!(all[2].tree.total().packets, 9);
    }

    #[test]
    fn stamped_batch_drops_only_the_hopelessly_late_items() {
        let mut d = daemon(1000, TransferMode::Full);
        let (k1, p1) = mass(1, 1);
        let (k2, p2) = mass(2, 2);
        d.ingest_record(&record(5_000, 9, 1));
        // k1 is older than every open window; k2 lands in the current.
        let out = d.ingest_stamped_batch(&[(100, k1, p1), (5_100, k2, p2)]);
        assert!(out.is_empty());
        assert_eq!(d.stats().late_drops, 1);
        let total: i64 = d.flush().iter().map(|s| s.tree.total().packets).sum();
        assert_eq!(total, 3, "the late item never contaminated a window");
    }

    #[test]
    fn stamped_batch_newest_item_cannot_retro_drop_its_peers() {
        let mut d = daemon(1000, TransferMode::Full);
        d.ingest_record(&record(1_500, 9, 1)); // windows 0 and 1 open
        let (k1, p1) = mass(1, 5);
        let (k2, p2) = mass(2, 2);
        // k1's window [0,1000) is open on arrival; k2's timestamp will
        // close it. k1 must land in window 0 *before* the close, so the
        // summary this very call emits includes it.
        let out = d.ingest_stamped_batch(&[(900, k1, p1), (2_500, k2, p2)]);
        assert_eq!(d.stats().late_drops, 0);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].window.start_ms, 0);
        assert_eq!(out[0].tree.total().packets, 5);
        let total: i64 = d.flush().iter().map(|s| s.tree.total().packets).sum();
        assert_eq!(total, 3, "window 1 record + k2 remain open until flush");
    }

    #[test]
    fn note_raw_bytes_accumulates() {
        let mut d = daemon(1000, TransferMode::Full);
        d.note_raw_bytes(1_500);
        d.note_raw_bytes(24);
        assert_eq!(d.stats().raw_bytes, 1_524);
    }

    #[test]
    fn stats_account_bytes() {
        let mut d = daemon(1000, TransferMode::Full);
        for i in 0..100 {
            d.ingest_record(&record(i * 20, (i % 10) as u8, 1));
        }
        let _ = d.flush();
        let s = d.stats();
        assert_eq!(s.records, 100);
        assert_eq!(s.raw_bytes, 100 * 48);
        assert!(s.summaries >= 1);
        assert!(s.summary_bytes > 0);
    }
}
