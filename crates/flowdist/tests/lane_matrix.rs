//! Fallback-matrix pin for the multi-lane ingest engine: every
//! lane/receive configuration — `SO_REUSEPORT` multi-socket,
//! single-socket fanout rings, `recvmmsg`, forced single-datagram
//! fallback — must emit **byte-identical** summary frames over the
//! same traffic, and must account for every received datagram exactly
//! once (`datagrams == packets + decode_errors + quota_packet_drops`)
//! *per lane* and summed.
//!
//! Byte identity is not a smoke claim: summaries are canonical
//! encodings of node multisets, lane daemons only split *which* tree a
//! record lands in, and the merger recombines them with the paper's
//! structural merge — so the frames a 4-lane site ships must equal,
//! byte for byte, what the 1-lane site ships for the same records.

use flowdist::daemon::{DaemonConfig, SiteDaemon, TransferMode};
use flowdist::lane::{spawn_multi_lane_ingest, LaneOptions};
use flowdist::net::export_netflow;
use flowdist::{IngestPipeline, IngestReport, LaneSnapshot};
use flowkey::Schema;
use flownet::FlowRecord;
use flowtree_core::Config;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

const EXPORTERS: usize = 4;
const RECORDS_PER_EXPORTER: usize = 30;
const GARBAGE_PER_EXPORTER: usize = 3;

fn pipeline_for(_lane: usize) -> IngestPipeline {
    let mut cfg = DaemonConfig::new(9);
    cfg.window_ms = 1_000;
    cfg.schema = Schema::five_feature();
    cfg.tree = Config::with_budget(4_096);
    cfg.transfer = TransferMode::Full;
    IngestPipeline::new(SiteDaemon::new(cfg), 64)
}

/// The canonical record stream of exporter `s`: 30 records spread
/// over event-time windows [0s,1s) [1s,2s) [2s,3s), distinct hosts
/// per exporter so the merged tree exercises real structure.
fn exporter_records(s: usize) -> Vec<FlowRecord> {
    (0..RECORDS_PER_EXPORTER as u64)
        .map(|i| {
            let mut r = FlowRecord::v4(
                [10, 3, s as u8, (i % 8) as u8],
                [192, 0, 2, 9],
                4_000 + s as u16,
                443,
                6,
                2 + i % 3,
                (2 + i % 3) * 64,
            );
            let ts = (i / 10) * 1_000 + 100 + i;
            r.first_ms = ts;
            r.last_ms = ts;
            r
        })
        .collect()
}

/// Runs one matrix cell: boots the engine, replays the canonical
/// traffic (valid v5 exports plus garbage datagrams from every
/// exporter), waits until every sent datagram is visibly accounted,
/// stops, and returns the report, the shipped frames, and the final
/// per-lane snapshots.
fn run_cell(opts: LaneOptions) -> (IngestReport, Vec<Vec<u8>>, Vec<LaneSnapshot>) {
    let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(256);
    let handle = spawn_multi_lane_ingest("127.0.0.1:0", pipeline_for, tx, opts).expect("bind");
    let to = handle.local_addr();
    let view = handle.view();

    let mut sent = 0u64;
    for s in 0..EXPORTERS {
        let sock = UdpSocket::bind("127.0.0.1:0").unwrap();
        sent += export_netflow(&sock, to, &exporter_records(s), 10_000).unwrap() as u64;
        for g in 0..GARBAGE_PER_EXPORTER {
            let junk = vec![0xA5u8; 11 + g]; // undecodable, distinct sizes
            sock.send_to(&junk, to).unwrap();
            sent += 1;
        }
    }

    // Loopback does not reorder but can drop under pressure; the pin
    // below needs every datagram, so wait until the lanes have seen
    // (and therefore processed) all of them before stopping.
    let deadline = Instant::now() + Duration::from_secs(10);
    while view.snapshot().datagrams < sent {
        assert!(
            Instant::now() < deadline,
            "lanes saw {} of {sent} datagrams",
            view.snapshot().datagrams
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let lanes: Vec<LaneSnapshot> = (0..view.lanes()).map(|i| view.lane(i)).collect();
    let report = handle.stop();
    let frames: Vec<Vec<u8>> = rx.try_iter().collect();
    assert_eq!(report.datagrams, sent, "nothing received beyond the plan");
    (report, frames, lanes)
}

/// Exact drop accounting, per lane and summed: every datagram sits in
/// exactly one of {decoded packet, decode error, quota drop}.
fn check_accounting(report: &IngestReport, lanes: &[LaneSnapshot]) {
    assert!(report.error.is_none());
    for (i, l) in lanes.iter().enumerate() {
        assert_eq!(
            l.datagrams,
            l.packets + l.decode_errors + l.quota_packet_drops,
            "lane {i} accounting identity"
        );
    }
    let summed: u64 = lanes.iter().map(|l| l.datagrams).sum();
    assert_eq!(summed, report.datagrams, "lane datagrams re-sum");
    assert_eq!(
        report.datagrams,
        report.pipeline.packets + report.pipeline.decode_errors + report.admission.packet_drops,
        "summed accounting identity"
    );
    assert_eq!(
        report.pipeline.decode_errors,
        (EXPORTERS * GARBAGE_PER_EXPORTER) as u64,
        "every garbage datagram counted as a decode error"
    );
    assert_eq!(
        report.pipeline.records,
        (EXPORTERS * RECORDS_PER_EXPORTER) as u64
    );
    assert_eq!(report.frames_dropped, 0);
}

#[test]
fn every_fallback_cell_emits_byte_identical_summaries() {
    // Reference: one lane, default receive path — the classic loop.
    let (ref_report, ref_frames, ref_lanes) = run_cell(LaneOptions::default());
    check_accounting(&ref_report, &ref_lanes);
    assert_eq!(ref_frames.len(), 3, "three event-time windows emitted");

    // The matrix: lanes × {reuseport, fanout rings} × {recvmmsg,
    // forced fallback}. On non-Linux hosts the reuseport cells
    // transparently run the fanout path — still covered, not skipped.
    let cells: &[(&str, bool, bool)] = &[
        ("reuseport+recvmmsg", true, false),
        ("reuseport+fallback-recv", true, true),
        ("fanout+recvmmsg", false, false),
        ("fanout+fallback-recv", false, true),
    ];
    for &(name, reuseport, force_fallback) in cells {
        let opts = LaneOptions {
            lanes: 4,
            recv_batch: 8,
            reuseport,
            force_fallback_recv: force_fallback,
            ..LaneOptions::default()
        };
        let (report, frames, lanes) = run_cell(opts);
        assert_eq!(lanes.len(), 4, "{name}: four lanes live");
        check_accounting(&report, &lanes);
        assert_eq!(
            frames, ref_frames,
            "{name}: summary frames must be byte-identical to single-lane"
        );
    }
}

#[test]
fn forced_fallback_receiver_still_batches_accounting() {
    // The fallback single-datagram path must preserve the identity
    // even when the ring burst size is 1 (worst-case batching).
    let opts = LaneOptions {
        lanes: 2,
        recv_batch: 1,
        reuseport: false,
        force_fallback_recv: true,
        ..LaneOptions::default()
    };
    let (report, frames, lanes) = run_cell(opts);
    check_accounting(&report, &lanes);
    assert!(!frames.is_empty());
    let batches: u64 = lanes.iter().map(|l| l.recv_batches).sum();
    assert!(
        batches >= report.datagrams / 2,
        "burst size 1 means roughly one batch per datagram (got {batches} \
         for {} datagrams)",
        report.datagrams
    );
}
