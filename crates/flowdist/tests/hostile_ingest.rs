//! Fault-injection suite for the ingest edge: seeded hostile-exporter
//! streams against the decode→admit→bucket→ship path, pinning the
//! hardening contract end to end:
//!
//! * no panic, ever, on any byte stream;
//! * no unbounded growth — template caches, buffered records, open
//!   window buckets, and the exporter table all stay under their caps;
//! * exact accounting — every datagram lands in exactly one of
//!   `packets`, `decode_errors`, or `quota_packet_drops`, and every
//!   dropped record/template is in exactly one reason counter.
//!
//! Everything is seeded ([`flowdist::faultnet`]), so a failure replays.

use flowdist::faultnet::HostileExporter;
use flowdist::{
    AdmissionConfig, AdmissionControl, AdmissionKnobs, DaemonConfig, IngestOptions, IngestPipeline,
    SiteDaemon, TransferMode,
};
use flownet::DecoderLimits;
use std::net::{IpAddr, Ipv4Addr, UdpSocket};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn daemon(window_ms: u64) -> SiteDaemon {
    let mut cfg = DaemonConfig::new(3);
    cfg.window_ms = window_ms;
    cfg.transfer = TransferMode::Full;
    cfg.tree = flowtree_core::Config::with_budget(512);
    SiteDaemon::new(cfg)
}

fn tight_limits() -> DecoderLimits {
    DecoderLimits {
        max_templates_per_domain: 8,
        max_templates: 32,
        template_timeout_ms: 60_000,
        max_fields: 16,
        max_record_bytes: 512,
    }
}

/// 10k seeded hostile packets through the full pipeline: no panic,
/// template caches pinned under their caps the whole way, and every
/// packet in exactly one of `packets` / `decode_errors`.
#[test]
fn hostile_stream_cannot_panic_or_grow_the_decoder() {
    let mut gen = HostileExporter::new(0xDEAD_BEEF, 1_000_000);
    let mut p = IngestPipeline::with_limits(daemon(1_000), 256, tight_limits());
    let rounds = 10_000u64;
    for i in 0..rounds {
        let pkt = gen.next_packet();
        let _ = match p.decode_packet_at(&pkt, i) {
            Some(records) => p.push_records(&records),
            None => Vec::new(),
        };
        let d = p.decoder_stats();
        // `templates` sums the v9 and IPFIX caches; each is capped at
        // `max_templates`, so the combined gauge is bounded by 2×.
        assert!(
            d.templates <= 64,
            "global template cap held: {}",
            d.templates
        );
    }
    let s = *p.stats();
    assert_eq!(
        s.packets + s.decode_errors,
        rounds,
        "every packet counted once"
    );
    let d = p.decoder_stats();
    assert!(
        d.templates_rejected > 0,
        "oversized templates were rejected"
    );
    assert!(d.templates_evicted_cap > 0, "flooded domains hit the cap");
    assert!(
        d.records_skipped > 0,
        "missing-template data counted, not buffered"
    );
    // Template conservation: learned templates are live, evicted, or
    // withdrawn — none leak (refreshes re-learn the same slot, so
    // learned may exceed the sum; it can never be under it).
    assert!(
        d.templates_learned
            >= d.templates as u64
                + d.templates_evicted_cap
                + d.templates_evicted_timeout
                + d.templates_withdrawn,
        "templates conserved: {d:?}"
    );
}

/// A broken-clock exporter scattering one record per distinct stale
/// window: the open-window budget sheds oldest-first, so the bucket
/// count — not just the record count — stays bounded.
#[test]
fn open_window_budget_sheds_oldest_buckets() {
    // Batch far above the rate so neither the size trigger nor the
    // record hard cap fires; only the window budget can bound buckets.
    let mut p = IngestPipeline::with_limits(daemon(1_000), 4_096, DecoderLimits::default());
    p.set_max_open_windows(4);
    // Anchor the newest window far ahead, then scatter stale singles.
    let anchor = flownet::FlowRecord::v4([10, 0, 0, 1], [192, 0, 2, 1], 1, 443, 6, 1, 100);
    let mut anchor = anchor;
    anchor.first_ms = 1_000_000;
    anchor.last_ms = 1_000_000;
    p.push_records(&[anchor]);
    for i in 0..100u64 {
        let mut r = flowrecord(i * 1_000 + 5);
        r.packets = 1;
        p.push_records(&[r]);
        assert!(
            p.buffered() <= 5,
            "≤ budget+newest buckets, one record each"
        );
    }
    assert!(p.stats().window_sheds > 0, "budget forced sheds");
    let (_, d) = p.finish();
    assert_eq!(d.stats().records, 101, "shed records reached the daemon");
}

fn flowrecord(ts_ms: u64) -> flownet::FlowRecord {
    let mut r = flownet::FlowRecord::v4([10, 0, 0, 2], [192, 0, 2, 9], 1, 443, 6, 1, 100);
    r.first_ms = ts_ms;
    r.last_ms = ts_ms;
    r
}

/// Token-bucket identity: every offered packet is either admitted or
/// in `packet_drops`; a quota of R/s admits no more than burst + R×t.
#[test]
fn packet_quota_admits_exactly_rate_plus_burst() {
    let cfg = AdmissionConfig {
        packet_rate: 100,
        packet_burst: 50,
        ..AdmissionConfig::default()
    };
    let mut ac = AdmissionControl::new();
    let src = IpAddr::V4(Ipv4Addr::new(203, 0, 113, 7));
    let offered = 1_000u64;
    let mut admitted = 0u64;
    // All offered within one simulated second.
    for i in 0..offered {
        if ac.admit_packet(src, &cfg, i) {
            admitted += 1;
        }
    }
    assert_eq!(
        admitted + ac.stats().packet_drops,
        offered,
        "one counter per packet"
    );
    // Bucket starts full at `burst` and refills 100/s over ~1 s.
    assert!((50..=151).contains(&admitted), "admitted {admitted}");
}

/// The exporter table stays bounded under a source-address flood, and
/// evictions are counted.
#[test]
fn exporter_table_is_bounded_under_address_flood() {
    let cfg = AdmissionConfig {
        packet_rate: 10,
        max_exporters: 64,
        ..AdmissionConfig::default()
    };
    let mut ac = AdmissionControl::new();
    for i in 0..10_000u32 {
        let src = IpAddr::V4(Ipv4Addr::from(0x0a00_0000 | i));
        let _ = ac.admit_packet(src, &cfg, i as u64);
        assert!(ac.exporters() <= 64, "table capped: {}", ac.exporters());
    }
    assert!(ac.stats().exporters_evicted > 0);
}

/// The full UDP loop under a seeded hostile mix with tight quotas:
/// the accounting identity `datagrams == packets + decode_errors +
/// quota_packet_drops` holds at the live gauges, templates stay
/// capped, and the loop drains cleanly. (Loopback UDP may drop under
/// pressure, so the identity is pinned against *received* datagrams,
/// which is immune to socket loss.)
#[test]
fn udp_loop_accounts_every_datagram_exactly_once() {
    let knobs = Arc::new(AdmissionKnobs::new(
        AdmissionConfig {
            packet_rate: 200,
            record_rate: 1_000,
            max_exporters: 16,
            ..AdmissionConfig::default()
        },
        8,
    ));
    let pipeline = IngestPipeline::with_limits(daemon(1_000), 64, tight_limits());
    let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(64);
    // Drain frames so backpressure never wedges the loop.
    let drain = std::thread::spawn(move || while rx.recv().is_ok() {});
    let handle = flowdist::spawn_udp_ingest_with(
        "127.0.0.1:0",
        pipeline,
        tx,
        IngestOptions {
            receive_buffer_bytes: Some(1 << 20),
            knobs: Arc::clone(&knobs),
            telemetry: Default::default(),
        },
    )
    .expect("bind");
    let addr = handle.local_addr();
    let gauges = handle.gauges();

    #[cfg(target_os = "linux")]
    assert!(
        gauges.snapshot().recv_buffer_bytes > 0,
        "achieved SO_RCVBUF surfaced"
    );

    let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
    let mut gen = HostileExporter::new(0xFEED_F00D, 1_000_000);
    let sent = 2_000u64;
    for i in 0..sent {
        sender.send_to(&gen.next_packet(), addr).unwrap();
        // Pace a little every few packets so loopback loss stays rare
        // and the quota actually engages across refill intervals.
        if i % 64 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // Wait for the receive side to go quiet (datagram count stable).
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut last = 0u64;
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let now = gauges.snapshot().datagrams;
        if (now == last && now > 0) || Instant::now() > deadline {
            break;
        }
        last = now;
    }

    let report = handle.stop();
    drop(drain); // rx side: sender gone, thread exits on its own
    assert!(report.error.is_none(), "loop survived: {:?}", report.error);
    assert_eq!(
        report.datagrams,
        report.pipeline.packets + report.pipeline.decode_errors + report.admission.packet_drops,
        "every datagram in exactly one counter: {report:?}"
    );
    assert!(report.datagrams > 0, "traffic arrived");
    assert!(
        report.decoder.templates <= 64, // v9 cap + IPFIX cap
        "template cap held under flood: {}",
        report.decoder.templates
    );
    assert!(
        report.admission.packet_drops > 0,
        "tight quota engaged: {:?}",
        report.admission
    );
}

/// Live knob reload mid-stream: the loop reads the shared knobs per
/// datagram, so storing a zero quota un-throttles without a restart.
#[test]
fn knob_reload_takes_effect_without_restart() {
    let knobs = Arc::new(AdmissionKnobs::new(
        AdmissionConfig {
            packet_rate: 1, // throttle hard
            packet_burst: 1,
            ..AdmissionConfig::default()
        },
        0,
    ));
    let pipeline = IngestPipeline::with_limits(daemon(1_000), 64, DecoderLimits::default());
    let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(64);
    let drain = std::thread::spawn(move || while rx.recv().is_ok() {});
    let handle = flowdist::spawn_udp_ingest_with(
        "127.0.0.1:0",
        pipeline,
        tx,
        IngestOptions {
            receive_buffer_bytes: None,
            knobs: Arc::clone(&knobs),
            telemetry: Default::default(),
        },
    )
    .expect("bind");
    let addr = handle.local_addr();
    let gauges = handle.gauges();
    let sender = UdpSocket::bind("127.0.0.1:0").unwrap();
    let mut gen = HostileExporter::new(7, 1_000_000);

    // Phase 1: throttled — drops accumulate.
    let burst: Vec<Vec<u8>> = (0..50).map(|_| gen.next_packet()).collect();
    for pkt in &burst {
        sender.send_to(pkt, addr).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while gauges.snapshot().quota_packet_drops == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let throttled = gauges.snapshot();
    assert!(throttled.quota_packet_drops > 0, "phase 1 throttled");

    // Reload: lift the quota entirely (0 = unlimited).
    knobs.store(AdmissionConfig::default());
    let drops_before = gauges.snapshot().quota_packet_drops;
    let valid = flownet::netflow5::encode(&[flowrecord(1_000_500)], 1_002_000, 1);
    let mut accepted = false;
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        let before = gauges.snapshot().packets;
        sender.send_to(&valid, addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let s = gauges.snapshot();
        if s.packets > before {
            accepted = true;
            break;
        }
    }
    let report = handle.stop();
    drop(drain);
    assert!(accepted, "post-reload packets flow");
    assert_eq!(
        report.admission.packet_drops, drops_before,
        "no further quota drops after reload"
    );
}
