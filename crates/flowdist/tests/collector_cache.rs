//! Cached merged views: equivalence with uncached merges, incremental
//! extension, and invalidation on replacement/eviction.

use flowdist::{Collector, Summary, SummaryKind, WindowId};
use flowkey::{FlowKey, Schema};
use flowtree_core::{Config, FlowTree, Popularity};

const SPAN: u64 = 1_000;

fn summary(site: u16, window: u64, lo: u8, hi: u8, weight: i64) -> Summary {
    let schema = Schema::five_feature();
    let mut tree = FlowTree::new(schema, Config::with_budget(4_096));
    for h in lo..hi {
        let key: FlowKey = format!(
            "src=10.{}.{}.{h}/32 dst=192.0.2.{}/32 sport=40000 dport=443 proto=tcp",
            site,
            h % 5,
            h % 3
        )
        .parse()
        .unwrap();
        tree.insert(&key, Popularity::new(weight + h as i64, 100, 1));
    }
    Summary {
        site,
        window: WindowId {
            start_ms: window * SPAN,
            span_ms: SPAN,
        },
        seq: window,
        kind: SummaryKind::Full,
        provenance: None,
        tree,
    }
}

fn collector_with(windows: u64, sites: u16) -> Collector {
    let mut c = Collector::new(Schema::five_feature(), Config::with_budget(100_000));
    for w in 0..windows {
        for s in 0..sites {
            c.apply(summary(s, w, 0, 20 + (w % 4) as u8, 1)).unwrap();
        }
    }
    c
}

/// The reference the cache must agree with: the element-wise merge
/// loop over the same scope.
fn elementwise_scope(c: &Collector, sites: Option<&[u16]>, from: u64, to: u64) -> FlowTree {
    let mut out = FlowTree::new(Schema::five_feature(), Config::with_budget(100_000));
    for (w, s) in c.window_keys() {
        if w < from || w >= to {
            continue;
        }
        if let Some(wanted) = sites {
            if !wanted.contains(&s) {
                continue;
            }
        }
        out.merge_elementwise(c.window_tree(w, s).unwrap()).unwrap();
    }
    out
}

#[test]
fn cached_view_is_byte_identical_to_uncached_and_elementwise() {
    let c = collector_with(10, 3);
    for (sites, from, to) in [
        (None, 0, u64::MAX),
        (Some(vec![1]), 0, u64::MAX),
        (Some(vec![0, 2]), 2 * SPAN, 7 * SPAN),
        (Some(vec![2, 0, 0]), 2 * SPAN, 7 * SPAN), // unnormalized spelling
    ] {
        let view = c.merged_view(sites.as_deref(), from, to);
        let uncached = c.merged(sites.as_deref(), from, to);
        let reference = elementwise_scope(&c, sites.as_deref(), from, to);
        assert_eq!(view.encode(), uncached.encode());
        assert_eq!(view.encode(), reference.encode());
        // Second call returns the same snapshot (cache hit).
        let again = c.merged_view(sites.as_deref(), from, to);
        assert!(
            std::sync::Arc::ptr_eq(&view, &again),
            "expected a cache hit"
        );
    }
}

#[test]
fn new_windows_extend_the_cached_view_incrementally() {
    let mut c = collector_with(5, 2);
    let before = c.merged_view(None, 0, u64::MAX);
    // New windows arrive; the cached entry must be extended, not
    // rebuilt, and must match a fresh full merge byte-for-byte.
    for w in 5..8 {
        for s in 0..2 {
            c.apply(summary(s, w, 0, 25, 2)).unwrap();
        }
    }
    let after = c.merged_view(None, 0, u64::MAX);
    assert!(!std::sync::Arc::ptr_eq(&before, &after));
    let reference = elementwise_scope(&c, None, 0, u64::MAX);
    assert_eq!(after.total(), reference.total());
    assert_eq!(after.encode(), reference.encode());
    // The earlier snapshot is unaffected (copy-on-write).
    assert_eq!(
        before.encode(),
        elementwise_scope(&collector_with(5, 2), None, 0, u64::MAX).encode()
    );
}

#[test]
fn replacing_a_window_invalidates_views() {
    let mut c = collector_with(4, 2);
    let stale = c.merged_view(None, 0, u64::MAX);
    // Site 1 re-sends window 2 with different masses.
    c.apply(summary(1, 2, 0, 30, 9)).unwrap();
    let fresh = c.merged_view(None, 0, u64::MAX);
    assert_ne!(stale.encode(), fresh.encode());
    assert_eq!(
        fresh.encode(),
        elementwise_scope(&c, None, 0, u64::MAX).encode(),
        "rebuild after replacement must match a from-scratch merge"
    );
}

#[test]
fn eviction_invalidates_views_and_shrinks_scope() {
    let mut c = collector_with(6, 2);
    let all = c.merged_view(None, 0, u64::MAX);
    let dropped = c.evict_windows_before(3 * SPAN);
    assert_eq!(dropped, 6);
    assert_eq!(c.stored_windows(), 6);
    let survivors = c.merged_view(None, 0, u64::MAX);
    assert_ne!(all.encode(), survivors.encode());
    assert_eq!(
        survivors.encode(),
        elementwise_scope(&c, None, 0, u64::MAX).encode()
    );
    // Evicting nothing bumps nothing: the view stays cached.
    assert_eq!(c.evict_windows_before(3 * SPAN), 0);
    let again = c.merged_view(None, 0, u64::MAX);
    assert!(std::sync::Arc::ptr_eq(&survivors, &again));
}

#[test]
fn site_filter_is_scope_normalized() {
    let c = collector_with(3, 3);
    let a = c.merged_view(Some(&[2, 1]), 0, u64::MAX);
    let b = c.merged_view(Some(&[1, 2, 2]), 0, u64::MAX);
    assert!(
        std::sync::Arc::ptr_eq(&a, &b),
        "equivalent site sets must share one cache entry"
    );
}

#[test]
fn empty_and_inverted_ranges_are_empty_views() {
    let c = collector_with(3, 2);
    assert!(c.merged_view(None, 5 * SPAN, 2 * SPAN).is_empty());
    assert!(c.merged(None, 7 * SPAN, 7 * SPAN).is_empty());
    assert_eq!(
        c.query(&"src=10.0.0.0/8".parse().unwrap(), None, 9, 3)
            .packets,
        0.0
    );
}

#[test]
fn cache_is_bounded_by_total_nodes_not_entries() {
    let mut c = collector_with(6, 3);
    // Size one full view, then budget for roughly two of them.
    let probe = c.merged_view(None, 0, u64::MAX);
    let view_nodes = probe.len();
    drop(probe);
    c.set_view_node_budget(view_nodes * 2 + view_nodes / 2);

    // Touch many distinct scopes: far more entries than an entry-count
    // cap of 2 would keep, but the *node* total must stay bounded.
    for s in 0..3u16 {
        for from in 0..4u64 {
            let _ = c.merged_view(Some(&[s]), from * SPAN, u64::MAX);
        }
    }
    let _ = c.merged_view(None, 0, u64::MAX);
    let stats = c.view_cache_stats();
    assert_eq!(stats.node_budget, view_nodes * 2 + view_nodes / 2);
    assert!(
        stats.cached_nodes <= stats.node_budget,
        "{} cached nodes over a budget of {}",
        stats.cached_nodes,
        stats.node_budget
    );
    assert!(
        stats.entries > 2,
        "small views must coexist: {} entries",
        stats.entries
    );
    assert!(stats.rebuilds >= stats.entries as u64);

    // Shrinking the budget below a single full view evicts eagerly and
    // stops caching that view — but still answers correctly.
    c.set_view_node_budget(view_nodes / 2);
    let big = c.merged_view(None, 0, u64::MAX);
    assert_eq!(
        big.encode(),
        elementwise_scope(&c, None, 0, u64::MAX).encode()
    );
    let stats = c.view_cache_stats();
    assert!(stats.cached_nodes <= stats.node_budget);
    assert!(stats.evictions > 0);
}

#[test]
fn tiny_scope_floods_are_bounded_by_the_entry_cap() {
    use flowdist::collector::VIEW_CACHE_MAX_ENTRIES;
    let c = collector_with(3, 1);
    // Far more distinct (tiny) scopes than the entry cap: every
    // time-range spelling is its own key, each view just a few nodes,
    // so only the entry cap can bound the per-entry overhead.
    for from in 0..(VIEW_CACHE_MAX_ENTRIES as u64 * 3) {
        let _ = c.merged_view(Some(&[0]), from, from + 1);
    }
    let stats = c.view_cache_stats();
    assert!(
        stats.entries <= VIEW_CACHE_MAX_ENTRIES,
        "{} entries over the cap",
        stats.entries
    );
    assert!(stats.evictions > 0);
}

#[test]
fn cache_stats_count_hits_and_extends() {
    let mut c = collector_with(4, 2);
    let _ = c.merged_view(None, 0, u64::MAX); // rebuild
    let _ = c.merged_view(None, 0, u64::MAX); // hit
    let _ = c.merged_view(None, 0, u64::MAX); // hit
    c.apply(summary(0, 4, 0, 10, 1)).unwrap();
    let _ = c.merged_view(None, 0, u64::MAX); // extend
    let s = c.view_cache_stats();
    assert_eq!((s.rebuilds, s.hits, s.extends), (1, 2, 1));
    assert_eq!(s.entries, 1);
    assert!(s.cached_nodes > 0);
}

#[test]
fn lifted_matches_element_wise_lift() {
    // The merge_many-based lift must agree with re-inserting every
    // window's re-keyed masses element-wise (generous budget: no
    // compaction on either path).
    use flowkey::{Site, TimeBucket};
    let c = collector_with(4, 2);
    let mega = c.lifted(100_000);
    let mut reference = FlowTree::new(Schema::extended(), Config::with_budget(100_000));
    for (w, s) in c.window_keys() {
        let tree = c.window_tree(w, s).unwrap();
        let time = TimeBucket::new(w / 1000, 0).unwrap_or(TimeBucket::ANY);
        for v in tree.iter() {
            if v.comp.is_zero() {
                continue;
            }
            reference.insert(&v.key.with_site(Site::Is(s)).with_time(time), v.comp);
        }
    }
    assert_eq!(mega.total(), reference.total());
    // Same drill-down answers inside the single mega structure.
    let site1: FlowKey = "site=1".parse().unwrap();
    assert_eq!(
        mega.estimate_pattern(&site1).packets,
        reference.estimate_pattern(&site1).packets
    );
}
