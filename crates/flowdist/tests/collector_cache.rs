//! Cached merged views: equivalence with uncached merges, incremental
//! extension, and invalidation on replacement/eviction.

use flowdist::{Collector, Summary, SummaryKind, WindowId};
use flowkey::{FlowKey, Schema};
use flowtree_core::{Config, FlowTree, Popularity};

const SPAN: u64 = 1_000;

fn summary(site: u16, window: u64, lo: u8, hi: u8, weight: i64) -> Summary {
    let schema = Schema::five_feature();
    let mut tree = FlowTree::new(schema, Config::with_budget(4_096));
    for h in lo..hi {
        let key: FlowKey = format!(
            "src=10.{}.{}.{h}/32 dst=192.0.2.{}/32 sport=40000 dport=443 proto=tcp",
            site,
            h % 5,
            h % 3
        )
        .parse()
        .unwrap();
        tree.insert(&key, Popularity::new(weight + h as i64, 100, 1));
    }
    Summary {
        site,
        window: WindowId {
            start_ms: window * SPAN,
            span_ms: SPAN,
        },
        seq: window,
        kind: SummaryKind::Full,
        provenance: None,
        epoch: None,
        tree,
    }
}

fn collector_with(windows: u64, sites: u16) -> Collector {
    let mut c = Collector::new(Schema::five_feature(), Config::with_budget(100_000));
    for w in 0..windows {
        for s in 0..sites {
            c.apply(summary(s, w, 0, 20 + (w % 4) as u8, 1)).unwrap();
        }
    }
    c
}

/// The reference the cache must agree with: the element-wise merge
/// loop over the same scope.
fn elementwise_scope(c: &Collector, sites: Option<&[u16]>, from: u64, to: u64) -> FlowTree {
    let mut out = FlowTree::new(Schema::five_feature(), Config::with_budget(100_000));
    for (w, s) in c.window_keys() {
        if w < from || w >= to {
            continue;
        }
        if let Some(wanted) = sites {
            if !wanted.contains(&s) {
                continue;
            }
        }
        out.merge_elementwise(c.window_tree(w, s).unwrap()).unwrap();
    }
    out
}

#[test]
fn cached_view_is_byte_identical_to_uncached_and_elementwise() {
    let c = collector_with(10, 3);
    for (sites, from, to) in [
        (None, 0, u64::MAX),
        (Some(vec![1]), 0, u64::MAX),
        (Some(vec![0, 2]), 2 * SPAN, 7 * SPAN),
        (Some(vec![2, 0, 0]), 2 * SPAN, 7 * SPAN), // unnormalized spelling
    ] {
        let view = c.merged_view(sites.as_deref(), from, to);
        let uncached = c.merged(sites.as_deref(), from, to);
        let reference = elementwise_scope(&c, sites.as_deref(), from, to);
        assert_eq!(view.encode(), uncached.encode());
        assert_eq!(view.encode(), reference.encode());
        // Second call returns the same snapshot (cache hit).
        let again = c.merged_view(sites.as_deref(), from, to);
        assert!(
            std::sync::Arc::ptr_eq(&view, &again),
            "expected a cache hit"
        );
    }
}

#[test]
fn new_windows_extend_the_cached_view_incrementally() {
    let mut c = collector_with(5, 2);
    let before = c.merged_view(None, 0, u64::MAX);
    // New windows arrive; the cached entry must be extended, not
    // rebuilt, and must match a fresh full merge byte-for-byte.
    for w in 5..8 {
        for s in 0..2 {
            c.apply(summary(s, w, 0, 25, 2)).unwrap();
        }
    }
    let after = c.merged_view(None, 0, u64::MAX);
    assert!(!std::sync::Arc::ptr_eq(&before, &after));
    let reference = elementwise_scope(&c, None, 0, u64::MAX);
    assert_eq!(after.total(), reference.total());
    assert_eq!(after.encode(), reference.encode());
    // The earlier snapshot is unaffected (copy-on-write).
    assert_eq!(
        before.encode(),
        elementwise_scope(&collector_with(5, 2), None, 0, u64::MAX).encode()
    );
}

#[test]
fn replacing_a_window_invalidates_views() {
    let mut c = collector_with(4, 2);
    let stale = c.merged_view(None, 0, u64::MAX);
    // Site 1 re-sends window 2 with different masses.
    c.apply(summary(1, 2, 0, 30, 9)).unwrap();
    let fresh = c.merged_view(None, 0, u64::MAX);
    assert_ne!(stale.encode(), fresh.encode());
    assert_eq!(
        fresh.encode(),
        elementwise_scope(&c, None, 0, u64::MAX).encode(),
        "rebuild after replacement must match a from-scratch merge"
    );
}

#[test]
fn eviction_invalidates_views_and_shrinks_scope() {
    let mut c = collector_with(6, 2);
    let all = c.merged_view(None, 0, u64::MAX);
    let dropped = c.evict_windows_before(3 * SPAN);
    assert_eq!(dropped, 6);
    assert_eq!(c.stored_windows(), 6);
    let survivors = c.merged_view(None, 0, u64::MAX);
    assert_ne!(all.encode(), survivors.encode());
    assert_eq!(
        survivors.encode(),
        elementwise_scope(&c, None, 0, u64::MAX).encode()
    );
    // Evicting nothing bumps nothing: the view stays cached.
    assert_eq!(c.evict_windows_before(3 * SPAN), 0);
    let again = c.merged_view(None, 0, u64::MAX);
    assert!(std::sync::Arc::ptr_eq(&survivors, &again));
}

#[test]
fn site_filter_is_scope_normalized() {
    let c = collector_with(3, 3);
    let a = c.merged_view(Some(&[2, 1]), 0, u64::MAX);
    let b = c.merged_view(Some(&[1, 2, 2]), 0, u64::MAX);
    assert!(
        std::sync::Arc::ptr_eq(&a, &b),
        "equivalent site sets must share one cache entry"
    );
}

#[test]
fn empty_and_inverted_ranges_are_empty_views() {
    let c = collector_with(3, 2);
    assert!(c.merged_view(None, 5 * SPAN, 2 * SPAN).is_empty());
    assert!(c.merged(None, 7 * SPAN, 7 * SPAN).is_empty());
    assert_eq!(
        c.query(&"src=10.0.0.0/8".parse().unwrap(), None, 9, 3)
            .packets,
        0.0
    );
}

#[test]
fn cache_is_bounded_by_total_nodes_not_entries() {
    let mut c = collector_with(6, 3);
    // Size one full view, then budget for roughly two of them.
    let probe = c.merged_view(None, 0, u64::MAX);
    let view_nodes = probe.len();
    drop(probe);
    c.set_view_node_budget(view_nodes * 2 + view_nodes / 2);

    // Touch many distinct scopes: far more entries than an entry-count
    // cap of 2 would keep, but the *node* total must stay bounded.
    for s in 0..3u16 {
        for from in 0..4u64 {
            let _ = c.merged_view(Some(&[s]), from * SPAN, u64::MAX);
        }
    }
    let _ = c.merged_view(None, 0, u64::MAX);
    let stats = c.view_cache_stats();
    assert_eq!(stats.node_budget, view_nodes * 2 + view_nodes / 2);
    assert!(
        stats.cached_nodes <= stats.node_budget,
        "{} cached nodes over a budget of {}",
        stats.cached_nodes,
        stats.node_budget
    );
    assert!(
        stats.entries > 2,
        "small views must coexist: {} entries",
        stats.entries
    );
    assert!(stats.rebuilds >= stats.entries as u64);

    // Shrinking the budget below a single full view evicts eagerly and
    // stops caching that view — but still answers correctly.
    c.set_view_node_budget(view_nodes / 2);
    let big = c.merged_view(None, 0, u64::MAX);
    assert_eq!(
        big.encode(),
        elementwise_scope(&c, None, 0, u64::MAX).encode()
    );
    let stats = c.view_cache_stats();
    assert!(stats.cached_nodes <= stats.node_budget);
    assert!(stats.evictions > 0);
}

#[test]
fn tiny_scope_floods_are_bounded_by_the_entry_cap() {
    use flowdist::collector::VIEW_CACHE_MAX_ENTRIES;
    let c = collector_with(3, 1);
    // Far more distinct (tiny) scopes than the entry cap: every
    // time-range spelling is its own key, each view just a few nodes,
    // so only the entry cap can bound the per-entry overhead.
    for from in 0..(VIEW_CACHE_MAX_ENTRIES as u64 * 3) {
        let _ = c.merged_view(Some(&[0]), from, from + 1);
    }
    let stats = c.view_cache_stats();
    assert!(
        stats.entries <= VIEW_CACHE_MAX_ENTRIES,
        "{} entries over the cap",
        stats.entries
    );
    assert!(stats.evictions > 0);
}

#[test]
fn cache_stats_count_hits_and_extends() {
    let mut c = collector_with(4, 2);
    let _ = c.merged_view(None, 0, u64::MAX); // rebuild
    let _ = c.merged_view(None, 0, u64::MAX); // hit
    let _ = c.merged_view(None, 0, u64::MAX); // hit
    c.apply(summary(0, 4, 0, 10, 1)).unwrap();
    let _ = c.merged_view(None, 0, u64::MAX); // extend
    let s = c.view_cache_stats();
    assert_eq!((s.rebuilds, s.hits, s.extends), (1, 2, 1));
    assert_eq!(s.entries, 1);
    assert!(s.cached_nodes > 0);
}

mod v3_increments {
    use super::*;
    use flowdist::{DistError, EpochHeader};

    /// A version-3 frame for `(window, site)`: full or delta.
    fn v3(site: u16, window: u64, epoch: u64, base: Option<u64>, tree: FlowTree) -> Summary {
        Summary {
            site,
            window: WindowId {
                start_ms: window * SPAN,
                span_ms: SPAN,
            },
            seq: epoch,
            kind: match base {
                Some(_) => SummaryKind::Delta,
                None => SummaryKind::Full,
            },
            provenance: Some(vec![site]),
            epoch: Some(EpochHeader { epoch, base }),
            tree,
        }
    }

    fn tree_of(site: u16, lo: u8, hi: u8, weight: i64) -> FlowTree {
        summary(site, 0, lo, hi, weight).tree
    }

    #[test]
    fn delta_frames_merge_in_place_and_extend_views_without_invalidation() {
        let mut c = Collector::new(Schema::five_feature(), Config::with_budget(100_000));
        c.apply(v3(0, 0, 1, None, tree_of(0, 0, 10, 1))).unwrap();
        c.apply(summary(1, 0, 0, 10, 1)).unwrap();
        let before = c.merged_view(None, 0, u64::MAX);

        // An increment for site 0's window arrives as a delta: stored
        // tree grows in place, the cached view absorbs the delta.
        c.apply(v3(0, 0, 2, Some(1), tree_of(0, 10, 15, 3)))
            .unwrap();
        let after = c.merged_view(None, 0, u64::MAX);
        let stats = c.view_cache_stats();
        assert_eq!(stats.rebuilds, 1, "no wholesale invalidation: {stats:?}");
        assert_eq!(stats.delta_extends, 1, "{stats:?}");
        assert!(!std::sync::Arc::ptr_eq(&before, &after));

        // The stored window and the view both equal a full re-send.
        let mut full = tree_of(0, 0, 10, 1);
        full.merge(&tree_of(0, 10, 15, 3)).unwrap();
        assert_eq!(c.window_tree(0, 0).unwrap().encode(), full.encode());
        assert_eq!(
            after.total(),
            elementwise_scope(&c, None, 0, u64::MAX).total()
        );
        assert_eq!(c.window_epoch(0, 0), 2);
    }

    #[test]
    fn epoch_ledger_rejects_out_of_order_and_orphaned_increments() {
        let mut c = Collector::new(Schema::five_feature(), Config::with_budget(100_000));
        // An orphaned delta: no stored base at all.
        let err = c.apply(v3(0, 0, 2, Some(1), tree_of(0, 0, 3, 1)));
        assert!(matches!(err, Err(DistError::MissingDeltaBase { site: 0 })));

        c.apply(v3(0, 0, 1, None, tree_of(0, 0, 10, 1))).unwrap();
        c.apply(v3(0, 0, 2, Some(1), tree_of(0, 10, 12, 1)))
            .unwrap();

        // A replayed delta (base 1 again) must not double-apply.
        let err = c.apply(v3(0, 0, 3, Some(1), tree_of(0, 10, 12, 1)));
        assert!(matches!(
            err,
            Err(DistError::EpochMismatch {
                site: 0,
                have: 2,
                got: 1
            })
        ));
        // A delta from the future (base 5) is orphaned.
        let err = c.apply(v3(0, 0, 6, Some(5), tree_of(0, 12, 13, 1)));
        assert!(matches!(err, Err(DistError::EpochMismatch { got: 5, .. })));
        // A full re-export that does not advance the epoch is stale.
        let err = c.apply(v3(0, 0, 2, None, tree_of(0, 0, 5, 1)));
        assert!(matches!(
            err,
            Err(DistError::EpochMismatch {
                have: 2,
                got: 2,
                ..
            })
        ));
        // A full that advances rebases the slot wholesale.
        c.apply(v3(0, 0, 7, None, tree_of(0, 0, 4, 2))).unwrap();
        assert_eq!(c.window_epoch(0, 0), 7);
        assert_eq!(
            c.window_tree(0, 0).unwrap().encode(),
            tree_of(0, 0, 4, 2).encode()
        );
        // And the chain continues from the new base.
        c.apply(v3(0, 0, 8, Some(7), tree_of(0, 4, 6, 2))).unwrap();
    }

    #[test]
    fn base_zero_delta_cannot_graft_onto_a_pre_epoch_slot() {
        // A v1-stored slot has ledger epoch 0. A hostile v3 delta
        // declaring base 0 would pass a naive have == base check and
        // merge onto a tree its exporter never pinned — both the
        // decoder and the in-process apply path must reject it.
        let mut c = Collector::new(Schema::five_feature(), Config::with_budget(100_000));
        c.apply(summary(0, 0, 0, 10, 1)).unwrap();
        let before = c.window_tree(0, 0).unwrap().encode();
        let mut hostile = v3(0, 0, 1, Some(0), tree_of(0, 10, 14, 9));
        let err = c.apply(hostile.clone());
        assert!(
            matches!(err, Err(DistError::BadFrame("zero delta base epoch"))),
            "{err:?}"
        );
        // The wire path rejects it at decode already; force the header
        // bytes through encode by checking encode panics are debug-only
        // — construct the frame bytes by patching a valid one instead.
        hostile.epoch = Some(EpochHeader {
            epoch: 2,
            base: Some(1),
        });
        let mut bytes = hostile.encode();
        // Locate the base varint (=1) right before the provenance
        // count (=1) and site id; epoch=2 precedes it.
        let tree_len = hostile.tree.encode().len();
        let base_at = bytes.len() - tree_len - (1 + 2) - 1;
        assert_eq!(bytes[base_at], 1, "base byte located");
        bytes[base_at] = 0;
        assert!(c.apply_bytes(&bytes).is_err());
        // The stored window is untouched by all attempts.
        assert_eq!(c.window_tree(0, 0).unwrap().encode(), before);
        assert_eq!(c.window_epoch(0, 0), 0);
    }

    #[test]
    fn per_window_coverage_reflects_declared_provenance() {
        let mut c = Collector::new(Schema::five_feature(), Config::with_budget(100_000));
        // Window 0: an aggregate claiming sites 0,1 plus a plain frame
        // from site 4. Window 1: only the plain frame.
        let mut agg = v3(100, 0, 1, None, tree_of(0, 0, 5, 1));
        agg.provenance = Some(vec![0, 1]);
        c.apply(agg).unwrap();
        c.apply(summary(4, 0, 0, 3, 1)).unwrap();
        c.apply(summary(4, 1, 0, 3, 1)).unwrap();
        assert_eq!(
            c.window_coverage(0).into_iter().collect::<Vec<_>>(),
            vec![0, 1, 4]
        );
        assert_eq!(
            c.window_coverage(SPAN).into_iter().collect::<Vec<_>>(),
            vec![4]
        );
        assert!(c.window_coverage(2 * SPAN).is_empty());
        assert_eq!(c.window_provenance(0, 100), Some(&[0u16, 1][..]));
        assert_eq!(c.window_provenance(0, 4), None);
        // Eviction forgets the ledger with the windows.
        c.evict_windows_before(SPAN);
        assert!(c.window_coverage(0).is_empty());
        assert_eq!(c.window_epoch(0, 100), 0);
    }
}

#[test]
fn lifted_matches_element_wise_lift() {
    // The merge_many-based lift must agree with re-inserting every
    // window's re-keyed masses element-wise (generous budget: no
    // compaction on either path).
    use flowkey::{Site, TimeBucket};
    let c = collector_with(4, 2);
    let mega = c.lifted(100_000);
    let mut reference = FlowTree::new(Schema::extended(), Config::with_budget(100_000));
    for (w, s) in c.window_keys() {
        let tree = c.window_tree(w, s).unwrap();
        let time = TimeBucket::new(w / 1000, 0).unwrap_or(TimeBucket::ANY);
        for v in tree.iter() {
            if v.comp.is_zero() {
                continue;
            }
            reference.insert(&v.key.with_site(Site::Is(s)).with_time(time), v.comp);
        }
    }
    assert_eq!(mega.total(), reference.total());
    // Same drill-down answers inside the single mega structure.
    let site1: FlowKey = "site=1".parse().unwrap();
    assert_eq!(
        mega.estimate_pattern(&site1).packets,
        reference.estimate_pattern(&site1).packets
    );
}
