//! Property tests: sharded parallel ingest followed by the paper's
//! `merge` fold is equivalent to single-tree ingest of the same trace.

use flowdist::ShardedTree;
use flowkey::{FlowKey, Schema};
use flowtree_core::{Config, Estimator, FlowTree, Popularity};
use proptest::prelude::*;

fn arb_host_key() -> impl Strategy<Value = FlowKey> {
    (0u8..4, 0u8..8, 0u8..24, 0u8..2, 1u16..6).prop_map(|(a, b, c, d, port)| {
        format!(
            "src=10.{a}.{b}.{c}/32 dst=192.0.2.{d}/32 sport={} dport=443 proto=tcp",
            40000 + port
        )
        .parse()
        .unwrap()
    })
}

fn arb_pop() -> impl Strategy<Value = Popularity> {
    (1i64..50, 1i64..2000).prop_map(|(p, b)| Popularity::new(p, b, 1))
}

fn masses(tree: &FlowTree) -> Vec<(FlowKey, Popularity)> {
    let mut out: Vec<_> = tree
        .iter()
        .filter(|v| !v.comp.is_zero())
        .map(|v| (*v.key, v.comp))
        .collect();
    out.sort_by_key(|(k, _)| *k);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With room for every key (no compaction anywhere), the folded
    /// sharded tree is *exactly* the single tree: same node masses.
    #[test]
    fn sharded_fold_is_exact_without_budget_pressure(
        inserts in proptest::collection::vec((arb_host_key(), arb_pop()), 1..300),
        shards in 1usize..6,
    ) {
        let schema = Schema::five_feature();
        let cfg = Config::with_budget(1_000_000);
        let mut single = FlowTree::new(schema, cfg);
        for (k, p) in &inserts {
            single.insert(k, *p);
        }
        let mut sharded = ShardedTree::new(schema, cfg, shards);
        sharded.par_insert_batch(&inserts);
        sharded.validate();
        let folded = sharded.fold();
        folded.validate();
        prop_assert_eq!(folded.total(), single.total());
        prop_assert_eq!(masses(&folded), masses(&single));
    }

    /// Persistent-worker ingest: the batch stream is chopped into
    /// arbitrary sub-batches queued to the long-lived shard workers
    /// (with reads interleaved to force drains mid-stream), and the
    /// drained fold on window close is *byte-identical* in shape to
    /// the sequential `insert_batch` path over the same sub-batches.
    #[test]
    fn worker_pool_drain_on_close_matches_sequential(
        inserts in proptest::collection::vec((arb_host_key(), arb_pop()), 1..300),
        shards in 2usize..6,
        chunk in 1usize..64,
        budget in 128usize..4096,
    ) {
        let schema = Schema::five_feature();
        let cfg = Config::with_budget(budget);
        let mut par = ShardedTree::new(schema, cfg, shards);
        let mut seq = ShardedTree::new(schema, cfg, shards);
        for (i, batch) in inserts.chunks(chunk).enumerate() {
            par.par_insert_batch(batch);
            seq.insert_batch(batch);
            if i % 3 == 0 {
                // A mid-stream read must drain the queues and observe
                // exactly the sequential state.
                prop_assert_eq!(par.total(), seq.total());
            }
        }
        // "Window close": fold after a clean drain + worker join.
        let folded_par = par.into_tree();
        let folded_seq = seq.into_tree();
        folded_par.validate();
        prop_assert_eq!(folded_par.total(), folded_seq.total());
        prop_assert_eq!(folded_par.len(), folded_seq.len());
        prop_assert_eq!(masses(&folded_par), masses(&folded_seq));
        prop_assert_eq!(
            folded_par.encode(),
            folded_seq.encode(),
            "worker-pool fold is byte-identical on the wire"
        );
    }

    /// Under budget pressure: totals are conserved exactly, structural
    /// invariants hold, and per-key estimates stay within the
    /// budget-induced error bound — the Conservative estimator is a
    /// guaranteed lower bound and the Optimistic estimator a guaranteed
    /// upper bound, for the sharded fold exactly as for a single tree.
    #[test]
    fn sharded_fold_respects_budget_error_bounds(
        inserts in proptest::collection::vec((arb_host_key(), arb_pop()), 50..400),
        shards in 1usize..5,
        budget in 64usize..256,
    ) {
        let schema = Schema::five_feature();
        let cfg = Config::with_budget(budget);
        let mut sharded = ShardedTree::new(schema, cfg, shards);
        sharded.par_insert_batch(&inserts);
        sharded.validate();
        let folded = sharded.into_tree();
        folded.validate();

        let expect = inserts.iter().fold(Popularity::ZERO, |acc, (_, p)| acc + *p);
        prop_assert_eq!(folded.total(), expect);
        prop_assert!(folded.len() <= budget.max(Config::MIN_BUDGET));

        // Exact per-key truth of the trace.
        let mut truth: std::collections::HashMap<FlowKey, i64> = Default::default();
        for (k, p) in &inserts {
            *truth.entry(schema.canonicalize(k)).or_insert(0) += p.packets;
        }

        let mut lower_cfg = folded.clone();
        let mut upper_cfg = folded.clone();
        lower_cfg.set_estimator(Estimator::Conservative);
        upper_cfg.set_estimator(Estimator::Optimistic);
        for (k, &exact) in &truth {
            let lo = lower_cfg.popularity(k).est.packets;
            let hi = upper_cfg.popularity(k).est.packets;
            prop_assert!(
                lo <= exact as f64 + 1e-6,
                "conservative bound violated for {k}: {lo} > {exact}"
            );
            prop_assert!(
                hi >= exact as f64 - 1e-6,
                "optimistic bound violated for {k}: {hi} < {exact}"
            );
        }
    }
}

/// A tight-budget end-to-end check on a realistic Zipf trace: folding
/// shards keeps total mass and the budget, and the merge operator keeps
/// every retained key's complementary mass non-negative on pure ingest.
#[test]
fn sharded_zipf_trace_folds_cleanly() {
    let mut cfg = flowtrace::profile::backbone(7);
    cfg.packets = 30_000;
    cfg.flows = 5_000;
    let schema = Schema::five_feature();
    let tree_cfg = Config::with_budget(2_048);

    let batch: Vec<(FlowKey, Popularity)> = flowtrace::TraceGen::new(cfg)
        .map(|p| (p.flow_key(), Popularity::packet(p.wire_len)))
        .collect();

    let mut single = FlowTree::new(schema, tree_cfg);
    for (k, p) in &batch {
        single.insert(k, *p);
    }
    for shards in [2usize, 4] {
        let mut st = ShardedTree::new(schema, tree_cfg, shards);
        st.par_insert_batch(&batch);
        st.validate();
        let folded = st.into_tree();
        folded.validate();
        assert_eq!(folded.total(), single.total());
        assert!(folded.len() <= tree_cfg.node_budget);
    }
}
