//! Failure injection for the distributed layer: summary loss, frame
//! corruption, duplicated frames, and reordering — the collector must
//! degrade gracefully, never corrupt state, and keep exact accounting
//! for everything it did receive.

use flowdist::{Collector, DaemonConfig, SiteDaemon, Summary, SummaryKind, TransferMode};
use flowkey::Schema;
use flownet::FlowRecord;
use flowtree_core::Config;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn record(ts_ms: u64, host: u8, packets: u64) -> FlowRecord {
    let mut r = FlowRecord::v4(
        [10, 0, 0, host],
        [192, 0, 2, 1],
        2_000,
        443,
        6,
        packets,
        packets * 100,
    );
    r.first_ms = ts_ms;
    r.last_ms = ts_ms;
    r
}

fn summaries(transfer: TransferMode, windows: u64) -> Vec<Summary> {
    let mut cfg = DaemonConfig::new(1);
    cfg.window_ms = 1_000;
    cfg.schema = Schema::five_feature();
    cfg.tree = Config::with_budget(512);
    cfg.transfer = transfer;
    let mut d = SiteDaemon::new(cfg);
    let mut out = Vec::new();
    for w in 0..windows {
        for h in 0..6u8 {
            out.extend(d.ingest_record(&record(w * 1_000 + 10 + h as u64, h, 1 + w)));
        }
    }
    out.extend(d.flush());
    out
}

fn collector() -> Collector {
    Collector::new(Schema::five_feature(), Config::with_budget(512))
}

#[test]
fn full_mode_tolerates_arbitrary_loss() {
    let all = summaries(TransferMode::Full, 8);
    let mut rng = SmallRng::seed_from_u64(9);
    let mut c = collector();
    let mut kept = 0u64;
    let mut kept_packets = 0i64;
    for s in &all {
        if rng.gen_bool(0.5) {
            continue; // the WAN ate it
        }
        c.apply_bytes(&s.encode())
            .expect("full summaries are independent");
        kept += 1;
        kept_packets += s.tree.total().packets;
    }
    assert_eq!(c.stored_windows() as u64, kept);
    assert_eq!(c.merged(None, 0, u64::MAX).total().packets, kept_packets);
    assert_eq!(c.ledger().rejected, 0);
}

#[test]
fn delta_mode_fails_closed_on_gaps() {
    let all = summaries(TransferMode::Delta, 6);
    assert!(all.iter().skip(1).all(|s| s.kind == SummaryKind::Delta));
    let mut c = collector();
    // Drop the 3rd summary; everything after it must be rejected (its
    // base is gone), everything before it must be intact.
    for (i, s) in all.iter().enumerate() {
        if i == 2 {
            continue;
        }
        let res = c.apply_bytes(&s.encode());
        if i < 2 {
            res.expect("pre-gap summaries apply");
        }
    }
    assert_eq!(c.stored_windows(), 2);
    assert!(c.ledger().rejected > 0);
    // The stored windows are still exactly right.
    let w0 = c.window_tree(0, 1).expect("window 0");
    assert_eq!(w0.total().packets, 6);
}

#[test]
fn corrupt_frames_never_corrupt_state() {
    let all = summaries(TransferMode::Full, 4);
    let mut rng = SmallRng::seed_from_u64(11);
    let mut c = collector();
    for s in &all {
        let mut bytes = s.encode();
        // Half the frames get a random byte flipped.
        let corrupt = rng.gen_bool(0.5);
        if corrupt {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] ^= 1u8 << rng.gen_range(0u32..8);
        }
        let _ = c.apply_bytes(&bytes);
    }
    // Whatever was accepted is internally consistent.
    let merged = c.merged(None, 0, u64::MAX);
    merged.validate();
    assert_eq!(
        c.ledger().summaries as usize + c.ledger().rejected as usize,
        all.len(),
        "every frame is either applied or counted as rejected"
    );
}

#[test]
fn duplicated_and_reordered_full_frames_are_idempotent_per_window() {
    let all = summaries(TransferMode::Full, 4);
    let mut c = collector();
    // Apply in reverse, twice.
    for s in all.iter().rev().chain(all.iter().rev()) {
        c.apply_bytes(&s.encode())
            .expect("full frames apply in any order");
    }
    // Last write wins per (window, site): state equals a single clean pass.
    let mut clean = collector();
    for s in &all {
        clean.apply_bytes(&s.encode()).unwrap();
    }
    assert_eq!(c.stored_windows(), clean.stored_windows());
    assert_eq!(
        c.merged(None, 0, u64::MAX).total(),
        clean.merged(None, 0, u64::MAX).total()
    );
}

#[test]
fn truncated_frames_at_every_cut_point_are_rejected() {
    let all = summaries(TransferMode::Full, 1);
    let bytes = all[0].encode();
    let mut c = collector();
    for cut in 0..bytes.len() {
        assert!(
            c.apply_bytes(&bytes[..cut]).is_err(),
            "cut at {cut} must be rejected"
        );
    }
    assert_eq!(c.stored_windows(), 0);
    assert_eq!(c.ledger().rejected as usize, bytes.len());
}
