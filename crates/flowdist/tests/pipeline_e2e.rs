//! End-to-end: a NetFlow v5 export packet assembled **by hand, byte by
//! byte** (independent of `flownet`'s own encoder) travels the whole
//! streaming path — unified decode → per-window bucketing → sharded
//! daemon ingest → emitted summary — and the summary answers queries
//! with the right masses and accounting.

use flowdist::daemon::{DaemonConfig, SiteDaemon, TransferMode};
use flowdist::IngestPipeline;
use flowkey::{FlowKey, Schema};
use flowtree_core::Config;

/// Raw v5 record fields: (src octets, dst octets, sport, dport, proto,
/// packets, bytes, first_ms, last_ms).
type RawV5Record = ([u8; 4], [u8; 4], u16, u16, u8, u32, u32, u64, u64);

/// Hand-assembles one NetFlow v5 packet (24-byte header + 48-byte
/// records) per the classic Cisco layout. `base_ms` is the export
/// moment; record timestamps are expressed as sysuptime offsets the
/// way real routers emit them.
fn handmade_v5_packet(base_ms: u64, records: &[RawV5Record]) -> Vec<u8> {
    const UPTIME_MS: u32 = 600_000; // router up for 10 minutes
    let mut pkt = Vec::new();
    // -- header ------------------------------------------------------
    pkt.extend_from_slice(&5u16.to_be_bytes()); // version
    pkt.extend_from_slice(&(records.len() as u16).to_be_bytes()); // count
    pkt.extend_from_slice(&UPTIME_MS.to_be_bytes()); // sysuptime
    pkt.extend_from_slice(&((base_ms / 1000) as u32).to_be_bytes()); // unix secs
    pkt.extend_from_slice(&(((base_ms % 1000) * 1_000_000) as u32).to_be_bytes()); // nsecs
    pkt.extend_from_slice(&77u32.to_be_bytes()); // flow_sequence
    pkt.push(1); // engine type
    pkt.push(2); // engine id
    pkt.extend_from_slice(&0u16.to_be_bytes()); // sampling
    assert_eq!(pkt.len(), 24);
    // -- records -----------------------------------------------------
    for &(src, dst, sport, dport, proto, packets, bytes, first_ms, last_ms) in records {
        let rec_start = pkt.len();
        pkt.extend_from_slice(&src);
        pkt.extend_from_slice(&dst);
        pkt.extend_from_slice(&[0u8; 4]); // nexthop
        pkt.extend_from_slice(&1u16.to_be_bytes()); // input if
        pkt.extend_from_slice(&2u16.to_be_bytes()); // output if
        pkt.extend_from_slice(&packets.to_be_bytes());
        pkt.extend_from_slice(&bytes.to_be_bytes());
        // first/last as sysuptime: uptime - (base - t).
        let rel = |t_ms: u64| (UPTIME_MS as u64 - (base_ms - t_ms)) as u32;
        pkt.extend_from_slice(&rel(first_ms).to_be_bytes());
        pkt.extend_from_slice(&rel(last_ms).to_be_bytes());
        pkt.extend_from_slice(&sport.to_be_bytes());
        pkt.extend_from_slice(&dport.to_be_bytes());
        pkt.push(0); // pad1
        pkt.push(0x18); // tcp flags
        pkt.push(proto);
        pkt.push(0); // tos
        pkt.extend_from_slice(&0u16.to_be_bytes()); // src as
        pkt.extend_from_slice(&0u16.to_be_bytes()); // dst as
        pkt.push(24); // src mask
        pkt.push(24); // dst mask
        pkt.extend_from_slice(&0u16.to_be_bytes()); // pad2
        assert_eq!(pkt.len() - rec_start, 48);
    }
    pkt
}

#[test]
fn handmade_netflow5_packet_reaches_a_queryable_summary() {
    // Window span 60 s; the packet's flows straddle the boundary at
    // t = 120_000 ms: two flows end in window [60s, 120s), one in
    // [120s, 180s).
    let mut cfg = DaemonConfig::new(42);
    cfg.window_ms = 60_000;
    cfg.schema = Schema::five_feature();
    cfg.tree = Config::with_budget(2_048);
    cfg.transfer = TransferMode::Full;
    cfg.shards = 2;
    let daemon = SiteDaemon::new(cfg);
    let mut pipeline = IngestPipeline::new(daemon, 1_024);

    let base_ms = 125_000;
    let pkt = handmade_v5_packet(
        base_ms,
        &[
            // (src, dst, sport, dport, proto, packets, bytes, first, last)
            (
                [10, 1, 2, 3],
                [192, 0, 2, 1],
                40_001,
                443,
                6,
                100,
                90_000,
                118_000,
                119_000,
            ),
            (
                [10, 1, 2, 4],
                [192, 0, 2, 1],
                40_002,
                443,
                6,
                50,
                40_000,
                118_500,
                119_900,
            ),
            (
                [10, 9, 9, 9],
                [198, 51, 100, 7],
                53,
                53,
                17,
                8,
                1_024,
                121_000,
                124_000,
            ),
        ],
    );

    let closed = pipeline.push_packet(&pkt);
    assert!(closed.is_empty(), "both windows stay open");
    let s = pipeline.stats();
    assert_eq!(s.packets_v5, 1);
    assert_eq!(s.records, 3);
    assert_eq!(s.decode_errors, 0);
    assert_eq!(s.wire_bytes, pkt.len() as u64);

    let (summaries, daemon) = pipeline.finish();
    assert_eq!(summaries.len(), 2, "one summary per touched window");

    // Window [60s, 120s): the two TCP flows.
    let w1 = &summaries[0];
    assert_eq!(w1.window.start_ms, 60_000);
    assert_eq!(w1.site, 42);
    assert_eq!(w1.tree.total().packets, 150);
    assert_eq!(w1.tree.total().bytes, 130_000);
    let k: FlowKey = "src=10.1.2.3/32 dst=192.0.2.1/32 sport=40001 dport=443 proto=tcp"
        .parse()
        .unwrap();
    assert_eq!(
        w1.tree.subtree_popularity(&k).map(|p| p.packets),
        Some(100),
        "the individual 5-tuple is queryable in the emitted summary"
    );
    // Drill-up: both flows share the 10.0.0.0/8 source aggregate
    // (pattern query — no compaction happened, so it is exact).
    let agg: FlowKey = "src=10.0.0.0/8".parse().unwrap();
    let est = w1.tree.popularity(&agg).est.packets;
    assert!(
        (est - 150.0).abs() < 1e-9,
        "aggregate estimate {est} != 150"
    );

    // Window [120s, 180s): the DNS flow, in its own window even though
    // it shared an export packet with the older flows.
    let w2 = &summaries[1];
    assert_eq!(w2.window.start_ms, 120_000);
    assert_eq!(w2.tree.total().packets, 8);
    assert_eq!(w2.tree.total().bytes, 1_024);

    // Daemon accounting: 3 records, actual wire bytes of the payload.
    assert_eq!(daemon.stats().records, 3);
    assert_eq!(daemon.stats().raw_bytes, pkt.len() as u64);
    assert_eq!(daemon.stats().late_drops, 0);
    assert_eq!(daemon.stats().summaries, 2);

    // The summary bytes survive a decode round-trip (what the
    // collector would do on receipt).
    let wire = w1.encode();
    let back =
        flowdist::Summary::decode(&wire, Config::with_budget(2_048)).expect("wire-valid summary");
    assert_eq!(back.tree.total().packets, 150);
}

#[test]
fn pipeline_batches_many_handmade_packets_across_windows() {
    let mut cfg = DaemonConfig::new(1);
    cfg.window_ms = 1_000;
    cfg.schema = Schema::five_feature();
    cfg.tree = Config::with_budget(1_024);
    cfg.shards = 4;
    let mut pipeline = IngestPipeline::new(SiteDaemon::new(cfg), 32);

    // 40 packets × 5 records, event time marching forward ~150 ms per
    // packet: windows close as the stream advances.
    let mut total_packets: i64 = 0;
    let mut closed = Vec::new();
    for i in 0u64..40 {
        let base = 1_000 + i * 150;
        let recs: Vec<RawV5Record> = (0..5u64)
            .map(|j| {
                let pkts = (1 + (i + j) % 7) as u32;
                total_packets += pkts as i64;
                (
                    [10, (i % 4) as u8, 0, j as u8],
                    [192, 0, 2, 1],
                    (30_000 + i) as u16,
                    443,
                    6u8,
                    pkts,
                    pkts * 100,
                    base - 100,
                    base - 50 + j,
                )
            })
            .collect();
        closed.extend(pipeline.push_packet(&handmade_v5_packet(base, &recs)));
    }
    let (rest, daemon) = pipeline.finish();
    closed.extend(rest);

    assert_eq!(daemon.stats().records, 200);
    assert_eq!(daemon.stats().late_drops, 0);
    let emitted: i64 = closed.iter().map(|s| s.tree.total().packets).sum();
    assert_eq!(
        emitted, total_packets,
        "no mass lost between wire and summaries"
    );
    assert!(closed.len() >= 5, "the advancing stream closed windows");
    // Windows emit oldest-first with increasing sequence numbers.
    for pair in closed.windows(2) {
        assert!(pair[0].window.start_ms < pair[1].window.start_ms);
        assert!(pair[0].seq < pair[1].seq);
    }
}
