//! # flowtrace — synthetic workloads and exact ground truth
//!
//! The paper evaluates Flowtree on a CAIDA Equinix-Chicago backbone
//! capture and a MAWI transit capture (6 M packets each). Those traces
//! are not redistributable, so this crate generates **statistically
//! equivalent workloads**: Zipf flow popularity, hierarchical prefix
//! locality, realistic port/protocol/size mixes (see DESIGN.md §2 for
//! the substitution argument). Everything is seeded and deterministic.
//!
//! * [`profile`] — the workload profiles: [`profile::backbone`]
//!   (Equinix-Chicago-like), [`profile::transit`] (MAWI-like), plus
//!   `ddos` / `scan` / `uniform` stress shapes.
//! * [`TraceGen`] — the packet process: an iterator of
//!   [`flownet::PacketMeta`], or byte-accurate Ethernet frames.
//! * [`GroundTruth`] — exact per-flow counters and the per-node
//!   "actual popularity" oracle used to regenerate Fig. 3.
//! * [`Zipf`] — rejection-inversion Zipf sampling (no tables).
//!
//! ```
//! use flowtrace::{profile, TraceGen, GroundTruth};
//! use flowtree_core::{FlowTree, Config, Popularity};
//! use flowkey::Schema;
//!
//! let mut cfg = profile::backbone(42);
//! cfg.packets = 10_000; // scale down for the doctest
//! cfg.flows = 2_000;
//! let mut tree = FlowTree::new(Schema::four_feature(), Config::with_budget(1_000));
//! let mut truth = GroundTruth::new();
//! for pkt in TraceGen::new(cfg) {
//!     let key = pkt.flow_key();
//!     tree.insert(&key, Popularity::packet(pkt.wire_len));
//!     truth.observe(tree.schema().canonicalize(&key), Popularity::packet(pkt.wire_len));
//! }
//! assert_eq!(tree.total().packets, 10_000);
//! assert_eq!(truth.total().packets, 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod model;
pub mod profile;
pub mod truth;
pub mod zipf;

pub use gen::{FlowSpec, TraceConfig, TraceGen};
pub use model::{AddrModel, PortModel, ProtoMix, SizeModel};
pub use truth::GroundTruth;
pub use zipf::Zipf;
