//! Zipf-distributed sampling.
//!
//! Flow popularity in real traces is heavy-tailed; the standard model is
//! Zipf: the k-th most popular flow has probability ∝ k^−s. Implemented
//! with Hörmann & Derflinger's rejection-inversion method (the same
//! algorithm `rand_distr` uses), which samples in O(1) expected time for
//! any n without precomputing tables — essential for the multi-million
//! flow universes of the backbone profiles.

use rand::Rng;

/// A Zipf distribution over ranks `1..=n` with exponent `s ≥ 0`.
#[derive(Debug, Clone, Copy)]
pub struct Zipf {
    n: u64,
    q: f64,
    h_x0: f64,
    h_tail: f64,
}

impl Zipf {
    /// Creates the distribution. Panics if `n == 0` or `s < 0` or not
    /// finite.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "zipf needs a non-empty domain");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be ≥ 0");
        let q = s;
        Zipf {
            n,
            q,
            h_x0: h_integral(0.5, q),
            h_tail: h_integral(n as f64 + 0.5, q),
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The exponent.
    pub fn s(&self) -> f64 {
        self.q
    }

    /// Samples a rank in `1..=n` (1 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_x0 + rng.gen::<f64>() * (self.h_tail - self.h_x0);
            let x = h_integral_inv(u, self.q);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64) as u64;
            // Accept with the exact point probability against the
            // envelope: u ≥ H(k + ½) − h(k).
            if u >= h_integral(k as f64 + 0.5, self.q) - h(k as f64, self.q) {
                return k;
            }
        }
    }

    /// The unnormalized weight of rank `k`.
    pub fn weight(&self, k: u64) -> f64 {
        h(k as f64, self.q)
    }
}

/// h(x) = x^−q.
fn h(x: f64, q: f64) -> f64 {
    (-q * x.ln()).exp()
}

/// H(x) = ∫ x^−q dx, the antiderivative (monotone increasing).
fn h_integral(x: f64, q: f64) -> f64 {
    let log_x = x.ln();
    if (q - 1.0).abs() < 1e-12 {
        log_x
    } else {
        ((1.0 - q) * log_x).exp_m1() / (1.0 - q)
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inv(y: f64, q: f64) -> f64 {
    if (q - 1.0).abs() < 1e-12 {
        y.exp()
    } else {
        let t = (y * (1.0 - q)).max(-1.0);
        (t.ln_1p() / (1.0 - q)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn frequencies(n: u64, s: f64, samples: usize) -> Vec<f64> {
        let z = Zipf::new(n, s);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..samples {
            let k = z.sample(&mut rng);
            assert!((1..=n).contains(&k));
            counts[k as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / samples as f64).collect()
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // k is the 1-based Zipf rank
    fn matches_expected_ratios_small_n() {
        // n = 4, s = 1: weights 1, 1/2, 1/3, 1/4 → probabilities
        // normalized by 25/12.
        let f = frequencies(4, 1.0, 400_000);
        let norm = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
        for k in 1..=4usize {
            let expect = (1.0 / k as f64) / norm;
            assert!(
                (f[k] - expect).abs() < 0.01,
                "rank {k}: got {:.4}, want {expect:.4}",
                f[k]
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // k is the 1-based Zipf rank
    fn s_zero_is_uniform() {
        let f = frequencies(10, 0.0, 200_000);
        for k in 1..=10usize {
            assert!((f[k] - 0.1).abs() < 0.01, "rank {k}: {:.4}", f[k]);
        }
    }

    #[test]
    fn heavier_exponent_concentrates_head() {
        let f1 = frequencies(1000, 0.8, 100_000);
        let f2 = frequencies(1000, 1.6, 100_000);
        assert!(f2[1] > f1[1], "s=1.6 must put more mass on rank 1");
        assert!(f2[1] > 0.3, "rank 1 at s=1.6 should dominate: {}", f2[1]);
    }

    #[test]
    fn large_domain_samples_in_range() {
        let z = Zipf::new(10_000_000, 1.1);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen_big = false;
        for _ in 0..20_000 {
            let k = z.sample(&mut rng);
            assert!((1..=10_000_000).contains(&k));
            seen_big |= k > 100_000;
        }
        assert!(seen_big, "the tail must be reachable");
    }

    #[test]
    fn non_integer_exponent_close_to_one() {
        // Numerical stability around the s = 1 branch point.
        for s in [0.999, 1.0, 1.001] {
            let f = frequencies(100, s, 50_000);
            assert!(f[1] > f[2] && f[2] > f[5], "monotone at s={s}");
        }
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn zero_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
