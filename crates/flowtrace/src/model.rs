//! Address, port, size, and protocol models for synthetic traces.
//!
//! The accuracy behavior of a Flowtree depends on the *shape* of the
//! traffic — the popularity skew and the prefix locality — not on the
//! literal addresses. These models reproduce that shape:
//!
//! * [`AddrModel`] draws addresses hierarchically (/8 → /16 → /24 →
//!   host) with per-level Zipf skew, giving the prefix locality real
//!   traces have (a few hot /8s, hot /16s inside them, …).
//! * [`PortModel`] mixes Zipf-weighted well-known service ports with
//!   uniform ephemeral ports.
//! * [`SizeModel`] is the classic tri-modal packet-size mixture
//!   (ACK-sized, mid, MTU-sized).

use crate::zipf::Zipf;
use rand::Rng;
use std::net::Ipv4Addr;

/// Deterministic octet scrambling: maps (seed, level, parent, rank) to an
/// octet so that rank 1 of one parent differs from rank 1 of another,
/// without any state.
fn scramble(seed: u64, level: u8, parent: u32, rank: u64) -> u8 {
    let mut x = seed
        ^ (level as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (parent as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ rank.wrapping_mul(0x1656_67B1_9E37_79F9);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x & 0xff) as u8
}

/// Hierarchical IPv4 address model.
#[derive(Debug, Clone, Copy)]
pub struct AddrModel {
    /// Seed of the model's deterministic address universe.
    pub seed: u64,
    /// Distinct active /8s and the Zipf skew across them.
    pub l8: (u64, f64),
    /// Distinct /16s per /8 and their skew.
    pub l16: (u64, f64),
    /// Distinct /24s per /16 and their skew.
    pub l24: (u64, f64),
    /// Distinct hosts per /24 and their skew.
    pub l32: (u64, f64),
}

impl AddrModel {
    /// A backbone-like model: wide but skewed.
    pub fn backbone(seed: u64) -> AddrModel {
        AddrModel {
            seed,
            l8: (48, 0.9),
            l16: (120, 1.0),
            l24: (96, 1.0),
            l32: (64, 0.8),
        }
    }

    /// A transit-link model: fewer hot networks, longer thin tail.
    pub fn transit(seed: u64) -> AddrModel {
        AddrModel {
            seed,
            l8: (24, 1.2),
            l16: (200, 0.8),
            l24: (150, 0.7),
            l32: (128, 0.6),
        }
    }

    /// A narrow model (e.g. one enterprise's own address space).
    pub fn narrow(seed: u64) -> AddrModel {
        AddrModel {
            seed,
            l8: (2, 0.5),
            l16: (8, 0.9),
            l24: (32, 1.0),
            l32: (200, 0.7),
        }
    }

    /// Draws one address.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Ipv4Addr {
        let r8 = Zipf::new(self.l8.0, self.l8.1).sample(rng);
        let o1 = scramble(self.seed, 1, 0, r8);
        let r16 = Zipf::new(self.l16.0, self.l16.1).sample(rng);
        let o2 = scramble(self.seed, 2, o1 as u32, r16);
        let r24 = Zipf::new(self.l24.0, self.l24.1).sample(rng);
        let o3 = scramble(self.seed, 3, (o1 as u32) << 8 | o2 as u32, r24);
        let r32 = Zipf::new(self.l32.0, self.l32.1).sample(rng);
        let o4 = scramble(
            self.seed,
            4,
            (o1 as u32) << 16 | (o2 as u32) << 8 | o3 as u32,
            r32,
        );
        Ipv4Addr::new(o1, o2, o3, o4)
    }
}

/// Port model: service ports vs ephemeral range.
#[derive(Debug, Clone)]
pub struct PortModel {
    /// Probability of drawing a well-known service port.
    pub service_prob: f64,
    /// The service ports ranked by popularity (Zipf with `service_s`).
    pub services: Vec<u16>,
    /// Zipf exponent across the service ports.
    pub service_s: f64,
}

impl PortModel {
    /// Typical destination-port mix (web-heavy, then DNS, mail, SSH…).
    pub fn server_side() -> PortModel {
        PortModel {
            service_prob: 0.85,
            services: vec![443, 80, 53, 22, 25, 123, 8080, 993, 3389, 1935, 8443, 21],
            service_s: 1.1,
        }
    }

    /// Typical source-port mix (almost all ephemeral).
    pub fn client_side() -> PortModel {
        PortModel {
            service_prob: 0.05,
            services: vec![53, 123, 443],
            service_s: 1.0,
        }
    }

    /// Draws one port.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        if !self.services.is_empty() && rng.gen::<f64>() < self.service_prob {
            let rank = Zipf::new(self.services.len() as u64, self.service_s).sample(rng);
            self.services[(rank - 1) as usize]
        } else {
            rng.gen_range(32_768..=65_535)
        }
    }
}

/// Tri-modal packet-size model.
#[derive(Debug, Clone, Copy)]
pub struct SizeModel {
    /// Probability of an ACK-sized packet (40–80 B).
    pub p_small: f64,
    /// Probability of an MTU-sized packet (1400–1500 B); the remainder
    /// is mid-sized (200–1000 B).
    pub p_full: f64,
}

impl SizeModel {
    /// The classic bimodal-with-midrange internet mix.
    pub fn internet() -> SizeModel {
        SizeModel {
            p_small: 0.45,
            p_full: 0.35,
        }
    }

    /// Draws one wire length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u = rng.gen::<f64>();
        if u < self.p_small {
            rng.gen_range(40..=80)
        } else if u < self.p_small + self.p_full {
            rng.gen_range(1400..=1500)
        } else {
            rng.gen_range(200..=1000)
        }
    }
}

/// Protocol mixture: (protocol number, weight).
#[derive(Debug, Clone)]
pub struct ProtoMix {
    entries: Vec<(u8, f64)>,
    total: f64,
}

impl ProtoMix {
    /// Builds a mixture; weights need not sum to 1.
    pub fn new(entries: Vec<(u8, f64)>) -> ProtoMix {
        assert!(!entries.is_empty());
        let total = entries.iter().map(|(_, w)| *w).sum();
        ProtoMix { entries, total }
    }

    /// TCP-dominant internet mix.
    pub fn internet() -> ProtoMix {
        ProtoMix::new(vec![(6, 0.82), (17, 0.15), (1, 0.02), (47, 0.01)])
    }

    /// UDP/scan-heavier transit mix.
    pub fn transit() -> ProtoMix {
        ProtoMix::new(vec![(6, 0.65), (17, 0.30), (1, 0.04), (50, 0.01)])
    }

    /// Draws one protocol number.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        let mut u = rng.gen::<f64>() * self.total;
        for (p, w) in &self.entries {
            if u < *w {
                return *p;
            }
            u -= w;
        }
        self.entries.last().expect("non-empty").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn addr_model_shows_prefix_locality() {
        let m = AddrModel::backbone(42);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut first_octets = HashSet::new();
        let mut hosts = HashSet::new();
        for _ in 0..20_000 {
            let a = m.sample(&mut rng);
            first_octets.insert(a.octets()[0]);
            hosts.insert(a);
        }
        // Far fewer active /8s than hosts: locality exists.
        assert!(first_octets.len() <= 48);
        assert!(first_octets.len() >= 8, "{}", first_octets.len());
        assert!(hosts.len() > 2_000, "host diversity: {}", hosts.len());
    }

    #[test]
    fn addr_model_is_deterministic_per_seed() {
        let m = AddrModel::backbone(7);
        let a: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(3);
            (0..100).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(3);
            (0..100).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
        // Different model seeds give different address universes.
        let m2 = AddrModel::backbone(8);
        let mut rng = SmallRng::seed_from_u64(3);
        let c: Vec<_> = (0..100).map(|_| m2.sample(&mut rng)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn port_model_mixes_service_and_ephemeral() {
        let m = PortModel::server_side();
        let mut rng = SmallRng::seed_from_u64(2);
        let (mut service, mut ephemeral) = (0, 0);
        for _ in 0..10_000 {
            let p = m.sample(&mut rng);
            if m.services.contains(&p) {
                service += 1;
            } else {
                assert!(p >= 32_768);
                ephemeral += 1;
            }
        }
        assert!(service > 7_000, "{service}");
        assert!(ephemeral > 500, "{ephemeral}");
    }

    #[test]
    fn size_model_is_trimodal() {
        let m = SizeModel::internet();
        let mut rng = SmallRng::seed_from_u64(3);
        let (mut small, mut mid, mut full) = (0, 0, 0);
        for _ in 0..10_000 {
            match m.sample(&mut rng) {
                40..=80 => small += 1,
                1400..=1500 => full += 1,
                200..=1000 => mid += 1,
                other => panic!("size {other} outside all modes"),
            }
        }
        assert!(small > 3_500 && full > 2_500 && mid > 1_000);
    }

    #[test]
    fn proto_mix_respects_weights() {
        let m = ProtoMix::internet();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut tcp = 0;
        for _ in 0..10_000 {
            if m.sample(&mut rng) == 6 {
                tcp += 1;
            }
        }
        assert!((7_500..9_000).contains(&tcp), "tcp share {tcp}");
    }
}
