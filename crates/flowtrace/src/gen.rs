//! Trace generation: a flow universe plus a packet process over it.
//!
//! A trace is generated in two stages, mirroring how real traffic is
//! structured: first a *flow universe* of distinct 5-tuples is drawn
//! from the address/port/protocol models; then packets are emitted by
//! sampling flows Zipf-by-rank (popular flows send most packets) with
//! exponential-ish inter-arrival times. The result is a deterministic,
//! seedable stream of [`PacketMeta`] — or full Ethernet frames when the
//! byte-level pipeline (pcap → parse → export) should be exercised.

use crate::model::{AddrModel, PortModel, ProtoMix, SizeModel};
use crate::zipf::Zipf;
use flownet::{testpkt, PacketMeta};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::IpAddr;

/// Full description of a synthetic workload.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Profile name (used in reports).
    pub name: &'static str,
    /// RNG seed — same seed, same trace.
    pub seed: u64,
    /// Number of packets to emit.
    pub packets: u64,
    /// Size of the flow universe.
    pub flows: u64,
    /// Zipf exponent of flow popularity.
    pub zipf_s: f64,
    /// First packet timestamp (µs since epoch).
    pub start_micros: u64,
    /// Mean packets per second (drives inter-arrival spacing).
    pub mean_pps: f64,
    /// Source address model.
    pub src_model: AddrModel,
    /// Destination address model.
    pub dst_model: AddrModel,
    /// Source port model.
    pub sport_model: PortModel,
    /// Destination port model.
    pub dport_model: PortModel,
    /// Protocol mixture.
    pub proto_mix: ProtoMix,
    /// Packet size model.
    pub size_model: SizeModel,
}

/// One member of the flow universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Protocol.
    pub proto: u8,
}

/// A deterministic packet-stream generator.
#[derive(Debug)]
pub struct TraceGen {
    cfg: TraceConfig,
    rng: SmallRng,
    universe: Vec<FlowSpec>,
    zipf: Zipf,
    emitted: u64,
    clock_micros: u64,
}

impl TraceGen {
    /// Builds the flow universe and the packet process.
    pub fn new(cfg: TraceConfig) -> TraceGen {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let universe = (0..cfg.flows)
            .map(|_| FlowSpec {
                src: IpAddr::V4(cfg.src_model.sample(&mut rng)),
                dst: IpAddr::V4(cfg.dst_model.sample(&mut rng)),
                sport: cfg.sport_model.sample(&mut rng),
                dport: cfg.dport_model.sample(&mut rng),
                proto: cfg.proto_mix.sample(&mut rng),
            })
            .collect();
        let zipf = Zipf::new(cfg.flows, cfg.zipf_s);
        let clock_micros = cfg.start_micros;
        TraceGen {
            cfg,
            rng,
            universe,
            zipf,
            emitted: 0,
            clock_micros,
        }
    }

    /// The workload description.
    pub fn config(&self) -> &TraceConfig {
        &self.cfg
    }

    /// The flow universe (rank order: index 0 is the most popular flow).
    pub fn universe(&self) -> &[FlowSpec] {
        &self.universe
    }

    /// Emits the next packet, or `None` when the configured packet count
    /// is reached.
    #[allow(clippy::should_implement_trait)]
    pub fn next_packet(&mut self) -> Option<PacketMeta> {
        if self.emitted >= self.cfg.packets {
            return None;
        }
        self.emitted += 1;
        // Exponential inter-arrival around the configured mean rate.
        let mean_gap = 1e6 / self.cfg.mean_pps.max(1.0);
        let u: f64 = self.rng.gen::<f64>().max(1e-12);
        self.clock_micros += (-u.ln() * mean_gap).ceil() as u64;
        let rank = self.zipf.sample(&mut self.rng);
        let flow = &self.universe[(rank - 1) as usize];
        let wire_len = self.cfg.size_model.sample(&mut self.rng);
        Some(PacketMeta {
            ts_micros: self.clock_micros,
            src: flow.src,
            dst: flow.dst,
            sport: flow.sport,
            dport: flow.dport,
            proto: flow.proto,
            wire_len,
        })
    }

    /// Renders a packet as a byte-accurate Ethernet frame (UDP or TCP
    /// payloads sized to match the wire length where possible).
    pub fn frame_for(meta: &PacketMeta) -> Vec<u8> {
        let (IpAddr::V4(s), IpAddr::V4(d)) = (meta.src, meta.dst) else {
            panic!("synthetic traces are IPv4");
        };
        let s = s.octets();
        let d = d.octets();
        // Pad payload so the frame length approximates the wire length.
        let overhead = 14 + 20 + 20; // eth + ip + tcp
        let pay = (meta.wire_len as usize).saturating_sub(overhead).min(1460);
        let payload = vec![0u8; pay];
        match meta.proto {
            17 => testpkt::udp4(s, d, meta.sport, meta.dport, &payload),
            6 => testpkt::tcp4(s, d, meta.sport, meta.dport, &payload),
            p => testpkt::ipv4_proto(s, d, p, &payload),
        }
    }
}

impl Iterator for TraceGen {
    type Item = PacketMeta;

    fn next(&mut self) -> Option<PacketMeta> {
        self.next_packet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile;
    use std::collections::HashMap;

    fn tiny() -> TraceConfig {
        let mut cfg = profile::backbone(1);
        cfg.packets = 20_000;
        cfg.flows = 2_000;
        cfg
    }

    #[test]
    fn emits_exactly_the_configured_count() {
        let gen = TraceGen::new(tiny());
        assert_eq!(gen.count(), 20_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = TraceGen::new(tiny()).take(500).collect();
        let b: Vec<_> = TraceGen::new(tiny()).take(500).collect();
        assert_eq!(a, b);
        let mut other = tiny();
        other.seed = 2;
        let c: Vec<_> = TraceGen::new(other).take(500).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_are_monotone() {
        let mut last = 0;
        for p in TraceGen::new(tiny()) {
            assert!(p.ts_micros > last);
            last = p.ts_micros;
        }
    }

    #[test]
    fn popularity_is_heavy_tailed() {
        let mut counts: HashMap<(IpAddr, u16), u64> = HashMap::new();
        for p in TraceGen::new(tiny()) {
            *counts.entry((p.src, p.sport)).or_default() += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Top flow ≫ median flow.
        assert!(freqs[0] > 50, "head: {}", freqs[0]);
        assert!(
            freqs[freqs.len() / 2] <= 10,
            "median: {}",
            freqs[freqs.len() / 2]
        );
    }

    #[test]
    fn frames_parse_back_to_the_same_meta() {
        for p in TraceGen::new(tiny()).take(200) {
            let frame = TraceGen::frame_for(&p);
            let meta = flownet::parse_ethernet(&frame, p.ts_micros, p.wire_len).unwrap();
            assert_eq!(meta.src, p.src);
            assert_eq!(meta.dst, p.dst);
            assert_eq!(meta.proto, p.proto);
            if p.proto == 6 || p.proto == 17 {
                assert_eq!((meta.sport, meta.dport), (p.sport, p.dport));
            }
        }
    }
}
