//! Workload profiles — the paper-trace substitutions.
//!
//! The paper evaluates on a CAIDA Equinix-Chicago backbone capture and a
//! MAWI transit-link capture, 6 M packets each. Neither is
//! redistributable, so these profiles reproduce the *statistical shape*
//! that drives Flowtree accuracy (see DESIGN.md §2):
//!
//! * [`backbone`] (Equinix-Chicago-like): very large flow universe,
//!   pronounced Zipf head, strong prefix locality, TCP-dominant.
//! * [`transit`] (MAWI-like): smaller hot set, flatter tail with far
//!   more single-packet flows (scans, DNS), more UDP.
//!
//! Stress profiles exercise the self-adjustment machinery:
//! [`ddos`] (many sources, one destination), [`scan`] (one source,
//! many destinations), [`uniform`] (no skew at all — the worst case for
//! any popularity-based summary).

use crate::gen::TraceConfig;
use crate::model::{AddrModel, PortModel, ProtoMix, SizeModel};

/// Paper evaluation scale: 6 M packets.
pub const PAPER_PACKETS: u64 = 6_000_000;

fn base(name: &'static str, seed: u64) -> TraceConfig {
    TraceConfig {
        name,
        seed,
        packets: PAPER_PACKETS,
        flows: 1_500_000,
        zipf_s: 1.05,
        start_micros: 1_700_000_000_000_000,
        mean_pps: 120_000.0,
        src_model: AddrModel::backbone(seed ^ 0xA),
        dst_model: AddrModel::backbone(seed ^ 0xB),
        sport_model: PortModel::client_side(),
        dport_model: PortModel::server_side(),
        proto_mix: ProtoMix::internet(),
        size_model: SizeModel::internet(),
    }
}

/// Equinix-Chicago-like backbone workload.
pub fn backbone(seed: u64) -> TraceConfig {
    base("backbone", seed)
}

/// MAWI-like transit workload: flatter popularity (more mass in the
/// tail), higher flow diversity per packet, UDP-heavier.
pub fn transit(seed: u64) -> TraceConfig {
    let mut cfg = base("transit", seed);
    cfg.zipf_s = 0.85;
    cfg.flows = 2_500_000;
    cfg.src_model = AddrModel::transit(seed ^ 0xA);
    cfg.dst_model = AddrModel::transit(seed ^ 0xB);
    cfg.proto_mix = ProtoMix::transit();
    cfg
}

/// Volumetric attack: huge source diversity against one service.
pub fn ddos(seed: u64) -> TraceConfig {
    let mut cfg = base("ddos", seed);
    cfg.flows = 800_000;
    cfg.zipf_s = 0.3; // every bot sends at a similar rate
    cfg.src_model = AddrModel::transit(seed ^ 0xA);
    // The victim is a handful of load-balanced hosts in one /24.
    cfg.dst_model = AddrModel {
        l8: (1, 1.0),
        l16: (1, 1.0),
        l24: (2, 1.0),
        l32: (32, 0.5),
        ..AddrModel::narrow(seed ^ 0xB)
    };
    cfg.dport_model = PortModel {
        service_prob: 0.98,
        services: vec![443],
        service_s: 1.0,
    };
    cfg
}

/// Horizontal scan: one prefix probing a vast destination space.
pub fn scan(seed: u64) -> TraceConfig {
    let mut cfg = base("scan", seed);
    cfg.flows = 2_000_000;
    cfg.zipf_s = 0.1; // almost every flow is 1–2 packets
    cfg.src_model = AddrModel::narrow(seed ^ 0xA);
    cfg.dst_model = AddrModel::transit(seed ^ 0xB);
    cfg.size_model = SizeModel {
        p_small: 0.95,
        p_full: 0.01,
    };
    cfg
}

/// No skew at all: uniform flow popularity (adversarial for Flowtree).
pub fn uniform(seed: u64) -> TraceConfig {
    let mut cfg = base("uniform", seed);
    cfg.zipf_s = 0.0;
    cfg.flows = 1_000_000;
    cfg
}

/// Profile by name (for CLI harnesses).
pub fn by_name(name: &str, seed: u64) -> Option<TraceConfig> {
    Some(match name {
        "backbone" => backbone(seed),
        "transit" => transit(seed),
        "ddos" => ddos(seed),
        "scan" => scan(seed),
        "uniform" => uniform(seed),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGen;
    use std::collections::HashSet;

    #[test]
    fn by_name_knows_all_profiles() {
        for n in ["backbone", "transit", "ddos", "scan", "uniform"] {
            assert!(by_name(n, 1).is_some(), "{n}");
        }
        assert!(by_name("bogus", 1).is_none());
    }

    #[test]
    fn transit_has_higher_flow_diversity_than_backbone() {
        let count_distinct = |cfg: TraceConfig| {
            let mut cfg = cfg;
            cfg.packets = 60_000;
            let mut set = HashSet::new();
            for p in TraceGen::new(cfg) {
                set.insert((p.src, p.dst, p.sport, p.dport, p.proto));
            }
            set.len()
        };
        let b = count_distinct(backbone(3));
        let t = count_distinct(transit(3));
        assert!(
            t as f64 > b as f64 * 1.15,
            "transit {t} flows vs backbone {b}"
        );
    }

    #[test]
    fn ddos_concentrates_destinations() {
        let mut cfg = ddos(4);
        cfg.packets = 30_000;
        let mut dsts = HashSet::new();
        let mut dports = HashSet::new();
        for p in TraceGen::new(cfg) {
            dsts.insert(p.dst);
            dports.insert(p.dport);
        }
        assert!(dsts.len() < 3_000, "victim space is narrow: {}", dsts.len());
        assert!(dports.contains(&443));
    }

    #[test]
    fn scan_is_mostly_tiny_packets() {
        let mut cfg = scan(5);
        cfg.packets = 20_000;
        let small = TraceGen::new(cfg).filter(|p| p.wire_len <= 80).count();
        assert!(small > 17_000, "small packets: {small}");
    }
}
