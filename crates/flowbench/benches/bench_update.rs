//! E7 (Criterion) — update cost: hit path, miss path, and end-to-end
//! trace ingestion at several node budgets. The paper's claim is
//! amortized-constant updates; compare `ingest/budget=*` rows — they
//! should be flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowkey::Schema;
use flowtrace::{profile, TraceGen};
use flowtree_core::{Config, FlowTree, Popularity};

fn trace(packets: u64) -> Vec<(flowkey::FlowKey, Popularity)> {
    let mut cfg = profile::backbone(42);
    cfg.packets = packets;
    cfg.flows = packets / 4;
    TraceGen::new(cfg)
        .map(|p| (p.flow_key(), Popularity::packet(p.wire_len)))
        .collect()
}

fn bench_hit_path(c: &mut Criterion) {
    let mut tree = FlowTree::new(Schema::four_feature(), Config::with_budget(40_000));
    let key: flowkey::FlowKey = "src=10.1.2.3/32 dst=192.0.2.7/32 sport=49152 dport=443"
        .parse()
        .unwrap();
    tree.insert(&key, Popularity::packet(100));
    c.bench_function("update/hit", |b| {
        b.iter(|| tree.insert(std::hint::black_box(&key), Popularity::packet(100)))
    });
}

fn bench_ingest(c: &mut Criterion) {
    let input = trace(200_000);
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(input.len() as u64));
    for budget in [10_000usize, 40_000, 160_000] {
        group.bench_with_input(BenchmarkId::new("budget", budget), &budget, |b, &budget| {
            b.iter(|| {
                let mut tree = FlowTree::new(Schema::four_feature(), Config::with_budget(budget));
                for (k, p) in &input {
                    tree.insert(k, *p);
                }
                tree.len()
            })
        });
    }
    group.finish();
}

fn bench_schemas(c: &mut Criterion) {
    let input = trace(100_000);
    let mut group = c.benchmark_group("ingest_schema");
    group.sample_size(10);
    group.throughput(Throughput::Elements(input.len() as u64));
    for (name, schema) in [
        ("src1", Schema::one_feature_src()),
        ("srcdst2", Schema::two_feature()),
        ("four", Schema::four_feature()),
        ("five", Schema::five_feature()),
    ] {
        group.bench_with_input(BenchmarkId::new("schema", name), &schema, |b, schema| {
            b.iter(|| {
                let mut tree = FlowTree::new(*schema, Config::with_budget(40_000));
                for (k, p) in &input {
                    tree.insert(k, *p);
                }
                tree.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hit_path, bench_ingest, bench_schemas);
criterion_main!(benches);
