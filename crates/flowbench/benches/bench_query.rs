//! E8 (Criterion) — query cost: point queries stay flat, pattern
//! queries scale with retained nodes ("time proportional to the tree
//! nodes"), top-k and HHH are single passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowkey::{FlowKey, Schema};
use flowtrace::{profile, TraceGen};
use flowtree_core::{Config, FlowTree, Metric, Popularity};

fn build(budget: usize) -> FlowTree {
    let mut cfg = profile::backbone(42);
    cfg.packets = 400_000;
    cfg.flows = 100_000;
    let mut tree = FlowTree::new(Schema::four_feature(), Config::with_budget(budget));
    for p in TraceGen::new(cfg) {
        tree.insert(&p.flow_key(), Popularity::packet(p.wire_len));
    }
    tree
}

fn bench_point(c: &mut Criterion) {
    let tree = build(40_000);
    let key = *tree.iter().map(|v| v.key).nth(100).expect("populated");
    c.bench_function("query/point_retained", |b| {
        b.iter(|| tree.popularity(std::hint::black_box(&key)))
    });
}

fn bench_pattern_scaling(c: &mut Criterion) {
    let patterns: Vec<FlowKey> = ["src=10.0.0.0/8", "dst=128.0.0.0/2 dport=443"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut group = c.benchmark_group("query/pattern");
    group.sample_size(20);
    for budget in [10_000usize, 40_000, 160_000] {
        let tree = build(budget);
        group.bench_with_input(BenchmarkId::new("nodes", tree.len()), &tree, |b, tree| {
            b.iter(|| {
                patterns
                    .iter()
                    .map(|p| tree.estimate_pattern(p).packets)
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

fn bench_analytics(c: &mut Criterion) {
    let tree = build(40_000);
    c.bench_function("query/top_k_100", |b| {
        b.iter(|| tree.top_k(100, Metric::Packets).len())
    });
    c.bench_function("query/hhh_1pct", |b| {
        b.iter(|| tree.hhh(0.01, Metric::Packets).len())
    });
}

criterion_group!(benches, bench_point, bench_pattern_scaling, bench_analytics);
criterion_main!(benches);
