//! E9 (Criterion) — the distributed operators: merge, diff, encode,
//! decode. These set the cost of shipping and combining summaries
//! across sites and windows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flowkey::Schema;
use flowtrace::{profile, TraceGen};
use flowtree_core::{Config, FlowTree, Popularity};

fn site_tree(seed: u64, budget: usize) -> FlowTree {
    let mut cfg = profile::backbone(seed);
    cfg.packets = 150_000;
    cfg.flows = 40_000;
    let mut tree = FlowTree::new(Schema::four_feature(), Config::with_budget(budget));
    for p in TraceGen::new(cfg) {
        tree.insert(&p.flow_key(), Popularity::packet(p.wire_len));
    }
    tree
}

fn bench_merge_diff(c: &mut Criterion) {
    let a = site_tree(1, 40_000);
    let b = site_tree(2, 40_000);
    let mut group = c.benchmark_group("ops");
    group.sample_size(10);
    group.throughput(Throughput::Elements(b.len() as u64));
    group.bench_function("merge_40k", |bch| {
        bch.iter(|| FlowTree::merged(&a, &b).expect("same schema").len())
    });
    group.bench_function("diff_40k", |bch| {
        bch.iter(|| FlowTree::diffed(&a, &b).expect("same schema").len())
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let tree = site_tree(3, 40_000);
    let bytes = tree.encode();
    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("encode_40k", |b| b.iter(|| tree.encode().len()));
    group.bench_function("decode_40k_validated", |b| {
        b.iter(|| {
            FlowTree::decode(&bytes, Config::with_budget(40_000))
                .expect("valid")
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_merge_diff, bench_codec);
criterion_main!(benches);
