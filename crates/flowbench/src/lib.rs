//! # flowbench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! | binary | experiment |
//! |---|---|
//! | `fig3_heatmap` | Fig. 3a/3b accuracy heatmaps + diagonal/coverage stats (E3–E5) |
//! | `storage_table` | the "> 95 % storage reduction" table (E6) |
//! | `throughput` | amortized-constant update evidence (E7) |
//! | `querycost` | query time ∝ tree nodes (E8) |
//! | `mergediff` | merge exactness + full-vs-delta transfer sweep (E9) |
//! | `baseline_compare` | Flowtree vs Space-Saving/Count-Min/HHH/RHHH (E11) |
//! | `ablation` | eviction/estimator/budget design choices (E12) |
//!
//! Criterion micro-benchmarks live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use flowkey::Schema;
use flowtrace::{GroundTruth, TraceConfig, TraceGen};
use flowtree_core::{Config, FlowTree, Popularity};
use std::time::Instant;

/// Tiny `--key value` / `--flag` argument scanner (no clap offline).
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn from_env() -> Args {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (tests).
    pub fn from_vec(raw: Vec<String>) -> Args {
        Args { raw }
    }

    /// The value following `--name`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| *a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// Whether `--name` is present (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.raw.iter().any(|a| *a == format!("--{name}"))
    }
}

/// Builds a tree and the exact ground truth from a trace in one pass;
/// also returns the seconds spent inside `insert` (excluding truth
/// bookkeeping).
pub fn build_tree_and_truth(
    cfg: TraceConfig,
    schema: Schema,
    tree_cfg: Config,
) -> (FlowTree, GroundTruth, f64) {
    let mut tree = FlowTree::new(schema, tree_cfg);
    let mut truth = GroundTruth::new();
    let mut insert_secs = 0.0;
    for pkt in TraceGen::new(cfg) {
        let key = schema.canonicalize(&pkt.flow_key());
        let pop = Popularity::packet(pkt.wire_len);
        let t0 = Instant::now();
        tree.insert(&key, pop);
        insert_secs += t0.elapsed().as_secs_f64();
        truth.observe(key, pop);
    }
    (tree, truth, insert_secs)
}

/// A right-aligned fixed-width table printer for experiment output.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Prints the header row and remembers column widths.
    pub fn new(headers: &[&str]) -> Table {
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(12)).collect();
        let t = Table { widths };
        t.row(headers);
        let rule: Vec<String> = t.widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", rule.join("  "));
        t
    }

    /// Prints one row.
    pub fn row(&self, cells: &[&str]) {
        let line: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Renders a log-log 2-D histogram (the Fig. 3 heatmap) as ASCII.
///
/// `cells[y][x]` counts flows with actual-popularity bucket `x` and
/// estimated-popularity bucket `y` (log2 buckets).
pub fn render_heatmap(cells: &[Vec<u64>]) -> String {
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    let max = cells
        .iter()
        .flat_map(|r| r.iter())
        .copied()
        .max()
        .unwrap_or(0)
        .max(1) as f64;
    let mut out = String::new();
    out.push_str("  est↑\n");
    for (y, row) in cells.iter().enumerate().rev() {
        out.push_str(&format!("{y:>4} |"));
        for &c in row {
            let shade = if c == 0 {
                shades[0]
            } else {
                let f = ((c as f64).ln_1p() / max.ln_1p() * (shades.len() - 1) as f64).ceil();
                shades[(f as usize).clamp(1, shades.len() - 1)]
            };
            out.push(shade);
        }
        out.push('\n');
    }
    out.push_str("     +");
    out.push_str(&"-".repeat(cells.first().map(|r| r.len()).unwrap_or(0)));
    out.push_str("→ actual (log2 buckets)\n");
    out
}

/// log2 bucket index of a popularity value (0 for ≤ 1).
pub fn log2_bucket(v: i64) -> usize {
    if v <= 1 {
        0
    } else {
        (63 - (v as u64).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 1);
        assert_eq!(log2_bucket(1024), 10);
    }

    #[test]
    fn heatmap_renders_nonempty() {
        let cells = vec![vec![0, 1], vec![10, 0]];
        let s = render_heatmap(&cells);
        assert!(s.contains('#') || s.contains('@') || s.contains('*'));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn args_scanner() {
        let args = Args::from_vec(vec!["--packets".into(), "5000".into(), "--csv".into()]);
        assert_eq!(args.get::<u64>("packets"), Some(5000));
        assert!(args.has("csv"));
        assert!(!args.has("bogus"));
        assert_eq!(args.get::<u64>("missing"), None);
    }

    #[test]
    fn build_helper_conserves() {
        let mut cfg = flowtrace::profile::backbone(1);
        cfg.packets = 5_000;
        cfg.flows = 1_000;
        let (tree, truth, secs) =
            build_tree_and_truth(cfg, Schema::four_feature(), Config::with_budget(512));
        assert_eq!(tree.total().packets, 5_000);
        assert_eq!(truth.total().packets, 5_000);
        assert!(secs >= 0.0);
    }
}
