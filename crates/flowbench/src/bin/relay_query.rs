//! E14 — root-scope query latency: flat fan-out vs a 2-tier hierarchy.
//!
//! The hierarchy's point (Flowyager, TNSM 2020): a network-wide query
//! at a flat collector re-merges `windows × sites` per-site trees; a
//! root relay holds **one pre-aggregated tree per (window, region)**,
//! so the same query merges `windows × groups` — the per-site merging
//! already happened once, at export time, down in the tier.
//!
//! For each `--sites` count (default sweep 8, 32, 128) this benchmark
//! builds the same per-(site, window) summaries from one Zipf trace,
//! feeds them to a flat collector **and** through a
//! [`flowrelay::RelayTopology::two_tier`] hierarchy (√N fan-out), then
//! times `--reps` repetitions of the full-scope heavy-hitter query:
//!
//! * `flat/merge` — merge all `W × N` site trees per query (the flat
//!   fan-out cost a collector pays without a view cache);
//! * `root/aggregated` — merge the root's `W × √N` aggregates per
//!   query;
//! * `flat/cached_view` and `root/cached_view` — the same two through
//!   the cached-view layer (steady-state dashboards).
//!
//! Answers are asserted identical across paths before anything is
//! timed into a row. With `--disjoint` every site draws from its own
//! key population (a distinct /16 per site) instead of one shared Zipf
//! — the regime where the output tree is the *union* of the inputs and
//! merge cost is dominated by output size.
//!
//! A second scenario measures the **delta export path**: sites'
//! frames for a window arrive one at a time and the relay re-exports
//! after each arrival — [`flowrelay::ExportMode::Delta`] ships one
//! site's increment per re-export, [`flowrelay::ExportMode::Full`]
//! re-serializes the whole aggregate. Steady-state bytes (everything
//! past each window's first export) are the paper's bandwidth claim
//! for the hierarchy tier.
//!
//! A third scenario (E16) boots a **live three-tier fleet** through
//! the launcher runtime — a generated [`flowrelay::spec::FleetSpec`]
//! booted into real [`flowrelay::NodeRuntime`]s with sockets,
//! schedulers, and acknowledged shippers — ships the same summaries
//! to the leaf tier over TCP, waits for the root to converge on the
//! flat collector's answer, and times root-scope HHH queries over the
//! query socket: the E14 merge advantage measured end-to-end through
//! a deployed tree (boot, convergence, and query latency per row).
//!
//! Results append as a `"relay_query"` section to `BENCH_query.json`
//! (run `merge_query` first: it rewrites the file wholesale).
//!
//! ```sh
//! cargo run --release -p flowbench --bin relay_query -- \
//!     --sites 8,32,128 --windows 12 --packets 1000 --reps 5 \
//!     [--disjoint] --json BENCH_query.json
//! ```

use flowbench::{Args, Table};
use flowdist::{Collector, Summary, SummaryKind, WindowId};
use flowkey::{FlowKey, Schema};
use flowrelay::{ExportConfig, ExportMode, Relay, RelayConfig, RelayTopology};
use flowtrace::{profile, TraceGen};
use flowtree_core::{Config, FlowTree, Metric, Popularity};
use std::time::Instant;

struct BenchRow {
    sites: u16,
    groups: usize,
    path: &'static str,
    ms_per_query: f64,
    speedup_vs_flat: f64,
}

struct ExportRow {
    sites: u16,
    windows: usize,
    full_bytes: u64,
    delta_bytes: u64,
    steady_full_bytes: u64,
    steady_delta_bytes: u64,
    steady_ratio: f64,
}

struct FleetRow {
    sites: u16,
    relays: usize,
    boot_ms: f64,
    converge_ms: f64,
    ms_per_query: f64,
}

/// E16 — the live launcher runtime: generate a three-tier fleet spec
/// from [`RelayTopology::three_tier`], boot real `NodeRuntime`s
/// (sockets, schedulers, acknowledged shippers — the exact stack
/// `flowctl run` supervises), ship every (site, window) summary to
/// its owning leaf over TCP, wait until the root's network-wide
/// aggregate equals the flat collector's, then time root-scope HHH
/// queries over the query socket. Where E14 measures the *merge*
/// advantage in memory, this measures it end-to-end through the
/// deployed tree.
fn fleet_scenario(
    sites: u16,
    windows: usize,
    span_ms: u64,
    flat: &Collector,
    reps: usize,
) -> FleetRow {
    use flowrelay::server::{query_remote, ship_summaries};
    use flowrelay::spec::FleetSpec;
    use std::net::TcpStream;
    use std::time::Duration;

    let leaf_fanout = (sites as f64).sqrt().ceil() as u16;
    let leaves = sites.div_ceil(leaf_fanout).max(1);
    let mid_fanout = (leaves as f64).sqrt().ceil() as u16;
    let topo = RelayTopology::three_tier(sites, leaf_fanout, mid_fanout);
    let mut text =
        String::from("[defaults]\nlinger-ms = 0\ndrain-every-ms = 20\nretention-ms = 0\n\n");
    for r in &topo.relays {
        text.push_str(&format!("[relay {}]\nagg-site = {}\n", r.name, r.agg_site));
        if !r.sites.is_empty() {
            let list: Vec<String> = r.sites.iter().map(u16::to_string).collect();
            text.push_str(&format!("sites = {}\n", list.join(",")));
        }
        if let Some(p) = &r.parent {
            text.push_str(&format!("parent = {p}\n"));
        }
        text.push('\n');
    }
    let spec = FleetSpec::parse(&text).expect("generated spec parses");

    let t0 = Instant::now();
    let relays = spec.boot_relays().expect("fleet boots");
    let boot_ms = t0.elapsed().as_secs_f64() * 1e3;
    let ingest_of = |name: &str| {
        relays
            .iter()
            .find(|rt| rt.name() == name)
            .expect("booted")
            .ingest_addr()
    };
    let root_query = relays[0].query_addr();

    // Ship every (site, window) frame to its owning leaf over TCP,
    // one connection per leaf.
    let t1 = Instant::now();
    let mut conns: std::collections::HashMap<usize, TcpStream> = Default::default();
    for w in 0..windows {
        for s in 0..sites {
            let owner = topo.owner_of(s).expect("three_tier covers the sweep");
            let conn = conns.entry(owner).or_insert_with(|| {
                TcpStream::connect(ingest_of(&topo.relays[owner].name)).expect("leaf ingest")
            });
            let summary = Summary {
                site: s,
                window: WindowId {
                    start_ms: w as u64 * span_ms,
                    span_ms,
                },
                seq: w as u64 + 1,
                kind: SummaryKind::Full,
                provenance: None,
                epoch: None,
                tree: flat
                    .window_tree(w as u64 * span_ms, s)
                    .expect("built above")
                    .clone(),
            };
            ship_summaries(conn, &[summary]).expect("ship to leaf");
        }
    }
    drop(conns);

    // Converged when the root's network-wide total matches the flat
    // collector's — every window climbed both tiers.
    let expected = flat.merged(None, 0, u64::MAX).total().packets;
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let mut q = TcpStream::connect(root_query).expect("root query connect");
        let body = query_remote(&mut q, "pop")
            .expect("transport ok")
            .expect("valid query");
        let total = body
            .split("popularity: ")
            .nth(1)
            .and_then(|r| r.split(" packets").next())
            .and_then(|n| n.trim().parse::<i64>().ok());
        if total == Some(expected) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never converged on {expected} packets; last answer:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let converge_ms = t1.elapsed().as_secs_f64() * 1e3;

    // Steady state: root-scope HHH over the query socket.
    let mut q = TcpStream::connect(root_query).expect("root query connect");
    let start = Instant::now();
    for _ in 0..reps {
        query_remote(&mut q, "hhh 0.01 by packets")
            .expect("transport ok")
            .expect("valid query");
    }
    let ms_per_query = start.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let n_relays = relays.len();
    for rt in relays.into_iter().rev() {
        rt.drain(Duration::from_secs(30));
    }
    FleetRow {
        sites,
        relays: n_relays,
        boot_ms,
        converge_ms,
        ms_per_query,
    }
}

/// The incremental-update export scenario: every site's frame for a
/// window lands separately and the relay drains after each arrival, so
/// each window re-exports `sites` times. Returns (total bytes, steady
/// bytes) where steady excludes each window's first (necessarily full)
/// export — the steady-state re-export cost the mode controls.
fn export_scenario(
    sites: u16,
    windows: usize,
    mode: ExportMode,
    mut summary_at: impl FnMut(u16, usize) -> Summary,
) -> (u64, u64) {
    let mut relay = Relay::new(RelayConfig {
        name: "tier1".into(),
        agg_site: sites + 1,
        expected: (0..sites).collect(),
        schema: Schema::five_feature(),
        tree: Config::with_budget(1 << 20),
        export: ExportConfig {
            mode,
            linger_ms: 0,
            max_bases: windows + 1,
            ..ExportConfig::default()
        },
    });
    let span_ms = 1_000u64;
    let (mut total, mut steady) = (0u64, 0u64);
    for w in 0..windows {
        for s in 0..sites {
            relay.apply(summary_at(s, w)).expect("in-coverage frame");
            for e in relay.drain_exports_at((w as u64 + 1) * span_ms) {
                let bytes = e.encoded_size() as u64;
                total += bytes;
                if e.epoch.expect("v3 exports").epoch > 1 {
                    steady += bytes;
                }
            }
        }
    }
    (total, steady)
}

fn hhh_count(tree: &FlowTree) -> usize {
    tree.hhh(0.01, Metric::Packets).len()
}

fn main() {
    let args = Args::from_env();
    let sites_list: String = args.get("sites").unwrap_or_else(|| "8,32,128".into());
    let windows: usize = args.get("windows").unwrap_or(12).max(1);
    let packets_per_window: u64 = args.get("packets").unwrap_or(1_000).max(1);
    let reps: usize = args.get("reps").unwrap_or(5).max(2);
    let seed: u64 = args.get("seed").unwrap_or(42);
    let json_path: String = args
        .get("json")
        .unwrap_or_else(|| "BENCH_query.json".into());
    let sweep: Vec<u16> = sites_list
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();

    let disjoint = args.has("disjoint");
    let workload = if disjoint { "disjoint" } else { "shared" };

    let schema = Schema::five_feature();
    let window_budget = 2_048usize;
    let merged_budget = 1usize << 20;
    let span_ms = 1_000u64;
    let mut rows: Vec<BenchRow> = Vec::new();
    let mut export_rows: Vec<ExportRow> = Vec::new();
    let mut fleet_rows: Vec<FleetRow> = Vec::new();

    for &sites in &sweep {
        let fanout = (sites as f64).sqrt().ceil() as u16;
        let topo = RelayTopology::two_tier(sites, fanout);
        topo.validate().expect("two_tier builds valid topologies");
        let groups = topo.relays.len() - 1;
        println!(
            "\n== E14 setup: {sites} sites × {windows} windows × {packets_per_window} packets, \
             {groups} groups of ≤{fanout}, {workload} populations =="
        );

        // One Zipf stream chopped into (window, site) chunks. With
        // `--disjoint` every site's keys are remapped into its own
        // /16, so site populations never overlap and the merged output
        // tree is the union of the inputs (ROADMAP: shared-Zipf merge
        // cost is dominated by output size).
        let mut cfg = profile::backbone(seed);
        cfg.packets = windows as u64 * sites as u64 * packets_per_window;
        cfg.flows = (cfg.packets / 4).max(1);
        let mut tracegen = TraceGen::new(cfg);
        let mut chunk: Vec<(FlowKey, Popularity)> = Vec::with_capacity(packets_per_window as usize);
        let mut build_window = |tg: &mut TraceGen, site: u16| {
            chunk.clear();
            while chunk.len() < packets_per_window as usize {
                let Some(mut p) = tg.next() else { break };
                if disjoint {
                    if let std::net::IpAddr::V4(v4) = p.src {
                        let o = v4.octets();
                        p.src = std::net::IpAddr::V4(
                            [16 + (site >> 8) as u8, site as u8, o[2], o[3]].into(),
                        );
                    }
                }
                chunk.push((p.flow_key(), Popularity::packet(p.wire_len)));
            }
            let mut tree = FlowTree::new(schema, Config::with_budget(window_budget));
            tree.insert_batch(&chunk);
            tree
        };

        let mut flat = Collector::new(schema, Config::with_budget(merged_budget));
        let mut relays: Vec<Relay> = (0..topo.relays.len())
            .map(|i| Relay::from_topology(&topo, i, schema, Config::with_budget(merged_budget)))
            .collect();
        let root = topo.root();
        for w in 0..windows {
            for s in 0..sites {
                let summary = Summary {
                    site: s,
                    window: WindowId {
                        start_ms: w as u64 * span_ms,
                        span_ms,
                    },
                    seq: w as u64 + 1,
                    kind: SummaryKind::Full,
                    provenance: None,
                    epoch: None,
                    tree: build_window(&mut tracegen, s),
                };
                let owner = topo.owner_of(s).expect("two_tier covers the sweep");
                relays[owner]
                    .apply(summary.clone())
                    .expect("in-coverage site frame");
                flat.apply(summary).expect("valid summary");
            }
        }
        for g in 0..relays.len() {
            if g == root {
                continue;
            }
            for e in relays[g].flush_exports() {
                relays[root]
                    .ingest_frame(&e.encode())
                    .expect("child aggregate accepted");
            }
        }

        // The answer must not depend on the tier answering.
        let reference = hhh_count(&flat.merged(None, 0, u64::MAX));
        let via_root = hhh_count(&relays[root].collector().merged(None, 0, u64::MAX));
        assert_eq!(reference, via_root, "hierarchy changed the answer");

        let time_path = |name: &'static str, f: &mut dyn FnMut() -> usize| {
            let start = Instant::now();
            for _ in 0..reps {
                assert_eq!(f(), reference, "{name} changed the answer");
            }
            start.elapsed().as_secs_f64() * 1e3 / reps as f64
        };

        let flat_ms = time_path("flat/merge", &mut || {
            hhh_count(&flat.merged(None, 0, u64::MAX))
        });
        let root_collector = relays[root].collector();
        let root_ms = time_path("root/aggregated", &mut || {
            hhh_count(&root_collector.merged(None, 0, u64::MAX))
        });
        let flat_cached_ms = time_path("flat/cached_view", &mut || {
            hhh_count(&flat.merged_view(None, 0, u64::MAX))
        });
        let root_cached_ms = time_path("root/cached_view", &mut || {
            hhh_count(&root_collector.merged_view(None, 0, u64::MAX))
        });

        for (path, ms) in [
            ("flat/merge", flat_ms),
            ("root/aggregated", root_ms),
            ("flat/cached_view", flat_cached_ms),
            ("root/cached_view", root_cached_ms),
        ] {
            rows.push(BenchRow {
                sites,
                groups,
                path,
                ms_per_query: ms,
                speedup_vs_flat: flat_ms / ms,
            });
        }

        // ---- delta-vs-full export bytes (incremental updates) --------
        // Reuse the already-built per-(window, site) trees so both
        // modes replay the identical arrival sequence.
        let window_tree = |s: u16, w: usize| {
            flat.window_tree(w as u64 * span_ms, s)
                .expect("built above")
                .clone()
        };
        let mut summary_at = |s: u16, w: usize| Summary {
            site: s,
            window: WindowId {
                start_ms: w as u64 * span_ms,
                span_ms,
            },
            seq: w as u64 + 1,
            kind: SummaryKind::Full,
            provenance: None,
            epoch: None,
            tree: window_tree(s, w),
        };
        let (full_bytes, steady_full_bytes) =
            export_scenario(sites, windows, ExportMode::Full, &mut summary_at);
        let (delta_bytes, steady_delta_bytes) =
            export_scenario(sites, windows, ExportMode::Delta, &mut summary_at);
        export_rows.push(ExportRow {
            sites,
            windows,
            full_bytes,
            delta_bytes,
            steady_full_bytes,
            steady_delta_bytes,
            steady_ratio: steady_full_bytes as f64 / steady_delta_bytes.max(1) as f64,
        });

        // ---- live three-tier fleet through the launcher runtime ------
        fleet_rows.push(fleet_scenario(sites, windows, span_ms, &flat, reps));
    }

    println!("\n== E14: root-scope HHH query latency ==\n");
    let t = Table::new(&["sites", "groups", "path", "ms/query", "speedup vs flat"]);
    for r in &rows {
        t.row(&[
            &r.sites.to_string(),
            &r.groups.to_string(),
            r.path,
            &format!("{:.2}", r.ms_per_query),
            &format!("{:.2}x", r.speedup_vs_flat),
        ]);
    }

    println!("\n== E15: delta vs full re-export bytes (incremental updates) ==\n");
    let t = Table::new(&[
        "sites",
        "windows",
        "full B",
        "delta B",
        "steady full B",
        "steady delta B",
        "steady win",
    ]);
    for r in &export_rows {
        t.row(&[
            &r.sites.to_string(),
            &r.windows.to_string(),
            &r.full_bytes.to_string(),
            &r.delta_bytes.to_string(),
            &r.steady_full_bytes.to_string(),
            &r.steady_delta_bytes.to_string(),
            &format!("{:.2}x", r.steady_ratio),
        ]);
    }

    println!("\n== E16: live three-tier fleet, root HHH over the query socket ==\n");
    let t = Table::new(&["sites", "relays", "boot ms", "converge ms", "ms/query"]);
    for r in &fleet_rows {
        t.row(&[
            &r.sites.to_string(),
            &r.relays.to_string(),
            &format!("{:.1}", r.boot_ms),
            &format!("{:.1}", r.converge_ms),
            &format!("{:.3}", r.ms_per_query),
        ]);
    }

    // ---- append the relay_query section to BENCH_query.json ----------
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut body = String::new();
    body.push_str("    \"bench\": \"relay_query\",\n");
    body.push_str(&format!("    \"windows\": {windows},\n"));
    body.push_str(&format!(
        "    \"packets_per_window\": {packets_per_window},\n"
    ));
    body.push_str(&format!("    \"reps\": {reps},\n"));
    body.push_str(&format!("    \"workload\": \"{workload}\",\n"));
    body.push_str(&format!("    \"host_cores\": {cores},\n"));
    body.push_str("    \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{\"sites\": {}, \"groups\": {}, \"path\": \"{}\", \
             \"ms_per_query\": {:.3}, \"speedup_vs_flat\": {:.3}}}{}\n",
            r.sites,
            r.groups,
            r.path,
            r.ms_per_query,
            r.speedup_vs_flat,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    body.push_str("    ],\n");
    body.push_str("    \"export_bytes\": [\n");
    for (i, r) in export_rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{\"sites\": {}, \"windows\": {}, \"full_bytes\": {}, \
             \"delta_bytes\": {}, \"steady_full_bytes\": {}, \
             \"steady_delta_bytes\": {}, \"steady_ratio\": {:.3}}}{}\n",
            r.sites,
            r.windows,
            r.full_bytes,
            r.delta_bytes,
            r.steady_full_bytes,
            r.steady_delta_bytes,
            r.steady_ratio,
            if i + 1 == export_rows.len() { "" } else { "," },
        ));
    }
    body.push_str("    ],\n");
    body.push_str("    \"fleet3\": [\n");
    for (i, r) in fleet_rows.iter().enumerate() {
        body.push_str(&format!(
            "      {{\"sites\": {}, \"relays\": {}, \"boot_ms\": {:.3}, \
             \"converge_ms\": {:.3}, \"ms_per_query\": {:.3}}}{}\n",
            r.sites,
            r.relays,
            r.boot_ms,
            r.converge_ms,
            r.ms_per_query,
            if i + 1 == fleet_rows.len() { "" } else { "," },
        ));
    }
    body.push_str("    ]\n");
    let section = format!("  \"relay_query\": {{\n{body}  }}\n");
    // `merge_query` owns the file's top-level object; this bin only
    // replaces (or appends) its own section.
    let out = match std::fs::read_to_string(&json_path) {
        Ok(existing) => {
            let base = match existing.find(",\n  \"relay_query\":") {
                Some(i) => existing[..i].to_string(),
                None => existing
                    .trim_end()
                    .strip_suffix('}')
                    .map(|s| s.trim_end().to_string())
                    .unwrap_or_default(),
            };
            if base.trim().is_empty() || !base.trim_start().starts_with('{') {
                format!("{{\n{section}}}\n")
            } else {
                format!("{base},\n{section}}}\n")
            }
        }
        Err(_) => format!("{{\n{section}}}\n"),
    };
    match std::fs::write(&json_path, &out) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
}
