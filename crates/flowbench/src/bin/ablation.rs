//! E12 — ablation of Flowtree's design choices.
//!
//! Three knobs DESIGN.md calls out, each swept independently:
//!
//! * **Eviction policy** — smallest-complementary-popularity-first (the
//!   paper's rule) vs cold-first (LRU flavor): accuracy at equal budget.
//! * **Estimator** — conservative / uniform / optimistic residual
//!   splitting: signed error on absent-key queries.
//! * **Node budget** — the accuracy-vs-space curve behind choosing 40 K.
//!
//! ```sh
//! cargo run --release -p flowbench --bin ablation
//! ```

use flowbench::{Args, Table};
use flowkey::Schema;
use flowtrace::{profile, GroundTruth, TraceGen};
use flowtree_core::{Config, Estimator, EvictionPolicy, FlowTree, Popularity};

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed").unwrap_or(42);
    let packets: u64 = args.get("packets").unwrap_or(600_000);
    let schema = Schema::four_feature();

    // Shared trace + truth.
    let mut cfg = profile::backbone(seed);
    cfg.packets = packets;
    cfg.flows = cfg.flows.min(packets / 2);
    let trace: Vec<_> = TraceGen::new(cfg).collect();
    let mut truth = GroundTruth::new();
    for pkt in &trace {
        truth.observe(
            schema.canonicalize(&pkt.flow_key()),
            Popularity::packet(pkt.wire_len),
        );
    }

    let build = |tree_cfg: Config| -> FlowTree {
        let mut tree = FlowTree::new(schema, tree_cfg);
        for pkt in &trace {
            tree.insert(&pkt.flow_key(), Popularity::packet(pkt.wire_len));
        }
        tree
    };
    let diagonal_share = |tree: &FlowTree| -> f64 {
        let actual = truth.actual_for_tree(tree);
        let (mut diag, mut n) = (0u64, 0u64);
        for v in tree.iter() {
            if v.key.is_root() {
                continue;
            }
            let est = tree.subtree_popularity(v.key).expect("retained").packets;
            let act = actual.get(v.key).map(|p| p.packets).unwrap_or(0);
            n += 1;
            if flowbench::log2_bucket(est) == flowbench::log2_bucket(act) {
                diag += 1;
            }
        }
        diag as f64 / n.max(1) as f64
    };

    // ---- eviction policy --------------------------------------------
    println!("== E12a: eviction policy at 20 K nodes ==\n");
    let t = Table::new(&["policy", "diagonal share", "evictions"]);
    for (name, policy) in [
        ("smallest-first", EvictionPolicy::SmallestFirst),
        ("cold-first", EvictionPolicy::ColdFirst),
    ] {
        let mut c = Config::with_budget(20_000);
        c.eviction = policy;
        let tree = build(c);
        t.row(&[
            name,
            &format!("{:.1}%", diagonal_share(&tree) * 100.0),
            &tree.stats().evictions.to_string(),
        ]);
    }

    // ---- estimator ---------------------------------------------------
    println!("\n== E12b: estimator on absent-key queries (20 K nodes) ==\n");
    // Query actual flows that were evicted from the tree.
    let base = build(Config::with_budget(20_000));
    let absent: Vec<_> = truth
        .iter()
        .filter(|(k, _)| !base.contains_key(k))
        .take(2_000)
        .map(|(k, p)| (*k, p.packets as f64))
        .collect();
    let t = Table::new(&[
        "estimator",
        "mean signed err",
        "mean |err|",
        "underestimates",
    ]);
    for (name, est) in [
        ("conservative", Estimator::Conservative),
        ("uniform", Estimator::Uniform),
        ("optimistic", Estimator::Optimistic),
    ] {
        let mut c = Config::with_budget(20_000);
        c.estimator = est;
        let tree = build(c);
        let (mut signed, mut absolute, mut under) = (0.0, 0.0, 0u32);
        for (k, actual) in &absent {
            let got = tree.estimate_pattern(k).packets;
            signed += got - actual;
            absolute += (got - actual).abs();
            if got < *actual {
                under += 1;
            }
        }
        let n = absent.len().max(1) as f64;
        t.row(&[
            name,
            &format!("{:+.2}", signed / n),
            &format!("{:.2}", absolute / n),
            &format!("{:.0}%", under as f64 / n * 100.0),
        ]);
    }

    // ---- budget sweep -------------------------------------------------
    println!("\n== E12c: node budget vs accuracy and size ==\n");
    let t = Table::new(&[
        "budget",
        "diagonal share",
        "encoded KiB",
        ">1% flows present",
    ]);
    let threshold = (packets / 100).max(1) as i64;
    for budget in [2_500usize, 5_000, 10_000, 20_000, 40_000, 80_000] {
        let tree = build(Config::with_budget(budget));
        let heavy_total = truth.iter().filter(|(_, p)| p.packets >= threshold).count();
        let heavy_present = truth
            .iter()
            .filter(|(k, p)| p.packets >= threshold && tree.contains_key(k))
            .count();
        t.row(&[
            &budget.to_string(),
            &format!("{:.1}%", diagonal_share(&tree) * 100.0),
            &format!("{}", tree.encoded_size() / 1024),
            &format!("{heavy_present}/{heavy_total}"),
        ]);
    }
    println!("\n(the paper's 40 K sits where the diagonal share has flattened)");
}
