//! E11 — Flowtree against the related work, at equal memory.
//!
//! The paper's positioning: heavy-hitter-only structures "miss
//! information on less popular flows". This harness measures that:
//! every summary gets (approximately) the same memory budget, ingests
//! the same trace, and is scored on
//!
//! * point-query relative error for **heavy**, **medium**, and **light**
//!   flows (where the related work goes blind),
//! * hierarchical-heavy-hitter recall/precision vs the exact oracle.
//!
//! ```sh
//! cargo run --release -p flowbench --bin baseline_compare
//! ```

use flowbase::hhh::{FullAncestry, PartialAncestry};
use flowbase::{
    DyadicCountMin, ExactAggregator, HhhSummary, LevelSet, Rhhh, SpaceSaving, StreamSummary,
};
use flowbench::{Args, Table};
use flowkey::{FlowKey, Schema};
use flowtrace::{profile, TraceGen};
use flowtree_core::{Config, FlowTree, Popularity};

/// Adapter: Flowtree behind the baseline interface.
struct FlowTreeSummary {
    tree: FlowTree,
}

impl StreamSummary for FlowTreeSummary {
    fn name(&self) -> &'static str {
        "flowtree"
    }
    fn update(&mut self, key: &FlowKey, w: u64) {
        self.tree.insert(key, Popularity::new(w as i64, 0, 0));
    }
    fn estimate(&self, pattern: &FlowKey) -> f64 {
        self.tree.estimate_pattern(pattern).packets
    }
    fn memory_bytes(&self) -> usize {
        // In-memory footprint (node + index entry), not the wire size —
        // the other contenders report resident memory too.
        self.tree.len() * (std::mem::size_of::<FlowKey>() * 2 + 80)
    }
}

impl HhhSummary for FlowTreeSummary {
    fn hhh(&self, phi: f64) -> Vec<(FlowKey, f64)> {
        self.tree
            .hhh(phi, flowtree_core::Metric::Packets)
            .into_iter()
            .map(|h| (h.key, h.discounted.packets as f64))
            .collect()
    }
}

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed").unwrap_or(42);
    let packets: u64 = args.get("packets").unwrap_or(600_000);
    let phi: f64 = args.get("phi").unwrap_or(0.005);

    let schema = Schema::two_feature(); // src × dst hierarchy, like [2-3]
    let levels = LevelSet::byte_boundaries(schema);

    // Budgets tuned to land every contender near ≈ 4 MiB resident
    // (actual figure reported in the table).
    let mut contenders: Vec<Box<dyn Contender>> = vec![
        Box::new(FlowTreeSummary {
            tree: FlowTree::new(schema, Config::with_budget(16_000)),
        }),
        Box::new(SpaceSaving::new(12_000)),
        Box::new(NoHhh(DyadicCountMin::new(levels.clone(), 13_000, 4))),
        Box::new(FullAncestry::new(levels.clone(), 0.0002)),
        Box::new(PartialAncestry::new(levels.clone(), 0.0002)),
        Box::new(Rhhh::new(levels.clone(), 1_400, seed)),
    ];
    let mut exact = ExactAggregator::new(schema);

    let mut cfg = profile::backbone(seed);
    cfg.packets = packets;
    cfg.flows = cfg.flows.min(packets / 2);
    eprintln!(
        "ingesting {packets} packets into {} summaries …",
        contenders.len() + 1
    );
    for pkt in TraceGen::new(cfg) {
        let key = schema.canonicalize(&pkt.flow_key());
        exact.update(&key, 1);
        for c in contenders.iter_mut() {
            c.update_one(&key);
        }
    }

    // Query sets: heavy (top 0.1 %), medium (around the median rank),
    // light (tail), plus /16 prefix aggregates.
    let mut all: Vec<(FlowKey, f64)> = exact.iter().map(|(k, w)| (*k, w as f64)).collect();
    all.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    let n = all.len();
    let heavy: Vec<_> = all.iter().take((n / 1000).max(20)).cloned().collect();
    let medium: Vec<_> = all.iter().skip(n / 10).take(200).cloned().collect();
    let light: Vec<_> = all.iter().skip(n / 2).take(200).cloned().collect();
    // Prefix aggregates at a ladder-aligned depth (16 = src /15), so
    // level-based structures can answer at their native granularity.
    let prefixes: Vec<(FlowKey, f64)> = {
        let mut set = std::collections::BTreeSet::new();
        for (k, _) in all.iter().take(2_000) {
            if let Some(p) = k.dim_ancestor_at(flowkey::Dim::SrcIp, 16) {
                set.insert(schema.canonicalize(&p.with_dst(flowkey::IpNet::Any)));
            }
        }
        set.into_iter()
            .take(50)
            .map(|k| {
                let e = exact.estimate(&k);
                (k, e)
            })
            .collect()
    };

    let exact_hhh = exact.hhh(phi);
    println!(
        "\n== E11: equal-memory comparison ({packets} packets, {} distinct flows, φ={phi}) ==\n",
        exact.distinct()
    );
    let t = Table::new(&[
        "summary",
        "memory",
        "heavy err",
        "medium err",
        "light err",
        "/16 agg err",
        "hhh recall",
        "hhh precision",
    ]);
    for c in &contenders {
        let score = |set: &[(FlowKey, f64)]| -> f64 {
            let mut err = 0.0;
            for (k, truth) in set {
                let est = c.estimate_one(k);
                err += (est - truth).abs() / truth.max(1.0);
            }
            err / set.len().max(1) as f64
        };
        let got = c.hhh_one(phi);
        // Fuzzy matching: the oracle reports bit-granularity keys while
        // the ladder-based related work reports byte-granularity ones.
        // An item counts as found if the summary localizes it to within
        // one byte level (nested keys ≤ 8 chain steps apart).
        let matches = |a: &FlowKey, b: &FlowKey| -> bool {
            (a.contains(b) || b.contains(a)) && schema.depth(a).abs_diff(schema.depth(b)) <= 8
        };
        let recall = exact_hhh
            .iter()
            .filter(|(k, _)| got.iter().any(|(g, _)| matches(g, k)))
            .count() as f64
            / exact_hhh.len().max(1) as f64;
        let precision = got
            .iter()
            .filter(|(g, _)| exact_hhh.iter().any(|(k, _)| matches(g, k)))
            .count() as f64
            / got.len().max(1) as f64;
        t.row(&[
            c.name_one(),
            &format!("{:.2} MiB", c.memory_one() as f64 / (1 << 20) as f64),
            &format!("{:.3}", score(&heavy)),
            &format!("{:.3}", score(&medium)),
            &format!("{:.3}", score(&light)),
            &format!("{:.3}", score(&prefixes)),
            &format!("{recall:.2}"),
            &format!("{precision:.2}"),
        ]);
    }
    println!("\n(err = mean relative error; the paper's point: only Flowtree keeps");
    println!(" medium/light flows AND aggregates answerable in one mergeable structure)");
}

/// A summary that supports point queries but cannot enumerate HHHs
/// (plain sketches) — reported as recall/precision 0 in the table,
/// which is itself one of the paper's points.
struct NoHhh<T: StreamSummary>(T);

impl<T: StreamSummary> Contender for NoHhh<T> {
    fn update_one(&mut self, key: &FlowKey) {
        self.0.update(key, 1);
    }
    fn estimate_one(&self, key: &FlowKey) -> f64 {
        self.0.estimate(key)
    }
    fn memory_one(&self) -> usize {
        self.0.memory_bytes()
    }
    fn name_one(&self) -> &'static str {
        self.0.name()
    }
    fn hhh_one(&self, _phi: f64) -> Vec<(FlowKey, f64)> {
        Vec::new()
    }
}

/// Object-safe facade over `StreamSummary + HhhSummary`.
trait Contender {
    fn update_one(&mut self, key: &FlowKey);
    fn estimate_one(&self, key: &FlowKey) -> f64;
    fn memory_one(&self) -> usize;
    fn name_one(&self) -> &'static str;
    fn hhh_one(&self, phi: f64) -> Vec<(FlowKey, f64)>;
}

impl<T: StreamSummary + HhhSummary> Contender for T {
    fn update_one(&mut self, key: &FlowKey) {
        self.update(key, 1);
    }
    fn estimate_one(&self, key: &FlowKey) -> f64 {
        self.estimate(key)
    }
    fn memory_one(&self) -> usize {
        self.memory_bytes()
    }
    fn name_one(&self) -> &'static str {
        self.name()
    }
    fn hhh_one(&self, phi: f64) -> Vec<(FlowKey, f64)> {
        self.hhh(phi)
    }
}
