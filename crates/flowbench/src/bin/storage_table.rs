//! E6 — the storage/transfer-reduction table behind the paper's
//! "> 95 %" claim.
//!
//! For each workload profile: size of the raw pcap capture, size of the
//! equivalent NetFlow v5 export, size of the encoded Flowtree summary at
//! several node budgets, and the reductions.
//!
//! ```sh
//! cargo run --release -p flowbench --bin storage_table
//! cargo run --release -p flowbench --bin storage_table -- --packets 6000000
//! ```

use flowbench::{Args, Table};
use flowkey::Schema;
use flownet::netflow5;
use flowtrace::{profile, TraceGen};
use flowtree_core::{Config, FlowTree, Popularity};

fn main() {
    let args = Args::from_env();
    let packets: u64 = args.get("packets").unwrap_or(1_000_000);
    let seed: u64 = args.get("seed").unwrap_or(42);
    let budgets = [10_000usize, 40_000, 160_000];

    println!("== E6: storage footprint, {packets} packets per profile ==\n");
    let t = Table::new(&[
        "profile",
        "raw pcap",
        "netflow v5",
        "tree 10k",
        "tree 40k",
        "tree 160k",
        "red. vs pcap",
        "red. vs nf5",
    ]);

    for name in ["backbone", "transit"] {
        let mut cfg = profile::by_name(name, seed).expect("known profile");
        cfg.packets = packets;
        cfg.flows = cfg.flows.min(packets / 2).max(1);

        let mut trees: Vec<FlowTree> = budgets
            .iter()
            .map(|b| FlowTree::new(Schema::four_feature(), Config::with_budget(*b)))
            .collect();
        let mut pcap_bytes = 0u64;
        let mut flows = std::collections::HashSet::new();
        for pkt in TraceGen::new(cfg) {
            // Raw capture cost: pcap record header + full frame.
            pcap_bytes += 16 + pkt.wire_len as u64;
            let key = pkt.flow_key();
            flows.insert(key);
            for tree in &mut trees {
                tree.insert(&key, Popularity::packet(pkt.wire_len));
            }
        }
        // NetFlow export cost: 48 B per flow record (+ header amortized).
        let nf5_bytes = flows.len() as u64 * netflow5::RECORD_LEN as u64
            + (flows.len() as u64 / netflow5::MAX_RECORDS as u64 + 1) * netflow5::HEADER_LEN as u64;
        let sizes: Vec<u64> = trees.iter().map(|t| t.encoded_size() as u64).collect();
        let mid = sizes[1];
        t.row(&[
            name,
            &format!("{:.1} MiB", pcap_bytes as f64 / (1 << 20) as f64),
            &format!("{:.1} MiB", nf5_bytes as f64 / (1 << 20) as f64),
            &format!("{:.2} MiB", sizes[0] as f64 / (1 << 20) as f64),
            &format!("{:.2} MiB", mid as f64 / (1 << 20) as f64),
            &format!("{:.2} MiB", sizes[2] as f64 / (1 << 20) as f64),
            &format!("{:.2}%", (1.0 - mid as f64 / pcap_bytes as f64) * 100.0),
            &format!("{:.2}%", (1.0 - mid as f64 / nf5_bytes as f64) * 100.0),
        ]);
    }
    println!("\n(40 K-node column is the paper's configuration; paper claims > 95% reduction)");
}
