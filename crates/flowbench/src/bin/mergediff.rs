//! E9 — the merge/diff operators at work.
//!
//! Three measurements:
//!
//! 1. **Merge exactness** — totals of k per-site trees add exactly, and
//!    the merged tree answers aggregate queries like the centrally
//!    built tree.
//! 2. **Merge accuracy vs k** — with a fixed per-site budget, how close
//!    the k-way merged tree stays to a central tree of the same budget.
//! 3. **Full vs delta transfer** — a churn sweep: the fraction of
//!    traffic that changes between consecutive windows decides whether
//!    diff-based transfer wins (the paper's "difference of consecutive
//!    summaries").
//!
//! ```sh
//! cargo run --release -p flowbench --bin mergediff
//! ```

use flowbench::{Args, Table};
use flowkey::Schema;
use flowtrace::{profile, TraceGen};
use flowtree_core::{fxhash, Config, FlowTree, Popularity};

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed").unwrap_or(42);
    let packets: u64 = args.get("packets").unwrap_or(600_000);

    // ---- 1 & 2: k-way merge vs central -----------------------------
    println!("== E9a: k-way site merge vs central tree ({packets} packets) ==\n");
    let schema = Schema::four_feature();
    let budget = 20_000usize;
    let t = Table::new(&[
        "sites k",
        "merged total",
        "central total",
        "mean |rel err| on /8 queries",
    ]);
    for k in [2usize, 5, 10] {
        let mut cfg = profile::backbone(seed);
        cfg.packets = packets;
        cfg.flows = cfg.flows.min(packets / 2);
        let mut central = FlowTree::new(schema, Config::with_budget(budget));
        let mut sites: Vec<FlowTree> = (0..k)
            .map(|_| FlowTree::new(schema, Config::with_budget(budget)))
            .collect();
        for pkt in TraceGen::new(cfg) {
            let key = pkt.flow_key();
            let pop = Popularity::packet(pkt.wire_len);
            central.insert(&key, pop);
            let site = (fxhash(&pkt.src) % k as u64) as usize;
            sites[site].insert(&key, pop);
        }
        let mut merged = FlowTree::new(schema, Config::with_budget(budget));
        for s in &sites {
            merged.merge(s).expect("same schema");
        }
        // Aggregate query error across the busiest /8s.
        let top8: Vec<_> = central
            .top_k(200, flowtree_core::Metric::Packets)
            .into_iter()
            .filter(|(k, _)| k.src.depth() == 9 || k.src.depth() == 8)
            .take(10)
            .collect();
        let mut err_sum = 0.0;
        let mut err_n = 0u32;
        for (key, _) in &top8 {
            let a = central.estimate_pattern(key).packets;
            let b = merged.estimate_pattern(key).packets;
            if a > 0.0 {
                err_sum += ((a - b) / a).abs();
                err_n += 1;
            }
        }
        t.row(&[
            &k.to_string(),
            &merged.total().packets.to_string(),
            &central.total().packets.to_string(),
            &format!("{:.4}", err_sum / err_n.max(1) as f64),
        ]);
        assert_eq!(
            merged.total(),
            central.total(),
            "merge must be exact on totals"
        );
    }

    // ---- 3: full vs delta transfer under churn ----------------------
    println!("\n== E9b: full vs delta transfer volume vs window churn ==\n");
    let t = Table::new(&[
        "churn %",
        "full B/window",
        "delta B/window",
        "delta/full",
        "winner",
    ]);
    let windows = 8u64;
    for churn_pct in [0u64, 5, 20, 50, 100] {
        let mut prev: Option<FlowTree> = None;
        let (mut full_bytes, mut delta_bytes) = (0u64, 0u64);
        for w in 0..windows {
            // A window: 3 000 stable flows plus `churn` fraction replaced
            // by window-specific flows, constant per-flow counts.
            let mut tree = FlowTree::new(schema, Config::with_budget(8_192));
            for f in 0..3_000u64 {
                let is_churned = (fxhash(&(w, f)) % 100) < churn_pct;
                let id = if is_churned {
                    (w + 1) * 1_000_000 + f
                } else {
                    f
                };
                let key = format!(
                    "src=10.{}.{}.{}/32 dst=192.0.2.{}/32 sport={} dport=443",
                    id % 200,
                    (id / 200) % 200,
                    (id / 40_000) % 200,
                    id % 100,
                    1024 + (id % 30_000),
                )
                .parse()
                .unwrap();
                tree.insert(&key, Popularity::new(5, 2_500, 1));
            }
            full_bytes += tree.encoded_size() as u64;
            if let Some(prev) = &prev {
                let delta = FlowTree::diffed(&tree, prev).expect("same schema");
                delta_bytes += delta.encoded_size() as u64;
            } else {
                delta_bytes += tree.encoded_size() as u64; // first window ships full
            }
            prev = Some(tree);
        }
        let ratio = delta_bytes as f64 / full_bytes as f64;
        t.row(&[
            &churn_pct.to_string(),
            &(full_bytes / windows).to_string(),
            &(delta_bytes / windows).to_string(),
            &format!("{ratio:.2}"),
            if ratio < 1.0 { "delta" } else { "full" },
        ]);
    }
    println!("\n(low churn → ship diffs; high churn → ship full summaries; the crossover");
    println!(" is where a deployment should switch TransferMode)");
}
