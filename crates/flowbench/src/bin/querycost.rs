//! E8 — query cost is proportional to tree size.
//!
//! The paper: "Queries can still be answered in time proportional to
//! the tree nodes." Evidence: pattern-query latency grows linearly in
//! the node budget while *point* queries on retained keys stay flat
//! (hash lookup + subtree).
//!
//! ```sh
//! cargo run --release -p flowbench --bin querycost
//! ```

use flowbench::{Args, Table};
use flowkey::{FlowKey, Schema};
use flowtrace::{profile, TraceGen};
use flowtree_core::{Config, FlowTree, Popularity};
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed").unwrap_or(42);
    let packets: u64 = args.get("packets").unwrap_or(1_000_000);

    let patterns: Vec<FlowKey> = [
        "src=10.0.0.0/8",
        "dst=128.0.0.0/2 dport=443",
        "sport=32768-65535",
        "src=0.0.0.0/1 dst=128.0.0.0/1",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();

    println!("== E8: query latency vs tree size ({packets} packets, backbone) ==\n");
    let t = Table::new(&[
        "nodes",
        "pattern query µs",
        "µs per knode",
        "point query ns",
        "top-k µs",
        "hhh µs",
    ]);

    for budget in [5_000usize, 10_000, 20_000, 40_000, 80_000] {
        let mut cfg = profile::backbone(seed);
        cfg.packets = packets;
        cfg.flows = cfg.flows.min(packets / 2);
        let mut tree = FlowTree::new(Schema::four_feature(), Config::with_budget(budget));
        let mut retained_probe = FlowKey::ROOT;
        for pkt in TraceGen::new(cfg) {
            let key = pkt.flow_key();
            tree.insert(&key, Popularity::packet(pkt.wire_len));
            retained_probe = tree.schema().canonicalize(&key);
        }

        // Pattern queries: O(n) walk.
        let start = Instant::now();
        let reps = 50;
        let mut sink = 0.0;
        for _ in 0..reps {
            for p in &patterns {
                sink += tree.estimate_pattern(p).packets;
            }
        }
        let pattern_us = start.elapsed().as_secs_f64() * 1e6 / (reps * patterns.len()) as f64;

        // Point queries on a retained key: hash + subtree.
        let probe = if tree.contains_key(&retained_probe) {
            retained_probe
        } else {
            *tree.iter().map(|v| v.key).nth(1).expect("non-empty")
        };
        let start = Instant::now();
        let point_reps = 20_000;
        for _ in 0..point_reps {
            sink += tree.popularity(&probe).est.packets;
        }
        let point_ns = start.elapsed().as_secs_f64() * 1e9 / point_reps as f64;

        // Top-k and HHH: single O(n) passes.
        let start = Instant::now();
        let top = tree.top_k(10, flowtree_core::Metric::Packets);
        let topk_us = start.elapsed().as_secs_f64() * 1e6;
        let start = Instant::now();
        let hhh = tree.hhh(0.01, flowtree_core::Metric::Packets);
        let hhh_us = start.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box((sink, top.len(), hhh.len()));

        t.row(&[
            &tree.len().to_string(),
            &format!("{pattern_us:.0}"),
            &format!("{:.1}", pattern_us / (tree.len() as f64 / 1000.0)),
            &format!("{point_ns:.0}"),
            &format!("{topk_us:.0}"),
            &format!("{hhh_us:.0}"),
        ]);
    }
    println!("\n(pattern µs grows ∝ nodes — flat µs/knode column; point queries stay flat)");
}
