//! E3/E4/E5 — regenerates the paper's Fig. 3 accuracy heatmaps.
//!
//! For every flow retained in a 4-feature, 40 K-node Flowtree built from
//! a 6 M-packet trace, plot estimated popularity (tree subtree sum)
//! against actual popularity (exact trace ground truth) as a log-log
//! 2-D histogram, and report the in-text claims: share of flows exactly
//! on the diagonal (paper: > 57 %) and coverage of every flow above 1 %
//! of packets (paper: all present).
//!
//! ```sh
//! cargo run --release -p flowbench --bin fig3_heatmap -- --profile backbone
//! cargo run --release -p flowbench --bin fig3_heatmap -- --profile transit
//! # faster sanity run:
//! cargo run --release -p flowbench --bin fig3_heatmap -- --packets 500000 --csv
//! ```

use flowbench::{build_tree_and_truth, log2_bucket, render_heatmap, Args, Table};
use flowkey::Schema;
use flowtrace::profile;
use flowtree_core::Config;

fn main() {
    let args = Args::from_env();
    let profile_name: String = args.get("profile").unwrap_or_else(|| "backbone".into());
    let packets: u64 = args.get("packets").unwrap_or(6_000_000);
    let nodes: usize = args.get("nodes").unwrap_or(40_000);
    let seed: u64 = args.get("seed").unwrap_or(42);
    let csv = args.has("csv");

    let mut cfg = profile::by_name(&profile_name, seed).unwrap_or_else(|| {
        eprintln!("unknown profile {profile_name}; use backbone|transit|ddos|scan|uniform");
        std::process::exit(2);
    });
    cfg.packets = packets;
    cfg.flows = cfg.flows.min(packets / 2).max(1);

    eprintln!(
        "fig3: profile={profile_name} packets={packets} nodes={nodes} (4-feature, paper setup)"
    );
    let schema = Schema::four_feature();
    let (tree, truth, insert_secs) = build_tree_and_truth(cfg, schema, Config::with_budget(nodes));
    eprintln!(
        "built: {} nodes, {:.1}s inserting ({:.2} M updates/s), truth {} flows",
        tree.len(),
        insert_secs,
        packets as f64 / insert_secs / 1e6,
        truth.distinct_flows(),
    );

    // Estimated vs actual per retained flow.
    let actual = truth.actual_for_tree(&tree);
    let buckets = 24usize;
    let mut cells = vec![vec![0u64; buckets]; buckets];
    let (mut diagonal, mut n) = (0u64, 0u64);
    for view in tree.iter() {
        if view.key.is_root() {
            continue;
        }
        let est = tree.subtree_popularity(view.key).expect("retained").packets;
        let act = actual.get(view.key).map(|p| p.packets).unwrap_or(0);
        let bx = log2_bucket(act).min(buckets - 1);
        let by = log2_bucket(est).min(buckets - 1);
        cells[by][bx] += 1;
        n += 1;
        if bx == by {
            diagonal += 1;
        }
    }

    // Coverage of heavy flows (> 1 % of packets).
    let threshold = (packets / 100).max(1) as i64;
    let (mut heavy, mut heavy_present) = (0u64, 0u64);
    for (key, pop) in truth.iter() {
        if pop.packets >= threshold {
            heavy += 1;
            if tree.contains_key(key) {
                heavy_present += 1;
            }
        }
    }

    if csv {
        println!("actual_bucket,est_bucket,count");
        for (y, row) in cells.iter().enumerate() {
            for (x, c) in row.iter().enumerate() {
                if *c > 0 {
                    println!("{x},{y},{c}");
                }
            }
        }
    } else {
        println!("\n== Fig. 3 ({profile_name}): estimated vs actual popularity ==");
        print!("{}", render_heatmap(&cells));
    }

    println!();
    let t = Table::new(&["metric", "value", "paper"]);
    t.row(&["flows plotted", &n.to_string(), "40K nodes"]);
    t.row(&[
        "diagonal share",
        &format!("{:.1}%", diagonal as f64 / n.max(1) as f64 * 100.0),
        "> 57%",
    ]);
    t.row(&[
        ">1% flows present",
        &format!("{heavy_present}/{heavy}"),
        "all",
    ]);
    t.row(&[
        "storage reduction",
        &format!(
            "{:.2}%",
            (1.0 - tree.encoded_size() as f64 / (packets as f64 * 48.0)) * 100.0
        ),
        "> 95%",
    ]);
    assert_eq!(heavy_present, heavy, "every >1% flow must be retained");
}
