//! E13 — collector-side merge and merged-query cost.
//!
//! The distributed half of the paper (§2 merge operator, §4 collector
//! queries) runs every range query through a merge of the in-scope
//! (site, window) summaries. This benchmark measures that path on a
//! `--windows × --sites` collector fed from one shared Zipf trace
//! (windows overlap on the heavy keys, diverge on the tail — the shape
//! real deployments produce):
//!
//! * **merge rows** — folding all in-scope trees into one:
//!   - `merge/elementwise` — the pre-structural reference: one
//!     hash-probe insert per source node ([`FlowTree::merge_elementwise`]).
//!   - `merge/structural` — pairwise structural co-walk merges
//!     ([`FlowTree::merge`]).
//!   - `merge/kway` — a single k-way pass over all trees
//!     ([`FlowTree::merge_many`]).
//!
//!   All three must produce byte-identical encodings (asserted here;
//!   the property tests pin it for arbitrary trees).
//! * **query rows** — `--reps` repetitions of a merged-range heavy-
//!   hitter query over the full scope:
//!   - `query/elementwise_merge` — re-merge element-wise per query
//!     (the pre-PR collector behavior).
//!   - `query/structural_merge` — re-merge with one k-way pass per
//!     query (uncached).
//!   - `query/cached_view` — `flowquery::QueryEngine` over
//!     [`Collector::merged_view`]: first run builds the cached view,
//!     repeats reuse it.
//!   - `query/cached_view_growing` — each repetition first applies a
//!     fresh window for every site, so the cached view extends
//!     incrementally instead of rebuilding.
//!
//! Results land in `BENCH_query.json` (committed, like
//! `BENCH_ingest.json`) so the collector-path trajectory is recorded
//! in-repo.
//!
//! ```sh
//! cargo run --release -p flowbench --bin merge_query -- \
//!     --windows 100 --sites 4 --packets 5000 --reps 10 \
//!     --json BENCH_query.json
//! ```

use flowbench::{Args, Table};
use flowdist::{Collector, Summary, SummaryKind, WindowId};
use flowkey::{FlowKey, Schema};
use flowquery::{parse, QueryEngine, QueryOutput};
use flowtrace::{profile, TraceGen};
use flowtree_core::{Config, FlowTree, Metric, Popularity};
use std::time::Instant;

struct MergeRow {
    path: String,
    ms_per_pass: f64,
    nodes_per_sec: f64,
    out_nodes: usize,
}

struct QueryRow {
    path: String,
    reps: usize,
    ms_per_query: f64,
}

fn hhh_count(tree: &FlowTree) -> usize {
    tree.hhh(0.01, Metric::Packets).len()
}

fn main() {
    let args = Args::from_env();
    let windows: usize = args.get("windows").unwrap_or(100).max(1);
    let sites: usize = args.get("sites").unwrap_or(4).max(1);
    let packets_per_window: u64 = args.get("packets").unwrap_or(5_000).max(1);
    let reps: usize = args.get("reps").unwrap_or(10).max(2);
    let seed: u64 = args.get("seed").unwrap_or(42);
    let json_path: String = args
        .get("json")
        .unwrap_or_else(|| "BENCH_query.json".into());

    let schema = Schema::five_feature();
    // Large budgets keep compaction out of the measurement so the three
    // merge paths are byte-comparable; per-window trees still compact
    // to their own budget like real site summaries.
    let window_budget = 4_096usize;
    let merged_budget = 1usize << 20;
    let span_ms = 1_000u64;

    // One shared Zipf population chopped into (window, site) chunks:
    // heavy keys recur in every chunk, tails differ.
    println!(
        "== E13 setup: {windows} windows × {sites} sites × {packets_per_window} packets \
         (five-feature, window budget {window_budget}) =="
    );
    let mut cfg = profile::backbone(seed);
    let extra = (reps * sites) as u64 * packets_per_window;
    cfg.packets = windows as u64 * sites as u64 * packets_per_window + extra;
    cfg.flows = (cfg.packets / 4).max(1);
    let mut tracegen = TraceGen::new(cfg);
    let mut chunk: Vec<(FlowKey, Popularity)> = Vec::with_capacity(packets_per_window as usize);
    let mut build_window = |tg: &mut TraceGen| {
        chunk.clear();
        while chunk.len() < packets_per_window as usize {
            let Some(p) = tg.next() else { break };
            chunk.push((p.flow_key(), Popularity::packet(p.wire_len)));
        }
        let mut tree = FlowTree::new(schema, Config::with_budget(window_budget));
        tree.insert_batch(&chunk);
        tree
    };

    let mut collector = Collector::new(schema, Config::with_budget(merged_budget));
    for w in 0..windows {
        for s in 0..sites {
            let tree = build_window(&mut tracegen);
            collector
                .apply(Summary {
                    site: s as u16,
                    window: WindowId {
                        start_ms: w as u64 * span_ms,
                        span_ms,
                    },
                    seq: w as u64,
                    kind: SummaryKind::Full,
                    provenance: None,
                    epoch: None,
                    tree,
                })
                .expect("valid summary");
        }
    }
    // Pre-built growth summaries for the incremental-cache row.
    let growth: Vec<Summary> = (0..reps)
        .flat_map(|i| {
            (0..sites)
                .map(|s| Summary {
                    site: s as u16,
                    window: WindowId {
                        start_ms: (windows + i) as u64 * span_ms,
                        span_ms,
                    },
                    seq: (windows + i) as u64,
                    kind: SummaryKind::Full,
                    provenance: None,
                    epoch: None,
                    tree: build_window(&mut tracegen),
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let in_scope: Vec<&FlowTree> = collector
        .window_keys()
        .into_iter()
        .map(|(w, s)| collector.window_tree(w, s).expect("stored"))
        .collect();
    let input_nodes: usize = in_scope.iter().map(|t| t.len()).sum();

    // ---- merge throughput --------------------------------------------
    println!(
        "\n== E13a: folding {} trees ({input_nodes} input nodes) ==\n",
        in_scope.len()
    );
    let merged_cfg = Config::with_budget(merged_budget);
    let mut merge_rows: Vec<MergeRow> = Vec::new();
    let mut encodings: Vec<Vec<u8>> = Vec::new();
    for path in ["merge/elementwise", "merge/structural", "merge/kway"] {
        let start = Instant::now();
        let mut out = FlowTree::new(schema, merged_cfg);
        match path {
            "merge/elementwise" => {
                for t in &in_scope {
                    out.merge_elementwise(t).expect("uniform schema");
                }
            }
            "merge/structural" => {
                for t in &in_scope {
                    out.merge(t).expect("uniform schema");
                }
            }
            _ => out.merge_many(&in_scope).expect("uniform schema"),
        }
        let secs = start.elapsed().as_secs_f64();
        encodings.push(out.encode());
        merge_rows.push(MergeRow {
            path: path.to_string(),
            ms_per_pass: secs * 1e3,
            nodes_per_sec: input_nodes as f64 / secs,
            out_nodes: out.len(),
        });
    }
    assert!(
        encodings.windows(2).all(|w| w[0] == w[1]),
        "structural and k-way merges must be byte-identical to element-wise"
    );
    let t = Table::new(&["path", "ms/pass", "input Mnodes/s", "out nodes"]);
    for r in &merge_rows {
        t.row(&[
            &r.path,
            &format!("{:.1}", r.ms_per_pass),
            &format!("{:.2}", r.nodes_per_sec / 1e6),
            &r.out_nodes.to_string(),
        ]);
    }

    // ---- repeated merged-range queries -------------------------------
    println!("\n== E13b: repeated merged-range HHH queries ({reps} reps, full scope) ==\n");
    let mut query_rows: Vec<QueryRow> = Vec::new();

    let start = Instant::now();
    let mut found = 0usize;
    for _ in 0..reps {
        let mut m = FlowTree::new(schema, merged_cfg);
        for t in &in_scope {
            m.merge_elementwise(t).expect("uniform schema");
        }
        found = hhh_count(&m);
    }
    let elem_secs = start.elapsed().as_secs_f64();
    query_rows.push(QueryRow {
        path: "query/elementwise_merge".into(),
        reps,
        ms_per_query: elem_secs * 1e3 / reps as f64,
    });

    let start = Instant::now();
    for _ in 0..reps {
        let m = collector.merged(None, 0, u64::MAX);
        assert_eq!(hhh_count(&m), found, "structural query changed the answer");
    }
    let structural_secs = start.elapsed().as_secs_f64();
    query_rows.push(QueryRow {
        path: "query/structural_merge".into(),
        reps,
        ms_per_query: structural_secs * 1e3 / reps as f64,
    });

    let engine = QueryEngine::new(&collector);
    let q = parse("hhh 0.01 by packets", u64::MAX - 1).expect("valid query");
    let start = Instant::now();
    for _ in 0..reps {
        let QueryOutput::Table(rows) = engine.run(&q) else {
            unreachable!("hhh returns a table")
        };
        assert_eq!(rows.len(), found, "cached query changed the answer");
    }
    let cached_secs = start.elapsed().as_secs_f64();
    query_rows.push(QueryRow {
        path: "query/cached_view".into(),
        reps,
        ms_per_query: cached_secs * 1e3 / reps as f64,
    });

    let start = Instant::now();
    for batch in growth.chunks(sites) {
        for s in batch {
            collector.apply(s.clone()).expect("valid summary");
        }
        let view = collector.merged_view(None, 0, u64::MAX);
        std::hint::black_box(hhh_count(&view));
    }
    let grow_secs = start.elapsed().as_secs_f64();
    query_rows.push(QueryRow {
        path: "query/cached_view_growing".into(),
        reps,
        ms_per_query: grow_secs * 1e3 / reps as f64,
    });

    let t = Table::new(&["path", "reps", "ms/query", "speedup vs elementwise"]);
    let base = query_rows[0].ms_per_query;
    for r in &query_rows {
        t.row(&[
            &r.path,
            &r.reps.to_string(),
            &format!("{:.2}", r.ms_per_query),
            &format!("{:.2}x", base / r.ms_per_query),
        ]);
    }

    // ---- BENCH_query.json --------------------------------------------
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"merge_query\",\n");
    json.push_str(&format!("  \"windows\": {windows},\n"));
    json.push_str(&format!("  \"sites\": {sites},\n"));
    json.push_str(&format!(
        "  \"packets_per_window\": {packets_per_window},\n"
    ));
    json.push_str(&format!("  \"window_budget\": {window_budget},\n"));
    json.push_str(&format!("  \"input_nodes\": {input_nodes},\n"));
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str("  \"merge\": [\n");
    let merge_base = merge_rows[0].nodes_per_sec;
    for (i, r) in merge_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"path\": \"{}\", \"ms_per_pass\": {:.2}, \"input_nodes_per_sec\": {:.0}, \
             \"out_nodes\": {}, \"speedup_vs_elementwise\": {:.3}}}{}\n",
            r.path,
            r.ms_per_pass,
            r.nodes_per_sec,
            r.out_nodes,
            r.nodes_per_sec / merge_base,
            if i + 1 == merge_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"query\": [\n");
    for (i, r) in query_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"path\": \"{}\", \"reps\": {}, \"ms_per_query\": {:.3}, \
             \"speedup_vs_elementwise\": {:.3}}}{}\n",
            r.path,
            r.reps,
            r.ms_per_query,
            base / r.ms_per_query,
            if i + 1 == query_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
}
