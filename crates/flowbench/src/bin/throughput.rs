//! E7 — amortized-constant updates, and the ingest-path comparison.
//!
//! The paper: "This leads to an amortized constant update time."
//! Evidence: per-update cost stays flat as (a) the trace grows and
//! (b) the node budget grows; mean parent-search probes per update
//! stay small and flat.
//!
//! E7c compares the ingest paths on a miss-heavy (fresh-tree,
//! 5-feature, Zipf) trace:
//!
//! * `seed_path` — the pre-optimization reference: strictly linear
//!   upward parent search, re-hashing the full 7-feature key on every
//!   probe (the original `HashMap`-indexed hot path).
//! * `insert` — the zero-rehash path: linear-prefix probes with
//!   rolling hashes, then root descent over the memoized profile
//!   schedule.
//! * `insert_batch` — batched: one canonicalize+hash per key, hash-
//!   sorted for index locality, one budget check per batch.
//! * `sharded/N` — `ShardedTree::par_insert_batch` across N shards
//!   (persistent worker pool, one long-lived thread per shard; scaling
//!   requires ≥ N cores).
//!
//! With `--pipeline`, E7d additionally measures the **streaming ingest
//! pipeline** end to end: pre-encoded NetFlow v5 export packets are
//! decoded (`flownet::ExportDecoder`), window-bucketed by record
//! timestamp, and batch-fed to a sharded `SiteDaemon`
//! (`flowdist::IngestPipeline`) — the daemon-side loop of the paper's
//! Fig. 1 deployment, decode cost included. E7d measures each shard
//! count twice: once through the historical flush path that
//! re-canonicalizes and re-hashes every key at flush time
//! (`pipeline/v5-rehash/N` — the shard-degradation root cause), and
//! once through the current one-hash-per-record prehashed path
//! (`pipeline/v5/N`), so the fix stays measured in the artifact.
//!
//! With `--lanes N`, E7f measures the **socket path**: the same
//! pre-encoded payloads are blasted over real loopback UDP into
//! `flowdist::lane::spawn_multi_lane_ingest` at 1/2/4/…/N lanes —
//! `SO_REUSEPORT` multi-socket where available (`--reuseport 0`
//! forces the portable fanout-ring mode, `--fallback-recv` forces the
//! single-datagram receive path, `--pin` pins lane and shard threads
//! to cores). Sent-vs-received datagrams are accounted explicitly, so
//! kernel drops under blast load are visible, never silently folded
//! into the rate.
//!
//! Results are also written to `BENCH_ingest.json` so the performance
//! trajectory of the ingest path is recorded in-repo.
//!
//! ```sh
//! cargo run --release -p flowbench --bin throughput -- \
//!     --packets 1000000 --shards 4 --batch 8192 --pipeline \
//!     --lanes 8 --json BENCH_ingest.json
//! ```

use flowbench::{Args, Table};
use flowdist::daemon::{DaemonConfig, SiteDaemon, TransferMode};
use flowdist::lane::{spawn_multi_lane_ingest, LaneOptions};
use flowdist::{AdmissionKnobs, IngestPipeline, ShardedTree};
use flowkey::{FlowKey, Schema};
use flownet::FlowRecord;
use flowtrace::{profile, TraceGen};
use flowtree_core::{Config, FlowTree, Popularity};
use std::net::UdpSocket;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct IngestRow {
    path: String,
    updates_per_sec: f64,
    ns_per_update: f64,
    mean_probes: f64,
    mean_work: f64,
    nodes: usize,
}

fn measure<F: FnOnce() -> (flowtree_core::Stats, usize)>(
    path: &str,
    n_updates: usize,
    f: F,
) -> IngestRow {
    let start = Instant::now();
    let (stats, nodes) = f();
    let secs = start.elapsed().as_secs_f64();
    IngestRow {
        path: path.to_string(),
        updates_per_sec: n_updates as f64 / secs,
        ns_per_update: secs * 1e9 / n_updates as f64,
        mean_probes: stats.chain_steps as f64 / n_updates as f64,
        mean_work: (stats.chain_steps + stats.descent_hops) as f64 / n_updates as f64,
        nodes,
    }
}

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed").unwrap_or(42);
    let shards_max: usize = args.get("shards").unwrap_or(4).max(1);
    let batch: usize = args.get("batch").unwrap_or(8_192).max(1);
    let json_path: String = args
        .get("json")
        .unwrap_or_else(|| "BENCH_ingest.json".into());

    println!("== E7a: update rate vs node budget (1 M packets, backbone) ==\n");
    let t = Table::new(&[
        "budget",
        "updates/s",
        "ns/update",
        "mean probes",
        "compactions",
    ]);
    for budget in [10_000usize, 20_000, 40_000, 80_000, 160_000] {
        let mut cfg = profile::backbone(seed);
        cfg.packets = args.get("packets").unwrap_or(1_000_000);
        cfg.flows = cfg.flows.min(cfg.packets / 2);
        let mut tree = FlowTree::new(Schema::four_feature(), Config::with_budget(budget));
        let packets: Vec<_> = TraceGen::new(cfg).collect();
        let start = Instant::now();
        for pkt in &packets {
            tree.insert(&pkt.flow_key(), Popularity::packet(pkt.wire_len));
        }
        let secs = start.elapsed().as_secs_f64();
        let stats = tree.stats();
        t.row(&[
            &budget.to_string(),
            &format!("{:.2} M", packets.len() as f64 / secs / 1e6),
            &format!("{:.0}", secs * 1e9 / packets.len() as f64),
            &format!("{:.2}", stats.mean_chain_steps()),
            &stats.compactions.to_string(),
        ]);
    }

    println!("\n== E7b: per-update cost vs trace length (40 K nodes) ==\n");
    let t = Table::new(&["packets", "updates/s", "ns/update", "mean probes"]);
    for packets in [250_000u64, 500_000, 1_000_000, 2_000_000] {
        let mut cfg = profile::backbone(seed);
        cfg.packets = packets;
        cfg.flows = cfg.flows.min(packets / 2);
        let mut tree = FlowTree::new(Schema::four_feature(), Config::paper());
        let trace: Vec<_> = TraceGen::new(cfg).collect();
        let start = Instant::now();
        for pkt in &trace {
            tree.insert(&pkt.flow_key(), Popularity::packet(pkt.wire_len));
        }
        let secs = start.elapsed().as_secs_f64();
        t.row(&[
            &packets.to_string(),
            &format!("{:.2} M", packets as f64 / secs / 1e6),
            &format!("{:.0}", secs * 1e9 / packets as f64),
            &format!("{:.2}", tree.stats().mean_chain_steps()),
        ]);
    }

    // ---- E7c: ingest paths on a miss-heavy 5-feature trace ------------
    let packets: u64 = args.get("packets").unwrap_or(1_000_000);
    let mut cfg = profile::backbone(seed);
    cfg.packets = packets;
    // Miss-heavy: high flow cardinality → most updates create nodes.
    cfg.flows = packets.max(2) / 2;
    let schema = Schema::five_feature();
    let tree_cfg = Config::paper();
    let flows = cfg.flows;
    let trace: Vec<(FlowKey, Popularity)> = TraceGen::new(cfg)
        .map(|p| (p.flow_key(), Popularity::packet(p.wire_len)))
        .collect();
    let n = trace.len();

    println!(
        "\n== E7c: ingest paths, miss-heavy 5-feature Zipf trace \
         ({n} packets, {} flows, 40 K budget, {} host cores) ==\n",
        flows,
        std::thread::available_parallelism().map_or(1, |c| c.get()),
    );
    let mut rows: Vec<IngestRow> = Vec::new();

    rows.push(measure("seed_path", n, || {
        let mut tree = FlowTree::new(schema, tree_cfg);
        for (k, p) in &trace {
            tree.insert_seed_path(k, *p);
        }
        (*tree.stats(), tree.len())
    }));

    rows.push(measure("insert", n, || {
        let mut tree = FlowTree::new(schema, tree_cfg);
        for (k, p) in &trace {
            tree.insert(k, *p);
        }
        (*tree.stats(), tree.len())
    }));

    rows.push(measure(&format!("insert_batch/{batch}"), n, || {
        let mut tree = FlowTree::new(schema, tree_cfg);
        for chunk in trace.chunks(batch) {
            tree.insert_batch(chunk);
        }
        (*tree.stats(), tree.len())
    }));

    let mut shard_counts = vec![1usize, 2, 4];
    if !shard_counts.contains(&shards_max) {
        shard_counts.push(shards_max);
    }
    shard_counts.retain(|&s| s <= shards_max);
    for &s in &shard_counts {
        rows.push(measure(&format!("sharded/{s}"), n, || {
            let mut st = ShardedTree::new(schema, tree_cfg, s);
            for chunk in trace.chunks(batch) {
                st.par_insert_batch(chunk);
            }
            (st.stats(), st.len())
        }));
    }

    let t = Table::new(&[
        "path",
        "updates/s",
        "ns/update",
        "mean probes",
        "mean work",
        "nodes",
    ]);
    for r in &rows {
        t.row(&[
            &r.path,
            &format!("{:.2} M", r.updates_per_sec / 1e6),
            &format!("{:.0}", r.ns_per_update),
            &format!("{:.2}", r.mean_probes),
            &format!("{:.2}", r.mean_work),
            &r.nodes.to_string(),
        ]);
    }
    let seed_rate = rows[0].updates_per_sec;
    println!();
    for r in rows.iter().skip(1) {
        println!(
            "  {:<20} {:>5.2}x vs seed_path",
            r.path,
            r.updates_per_sec / seed_rate
        );
    }

    // ---- E7d: streaming pipeline, wire → summaries (--pipeline) -------
    struct PipelineRow {
        path: String,
        records_per_sec: f64,
        ns_per_record: f64,
        datagrams: u64,
        summaries: usize,
        raw_bytes: u64,
    }
    let mut pipeline_rows: Vec<PipelineRow> = Vec::new();
    // (records/s metrics off, records/s metrics on), from E7e.
    let mut instrumentation: Option<(f64, f64)> = None;
    // E7f socket-path rows (--lanes).
    struct SocketRow {
        lanes: usize,
        reuseport: bool,
        fallback_recv: bool,
        pin: bool,
        records_per_sec: f64,
        sent: u64,
        received: u64,
        records: u64,
        summaries: u64,
        loss_pct: f64,
    }
    let mut socket_rows: Vec<SocketRow> = Vec::new();
    let lanes_max: Option<usize> = args.get("lanes");

    // Same workload as E7c, but as timestamped flow records behind
    // pre-encoded NetFlow v5 export packets — shared by E7d (in-memory
    // pipeline) and E7f (socket path). Encoding is the router's job
    // and is excluded from timing.
    let (payloads, n_records) = if args.has("pipeline") || lanes_max.is_some() {
        let mut cfg = profile::backbone(seed);
        cfg.packets = packets;
        cfg.flows = packets.max(2) / 2;
        let records: Vec<FlowRecord> = TraceGen::new(cfg)
            .map(|p| {
                let ts_ms = p.ts_micros / 1_000;
                FlowRecord {
                    src: p.src,
                    dst: p.dst,
                    sport: p.sport,
                    dport: p.dport,
                    proto: p.proto,
                    packets: 1,
                    bytes: p.wire_len as u64,
                    first_ms: ts_ms.saturating_sub(1),
                    last_ms: ts_ms,
                }
            })
            .collect();
        let mut flow_seq = 0u32;
        let payloads: Vec<Vec<u8>> = records
            .chunks(flownet::netflow5::MAX_RECORDS)
            .map(|chunk| {
                let base_ms = chunk.iter().map(|r| r.last_ms).max().unwrap_or(0);
                let pkt = flownet::netflow5::encode(chunk, base_ms, flow_seq);
                flow_seq = flow_seq.wrapping_add(chunk.len() as u32);
                pkt
            })
            .collect();
        (payloads, records.len())
    } else {
        (Vec::new(), 0)
    };

    if args.has("pipeline") {
        println!(
            "\n== E7d: streaming pipeline, NetFlow v5 wire → summaries \
             ({n_records} records in {} datagrams, 1 s windows) ==\n",
            payloads.len()
        );
        let t = Table::new(&[
            "path",
            "records/s",
            "ns/record",
            "datagrams",
            "summaries",
            "raw MiB",
        ]);
        // Before-fix reference: identical decode + window bucketing,
        // but flushed through `ingest_stamped_batch`, which
        // re-canonicalizes and re-hashes every key at flush time — the
        // historical pipeline hot path whose shard rows degraded. The
        // paired `pipeline/v5/N` rows below carry each key's hash from
        // decode to shard routing, so the fix is a measured delta in
        // the artifact, not a claim.
        for &s in &shard_counts {
            let mut dcfg = DaemonConfig::new(1);
            dcfg.window_ms = 1_000;
            dcfg.schema = schema;
            dcfg.tree = tree_cfg;
            dcfg.shards = s;
            let mut daemon = SiteDaemon::new(dcfg);
            let mut decoder =
                flownet::ExportDecoder::with_limits(flownet::DecoderLimits::default());
            let start = Instant::now();
            let mut summaries = 0usize;
            let mut pending: Vec<(u64, FlowKey, Popularity)> = Vec::with_capacity(batch);
            for payload in &payloads {
                let Ok((_, records)) = flownet::decode_export_packet_at(&mut decoder, payload, 0)
                else {
                    continue;
                };
                daemon.note_raw_bytes(payload.len() as u64);
                for r in &records {
                    pending.push((
                        r.last_ms,
                        schema.canonicalize(&r.flow_key()),
                        Popularity::flow(r.packets, r.bytes),
                    ));
                    if pending.len() >= batch {
                        summaries += daemon.ingest_stamped_batch(&pending).len();
                        pending.clear();
                    }
                }
            }
            if !pending.is_empty() {
                summaries += daemon.ingest_stamped_batch(&pending).len();
            }
            summaries += daemon.flush().len();
            let secs = start.elapsed().as_secs_f64();
            assert_eq!(daemon.stats().records, n_records as u64);
            let row = PipelineRow {
                path: format!("pipeline/v5-rehash/{s}"),
                records_per_sec: n_records as f64 / secs,
                ns_per_record: secs * 1e9 / n_records as f64,
                datagrams: payloads.len() as u64,
                summaries,
                raw_bytes: daemon.stats().raw_bytes,
            };
            t.row(&[
                &row.path,
                &format!("{:.2} M", row.records_per_sec / 1e6),
                &format!("{:.0}", row.ns_per_record),
                &row.datagrams.to_string(),
                &row.summaries.to_string(),
                &format!("{:.1}", row.raw_bytes as f64 / (1024.0 * 1024.0)),
            ]);
            pipeline_rows.push(row);
        }
        for &s in &shard_counts {
            let mut dcfg = DaemonConfig::new(1);
            dcfg.window_ms = 1_000;
            dcfg.schema = schema;
            dcfg.tree = tree_cfg;
            dcfg.shards = s;
            let mut pipe = IngestPipeline::new(SiteDaemon::new(dcfg), batch);
            let start = Instant::now();
            let mut summaries = 0usize;
            for payload in &payloads {
                summaries += pipe.push_packet(payload).len();
            }
            let (rest, daemon) = pipe.finish();
            summaries += rest.len();
            let secs = start.elapsed().as_secs_f64();
            let row = PipelineRow {
                path: format!("pipeline/v5/{s}"),
                records_per_sec: n_records as f64 / secs,
                ns_per_record: secs * 1e9 / n_records as f64,
                datagrams: payloads.len() as u64,
                summaries,
                raw_bytes: daemon.stats().raw_bytes,
            };
            assert_eq!(daemon.stats().records, n_records as u64);
            t.row(&[
                &row.path,
                &format!("{:.2} M", row.records_per_sec / 1e6),
                &format!("{:.0}", row.ns_per_record),
                &row.datagrams.to_string(),
                &row.summaries.to_string(),
                &format!("{:.1}", row.raw_bytes as f64 / (1024.0 * 1024.0)),
            ]);
            pipeline_rows.push(row);
        }

        // ---- E7e: instrumentation overhead ----------------------------
        // The same single-shard run with the hot-path latency
        // histograms attached — the price of observability on the
        // tightest loop we have. Without the `hot-timers` feature the
        // stopwatches are zero-sized no-ops and the two rows must
        // coincide (`cargo run -p flowbench --no-default-features`).
        let run_once = |instrumented: bool| -> f64 {
            let mut dcfg = DaemonConfig::new(1);
            dcfg.window_ms = 1_000;
            dcfg.schema = schema;
            dcfg.tree = tree_cfg;
            dcfg.shards = 1;
            let mut pipe = IngestPipeline::new(SiteDaemon::new(dcfg), batch);
            if instrumented {
                let reg = flowmetrics::Registry::new();
                pipe.set_latency_instruments(
                    reg.histogram("flowtree_decode_seconds", "Per-packet decode latency."),
                    reg.histogram("flowtree_flush_seconds", "Per-batch flush latency."),
                );
            }
            let start = Instant::now();
            let mut summaries = 0usize;
            for payload in &payloads {
                summaries += pipe.push_packet(payload).len();
            }
            summaries += pipe.finish().0.len();
            let secs = start.elapsed().as_secs_f64();
            assert!(summaries > 0, "pipeline produced summaries");
            n_records as f64 / secs
        };
        println!(
            "\n== E7e: instrumentation overhead, single-shard pipeline \
             (hot-path timers {}) ==\n",
            if flowmetrics::Stopwatch::enabled() {
                "compiled in"
            } else {
                "compiled out"
            }
        );
        // Warm once, then an ABBA schedule with means: run position
        // drifts throughput by far more than the timers do (allocator
        // and cache state shift monotonically across runs), and the
        // balanced order cancels any linear drift instead of charging
        // it to whichever path ran second.
        let _ = run_once(false);
        let (mut off_rates, mut on_rates) = (Vec::new(), Vec::new());
        for &instrumented in &[false, true, true, false] {
            let rate = run_once(instrumented);
            if instrumented {
                on_rates.push(rate);
            } else {
                off_rates.push(rate);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (off, on) = (mean(&off_rates), mean(&on_rates));
        let overhead = (off / on - 1.0) * 100.0;
        println!("  metrics off: {:.2} M records/s", off / 1e6);
        println!(
            "  metrics on:  {:.2} M records/s  ({overhead:+.2}% overhead)",
            on / 1e6
        );
        instrumentation = Some((off, on));
    }

    // ---- E7f: socket path, loopback UDP → multi-lane ingest (--lanes) --
    if let Some(lanes_max) = lanes_max {
        let lanes_max = lanes_max.clamp(1, flowdist::lane::MAX_LANES);
        let reuseport = args.get::<u32>("reuseport").is_none_or(|v| v != 0);
        let fallback_recv = args.has("fallback-recv");
        let pin = args.has("pin");
        let mut sweep: Vec<usize> = [1usize, 2, 4, 8]
            .into_iter()
            .filter(|&l| l <= lanes_max)
            .collect();
        if !sweep.contains(&lanes_max) {
            sweep.push(lanes_max);
        }
        println!(
            "\n== E7f: socket path, loopback UDP → lanes → summaries \
             ({n_records} records in {} datagrams, reuseport={reuseport} \
             fallback_recv={fallback_recv} pin={pin}) ==\n",
            payloads.len()
        );
        let t = Table::new(&[
            "path",
            "records/s",
            "sent",
            "received",
            "loss %",
            "summaries",
            "mode",
        ]);
        for &lanes in &sweep {
            let knobs = Arc::new(AdmissionKnobs::default());
            knobs.set_pin_cores(pin);
            let opts = LaneOptions {
                lanes,
                recv_batch: 64,
                reuseport,
                force_fallback_recv: fallback_recv,
                receive_buffer_bytes: Some(32 << 20),
                knobs,
                ..LaneOptions::default()
            };
            let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(4_096);
            let drain = std::thread::spawn(move || rx.iter().count());
            let handle = spawn_multi_lane_ingest(
                "127.0.0.1:0",
                |_lane| {
                    let mut dcfg = DaemonConfig::new(1);
                    dcfg.window_ms = 1_000;
                    dcfg.schema = schema;
                    dcfg.tree = tree_cfg;
                    dcfg.shards = 1;
                    dcfg.transfer = TransferMode::Full;
                    IngestPipeline::new(SiteDaemon::new(dcfg), batch)
                },
                tx,
                opts,
            )
            .expect("bind ingest lanes");
            let to = handle.local_addr();
            let view = handle.view();
            let mode = if handle.is_reuseport() {
                "reuseport"
            } else if lanes == 1 {
                "single"
            } else {
                "fanout"
            };

            // One sender socket (= one exporter 4-tuple) per lane, so
            // the kernel's reuseport hash can actually spread load.
            // Each sender yields for 1 ms every 32 datagrams: the
            // offered load stays far above any one node's capacity
            // (so the receiver, not the pacing, is what's measured),
            // but on shared cores the lanes actually get scheduled
            // between bursts instead of the sender monopolizing the
            // CPU while the socket buffer overflows. Remaining loss
            // is measured, not assumed away.
            let senders = lanes.max(2);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for s in 0..senders {
                    let payloads = &payloads;
                    scope.spawn(move || {
                        let sock = UdpSocket::bind("127.0.0.1:0").expect("sender bind");
                        for (i, p) in payloads.iter().skip(s).step_by(senders).enumerate() {
                            // A full socket buffer surfaces as loss in
                            // the received count, never as a panic.
                            let _ = sock.send_to(p, to);
                            if i % 32 == 31 {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                    });
                }
            });
            // Receive side keeps draining after the last send; clock
            // the run at the moment the datagram count goes quiet.
            let sent = payloads.len() as u64;
            let (mut last, mut last_change) = (0u64, Instant::now());
            loop {
                let now = view.snapshot().datagrams;
                if now != last {
                    last = now;
                    last_change = Instant::now();
                }
                if now >= sent || last_change.elapsed() > Duration::from_millis(500) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            let secs = last_change.duration_since(start).as_secs_f64().max(1e-9);
            let report = handle.stop();
            drain.join().expect("drain thread");
            let row = SocketRow {
                lanes,
                reuseport: mode == "reuseport",
                fallback_recv,
                pin,
                records_per_sec: report.daemon.records as f64 / secs,
                sent,
                received: report.datagrams,
                records: report.daemon.records,
                summaries: report.daemon.summaries,
                loss_pct: 100.0 * (sent - report.datagrams.min(sent)) as f64 / sent as f64,
            };
            t.row(&[
                &format!("socket/v5/lanes={lanes}"),
                &format!("{:.2} M", row.records_per_sec / 1e6),
                &row.sent.to_string(),
                &row.received.to_string(),
                &format!("{:.2}", row.loss_pct),
                &row.summaries.to_string(),
                mode,
            ]);
            socket_rows.push(row);
        }
        if let (Some(one), Some(two)) = (
            socket_rows.iter().find(|r| r.lanes == 1),
            socket_rows.iter().find(|r| r.lanes == 2),
        ) {
            println!(
                "\n  lanes=2 vs lanes=1: {:.2}x",
                two.records_per_sec / one.records_per_sec
            );
        }
    }

    // ---- BENCH_ingest.json --------------------------------------------
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"ingest\",\n");
    json.push_str(&format!("  \"packets\": {n},\n"));
    json.push_str(&format!("  \"flows\": {flows},\n"));
    json.push_str("  \"schema\": \"five_feature\",\n");
    json.push_str("  \"budget\": 40000,\n");
    json.push_str(&format!("  \"batch\": {batch},\n"));
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str("  \"paths\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"path\": \"{}\", \"updates_per_sec\": {:.0}, \"ns_per_update\": {:.1}, \
             \"mean_probes\": {:.3}, \"mean_search_work\": {:.3}, \"nodes\": {}, \
             \"speedup_vs_seed\": {:.3}}}{}\n",
            r.path,
            r.updates_per_sec,
            r.ns_per_update,
            r.mean_probes,
            r.mean_work,
            r.nodes,
            r.updates_per_sec / seed_rate,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]");
    if !pipeline_rows.is_empty() {
        json.push_str(",\n  \"pipeline\": [\n");
        for (i, r) in pipeline_rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"path\": \"{}\", \"records_per_sec\": {:.0}, \"ns_per_record\": {:.1}, \
                 \"datagrams\": {}, \"summaries\": {}, \"raw_bytes\": {}}}{}\n",
                r.path,
                r.records_per_sec,
                r.ns_per_record,
                r.datagrams,
                r.summaries,
                r.raw_bytes,
                if i + 1 == pipeline_rows.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        json.push_str("  ]");
    }
    if !socket_rows.is_empty() {
        json.push_str(",\n  \"sockets\": [\n");
        for (i, r) in socket_rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"path\": \"socket/v5/lanes={}\", \"lanes\": {}, \"reuseport\": {}, \
                 \"fallback_recv\": {}, \"pin\": {}, \"records_per_sec\": {:.0}, \
                 \"datagrams_sent\": {}, \"datagrams_received\": {}, \"records\": {}, \
                 \"summaries\": {}, \"loss_pct\": {:.2}}}{}\n",
                r.lanes,
                r.lanes,
                r.reuseport,
                r.fallback_recv,
                r.pin,
                r.records_per_sec,
                r.sent,
                r.received,
                r.records,
                r.summaries,
                r.loss_pct,
                if i + 1 == socket_rows.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]");
    }
    if let Some((off, on)) = instrumentation {
        json.push_str(&format!(
            ",\n  \"instrumentation\": {{\"timers_compiled\": {}, \
             \"records_per_sec_off\": {off:.0}, \"records_per_sec_on\": {on:.0}, \
             \"overhead_pct\": {:.2}}}",
            flowmetrics::Stopwatch::enabled(),
            (off / on - 1.0) * 100.0,
        ));
    }
    json.push_str("\n}\n");
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }

    println!("\n(flat ns/update and flat probes across E7a/E7b = amortized O(1))");
}
